#!/usr/bin/env python3
"""Gate redistribution-planning performance against a committed baseline.

Reads two google-benchmark JSON files (current run, committed baseline) and
compares the plan-once speedup — the ratio of BM_RedistSchedule_Legacy to
BM_RedistSchedule_PlanOnce cpu_time at the same party count.  Ratios are
machine-portable where absolute times are not, so the committed baseline
stays valid across hosts.

Fails when:
  * either benchmark is missing from the current run,
  * the current speedup falls below --min-speedup (the plan-once layer must
    beat the legacy pairwise executor by at least this factor), or
  * the current speedup regressed more than --max-regress relative to the
    baseline's speedup.

Usage:
  check_bench.py CURRENT.json BASELINE.json [--max-regress 0.25]
                 [--min-speedup 2.0] [--arg 64]
"""

import argparse
import json
import sys

LEGACY = "BM_RedistSchedule_Legacy"
PLAN = "BM_RedistSchedule_PlanOnce"


def load_times(path):
    """Map benchmark name -> cpu_time (ns) from a google-benchmark JSON."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if b.get("run_type", "iteration") != "iteration":
            continue
        times[b["name"]] = float(b["cpu_time"])
    return times


def speedup(times, arg, path):
    legacy = times.get(f"{LEGACY}/{arg}")
    plan = times.get(f"{PLAN}/{arg}")
    if legacy is None or plan is None:
        raise SystemExit(
            f"{path}: missing {LEGACY}/{arg} or {PLAN}/{arg} "
            f"(found: {sorted(times)})"
        )
    if plan <= 0.0:
        raise SystemExit(f"{path}: non-positive plan-once time {plan}")
    return legacy / plan


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="google-benchmark JSON from this run")
    ap.add_argument("baseline", help="committed google-benchmark JSON")
    ap.add_argument("--max-regress", type=float, default=0.25,
                    help="tolerated relative speedup loss vs baseline")
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="absolute plan-once speedup floor")
    ap.add_argument("--arg", type=int, default=64,
                    help="party count to gate on")
    args = ap.parse_args()

    cur = speedup(load_times(args.current), args.arg, args.current)
    base = speedup(load_times(args.baseline), args.arg, args.baseline)
    floor = base * (1.0 - args.max_regress)

    print(f"plan-once speedup @ {args.arg} parties: "
          f"current {cur:.2f}x, baseline {base:.2f}x, "
          f"floor {max(floor, args.min_speedup):.2f}x")

    ok = True
    if cur < args.min_speedup:
        print(f"FAIL: speedup {cur:.2f}x below required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        ok = False
    if cur < floor:
        print(f"FAIL: speedup {cur:.2f}x regressed more than "
              f"{args.max_regress:.0%} from baseline {base:.2f}x",
              file=sys.stderr)
        ok = False
    if not ok:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
