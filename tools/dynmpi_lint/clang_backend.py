"""Optional libclang refinement for the DET checks.

When the `clang.cindex` bindings and a loadable libclang are present, the
determinism checks re-run at AST precision: banned calls are resolved
through the *referenced declaration* (so a local variable named `rand` can
never false-positive) and unordered-container findings attach to the
declaration cursor.  Everything degrades to the regex backend — same codes,
same suppression syntax — when libclang is unavailable, which is the common
case in CI and the fixture tests pin the regex backend explicitly.

For each translation unit that parses, the AST findings *replace* the
regex DET findings for that file; files that fail to parse (and all
headers, which are not TUs) keep the regex results, so the gate's verdict
is stable whether or not libclang is installed.
"""

from . import Finding
from .determinism import SANCTIONED_RANDOMNESS, SANCTIONED_TIME

_BANNED_RANDOM = {
    "rand", "srand", "srandom", "random", "rand_r", "drand48", "erand48",
    "lrand48", "nrand48", "mrand48", "jrand48",
}
_BANNED_RANDOM_TYPES = {
    "std::random_device", "std::mt19937", "std::mt19937_64",
    "std::minstd_rand", "std::minstd_rand0", "std::default_random_engine",
}
_BANNED_TIME = {
    "time", "clock", "gettimeofday", "clock_gettime", "timespec_get",
    "ftime", "mktime", "localtime", "localtime_r", "gmtime", "gmtime_r",
    "strftime", "asctime", "ctime",
}
_UNORDERED_TYPES = ("unordered_map", "unordered_set", "unordered_multimap",
                    "unordered_multiset")


def available():
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return False
    try:
        clang.cindex.Index.create()
    except Exception:  # missing/unloadable libclang shared object
        return False
    return True


def check_tu(sf, compile_args, findings):
    """AST-precision DET checks on one translation unit.  Returns True if
    the parse succeeded (caller falls back to regex otherwise)."""
    import clang.cindex as ci

    try:
        index = ci.Index.create()
        tu = index.parse(sf.path, args=compile_args or ["-std=c++20"])
    except Exception:
        return False
    if any(d.severity >= ci.Diagnostic.Fatal for d in tu.diagnostics):
        return False

    rand_ok = sf.rel in SANCTIONED_RANDOMNESS
    time_ok = sf.rel in SANCTIONED_TIME

    def local(cursor):
        loc = cursor.location
        return loc.file is not None and loc.file.name == sf.path

    for cursor in tu.cursor.walk_preorder():
        if not local(cursor):
            continue
        line = cursor.location.line
        col = cursor.location.column
        if cursor.kind == ci.CursorKind.CALL_EXPR:
            ref = cursor.referenced
            name = ref.spelling if ref is not None else cursor.spelling
            if not rand_ok and name in _BANNED_RANDOM and \
                    not sf.suppressed(line, "randomness"):
                findings.append(Finding(
                    sf.rel, line, col, "DET001",
                    f"banned randomness source `{name}` — all randomness "
                    "must flow through support/rng.hpp (Rng / splitmix64)"))
            if not time_ok and name in _BANNED_TIME and \
                    not sf.suppressed(line, "wall-clock"):
                findings.append(Finding(
                    sf.rel, line, col, "DET002",
                    f"banned wall-clock source `{name}()` — observable time "
                    "must be virtual sim time (sim/time.hpp)"))
        elif cursor.kind in (ci.CursorKind.VAR_DECL,
                             ci.CursorKind.FIELD_DECL):
            spelling = cursor.type.spelling
            if not rand_ok and spelling in _BANNED_RANDOM_TYPES and \
                    not sf.suppressed(line, "randomness"):
                findings.append(Finding(
                    sf.rel, line, col, "DET001",
                    f"banned randomness source `{spelling}` — use "
                    "support/rng.hpp"))
            if any(u in spelling for u in _UNORDERED_TYPES) and \
                    not sf.suppressed(line, "unordered-lookup"):
                findings.append(Finding(
                    sf.rel, line, col, "DET003",
                    f"`{spelling}` iteration order depends on hashing — use "
                    "std::map / sort-before-iterate, or annotate with "
                    "`// dynmpi-lint: ok(unordered-lookup)`"))
    return True
