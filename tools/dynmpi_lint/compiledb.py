"""compile_commands.json loader.

The build tree exports a compilation database (CMAKE_EXPORT_COMPILE_COMMANDS
is on by default for this project); when present it gives the linter the
authoritative translation-unit list and per-file compiler arguments for the
libclang backend.  The regex backend only needs the repo layout, so a
missing database is never an error.
"""

import json
import os


class CompileDb:
    def __init__(self, entries):
        self.entries = entries  # file (absolute) -> argument list

    @classmethod
    def load(cls, build_dir):
        path = os.path.join(build_dir, "compile_commands.json")
        try:
            with open(path, encoding="utf-8") as f:
                raw = json.load(f)
        except (OSError, ValueError):
            return None
        entries = {}
        for e in raw:
            fn = os.path.normpath(os.path.join(e.get("directory", "."),
                                               e["file"]))
            if "arguments" in e:
                args = list(e["arguments"])[1:-1]
            else:
                args = e.get("command", "").split()[1:]
                args = [a for a in args if a != e["file"]]
            entries[fn] = args
        return cls(entries)

    def args_for(self, path):
        return self.entries.get(os.path.normpath(path))
