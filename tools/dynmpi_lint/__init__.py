"""dynmpi-lint: domain static analysis for the Dyn-MPI reproduction.

Enforces the determinism and protocol invariants that the runtime's
byte-identical-trace guarantees rest on (docs/STATIC_ANALYSIS.md holds the
full catalogue):

  DET001  banned randomness source (only support/rng.hpp is sanctioned)
  DET002  banned wall-clock / calendar-time source (only sim/time.hpp)
  DET003  unordered container without an `ok(unordered-lookup)` suppression
  TRC001  emitted trace event missing from tools/check_trace.py's schema
  TRC002  schema event never emitted by src/ (dead schema entry)
  TRC003  schema event missing from docs/OBSERVABILITY.md
  TRC004  emitted metric missing from the docs metrics catalog
  TRC005  observability name literal not known to schema or docs
  TRC006  documented catalog name never emitted (stale doc entry)
  TAG001  raw tag-space arithmetic / wide literal outside mpisim/tags.hpp
  TAG002  TagSpace switch that is not exhaustive and has no default
  EXC001  throwing protocol call inside a destructor
  EXC002  throwing protocol call inside a `repair-critical` function

Suppressions are line-scoped comments understood by every check:

    // dynmpi-lint: ok(<token>)      same line or the line directly above

with tokens: randomness, wall-clock, unordered-lookup, trace-name,
raw-tag, tag-switch, protocol-throw.  `// dynmpi-lint: repair-critical`
marks the function that follows as repair-critical (EXC002 scope).
"""

from dataclasses import dataclass, field

__version__ = "1.0"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, ordered for deterministic output."""

    path: str  # repo-relative, posix separators
    line: int  # 1-based
    col: int   # 1-based
    code: str  # e.g. "DET003"
    message: str = field(compare=False)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code}: {self.message}"
