"""Lexical model of one C++ source file.

A single character-level pass splits the file into three synchronized views:

  * ``code_lines``   — line-by-line code with comments blanked and string /
    char literal *contents* blanked (the quotes survive, so token-level
    regexes never fire inside prose);
  * ``literals``     — every string literal with its (line, col, value);
  * ``suppressions`` — ``dynmpi-lint: ok(token)`` comment tokens per line,
    plus the lines carrying a ``dynmpi-lint: repair-critical`` marker.

The pass understands //-comments, /* */ comments, char literals, ordinary
string literals with escapes, and basic R"( ... )" raw strings — everything
the src/ tree actually uses.
"""

import re

_SUPPRESS_RE = re.compile(r"dynmpi-lint:\s*ok\(([a-z-]+)\)")
_REPAIR_RE = re.compile(r"dynmpi-lint:\s*repair-critical")


class SourceFile:
    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel  # repo-relative posix path
        self.raw_lines = text.split("\n")
        self.code_lines = []
        self.literals = []       # list of (line, col, value), 1-based
        self.suppressions = {}   # line -> set of tokens
        self.repair_markers = [] # lines with a repair-critical marker
        self._scan(text)

    # -- suppression helpers -------------------------------------------------

    def suppressed(self, line, token):
        """True if `token` is suppressed on `line` (same or previous line)."""
        for ln in (line, line - 1):
            if token in self.suppressions.get(ln, ()):
                return True
        return False

    def _note_comment(self, text, start_line):
        for m in _SUPPRESS_RE.finditer(text):
            ln = start_line + text.count("\n", 0, m.start())
            self.suppressions.setdefault(ln, set()).add(m.group(1))
        for m in _REPAIR_RE.finditer(text):
            ln = start_line + text.count("\n", 0, m.start())
            self.repair_markers.append(ln)

    # -- the scanner ---------------------------------------------------------

    def _scan(self, text):
        code = []      # code characters of the current line
        line = 1
        col = 0        # 0-based within the current line
        i = 0
        n = len(text)

        def newline():
            nonlocal line, col
            self.code_lines.append("".join(code))
            code.clear()
            line += 1
            col = 0

        while i < n:
            c = text[i]
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "\n":
                newline()
                i += 1
                continue
            if c == "/" and nxt == "/":
                end = text.find("\n", i)
                end = n if end < 0 else end
                self._note_comment(text[i:end], line)
                col += end - i
                i = end
                continue
            if c == "/" and nxt == "*":
                end = text.find("*/", i + 2)
                end = n if end < 0 else end + 2
                self._note_comment(text[i:end], line)
                # blank the comment but keep line structure
                for ch in text[i:end]:
                    if ch == "\n":
                        newline()
                    else:
                        code.append(" ")
                        col += 1
                i = end
                continue
            if c == "R" and nxt == '"':
                # raw string R"delim( ... )delim"
                m = re.match(r'R"([^()\s]*)\(', text[i:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    end = text.find(closer, i + m.end())
                    end = n if end < 0 else end + len(closer)
                    value = text[i + m.end():end - len(closer)]
                    self.literals.append((line, col + 1, value))
                    code.append('"')
                    code.append('"')
                    for ch in text[i:end]:
                        if ch == "\n":
                            newline()
                        else:
                            col += 1
                    i = end
                    continue
            if c == '"' or c == "'":
                quote = c
                j = i + 1
                buf = []
                while j < n and text[j] != quote:
                    if text[j] == "\\" and j + 1 < n:
                        buf.append(text[j:j + 2])
                        j += 2
                    elif text[j] == "\n":
                        break  # unterminated on this line; bail out
                    else:
                        buf.append(text[j])
                        j += 1
                value = "".join(buf)
                if quote == '"':
                    self.literals.append((line, col + 1, value))
                code.append(quote)
                code.append(quote)
                span = (j + 1 if j < n and text[j] == quote else j) - i
                col += span
                i += span
                continue
            code.append(c)
            col += 1
            i += 1
        self.code_lines.append("".join(code))

    # -- structural helpers used by the brace-matching checks ---------------

    def find_matching_brace(self, line, col):
        """Given the position of a '{' in code_lines (1-based line, 0-based
        col), return the (line, col) of its matching '}' or None."""
        depth = 0
        ln = line
        c = col
        while ln <= len(self.code_lines):
            row = self.code_lines[ln - 1]
            while c < len(row):
                ch = row[c]
                if ch == "{":
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    if depth == 0:
                        return (ln, c)
                c += 1
            ln += 1
            c = 0
        return None

    def body_lines(self, open_line, open_col):
        """Yield (line, text) for every code line inside the brace opened at
        (open_line, open_col), clipped to the body extent."""
        end = self.find_matching_brace(open_line, open_col)
        if end is None:
            end = (len(self.code_lines), 0)
        end_line, _ = end
        for ln in range(open_line, end_line + 1):
            yield ln, self.code_lines[ln - 1]


def load(path, rel):
    with open(path, encoding="utf-8") as f:
        return SourceFile(path, rel, f.read())
