"""DET checks: every observable byte of a run must be a pure function of
(seed, fault script).  Randomness and wall clocks are therefore restricted
to their two sanctioned homes, and unordered containers must be explicitly
marked as lookup-only so no protocol-, trace- or replica-visible iteration
order can depend on hash seeding.

  DET001  banned randomness source    (sanctioned: support/rng.hpp)
  DET002  banned wall-clock source    (sanctioned: sim/time.hpp)
  DET003  std::unordered_* without `// dynmpi-lint: ok(unordered-lookup)`
"""

import re

from . import Finding

# Files allowed to define/own randomness and virtual time.
SANCTIONED_RANDOMNESS = {"src/support/rng.hpp"}
SANCTIONED_TIME = {"src/sim/time.hpp"}

_RAND_CALL = re.compile(
    r"\b(?:std\s*::\s*)?"
    r"(rand|srand|srandom|random|rand_r|drand48|erand48|lrand48|nrand48"
    r"|mrand48|jrand48|random_device|mt19937(?:_64)?|minstd_rand0?"
    r"|ranlux\w+|knuth_b|default_random_engine|uniform_int_distribution"
    r"|uniform_real_distribution|normal_distribution|bernoulli_distribution"
    r"|poisson_distribution|exponential_distribution)\b")
_RAND_INCLUDE = re.compile(r"#\s*include\s*<random>")

_TIME_CALL = re.compile(
    r"\b(?:std\s*::\s*)?"
    r"(time|clock|gettimeofday|clock_gettime|timespec_get|ftime|mktime"
    r"|localtime(?:_r)?|gmtime(?:_r)?|strftime|asctime(?:_r)?|ctime(?:_r)?)"
    r"\s*\(")
_CHRONO_CLOCK = re.compile(
    r"\bstd\s*::\s*chrono\s*::\s*"
    r"(system_clock|steady_clock|high_resolution_clock|utc_clock|file_clock"
    r"|tai_clock|gps_clock)\b")
_TIME_INCLUDE = re.compile(r"#\s*include\s*<(ctime|chrono|sys/time\.h)>")

_UNORDERED = re.compile(r"\bstd\s*::\s*unordered_(map|set|multimap|multiset)\b")
_INCLUDE_LINE = re.compile(r"^\s*#\s*include\b")


def check(sf, findings):
    rand_ok = sf.rel in SANCTIONED_RANDOMNESS
    time_ok = sf.rel in SANCTIONED_TIME
    for i, text in enumerate(sf.code_lines, start=1):
        if not rand_ok and not sf.suppressed(i, "randomness"):
            for m in _RAND_CALL.finditer(text):
                findings.append(Finding(
                    sf.rel, i, m.start(1) + 1, "DET001",
                    f"banned randomness source `{m.group(1)}` — all "
                    "randomness must flow through support/rng.hpp "
                    "(Rng / splitmix64) so runs replay bit-identically"))
            m = _RAND_INCLUDE.search(text)
            if m:
                findings.append(Finding(
                    sf.rel, i, m.start() + 1, "DET001",
                    "#include <random> is banned — use support/rng.hpp"))
        if not time_ok and not sf.suppressed(i, "wall-clock"):
            for m in _TIME_CALL.finditer(text):
                findings.append(Finding(
                    sf.rel, i, m.start(1) + 1, "DET002",
                    f"banned wall-clock source `{m.group(1)}()` — observable "
                    "time must be virtual sim time (sim/time.hpp, "
                    "Rank::hrtime)"))
            for m in _CHRONO_CLOCK.finditer(text):
                findings.append(Finding(
                    sf.rel, i, m.start(1) + 1, "DET002",
                    f"banned wall-clock source `std::chrono::{m.group(1)}` — "
                    "use virtual sim time (sim/time.hpp, Rank::hrtime)"))
            m = _TIME_INCLUDE.search(text)
            if m:
                findings.append(Finding(
                    sf.rel, i, m.start() + 1, "DET002",
                    f"#include <{m.group(1)}> is banned — observable time "
                    "must come from sim/time.hpp"))
        if _INCLUDE_LINE.match(text):
            continue  # the declaration, not the header name, is what counts
        for m in _UNORDERED.finditer(text):
            if sf.suppressed(i, "unordered-lookup"):
                continue
            findings.append(Finding(
                sf.rel, i, m.start() + 1, "DET003",
                f"std::unordered_{m.group(1)} iteration order depends on "
                "hashing — use std::map / sort-before-iterate for anything "
                "protocol-, trace- or replica-visible, or annotate a pure "
                "lookup table with `// dynmpi-lint: ok(unordered-lookup)`"))
