"""TAG checks: the 64-bit wire-tag space is owned by mpisim/tags.hpp.

Every composition or decomposition of a wire tag must go through
msg::make_tag / msg::tag_space / msg::tag_value — a raw `<< 62` / `>> 62`
or a hand-written wide literal silently re-encodes the namespace layout and
rots the moment the tag format changes.  Switches over TagSpace must stay
exhaustive so adding a namespace is a compile-visible event.

  TAG001  raw tag-space arithmetic or wide (>= 2^62) integer literal
  TAG002  switch on a TagSpace value lacking a case for every enumerator
          (and with no default)
"""

import re

from . import Finding

TAG_OWNER = "src/mpisim/tags.hpp"

# Files whose wide literals are not wire tags: the tag-format owner itself,
# and the PRNG module whose splitmix64/golden-ratio constants are 64-bit by
# construction.
_EXEMPT = {TAG_OWNER, "src/support/rng.hpp"}

_SHIFT62 = re.compile(r"(<<|>>)\s*62\b")
_HEX_WIDE = re.compile(r"\b0[xX]([0-9a-fA-F]{16,})[uUlL]{0,3}\b")
_DEC_WIDE = re.compile(r"\b(\d{19,})[uUlL]{0,3}\b")
_SWITCH = re.compile(r"\bswitch\s*\(")
_ENUMERATORS = ("User", "Collective", "Runtime")


def _wide_value(text_value, base):
    try:
        return int(text_value, base) >= (1 << 62)
    except ValueError:
        return False


def check(sf, findings):
    if sf.rel in _EXEMPT:
        return
    for i, text in enumerate(sf.code_lines, start=1):
        if sf.suppressed(i, "raw-tag"):
            continue
        for m in _SHIFT62.finditer(text):
            findings.append(Finding(
                sf.rel, i, m.start() + 1, "TAG001",
                f"raw tag-space arithmetic `{m.group(1)} 62` — compose and "
                "decompose wire tags only through msg::make_tag / "
                "msg::tag_space / msg::tag_value"))
        for m in _HEX_WIDE.finditer(text):
            if _wide_value(m.group(1), 16):
                findings.append(Finding(
                    sf.rel, i, m.start() + 1, "TAG001",
                    "64-bit literal reaching into the tag namespace bits — "
                    "build wire tags with msg::make_tag"))
        for m in _DEC_WIDE.finditer(text):
            if _wide_value(m.group(1), 10):
                findings.append(Finding(
                    sf.rel, i, m.start() + 1, "TAG001",
                    "64-bit literal reaching into the tag namespace bits — "
                    "build wire tags with msg::make_tag"))
    _check_switches(sf, findings)


def _check_switches(sf, findings):
    for i, text in enumerate(sf.code_lines, start=1):
        for m in _SWITCH.finditer(text):
            cond, open_pos = _condition(sf, i, m.end() - 1)
            if cond is None or open_pos is None:
                continue
            if "tag_space(" not in cond.replace(" ", "") \
                    and "TagSpace" not in cond:
                continue
            if sf.suppressed(i, "tag-switch"):
                continue
            body = _body_text(sf, open_pos[0], open_pos[1])
            if body is None or re.search(r"\bdefault\s*:", body):
                continue
            missing = [e for e in _ENUMERATORS
                       if not re.search(r"\bTagSpace\s*::\s*" + e + r"\b",
                                        body)]
            if missing:
                findings.append(Finding(
                    sf.rel, i, m.start() + 1, "TAG002",
                    "switch over TagSpace is not exhaustive: missing "
                    f"{', '.join('TagSpace::' + e for e in missing)} "
                    "(add the cases or a default)"))


def _condition(sf, line, col):
    """Return (condition text, (line, col) of the `{` that follows) for the
    switch whose '(' is at code_lines[line-1][col]."""
    depth = 0
    buf = []
    ln, c = line, col
    while ln <= len(sf.code_lines):
        row = sf.code_lines[ln - 1]
        while c < len(row):
            ch = row[c]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "".join(buf), _next_open_brace(sf, ln, c + 1)
            if depth >= 1:
                buf.append(ch)
            c += 1
        buf.append(" ")
        ln += 1
        c = 0
    return None, None


def _next_open_brace(sf, line, col):
    ln, c = line, col
    while ln <= len(sf.code_lines):
        row = sf.code_lines[ln - 1]
        while c < len(row):
            if row[c] == "{":
                return (ln, c)
            c += 1
        ln += 1
        c = 0
    return None


def _body_text(sf, line, col):
    end = sf.find_matching_brace(line, col)
    if end is None:
        return None
    rows = []
    for ln in range(line, end[0] + 1):
        rows.append(sf.code_lines[ln - 1])
    return "\n".join(rows)
