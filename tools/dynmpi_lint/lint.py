#!/usr/bin/env python3
"""dynmpi-lint driver.

Usage:
  python3 tools/dynmpi_lint/lint.py --repo . [--build build]
      [--backend auto|regex|clang] [--format text|json] [--list-checks]

Scans src/**/*.{cpp,hpp} of the repo for violations of the Dyn-MPI
determinism and protocol invariants, cross-checks every emitted
observability name against tools/check_trace.py and docs/OBSERVABILITY.md,
and prints findings as `path:line:col: CODE: message`, sorted and
deterministic.  Exit status: 0 clean, 1 findings, 2 usage/IO error.

The libclang backend (``--backend clang``/``auto``) refines the DET checks
to AST precision when python3-clang and a loadable libclang are installed;
``--backend regex`` (what CI and the fixture tests pin) needs only the
standard library.  See docs/STATIC_ANALYSIS.md for the check catalogue and
suppression syntax.
"""

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # executed as a script
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from dynmpi_lint import __doc__ as _catalogue  # noqa: F401
    from dynmpi_lint import source, determinism, tags, exceptions, \
        trace_schema, compiledb, clang_backend
    import dynmpi_lint as _pkg
else:
    from . import source, determinism, tags, exceptions, trace_schema, \
        compiledb, clang_backend
    from . import __doc__ as _catalogue  # noqa: F401
    import dynmpi_lint as _pkg


def gather_sources(repo):
    src_root = os.path.join(repo, "src")
    files = []
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames.sort()
        for fn in sorted(filenames):
            if fn.endswith((".cpp", ".hpp")):
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, repo).replace(os.sep, "/")
                files.append(source.load(path, rel))
    return files


def run(repo, build=None, backend="auto", schema=None, docs=None):
    """Lint the tree; returns (findings, notes)."""
    repo = os.path.abspath(repo)
    schema = schema or os.path.join(repo, "tools", "check_trace.py")
    docs = docs or os.path.join(repo, "docs", "OBSERVABILITY.md")
    notes = []
    sources = gather_sources(repo)
    if not sources:
        raise FileNotFoundError(f"no C++ sources under {repo}/src")

    use_clang = False
    if backend in ("auto", "clang"):
        use_clang = clang_backend.available()
        if backend == "clang" and not use_clang:
            raise RuntimeError("libclang backend requested but python "
                               "clang bindings / libclang are unavailable")
        if not use_clang:
            notes.append("libclang unavailable; using the regex backend")
    db = compiledb.CompileDb.load(build) if build else None
    if use_clang and db is None:
        notes.append("no compile_commands.json; libclang parses with "
                     "default flags")

    findings = []
    for sf in sources:
        det = []
        determinism.check(sf, det)
        if use_clang:
            ast_det = []
            if clang_backend.check_tu(sf, db.args_for(sf.path) if db else
                                      None, ast_det):
                det = ast_det
        findings.extend(det)
        tags.check(sf, findings)
        exceptions.check(sf, findings)

    for path, what in ((schema, "trace schema"), (docs, "observability docs")):
        if not os.path.isfile(path):
            raise FileNotFoundError(f"{what} not found at {path}")
    trace_schema.check(
        sources,
        schema, os.path.relpath(schema, repo).replace(os.sep, "/"),
        docs, os.path.relpath(docs, repo).replace(os.sep, "/"),
        findings)

    return sorted(set(findings)), notes


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="dynmpi-lint",
        description="Determinism & protocol static analysis for Dyn-MPI")
    ap.add_argument("--repo", default=".", help="repository root")
    ap.add_argument("--build", default=None,
                    help="build dir holding compile_commands.json")
    ap.add_argument("--backend", choices=("auto", "regex", "clang"),
                    default="auto")
    ap.add_argument("--schema", default=None,
                    help="override tools/check_trace.py path")
    ap.add_argument("--docs", default=None,
                    help="override docs/OBSERVABILITY.md path")
    ap.add_argument("--format", choices=("text", "json"), default="text")
    ap.add_argument("--list-checks", action="store_true",
                    help="print the check catalogue and exit")
    args = ap.parse_args(argv)

    if args.list_checks:
        print(_pkg.__doc__.strip())
        return 0

    try:
        findings, notes = run(args.repo, build=args.build,
                              backend=args.backend, schema=args.schema,
                              docs=args.docs)
    except (FileNotFoundError, RuntimeError) as e:
        print(f"dynmpi-lint: error: {e}", file=sys.stderr)
        return 2

    for note in notes:
        print(f"dynmpi-lint: note: {note}", file=sys.stderr)
    if args.format == "json":
        print(json.dumps([f.__dict__ for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
    if findings:
        print(f"dynmpi-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("dynmpi-lint: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
