"""`python3 -m dynmpi_lint` entry point."""

import sys

from .lint import main

sys.exit(main())
