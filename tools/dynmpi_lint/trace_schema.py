"""TRC checks: three-way cross-check of observability names.

Sources of truth that must agree:

  * src/        — every event/metric name literal that reaches
                  support::trace() or support::metrics();
  * schema      — tools/check_trace.py's closed KNOWN_EVENTS table
                  (parsed with the `ast` module, never executed);
  * docs        — docs/OBSERVABILITY.md's "Event catalog" and
                  "Metrics catalog" tables.

Name collection is lexical: any string literal whose first dotted segment
is an observability namespace (runtime, redist, balancer, machine, fault,
net, sim) is collected, then classified *event* / *metric* / *unknown* by
the nearest trace()/metrics() call within the three preceding lines.
Literals ending in '.' are dynamic-name prefixes ("fault.injected." +
kind); docs names may use `{a,b}` alternation and `<placeholder>`
wildcards.  `// dynmpi-lint: ok(trace-name)` exempts a literal (e.g. the
unreachable fallback arm of an enum-to-name switch).

  TRC001  emitted event not in KNOWN_EVENTS
  TRC002  KNOWN_EVENTS entry never emitted (dead schema entry)
  TRC003  KNOWN_EVENTS entry absent from the docs
  TRC004  emitted metric not covered by the docs metrics catalog
  TRC005  unclassified observability literal unknown to schema and docs
  TRC006  documented catalog name never emitted / not in the schema
"""

import ast
import re

from . import Finding

NAMESPACES = {"runtime", "redist", "balancer", "machine", "fault", "net",
              "sim"}

_EXACT = re.compile(r"^([a-z][a-z0-9_]*)(\.[a-z0-9_]+)+$")
_PREFIX = re.compile(r"^([a-z][a-z0-9_]*)(\.[a-z0-9_]+)*\.$")

_EVENT_CTX = re.compile(r"\btrace\s*\(\s*\)|\.instant\s*\(|\.span\s*\("
                        r"|\bTraceEvent\b")
_METRIC_CTX = re.compile(r"\bmetrics\s*\(\s*\)|\.counter\s*\(|\.gauge\s*\("
                         r"|\.histogram\s*\(")


class Emitted:
    """One collected observability literal."""

    def __init__(self, name, rel, line, col, kind):
        self.name = name          # exact name, or prefix ending in '.'
        self.rel = rel
        self.line = line
        self.col = col
        self.kind = kind          # "event" | "metric" | "unknown"
        self.is_prefix = name.endswith(".")

    def matches(self, exact_name):
        if self.is_prefix:
            return exact_name.startswith(self.name)
        return self.name == exact_name


def observability_name(value):
    """Return the literal if it is an observability name (exact or dynamic
    prefix) in a known namespace, else None."""
    m = _EXACT.match(value) or _PREFIX.match(value)
    if m and m.group(1) in NAMESPACES:
        return value
    return None


def collect_emitted(sources):
    emitted = []
    for sf in sources:
        for line, col, value in sf.literals:
            name = observability_name(value)
            if name is None or sf.suppressed(line, "trace-name"):
                continue
            emitted.append(Emitted(name, sf.rel, line, col,
                                   _classify(sf, line)))
    return emitted


def _classify(sf, line):
    """Walk up to three lines above the literal for the nearest
    trace()/metrics() context; the closest line wins, and on that line the
    occurrence nearest the literal wins."""
    for ln in range(line, max(0, line - 4), -1):
        text = sf.code_lines[ln - 1]
        ev = [m.start() for m in _EVENT_CTX.finditer(text)]
        mx = [m.start() for m in _METRIC_CTX.finditer(text)]
        if ev or mx:
            return "event" if max(ev or [-1]) > max(mx or [-1]) else "metric"
    return "unknown"


# -- schema (check_trace.py) -------------------------------------------------

def parse_schema(path):
    """Return {event_name: line} from the KNOWN_EVENTS assignment."""
    with open(path, encoding="utf-8") as f:
        tree = ast.parse(f.read(), filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if getattr(target, "id", None) == "KNOWN_EVENTS" and \
                        isinstance(node.value, ast.Dict):
                    return {
                        key.value: key.lineno
                        for key in node.value.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    }
    return {}


# -- docs (OBSERVABILITY.md) -------------------------------------------------

_BACKTICK = re.compile(r"`([^`]+)`")


class DocName:
    def __init__(self, raw, line, catalog):
        self.raw = raw
        self.line = line
        self.catalog = catalog          # "event" | "metric"
        self.is_prefix = "<" in raw
        if self.is_prefix:
            self.base = raw.split("<", 1)[0]
        else:
            self.base = raw

    def covers(self, em):
        """Does this documented name cover the emitted literal `em`?"""
        if self.is_prefix:
            if em.is_prefix:
                return em.name.startswith(self.base) or \
                    self.base.startswith(em.name)
            return em.name.startswith(self.base)
        if em.is_prefix:
            return self.base.startswith(em.name)
        return self.base == em.name


def parse_docs(path):
    """Extract documented names from the two catalog tables, expanded."""
    with open(path, encoding="utf-8") as f:
        lines = f.read().split("\n")
    names = []
    catalog = None
    for i, line in enumerate(lines, start=1):
        if line.startswith("## "):
            title = line[3:].strip().lower()
            if "event catalog" in title:
                catalog = "event"
            elif "metrics catalog" in title:
                catalog = "metric"
            else:
                catalog = None
            continue
        if catalog is None or not line.lstrip().startswith("|"):
            continue
        cells = line.split("|")
        if len(cells) < 2:
            continue
        first = cells[1]
        if set(first.strip()) <= {"-", ":", " "}:
            continue  # the |---|---| separator row
        for tick in _BACKTICK.findall(first):
            for name in _expand(tick):
                if observability_name(name) or \
                        (("<" in name) and
                         observability_name(name.split("<", 1)[0])):
                    names.append(DocName(name, i, catalog))
    return names


def _expand(token):
    """Expand one `{a,b,c}` alternation (the docs never nest them)."""
    m = re.search(r"\{([^}]*)\}", token)
    if not m:
        return [token]
    head, tail = token[:m.start()], token[m.end():]
    return [head + alt + tail for alt in m.group(1).split(",")]


# -- the cross-check ---------------------------------------------------------

def check(sources, schema_path, schema_rel, docs_path, docs_rel, findings):
    emitted = collect_emitted(sources)
    schema = parse_schema(schema_path)
    docs = parse_docs(docs_path)
    with open(docs_path, encoding="utf-8") as f:
        docs_text = f.read()

    doc_events = [d for d in docs if d.catalog == "event"]
    doc_metrics = [d for d in docs if d.catalog == "metric"]

    for em in emitted:
        if em.kind == "event" and not em.is_prefix:
            if em.name not in schema:
                findings.append(Finding(
                    em.rel, em.line, em.col, "TRC001",
                    f'emitted trace event "{em.name}" is not in '
                    "tools/check_trace.py KNOWN_EVENTS — extend the schema "
                    "(and the docs catalog) before emitting"))
        elif em.kind == "metric":
            if not any(d.covers(em) for d in doc_metrics):
                findings.append(Finding(
                    em.rel, em.line, em.col, "TRC004",
                    f'emitted metric "{em.name}" is missing from the '
                    "docs/OBSERVABILITY.md metrics catalog"))
        elif em.kind == "unknown":
            known = (not em.is_prefix and em.name in schema) or \
                any(d.covers(em) for d in docs)
            if not known:
                findings.append(Finding(
                    em.rel, em.line, em.col, "TRC005",
                    f'observability name "{em.name}" is known to neither '
                    "the trace schema nor the docs catalogs — wire it up or "
                    "annotate with `// dynmpi-lint: ok(trace-name)`"))

    for name, line in sorted(schema.items()):
        if not any(em.matches(name) for em in emitted):
            findings.append(Finding(
                schema_rel, line, 1, "TRC002",
                f'schema event "{name}" is never emitted by src/ — dead '
                "KNOWN_EVENTS entry"))
        if name not in docs_text:
            findings.append(Finding(
                schema_rel, line, 1, "TRC003",
                f'schema event "{name}" is not documented in '
                "docs/OBSERVABILITY.md"))

    for d in doc_events:
        if d.is_prefix:
            in_schema = any(s.startswith(d.base) for s in schema)
        else:
            in_schema = d.base in schema
        if not in_schema:
            findings.append(Finding(
                docs_rel, d.line, 1, "TRC006",
                f'documented event "{d.raw}" is not in the check_trace.py '
                "schema — stale catalog row"))
    for d in doc_metrics:
        if not any(d.covers(em) for em in emitted
                   if em.kind in ("metric", "unknown")):
            findings.append(Finding(
                docs_rel, d.line, 1, "TRC006",
                f'documented metric "{d.raw}" is never emitted by src/ — '
                "stale catalog row"))
