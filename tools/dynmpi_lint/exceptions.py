"""EXC checks: protocol calls that can throw NodeCrashed / PeerFailure /
EpochRevoked must never run where unwinding is fatal or recovery is already
in flight.

  EXC001  throwing protocol call inside a destructor (destructors are
          implicitly noexcept; a peer failure there is std::terminate)
  EXC002  throwing protocol call inside a function marked
          `// dynmpi-lint: repair-critical` (the crash-repair path must
          stay local and total — a nested PeerFailure would strand the
          left-merge half-applied on some ranks)
"""

import re

from . import Finding

# msg::Rank / msg::Machine entry points (and the collective helpers built on
# them) that can surface NodeCrashed / PeerFailure / EpochRevoked.
_THROWING = (
    "send_wire|recv_wire|sendrecv|send_value|recv_value|send_vector"
    "|recv_vector|send|recv|isend|irecv|waitall|wait|revoke_control"
    "|sync_revocations|bcast|reduce|allreduce|barrier|gather|allgather")
_MEMBER_CALL = re.compile(r"(?:\.|->)\s*(" + _THROWING + r")\s*[(<]")
_FREE_COLLECTIVE = re.compile(
    r"(?<![\w.>:])(bcast|reduce|allreduce|barrier|gather|allgather)\s*[(<]")

# `Class::~Class(...) {` out of line, or `~Class() ... {` inline.
_DTOR_OUT = re.compile(r"\b(\w+)\s*::\s*~\s*\1\s*\([^)]*\)[^{};]*\{")
_DTOR_IN = re.compile(r"(?<![:\w])~\s*\w+\s*\(\s*\)[^{};]*\{")


def check(sf, findings):
    for open_line, open_col in _destructor_bodies(sf):
        _scan_body(sf, open_line, open_col, "EXC001",
                   "destructors are noexcept — a protocol failure here is "
                   "std::terminate; drain or detach instead", findings)
    for open_line, open_col in _repair_bodies(sf):
        _scan_body(sf, open_line, open_col, "EXC002",
                   "this function is marked repair-critical — the repair "
                   "path must not re-enter throwing protocol calls",
                   findings)


def _destructor_bodies(sf):
    for i, text in enumerate(sf.code_lines, start=1):
        for rex in (_DTOR_OUT, _DTOR_IN):
            for m in rex.finditer(text):
                brace = text.index("{", m.start())
                yield (i, brace)


def _repair_bodies(sf):
    for marker in sf.repair_markers:
        pos = _function_open_brace(sf, marker)
        if pos is not None:
            yield pos


def _function_open_brace(sf, marker_line):
    """First `{` after the marker that follows a `)` (the function body)."""
    seen_paren = False
    for ln in range(marker_line, min(marker_line + 12, len(sf.code_lines)) + 1):
        row = sf.code_lines[ln - 1]
        for c, ch in enumerate(row):
            if ch == ")":
                seen_paren = True
            elif ch == "{" and seen_paren:
                return (ln, c)
            elif ch == ";" and seen_paren:
                return None  # declaration only; nothing to scan
    return None


def _scan_body(sf, open_line, open_col, code, why, findings):
    for ln, text in sf.body_lines(open_line, open_col):
        if sf.suppressed(ln, "protocol-throw"):
            continue
        for m in _MEMBER_CALL.finditer(text):
            findings.append(Finding(
                sf.rel, ln, m.start(1) + 1, code,
                f"call to throwing protocol method `{m.group(1)}` — {why}"))
        for m in _FREE_COLLECTIVE.finditer(text):
            findings.append(Finding(
                sf.rel, ln, m.start(1) + 1, code,
                f"call to throwing collective `{m.group(1)}` — {why}"))
