#!/usr/bin/env bash
# Run the curated .clang-tidy gate over every src/ translation unit.
#
#   tools/run_clang_tidy.sh BUILD_DIR
#
# BUILD_DIR must contain compile_commands.json (the top-level CMakeLists
# exports it unconditionally). Warnings are errors — see .clang-tidy for
# the check selection and the rationale behind each exclusion.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:?usage: run_clang_tidy.sh BUILD_DIR}"
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "Configure first: cmake -B ${BUILD_DIR} -S ." >&2
  exit 2
fi
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not on PATH" >&2
  exit 2
fi

tools/lint_files.sh --tus \
  | xargs -r clang-tidy -p "${BUILD_DIR}" --quiet --warnings-as-errors='*'
echo "clang-tidy: clean"
