#!/usr/bin/env python3
"""Schema validator for Dyn-MPI JSONL traces (docs/OBSERVABILITY.md).

Usage:  check_trace.py TRACE.jsonl [--require-adaptation]

Checks, line by line:
  * every line parses as a JSON object;
  * required keys "t" (number), "rank" (int), "ev" (string), "args"
    (object) are present and typed; "dur", when present, is a positive
    number;
  * "t" is non-decreasing over the file (traces export sorted by sim time);
  * known event names carry their required args (unknown event names are
    an error — the schema is closed; extend the table when adding events).

With --require-adaptation the trace must additionally contain the full
Monitor -> Grace -> redistribute -> PostGrace story:
runtime.load_change, runtime.grace_enter, runtime.redistributed,
runtime.post_grace_enter and runtime.post_grace_exit, in that order of
first appearance.

Exit status: 0 valid, 1 invalid, 2 usage/IO error.
"""
import json
import sys

# Closed schema: event name -> args that must be present.  Events may carry
# more args than listed (e.g. redist.apply's per-array rows.<name> keys).
KNOWN_EVENTS = {
    "runtime.cycle": {"cycle", "mode", "redistributed"},
    "runtime.load_change": {"cycle", "detail"},
    "runtime.grace_enter": {"cycle", "grace_cycles"},
    "runtime.redistributed": {"cycle", "detail"},
    "runtime.skipped": {"cycle", "detail"},
    "runtime.dropped": {"cycle", "detail"},
    "runtime.logical_drop": {"cycle", "detail"},
    "runtime.readded": {"cycle", "detail"},
    "runtime.post_grace_enter": {"cycle", "post_grace_cycles"},
    "runtime.post_grace_exit": {"cycle", "measured_s", "dropped"},
    "runtime.removal_eval": {
        "cycle", "predicted_unloaded_s", "measured_loaded_s",
        "unloaded_nodes", "drop",
    },
    "runtime.node_crash": {"cycle", "detail"},
    "runtime.crash_repair": {"cycle", "node", "rows_adopted"},
    "runtime.replica_refresh": {"cycle", "wholesale", "rows", "bytes"},
    "runtime.replica_restore": {"cycle", "node", "buddy", "restored", "lost"},
    "runtime.rejoin": {"cycle", "detail"},
    "runtime.quarantine": {"cycle", "detail"},
    "runtime.readmit": {"cycle", "detail"},
    "runtime.stale_report": {"cycle", "node", "age_s"},
    "fault.inject": {"kind", "node"},
    "fault.clear": {"kind", "node"},
    "net.send_retry": {"src", "dst", "attempt"},
    "balancer.decision": {"cycle", "scheme", "candidates", "material"},
    "redist.apply": {
        "cycle", "active_before", "active_after", "rows", "bytes", "messages",
    },
    "redist.plan": {"seq"},
    "redist.pack": {"seq", "rows", "bytes", "messages"},
    "redist.unpack": {"seq"},
    "redist.sync": {"seq"},
    "redist.cleanup": {"seq"},
    "machine.run_end": {
        "elapsed_s", "messages", "bytes", "control_messages",
        "events_fired", "peak_pending_events",
    },
}

ADAPTATION_STORY = [
    "runtime.load_change",
    "runtime.grace_enter",
    "runtime.redistributed",
    "runtime.post_grace_enter",
    "runtime.post_grace_exit",
]


def fail(lineno, msg):
    print(f"check_trace: line {lineno}: {msg}", file=sys.stderr)
    return False


def check_line(lineno, line):
    try:
        ev = json.loads(line)
    except json.JSONDecodeError as e:
        return None, fail(lineno, f"not valid JSON: {e}")
    if not isinstance(ev, dict):
        return None, fail(lineno, "line is not a JSON object")

    ok = True
    t = ev.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool):
        ok = fail(lineno, f'"t" must be a number, got {t!r}')
    rank = ev.get("rank")
    if not isinstance(rank, int) or isinstance(rank, bool):
        ok = fail(lineno, f'"rank" must be an integer, got {rank!r}')
    name = ev.get("ev")
    if not isinstance(name, str):
        ok = fail(lineno, f'"ev" must be a string, got {name!r}')
    args = ev.get("args")
    if not isinstance(args, dict):
        ok = fail(lineno, f'"args" must be an object, got {args!r}')
    if "dur" in ev:
        dur = ev["dur"]
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                or dur <= 0:
            ok = fail(lineno, f'"dur" must be a positive number, got {dur!r}')
    extra = set(ev) - {"t", "rank", "ev", "dur", "args"}
    if extra:
        ok = fail(lineno, f"unexpected top-level keys: {sorted(extra)}")

    if isinstance(name, str) and isinstance(args, dict):
        required = KNOWN_EVENTS.get(name)
        if required is None:
            ok = fail(lineno, f'unknown event name "{name}"')
        else:
            missing = required - set(args)
            if missing:
                ok = fail(lineno,
                          f'"{name}" missing args: {sorted(missing)}')
    return ev, ok


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = set(argv[1:]) - set(args)
    if len(args) != 1 or flags - {"--require-adaptation"}:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(args[0], encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_trace: {e}", file=sys.stderr)
        return 2

    ok = True
    prev_t = None
    first_seen = {}
    n_events = 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        ev, line_ok = check_line(lineno, line)
        ok &= line_ok
        if ev is None:
            continue
        n_events += 1
        t = ev.get("t")
        if isinstance(t, (int, float)) and not isinstance(t, bool):
            if prev_t is not None and t < prev_t:
                ok = fail(lineno,
                          f'"t" decreased: {t} after {prev_t}')
            prev_t = t
        name = ev.get("ev")
        if isinstance(name, str) and name not in first_seen:
            first_seen[name] = lineno

    if n_events == 0:
        ok = fail(0, "trace contains no events")

    if "--require-adaptation" in flags:
        order = []
        for name in ADAPTATION_STORY:
            if name not in first_seen:
                ok = fail(0, f'adaptation story incomplete: no "{name}"')
            else:
                order.append(first_seen[name])
        if order == sorted(order) and len(order) == len(ADAPTATION_STORY):
            pass
        elif len(order) == len(ADAPTATION_STORY):
            ok = fail(0, "adaptation story events out of order: "
                      f"{list(zip(ADAPTATION_STORY, order))}")

    if ok:
        print(f"check_trace: OK — {n_events} events, "
              f"{len(first_seen)} distinct types")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
