#!/usr/bin/env bash
# Single source of truth for "which files do the linters look at".
#
# Default: every tracked C++ file under src/, tests/, bench/, examples/ —
# minus tests/tools/fixtures/, whose files contain violations on purpose.
# With --tus: only the translation units under src/ (what clang-tidy runs
# on; headers are covered via HeaderFilterRegex).
#
# Used by tools/run_clang_tidy.sh and the CI clang-format step so the two
# can never drift on coverage.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tus" ]]; then
  git ls-files 'src/**/*.cpp' 'src/*.cpp'
else
  git ls-files \
    'src/**/*.cpp' 'src/**/*.hpp' 'src/*.cpp' 'src/*.hpp' \
    'tests/**/*.cpp' 'tests/**/*.hpp' \
    'bench/**/*.cpp' 'bench/**/*.hpp' \
    'examples/**/*.cpp' 'examples/**/*.hpp' \
    ':!tests/tools/fixtures/**'
fi
