#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace dynmpi::sim {
namespace {

ClusterConfig small_config(int nodes = 4) {
    ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

TEST(Cluster, ConstructsRequestedNodes) {
    Cluster c(small_config(8));
    EXPECT_EQ(c.size(), 8);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(c.node(i).id(), i);
}

TEST(Cluster, PerNodeSpeedsApplied) {
    ClusterConfig cfg = small_config(2);
    cfg.speeds = {1.0, 2.0};
    Cluster c(cfg);
    EXPECT_DOUBLE_EQ(c.node(0).cpu().params().speed, 1.0);
    EXPECT_DOUBLE_EQ(c.node(1).cpu().params().speed, 2.0);
}

TEST(Cluster, SpeedsSizeMismatchRejected) {
    ClusterConfig cfg = small_config(3);
    cfg.speeds = {1.0, 2.0};
    EXPECT_THROW(Cluster c(cfg), dynmpi::Error);
}

TEST(Cluster, LoadIntervalStartsAndStops) {
    Cluster c(small_config());
    c.add_load_interval(1, 2.0, 5.0);
    c.engine().run_until(from_seconds(3.0));
    EXPECT_EQ(c.node(1).active_competing(), 1);
    EXPECT_EQ(c.node(0).active_competing(), 0);
    c.engine().run_until(from_seconds(6.0));
    EXPECT_EQ(c.node(1).active_competing(), 0);
}

TEST(Cluster, OpenEndedLoadIntervalPersists) {
    Cluster c(small_config());
    c.add_load_interval(2, 1.0, -1.0, 3);
    c.engine().run_until(from_seconds(100.0));
    EXPECT_EQ(c.node(2).active_competing(), 3);
}

TEST(Cluster, DaemonsObserveScriptedLoad) {
    Cluster c(small_config());
    c.add_load_interval(0, 0.0, -1.0, 2);
    c.engine().run_until(from_seconds(2.5));
    EXPECT_EQ(c.daemon(0).reported_load(), 3);
    EXPECT_EQ(c.daemon(1).reported_load(), 1);
}

TEST(Cluster, AtRunsCallbackAtRequestedTime) {
    Cluster c(small_config());
    double seen = -1.0;
    c.at(1.25, [&] { seen = to_seconds(c.engine().now()); });
    c.engine().run_until(from_seconds(2.0));
    EXPECT_DOUBLE_EQ(seen, 1.25);
}

TEST(Cluster, NodeIndexOutOfRangeRejected) {
    Cluster c(small_config(2));
    EXPECT_THROW(c.node(2), dynmpi::Error);
    EXPECT_THROW(c.node(-1), dynmpi::Error);
    EXPECT_THROW(c.daemon(7), dynmpi::Error);
}

TEST(Cluster, NodesHaveDecorrelatedSeeds) {
    ClusterConfig cfg = small_config(2);
    cfg.cpu.jitter_frac = 1.0;
    Cluster c(cfg);
    c.node(0).spawn_competing("l");
    c.node(1).spawn_competing("l");
    // Rows comparable to the quantum so preemption spikes are near-certain
    // and the per-node jitter streams become observable.
    c.node(0).cpu().start_batch(0.2, [] {});
    c.node(1).cpu().start_batch(0.2, [] {});
    c.engine().run();
    std::vector<double> rows(4, 0.05);
    auto r0 = c.node(0).cpu().reconstruct_rows(rows, 0, 1);
    auto r1 = c.node(1).cpu().reconstruct_rows(rows, 0, 1);
    EXPECT_NE(r0.wall, r1.wall); // different per-node jitter streams
}

}  // namespace
}  // namespace dynmpi::sim
