#include "sim/node.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace dynmpi::sim {
namespace {

CpuParams quiet() {
    CpuParams p;
    p.jitter_frac = 0.0;
    return p;
}

TEST(Node, StartsWithAppAndDaemonProcesses) {
    Engine e;
    Node n(e, 0, quiet(), 1);
    EXPECT_EQ(n.procs().size(), 2u);
    EXPECT_EQ(n.procs().info(n.app_pid()).kind, ProcKind::App);
    EXPECT_EQ(n.active_competing(), 0);
}

TEST(Node, SpawnCompetingRaisesActiveCount) {
    Engine e;
    Node n(e, 0, quiet(), 1);
    int pid = n.spawn_competing("loop");
    EXPECT_EQ(n.active_competing(), 1);
    EXPECT_EQ(n.cpu().runnable_competitors(), 1);
    n.kill_competing(pid);
    EXPECT_EQ(n.active_competing(), 0);
    EXPECT_EQ(n.cpu().runnable_competitors(), 0);
}

TEST(Node, CompetingSlowsAppWork) {
    Engine e;
    Node n(e, 0, quiet(), 1);
    n.spawn_competing("loop");
    n.cpu().start_batch(1.0, [] {});
    e.run();
    EXPECT_NEAR(to_seconds(e.now()), 2.0, 1e-6);
}

TEST(Node, IntegralTracksConstantLoad) {
    Engine e;
    Node n(e, 0, quiet(), 1);
    n.spawn_competing("loop");
    e.at(from_seconds(3.0), [] {});
    e.run();
    EXPECT_NEAR(n.competing_integral(), 3.0, 1e-6);
}

TEST(Node, IntegralTracksLoadInterval) {
    Engine e;
    Node n(e, 0, quiet(), 1);
    int pid = -1;
    e.at(from_seconds(1.0), [&] { pid = n.spawn_competing("loop"); });
    e.at(from_seconds(4.0), [&] { n.kill_competing(pid); });
    e.at(from_seconds(10.0), [] {});
    e.run();
    EXPECT_NEAR(n.competing_integral(), 3.0, 1e-6);
}

TEST(Node, BurstyProcessIntegratesToDutyCycle) {
    Engine e;
    Node n(e, 0, quiet(), 1);
    n.spawn_competing("bursty", BurstSpec{1.0, 0.25});
    e.at(from_seconds(8.0), [] {});
    e.run();
    // 25% duty over 8 seconds → 2 process-seconds (integral is exact here
    // because the burst phase starts runnable at t=0).
    EXPECT_NEAR(n.competing_integral(), 2.0, 1e-6);
}

TEST(Node, KillUnknownPidRejected) {
    Engine e;
    Node n(e, 0, quiet(), 1);
    EXPECT_THROW(n.kill_competing(12345), dynmpi::Error);
}

TEST(Node, BurstyKillMidBurstStopsToggles) {
    Engine e;
    Node n(e, 0, quiet(), 1);
    int pid = n.spawn_competing("bursty", BurstSpec{1.0, 0.5});
    e.at(from_seconds(0.25), [&] { n.kill_competing(pid); });
    e.run();
    EXPECT_EQ(n.active_competing(), 0);
    EXPECT_NEAR(n.competing_integral(), 0.25, 1e-6);
}

TEST(Node, PsSnapshotIncludesAppCpuTime) {
    Engine e;
    Node n(e, 0, quiet(), 1);
    n.cpu().start_batch(1.5, [] {});
    e.run();
    bool found = false;
    for (const auto& p : n.ps_snapshot())
        if (p.kind == ProcKind::App) {
            found = true;
            EXPECT_NEAR(p.cpu_seconds, 1.5, 1e-6);
        }
    EXPECT_TRUE(found);
}

TEST(Node, AppStateReflectsComputing) {
    Engine e;
    Node n(e, 0, quiet(), 1);
    EXPECT_EQ(n.procs().info(n.app_pid()).state, ProcState::Blocked);
    n.cpu().start_batch(1.0, [] {});
    EXPECT_EQ(n.procs().info(n.app_pid()).state, ProcState::Running);
    e.run();
    EXPECT_EQ(n.procs().info(n.app_pid()).state, ProcState::Blocked);
}

TEST(Node, MultipleCompetingProcessesStack) {
    Engine e;
    Node n(e, 0, quiet(), 1);
    n.spawn_competing("a");
    n.spawn_competing("b");
    n.spawn_competing("c");
    EXPECT_EQ(n.active_competing(), 3);
    n.cpu().start_batch(1.0, [] {});
    e.run();
    EXPECT_NEAR(to_seconds(e.now()), 4.0, 1e-6);
}

}  // namespace
}  // namespace dynmpi::sim
