#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace dynmpi::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) q.schedule(5, [&, i] { order.push_back(i); });
    while (!q.empty()) q.pop().fn();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
    EventQueue q;
    bool fired = false;
    auto id = q.schedule(10, [&] { fired = true; });
    q.cancel(id);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
    EventQueue q;
    q.schedule(1, [] {});
    q.cancel(9999);  // never scheduled
    q.cancel(0);     // reserved null id
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] { order.push_back(1); });
    auto id = q.schedule(2, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(3); });
    q.cancel(id);
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeReportsEarliestLive) {
    EventQueue q;
    auto early = q.schedule(5, [] {});
    q.schedule(9, [] {});
    EXPECT_EQ(q.next_time(), 5);
    q.cancel(early);
    EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, RejectsNegativeTime) {
    EventQueue q;
    EXPECT_THROW(q.schedule(-1, [] {}), dynmpi::Error);
}

TEST(EventQueue, PopOnEmptyThrows) {
    EventQueue q;
    EXPECT_THROW(q.pop(), dynmpi::Error);
}

TEST(EventQueue, SizeExcludesCancelled) {
    EventQueue q;
    auto a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace dynmpi::sim
