#include "sim/cpu.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/error.hpp"

namespace dynmpi::sim {
namespace {

CpuParams no_jitter() {
    CpuParams p;
    p.jitter_frac = 0.0;
    return p;
}

TEST(Cpu, UnloadedBatchTakesItsCost) {
    Engine e;
    Cpu cpu(e, 0, no_jitter(), 1);
    bool done = false;
    cpu.start_batch(2.0, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(to_seconds(e.now()), 2.0, 1e-6);
    EXPECT_NEAR(cpu.app_cpu_seconds(), 2.0, 1e-6);
}

TEST(Cpu, SpeedScalesElapsedTime) {
    Engine e;
    CpuParams p = no_jitter();
    p.speed = 2.0;
    Cpu cpu(e, 0, p, 1);
    cpu.start_batch(2.0, [] {});
    e.run();
    EXPECT_NEAR(to_seconds(e.now()), 1.0, 1e-6);
}

TEST(Cpu, OneCompetitorDoublesElapsed) {
    Engine e;
    Cpu cpu(e, 0, no_jitter(), 1);
    cpu.set_runnable_competitors(1);
    cpu.start_batch(3.0, [] {});
    e.run();
    EXPECT_NEAR(to_seconds(e.now()), 6.0, 1e-6);
    // CPU time consumed is still the unloaded cost.
    EXPECT_NEAR(cpu.app_cpu_seconds(), 3.0, 1e-6);
}

TEST(Cpu, MidBatchLoadChangeIntegratesPiecewise) {
    Engine e;
    Cpu cpu(e, 0, no_jitter(), 1);
    // 4s of work; competitor arrives at t=1. First second does 1s of work,
    // remaining 3s run at half rate → 6s more → total 7s.
    cpu.start_batch(4.0, [] {});
    e.at(from_seconds(1.0), [&] { cpu.set_runnable_competitors(1); });
    e.run();
    EXPECT_NEAR(to_seconds(e.now()), 7.0, 1e-5);
    EXPECT_NEAR(cpu.app_cpu_seconds(), 4.0, 1e-5);
}

TEST(Cpu, LoadRemovalSpeedsBackUp) {
    Engine e;
    Cpu cpu(e, 0, no_jitter(), 1);
    cpu.set_runnable_competitors(3);
    cpu.start_batch(2.0, [] {});
    // At t=4 (1s of work done at 1/4 rate), all competitors leave.
    e.at(from_seconds(4.0), [&] { cpu.set_runnable_competitors(0); });
    e.run();
    EXPECT_NEAR(to_seconds(e.now()), 5.0, 1e-5);
}

TEST(Cpu, SequentialBatchesAccumulateCpuTime) {
    Engine e;
    Cpu cpu(e, 0, no_jitter(), 1);
    cpu.start_batch(1.0, [&] { cpu.start_batch(1.5, [] {}); });
    e.run();
    EXPECT_NEAR(cpu.app_cpu_seconds(), 2.5, 1e-6);
    EXPECT_EQ(cpu.batches_run(), 2u);
}

TEST(Cpu, OverlappingBatchRejected) {
    Engine e;
    Cpu cpu(e, 0, no_jitter(), 1);
    cpu.start_batch(1.0, [] {});
    EXPECT_THROW(cpu.start_batch(1.0, [] {}), dynmpi::Error);
}

TEST(Cpu, AppRunningCallbackBracketsBatch) {
    Engine e;
    Cpu cpu(e, 0, no_jitter(), 1);
    std::vector<bool> transitions;
    cpu.set_app_running_cb([&](bool r) { transitions.push_back(r); });
    cpu.start_batch(1.0, [] {});
    e.run();
    EXPECT_EQ(transitions, (std::vector<bool>{true, false}));
}

TEST(Cpu, ReconstructRowsMatchesBatchTotalUnloaded) {
    Engine e;
    Cpu cpu(e, 0, no_jitter(), 1);
    std::vector<double> rows(10, 0.05);
    double total = std::accumulate(rows.begin(), rows.end(), 0.0);
    SimTime t0 = e.now();
    cpu.start_batch(total, [] {});
    e.run();
    auto rt = cpu.reconstruct_rows(rows, t0, 99);
    double wall_sum = std::accumulate(rt.wall.begin(), rt.wall.end(), 0.0);
    EXPECT_NEAR(wall_sum, to_seconds(e.now() - t0), 1e-6);
    for (double c : rt.cpu) EXPECT_NEAR(c, 0.05, 1e-9);
}

TEST(Cpu, ReconstructRowsSpansLoadChange) {
    Engine e;
    Cpu cpu(e, 0, no_jitter(), 1);
    // Two rows of 1s each; a competitor arrives at t=1.5 (mid-row-2).
    std::vector<double> rows{1.0, 1.0};
    SimTime t0 = e.now();
    cpu.start_batch(2.0, [] {});
    e.at(from_seconds(1.5), [&] { cpu.set_runnable_competitors(1); });
    e.run();
    auto rt = cpu.reconstruct_rows(rows, t0, 1);
    EXPECT_NEAR(rt.wall[0], 1.0, 1e-6);
    // Row 2: 0.5s unloaded + 0.5s of work at half rate (1s) = 1.5s.
    EXPECT_NEAR(rt.wall[1], 1.5, 1e-6);
    EXPECT_NEAR(to_seconds(e.now()), 2.5, 1e-5);
}

TEST(Cpu, JitterSpikesSomeRowsOnLoadedNode) {
    // Preemptions land inside a 2ms row with probability ~2/30, so across
    // many rows a few measurements spike while most stay clean — the
    // property the grace-period min filter relies on.
    Engine e;
    CpuParams p; // default jitter_frac = 1.0
    p.quantum_s = 0.030;
    Cpu cpu(e, 0, p, 7);
    cpu.set_runnable_competitors(2);
    std::vector<double> rows(200, 0.002);
    double total = 0.4;
    SimTime t0 = e.now();
    cpu.start_batch(total, [] {});
    e.run();
    auto rt = cpu.reconstruct_rows(rows, t0, 3);
    int spiked = 0, clean = 0;
    for (double w : rt.wall) {
        EXPECT_GE(w, 0.006 - 1e-9); // never below the true loaded time
        if (w > 0.009)
            ++spiked;
        else
            ++clean;
    }
    EXPECT_GE(spiked, 3);    // jitter must bite occasionally...
    EXPECT_GT(clean, 150);   // ...but most samples stay clean
}

TEST(Cpu, JitterIsDeterministic) {
    Engine e1, e2;
    CpuParams p;
    Cpu a(e1, 3, p, 42), b(e2, 3, p, 42);
    a.set_runnable_competitors(1);
    b.set_runnable_competitors(1);
    std::vector<double> rows(5, 0.001);
    a.start_batch(0.005, [] {});
    b.start_batch(0.005, [] {});
    e1.run();
    e2.run();
    auto ra = a.reconstruct_rows(rows, 0, 5);
    auto rb = b.reconstruct_rows(rows, 0, 5);
    EXPECT_EQ(ra.wall, rb.wall);
}

TEST(Cpu, ZeroWorkBatchCompletesImmediately) {
    Engine e;
    Cpu cpu(e, 0, no_jitter(), 1);
    bool done = false;
    cpu.start_batch(0.0, [&] { done = true; });
    e.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(e.now(), 0);
}

}  // namespace
}  // namespace dynmpi::sim
