// Tests for the OS-noise models: wake-up latency, sync-point straggle, and
// control-plane (daemon-band) traffic.
#include <gtest/gtest.h>

#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"
#include "sim/cpu.hpp"

namespace dynmpi::sim {
namespace {

TEST(OsNoise, UnloadedNodeHasNoWakeDelayOrStraggle) {
    Engine e;
    Cpu cpu(e, 0, CpuParams{}, 1);
    for (int i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(cpu.next_wake_delay(), 0.0);
        EXPECT_DOUBLE_EQ(cpu.sync_straggle(), 0.0);
    }
}

TEST(OsNoise, LoadedNodeDelaysBounded) {
    Engine e;
    CpuParams p;
    Cpu cpu(e, 0, p, 1);
    cpu.set_runnable_competitors(3);
    double wake_sum = 0, straggle_sum = 0;
    for (int i = 0; i < 200; ++i) {
        double w = cpu.next_wake_delay();
        double s = cpu.sync_straggle();
        EXPECT_GE(w, 0.0);
        EXPECT_LE(w, 3 * p.wake_delay_s + 1e-12);
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 3 * p.straggle_s + 1e-12);
        wake_sum += w;
        straggle_sum += s;
    }
    // Uniform draws: averages near half the bound.
    EXPECT_NEAR(wake_sum / 200, 1.5 * p.wake_delay_s, 0.5 * p.wake_delay_s);
    EXPECT_NEAR(straggle_sum / 200, 1.5 * p.straggle_s,
                0.5 * p.straggle_s);
}

TEST(OsNoise, JitterFracZeroDisablesAllNoise) {
    Engine e;
    CpuParams p;
    p.jitter_frac = 0.0;
    Cpu cpu(e, 0, p, 1);
    cpu.set_runnable_competitors(5);
    EXPECT_DOUBLE_EQ(cpu.next_wake_delay(), 0.0);
    EXPECT_DOUBLE_EQ(cpu.sync_straggle(), 0.0);
}

TEST(OsNoise, NoiseScalesWithCompetitors) {
    Engine e;
    CpuParams p;
    Cpu a(e, 0, p, 1), b(e, 1, p, 1);
    a.set_runnable_competitors(1);
    b.set_runnable_competitors(4);
    double sa = 0, sb = 0;
    for (int i = 0; i < 200; ++i) {
        sa += a.sync_straggle();
        sb += b.sync_straggle();
    }
    EXPECT_GT(sb, 2.5 * sa);
}

TEST(OsNoise, WakeDelayAppliesToBlockedRecvOnLoadedNode) {
    msg::Machine m([] {
        ClusterConfig c;
        c.num_nodes = 2;
        c.cpu.wake_delay_s = 0.01; // exaggerate for visibility
        c.cpu.straggle_s = 0.0;
        return c;
    }());
    m.cluster().add_load_interval(1, 0.0, -1.0, 3);
    m.run([](msg::Rank& r) {
        if (r.id() == 0) {
            r.sleep(1.0);
            int v = 1;
            r.send(1, 0, &v, sizeof v);
        } else {
            double t0 = r.hrtime();
            int v;
            r.recv(0, 0, &v, sizeof v); // blocked: wake delay applies
            double waited = r.hrtime() - t0;
            // Send at t=1.0 + wire; delivery ~1.0001; wake adds up to 30ms.
            EXPECT_GT(waited, 1.0);
            EXPECT_LT(waited, 1.0 + 0.031 + 0.01);
        }
    });
}

TEST(OsNoise, BufferedRecvHasNoWakeDelay) {
    msg::Machine m([] {
        ClusterConfig c;
        c.num_nodes = 2;
        c.cpu.wake_delay_s = 0.05;
        c.cpu.straggle_s = 0.0;
        return c;
    }());
    m.cluster().add_load_interval(1, 0.0, -1.0, 3);
    m.run([](msg::Rank& r) {
        if (r.id() == 0) {
            int v = 1;
            r.send(1, 0, &v, sizeof v);
        } else {
            r.sleep(1.0); // message arrives while sleeping
            double t0 = r.hrtime();
            int v;
            r.recv(0, 0, &v, sizeof v); // mailbox hit: no scheduler wake
            // Only the recv CPU charge (shared 4 ways) remains.
            EXPECT_LT(r.hrtime() - t0, 0.002);
        }
    });
}

TEST(OsNoise, ControlTrafficSkipsNicAndCpu) {
    msg::Machine m([] {
        ClusterConfig c;
        c.num_nodes = 2;
        c.cpu.jitter_frac = 0.0;
        return c;
    }());
    m.run([](msg::Rank& r) {
        const std::size_t big = 1 << 20; // 1 MiB
        std::vector<std::byte> buf(big);
        if (r.id() == 0) {
            msg::Rank::ControlScope control(r);
            double c0 = r.exact_cpu_time();
            double t0 = r.hrtime();
            r.send_wire(1, msg::make_tag(msg::TagSpace::Runtime, 1),
                        buf.data(), big);
            EXPECT_DOUBLE_EQ(r.exact_cpu_time(), c0); // no CPU charged
            EXPECT_DOUBLE_EQ(r.hrtime(), t0);         // no NIC wait
        } else {
            msg::Rank::ControlScope control(r);
            auto got =
                r.recv_wire(0, msg::make_tag(msg::TagSpace::Runtime, 1));
            EXPECT_EQ(got.size(), big);
            // Arrived after latency only, not 1MiB/12.5MBps = 84ms.
            EXPECT_LT(r.hrtime(), 0.005);
        }
    });
}

TEST(OsNoise, NonControlTrafficStillPaysFullCost) {
    msg::Machine m([] {
        ClusterConfig c;
        c.num_nodes = 2;
        c.cpu.jitter_frac = 0.0;
        return c;
    }());
    m.run([](msg::Rank& r) {
        const std::size_t big = 1 << 20;
        std::vector<std::byte> buf(big);
        if (r.id() == 0) {
            r.send(1, 0, buf.data(), big);
        } else {
            r.recv(0, 0, buf.data(), big);
            EXPECT_GT(r.hrtime(), 0.08); // serialization dominates
        }
    });
}

}  // namespace
}  // namespace dynmpi::sim
