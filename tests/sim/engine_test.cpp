#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace dynmpi::sim {
namespace {

TEST(Engine, ClockAdvancesToEventTime) {
    Engine e;
    SimTime seen = -1;
    e.at(from_seconds(1.5), [&] { seen = e.now(); });
    e.run();
    EXPECT_EQ(seen, from_seconds(1.5));
    EXPECT_EQ(e.now(), from_seconds(1.5));
}

TEST(Engine, AfterSchedulesRelative) {
    Engine e;
    std::vector<double> times;
    e.at(from_seconds(1.0), [&] {
        e.after(from_seconds(0.5), [&] { times.push_back(to_seconds(e.now())); });
    });
    e.run();
    ASSERT_EQ(times.size(), 1u);
    EXPECT_DOUBLE_EQ(times[0], 1.5);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
    Engine e;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5) e.after(10, chain);
    };
    e.after(10, chain);
    e.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(e.now(), 50);
}

TEST(Engine, RunUntilStopsAtBoundaryAndSetsClock) {
    Engine e;
    int fired = 0;
    e.at(10, [&] { ++fired; });
    e.at(20, [&] { ++fired; });
    e.at(30, [&] { ++fired; });
    e.run_until(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(e.now(), 20);
    EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Engine, RejectsSchedulingInThePast) {
    Engine e;
    e.at(100, [] {});
    e.run();
    EXPECT_THROW(e.at(50, [] {}), dynmpi::Error);
    EXPECT_THROW(e.after(-1, [] {}), dynmpi::Error);
}

TEST(Engine, StepReturnsFalseWhenIdle) {
    Engine e;
    EXPECT_FALSE(e.step());
    e.at(0, [] {});
    EXPECT_TRUE(e.step());
    EXPECT_FALSE(e.step());
}

TEST(Engine, CountsFiredEvents) {
    Engine e;
    for (int i = 0; i < 7; ++i) e.at(i, [] {});
    e.run();
    EXPECT_EQ(e.events_fired(), 7u);
}

TEST(Engine, CancelledEventNeverFires) {
    Engine e;
    bool fired = false;
    auto id = e.at(10, [&] { fired = true; });
    e.cancel(id);
    e.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(e.idle());
}

}  // namespace
}  // namespace dynmpi::sim
