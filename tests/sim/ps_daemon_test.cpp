#include "sim/ps_daemon.hpp"

#include <gtest/gtest.h>

namespace dynmpi::sim {
namespace {

CpuParams quiet() {
    CpuParams p;
    p.jitter_frac = 0.0;
    return p;
}

struct DaemonFixture : ::testing::Test {
    Engine e;
};

TEST_F(DaemonFixture, ReportsZeroOnIdleNode) {
    Node n(e, 0, quiet(), 1);
    PsDaemon d(e, n);
    e.run_until(from_seconds(3.5));
    EXPECT_DOUBLE_EQ(d.avg_competing(), 0.0);
    EXPECT_EQ(d.reported_load(), 1); // app always included
    EXPECT_DOUBLE_EQ(d.reported_share(), 1.0);
}

TEST_F(DaemonFixture, DetectsConstantCompetingLoad) {
    Node n(e, 0, quiet(), 1);
    PsDaemon d(e, n);
    n.spawn_competing("loop");
    e.run_until(from_seconds(2.5));
    EXPECT_NEAR(d.avg_competing(), 1.0, 1e-9);
    EXPECT_EQ(d.reported_load(), 2);
    EXPECT_NEAR(d.reported_share(), 0.5, 1e-9);
}

TEST_F(DaemonFixture, MidWindowArrivalGivesFractionalAverage) {
    Node n(e, 0, quiet(), 1);
    PsDaemon d(e, n);
    // Competing process arrives at t=2.5; window [2,3) sees 0.5 on average.
    e.at(from_seconds(2.5), [&] { n.spawn_competing("loop"); });
    e.run_until(from_seconds(3.1));
    EXPECT_NEAR(d.avg_competing(), 0.5, 1e-9);
}

TEST_F(DaemonFixture, BurstyLoadAveragesToDuty) {
    Node n(e, 0, quiet(), 1);
    PsDaemon d(e, n);
    n.spawn_competing("bursty", BurstSpec{0.1, 0.3});
    e.run_until(from_seconds(5.1));
    EXPECT_NEAR(d.avg_competing(), 0.3, 1e-6);
    // vmstat-style instantaneous sampling sees either 0 or 1 — never 0.3.
    VmstatSampler v(n);
    int inst = v.sample_runnable();
    EXPECT_TRUE(inst == 0 || inst == 1);
}

TEST_F(DaemonFixture, HistoryAccumulatesOneSamplePerPeriod) {
    Node n(e, 0, quiet(), 1);
    PsDaemon d(e, n);
    e.run_until(from_seconds(4.5));
    EXPECT_EQ(d.history().size(), 4u);
    EXPECT_EQ(d.last_sample_time(), from_seconds(4.0));
}

TEST_F(DaemonFixture, CustomPeriodRespected) {
    Node n(e, 0, quiet(), 1);
    PsDaemon d(e, n, from_seconds(0.25));
    e.run_until(from_seconds(1.01));
    EXPECT_EQ(d.history().size(), 4u);
}

TEST_F(DaemonFixture, VmstatMissesBlockedAtReceiveApp) {
    // The monitored app is blocked at a receive; vmstat reports nothing even
    // though the app will need the CPU — dmpi_ps still counts it.
    Node n(e, 0, quiet(), 1);
    PsDaemon d(e, n);
    VmstatSampler v(n);
    e.run_until(from_seconds(1.5));
    EXPECT_EQ(v.sample_runnable(), 0);
    EXPECT_EQ(d.reported_load(), 1);
}

TEST_F(DaemonFixture, LoadDisappearanceReflectedNextWindow) {
    Node n(e, 0, quiet(), 1);
    PsDaemon d(e, n);
    int pid = n.spawn_competing("loop");
    e.at(from_seconds(3.0), [&] { n.kill_competing(pid); });
    e.run_until(from_seconds(4.5));
    EXPECT_NEAR(d.avg_competing(), 0.0, 1e-9);
    EXPECT_EQ(d.reported_load(), 1);
}

}  // namespace
}  // namespace dynmpi::sim
