#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace dynmpi::sim {
namespace {

Packet make_packet(int src, int dst, std::size_t bytes, std::uint64_t tag = 0) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.tag = tag;
    p.payload.assign(bytes, std::byte{0xAB});
    return p;
}

struct NetFixture : ::testing::Test {
    Engine e;
    NetParams params;
    std::vector<Packet> delivered;
    std::vector<SimTime> times;

    std::unique_ptr<Network> make(int nodes = 4) {
        auto net = std::make_unique<Network>(e, params, nodes);
        net->set_delivery_handler([this](Packet&& p) {
            delivered.push_back(std::move(p));
            times.push_back(e.now());
        });
        return net;
    }
};

TEST_F(NetFixture, DeliveryTimeIsLatencyPlusSerialization) {
    auto net = make();
    net->transmit(make_packet(0, 1, 125000)); // 125000 B / 12.5 MB/s = 10 ms
    e.run();
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_NEAR(to_seconds(times[0]), params.latency_s + 0.01, 1e-9);
}

TEST_F(NetFixture, PayloadArrivesIntact) {
    auto net = make();
    Packet p = make_packet(2, 3, 16, 77);
    p.payload[5] = std::byte{0x42};
    net->transmit(std::move(p));
    e.run();
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].tag, 77u);
    EXPECT_EQ(delivered[0].src, 2);
    EXPECT_EQ(delivered[0].dst, 3);
    EXPECT_EQ(delivered[0].payload[5], std::byte{0x42});
    EXPECT_EQ(delivered[0].payload.size(), 16u);
}

TEST_F(NetFixture, SenderNicSerializesBackToBackMessages) {
    auto net = make();
    net->transmit(make_packet(0, 1, 125000));
    net->transmit(make_packet(0, 2, 125000));
    e.run();
    ASSERT_EQ(times.size(), 2u);
    // Second message waits for the first to clear the NIC.
    EXPECT_NEAR(to_seconds(times[1]) - to_seconds(times[0]), 0.01, 1e-9);
}

TEST_F(NetFixture, DifferentSendersDoNotContend) {
    auto net = make();
    net->transmit(make_packet(0, 2, 125000));
    net->transmit(make_packet(1, 3, 125000));
    e.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], times[1]); // switched network: parallel links
}

TEST_F(NetFixture, SelfMessagesBypassNic) {
    auto net = make();
    net->transmit(make_packet(1, 1, 1 << 20));
    e.run();
    ASSERT_EQ(times.size(), 1u);
    EXPECT_NEAR(to_seconds(times[0]), params.self_latency_s, 1e-12);
}

TEST_F(NetFixture, StatsCountMessagesAndBytes) {
    auto net = make();
    net->transmit(make_packet(0, 1, 100));
    net->transmit(make_packet(1, 0, 300));
    e.run();
    EXPECT_EQ(net->messages_sent(), 2u);
    EXPECT_EQ(net->bytes_sent(), 400u);
}

TEST_F(NetFixture, RejectsBadNodeIds) {
    auto net = make(2);
    EXPECT_THROW(net->transmit(make_packet(0, 5, 10)), dynmpi::Error);
    EXPECT_THROW(net->transmit(make_packet(-1, 0, 10)), dynmpi::Error);
}

TEST_F(NetFixture, CpuCostScalesWithBytes) {
    NetParams p;
    EXPECT_GT(p.cpu_cost(1 << 20), p.cpu_cost(1));
    EXPECT_NEAR(p.cpu_cost(0), p.cpu_per_msg_s, 1e-15);
}

TEST_F(NetFixture, WireTimeModelMatchesDelivery) {
    auto net = make();
    std::size_t bytes = 50000;
    net->transmit(make_packet(0, 1, bytes));
    e.run();
    EXPECT_NEAR(to_seconds(times[0]), net->wire_time(bytes), 1e-9);
}

}  // namespace
}  // namespace dynmpi::sim
