#include "sim/load_trace.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace dynmpi::sim {
namespace {

TEST(LoadTrace, ParsesSteadyDirective) {
    auto t = parse_load_trace("node 3: 1.0 inf x2\n");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].node, 3);
    EXPECT_DOUBLE_EQ(t[0].start_s, 1.0);
    EXPECT_DOUBLE_EQ(t[0].end_s, -1.0);
    EXPECT_EQ(t[0].count, 2);
    EXPECT_DOUBLE_EQ(t[0].burst.period_s, 0.0);
}

TEST(LoadTrace, ParsesBoundedBursty) {
    auto t = parse_load_trace("node 0: 2.0 8.0 bursty(0.25,0.5)\n");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_DOUBLE_EQ(t[0].end_s, 8.0);
    EXPECT_DOUBLE_EQ(t[0].burst.period_s, 0.25);
    EXPECT_DOUBLE_EQ(t[0].burst.duty, 0.5);
}

TEST(LoadTrace, SkipsCommentsAndBlankLines) {
    auto t = parse_load_trace(
        "# a comment\n\nnode 1: 0.5   # trailing comment\n");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].node, 1);
    EXPECT_DOUBLE_EQ(t[0].end_s, -1.0); // default forever
}

TEST(LoadTrace, MultipleDirectives) {
    auto t = parse_load_trace("node 0: 1 2\nnode 1: 3 4 x3\nnode 2: 5 inf\n");
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[1].count, 3);
}

TEST(LoadTrace, RejectsGarbage) {
    EXPECT_THROW(parse_load_trace("nod 1: 0.5\n"), Error);
    EXPECT_THROW(parse_load_trace("node 1 0.5\n"), Error);
    EXPECT_THROW(parse_load_trace("node 1: abc\n"), Error);
    EXPECT_THROW(parse_load_trace("node 1: 5.0 2.0\n"), Error); // end < start
    EXPECT_THROW(parse_load_trace("node 1: 1.0 inf x0\n"), Error);
    EXPECT_THROW(parse_load_trace("node 1: 1.0 wat\n"), Error);
    EXPECT_THROW(parse_load_trace("node 1: 1.0 inf bursty(0.1)\n"), Error);
}

TEST(LoadTrace, FormatRoundTrips) {
    std::string text =
        "node 3: 1 inf x2\nnode 0: 2 8 bursty(0.25,0.5)\nnode 5: 0.5 3.5\n";
    auto a = parse_load_trace(text);
    auto b = parse_load_trace(format_load_trace(a));
    EXPECT_EQ(a, b);
}

TEST(LoadTrace, AppliesToCluster) {
    ClusterConfig cc;
    cc.num_nodes = 4;
    cc.cpu.jitter_frac = 0.0;
    Cluster c(cc);
    apply_load_trace(c, "node 1: 1.0 3.0 x2\nnode 2: 2.0 inf\n");
    c.engine().run_until(from_seconds(2.5));
    EXPECT_EQ(c.node(1).active_competing(), 2);
    EXPECT_EQ(c.node(2).active_competing(), 1);
    c.engine().run_until(from_seconds(4.0));
    EXPECT_EQ(c.node(1).active_competing(), 0);
    EXPECT_EQ(c.node(2).active_competing(), 1);
}

}  // namespace
}  // namespace dynmpi::sim
