// FaultPlan parsing/validation and FaultInjector behavior against a live
// cluster: faults fire at their virtual times, windows expire, and the
// injector leaves the cluster in the scripted state.
#include <gtest/gtest.h>

#include "sim/fault_plan.hpp"
#include "support/error.hpp"

namespace dynmpi::sim {
namespace {

TEST(FaultPlanParse, ScriptWithCommentsAndBlankLines) {
    FaultPlan p = FaultPlan::parse(
        "# hostile history\n"
        "\n"
        "crash node=2 t=1.5\n"
        "slow node=0 t=0.5 dur=2 factor=0.25   # transient brown-out\n"
        "drop-reports node=1 t=3\n"
        "delay-reports node=1 t=4 delay=0.75\n"
        "net-delay t=2 dur=1 extra=0.01\n"
        "lose-sends node=3 t=6 count=4\n");
    ASSERT_EQ(p.faults.size(), 6u);
    EXPECT_EQ(p.faults[0].kind, FaultKind::Crash);
    EXPECT_EQ(p.faults[0].node, 2);
    EXPECT_DOUBLE_EQ(p.faults[0].t, 1.5);
    EXPECT_EQ(p.faults[1].kind, FaultKind::Slowdown);
    EXPECT_DOUBLE_EQ(p.faults[1].duration_s, 2.0);
    EXPECT_DOUBLE_EQ(p.faults[1].value, 0.25);
    EXPECT_EQ(p.faults[2].kind, FaultKind::ReportDrop);
    EXPECT_EQ(p.faults[3].kind, FaultKind::ReportDelay);
    EXPECT_DOUBLE_EQ(p.faults[3].value, 0.75);
    EXPECT_EQ(p.faults[4].kind, FaultKind::NetDelay);
    EXPECT_EQ(p.faults[4].node, -1);
    EXPECT_EQ(p.faults[5].kind, FaultKind::SendLoss);
    EXPECT_EQ(p.faults[5].count, 4);
}

TEST(FaultPlanParse, MalformedScriptsThrow) {
    EXPECT_THROW(FaultPlan::parse("meteor node=0 t=1\n"), Error);
    EXPECT_THROW(FaultPlan::parse("crash node=0\n"), Error);
    EXPECT_THROW(FaultPlan::parse("crash node=zero t=1\n"), Error);
    EXPECT_THROW(FaultPlan::parse("crash node=0 t=1 color=red\n"), Error);
    EXPECT_THROW(FaultPlan::parse("crash node 0 t=1\n"), Error);
}

TEST(FaultPlanParse, ToStringRoundTrips) {
    FaultPlan p = FaultPlan::parse(
        "crash node=1 t=2\n"
        "slow node=0 t=0.5 dur=1.5 factor=0.5\n"
        "net-delay t=3 extra=0.005\n"
        "lose-sends node=2 t=4 count=3\n"
        "revive node=1 t=5\n");
    FaultPlan q = FaultPlan::parse(p.to_string());
    EXPECT_EQ(p.faults, q.faults);
}

TEST(FaultPlanParse, ReviveAfterCrash) {
    FaultPlan p = FaultPlan::parse(
        "crash node=2 t=1\n"
        "revive node=2 t=3\n");
    ASSERT_EQ(p.faults.size(), 2u);
    EXPECT_EQ(p.faults[1].kind, FaultKind::Revive);
    EXPECT_EQ(p.faults[1].node, 2);
    EXPECT_DOUBLE_EQ(p.faults[1].t, 3.0);
    EXPECT_NO_THROW(p.validate(4));
}

TEST(FaultPlanValidate, ReviveWithoutCrashRejected) {
    EXPECT_THROW(FaultPlan::parse("revive node=2 t=3\n").validate(4), Error);
    // Revive of a different node than the crashed one.
    EXPECT_THROW(FaultPlan::parse("crash node=1 t=1\n"
                                  "revive node=2 t=3\n")
                     .validate(4),
                 Error);
    // Revive scheduled before the crash lands.
    EXPECT_THROW(FaultPlan::parse("crash node=2 t=3\n"
                                  "revive node=2 t=1\n")
                     .validate(4),
                 Error);
}

TEST(FaultPlanValidate, DoubleReviveRejected) {
    EXPECT_THROW(FaultPlan::parse("crash node=2 t=1\n"
                                  "revive node=2 t=3\n"
                                  "revive node=2 t=5\n")
                     .validate(4),
                 Error);
    // Crash-revive-crash-revive is a legal history.
    EXPECT_NO_THROW(FaultPlan::parse("crash node=2 t=1\n"
                                     "revive node=2 t=3\n"
                                     "crash node=2 t=5\n"
                                     "revive node=2 t=7\n")
                         .validate(4));
}

TEST(FaultPlanValidate, RejectsOutOfRangeAndNonsense) {
    EXPECT_NO_THROW(FaultPlan::parse("crash node=3 t=1\n").validate(4));
    EXPECT_THROW(FaultPlan::parse("crash node=4 t=1\n").validate(4), Error);
    EXPECT_THROW(FaultPlan::parse("crash t=1\n").validate(4), Error);
    EXPECT_THROW(FaultPlan::parse("slow node=0 t=1 factor=0\n").validate(4),
                 Error);
    EXPECT_THROW(FaultPlan::parse("lose-sends node=0 t=1\n").validate(4),
                 Error);
    EXPECT_THROW(FaultPlan::parse("net-delay t=1\n").validate(4), Error);
    EXPECT_THROW(FaultPlan::parse("crash node=0 t=-1\n").validate(4), Error);
}

ClusterConfig small_config(int nodes) {
    ClusterConfig cc;
    cc.num_nodes = nodes;
    cc.seed = 42;
    cc.ps_period = from_seconds(0.25);
    return cc;
}

TEST(FaultInjector, CrashMarksNodeAndNetwork) {
    Cluster c(small_config(4));
    c.install_faults(FaultPlan::parse("crash node=2 t=1\n"));
    c.engine().at(from_seconds(3.0), [] {}); // strong event keeps engine alive
    c.engine().run();
    EXPECT_TRUE(c.node_crashed(2));
    EXPECT_TRUE(c.node(2).crashed());
    EXPECT_TRUE(c.network().crashed(2));
    EXPECT_EQ(c.crashed_count(), 1);
    EXPECT_FALSE(c.node_crashed(0));
    ASSERT_NE(c.faults(), nullptr);
    EXPECT_EQ(c.faults()->injected(), 1);
}

TEST(FaultInjector, SlowdownWindowRestoresSpeed) {
    Cluster c(small_config(2));
    double base = c.node(1).cpu().params().speed;
    c.install_faults(FaultPlan::parse("slow node=1 t=1 dur=2 factor=0.5\n"));
    double mid_speed = 0.0;
    c.engine().at(from_seconds(2.0),
                  [&] { mid_speed = c.node(1).cpu().params().speed; });
    c.engine().at(from_seconds(4.0), [] {});
    c.engine().run();
    EXPECT_DOUBLE_EQ(mid_speed, base * 0.5);
    EXPECT_DOUBLE_EQ(c.node(1).cpu().params().speed, base);
}

TEST(FaultInjector, NetDelayWindowAppliesAndClears) {
    Cluster c(small_config(2));
    c.install_faults(FaultPlan::parse("net-delay t=1 dur=1 extra=0.02\n"));
    double mid = -1.0;
    c.engine().at(from_seconds(1.5),
                  [&] { mid = c.network().extra_latency(); });
    c.engine().at(from_seconds(3.0), [] {});
    c.engine().run();
    EXPECT_DOUBLE_EQ(mid, 0.02);
    EXPECT_DOUBLE_EQ(c.network().extra_latency(), 0.0);
}

TEST(FaultInjector, DroppedReportsStopTheSampleClock) {
    Cluster c(small_config(2));
    c.install_faults(FaultPlan::parse("drop-reports node=0 t=1\n"));
    c.engine().at(from_seconds(5.0), [] {});
    c.engine().run();
    // Node 0's daemon stopped publishing at t=1; node 1 kept reporting.
    EXPECT_LE(to_seconds(c.daemon(0).last_sample_time()), 1.0);
    EXPECT_GT(to_seconds(c.daemon(1).last_sample_time()), 4.0);
}

TEST(FaultInjector, ReviveRestartsNodeWithNewGeneration) {
    Cluster c(small_config(4));
    c.install_faults(FaultPlan::parse("crash node=2 t=1\n"
                                      "revive node=2 t=2\n"));
    bool crashed_mid = false;
    c.engine().at(from_seconds(1.5), [&] { crashed_mid = c.node_crashed(2); });
    c.engine().at(from_seconds(3.0), [] {});
    c.engine().run();
    EXPECT_TRUE(crashed_mid);
    EXPECT_FALSE(c.node_crashed(2));
    EXPECT_FALSE(c.network().crashed(2));
    EXPECT_EQ(c.crashed_count(), 0);
    EXPECT_EQ(c.node_generation(2), 1);
    EXPECT_EQ(c.node_generation(0), 0);
    EXPECT_EQ(c.faults()->injected(), 2);
}

TEST(FaultInjector, InstallTwiceIsRejected) {
    Cluster c(small_config(2));
    c.install_faults(FaultPlan::parse("crash node=0 t=1\n"));
    EXPECT_THROW(c.install_faults(FaultPlan::parse("crash node=1 t=2\n")),
                 Error);
}

}  // namespace
}  // namespace dynmpi::sim
