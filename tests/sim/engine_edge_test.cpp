// Engine edge cases: same-instant ordering across weak/strong events,
// cancellation during dispatch, and run()/run_until() interactions.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "support/error.hpp"

namespace dynmpi::sim {
namespace {

TEST(EngineEdge, WeakBeforeLastStrongFiresWeakAfterStays) {
    // run() drains until the final strong event; a weak event scheduled
    // earlier at the same instant fires first (stable order), one scheduled
    // after the last strong stays queued.
    Engine e;
    std::vector<int> order;
    e.at(10, [&] { order.push_back(1); }, /*weak=*/true);
    e.at(10, [&] { order.push_back(2); });
    e.at(10, [&] { order.push_back(3); }, /*weak=*/true);
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_FALSE(e.idle());
}

TEST(EngineEdge, RunStopsAfterLastStrongEvenWithEarlierWeakPending) {
    Engine e;
    int weak_fired = 0;
    e.at(5, [&] { ++weak_fired; }, true);
    e.at(10, [] {});
    e.at(20, [&] { ++weak_fired; }, true); // after the last strong event
    e.run();
    EXPECT_EQ(weak_fired, 1);
    EXPECT_EQ(e.now(), 10);
    EXPECT_FALSE(e.idle()); // the t=20 weak event is still queued
}

TEST(EngineEdge, EventCancellingALaterEvent) {
    Engine e;
    bool fired = false;
    EventId later = e.at(20, [&] { fired = true; });
    e.at(10, [&] { e.cancel(later); });
    e.run();
    EXPECT_FALSE(fired);
}

TEST(EngineEdge, EventSchedulingAtCurrentInstantRunsThisPass) {
    Engine e;
    std::vector<int> order;
    e.at(10, [&] {
        order.push_back(1);
        e.at(10, [&] { order.push_back(2); }); // same virtual instant
    });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(e.now(), 10);
}

TEST(EngineEdge, RunUntilThenRunContinues) {
    Engine e;
    std::vector<int> seen;
    e.at(10, [&] { seen.push_back(10); });
    e.at(30, [&] { seen.push_back(30); });
    e.run_until(15);
    EXPECT_EQ(seen, (std::vector<int>{10}));
    EXPECT_EQ(e.now(), 15);
    e.run();
    EXPECT_EQ(seen, (std::vector<int>{10, 30}));
}

TEST(EngineEdge, CancelledStrongEventReleasesRun) {
    Engine e;
    EventId id = e.at(100, [] {});
    e.cancel(id);
    e.run(); // must terminate immediately: no strong events remain
    EXPECT_EQ(e.now(), 0);
}

TEST(EngineEdge, ManySameTimeEventsKeepStableOrder) {
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 500; ++i)
        e.at(7, [&order, i] { order.push_back(i); });
    e.run();
    for (int i = 0; i < 500; ++i) ASSERT_EQ(order[(std::size_t)i], i);
}

}  // namespace
}  // namespace dynmpi::sim
