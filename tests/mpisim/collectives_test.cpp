#include "mpisim/collectives.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mpisim/machine.hpp"

namespace dynmpi::msg {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

class CollectivesParam : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesParam, BcastReachesAllMembers) {
    Machine m(cfg(GetParam()));
    m.run([](Rank& r) {
        Group g = Group::world(r);
        std::vector<double> data;
        if (g.index_of(r.id()) == 0) data = {1.5, 2.5, 3.5};
        bcast(r, g, 0, data);
        EXPECT_EQ(data, (std::vector<double>{1.5, 2.5, 3.5}));
    });
}

TEST_P(CollectivesParam, BcastFromNonZeroRoot) {
    Machine m(cfg(GetParam()));
    int root = GetParam() - 1;
    m.run([root](Rank& r) {
        Group g = Group::world(r);
        std::vector<int> data;
        if (g.index_of(r.id()) == root) data = {42};
        bcast(r, g, root, data);
        ASSERT_EQ(data.size(), 1u);
        EXPECT_EQ(data[0], 42);
    });
}

TEST_P(CollectivesParam, AllreduceSumsAcrossRanks) {
    Machine m(cfg(GetParam()));
    int n = GetParam();
    m.run([n](Rank& r) {
        Group g = Group::world(r);
        double sum = allreduce_scalar(r, g, static_cast<double>(r.id() + 1),
                                      OpSum{});
        EXPECT_DOUBLE_EQ(sum, n * (n + 1) / 2.0);
    });
}

TEST_P(CollectivesParam, AllreduceMinMax) {
    Machine m(cfg(GetParam()));
    int n = GetParam();
    m.run([n](Rank& r) {
        Group g = Group::world(r);
        EXPECT_EQ(allreduce_scalar(r, g, r.id(), OpMin{}), 0);
        EXPECT_EQ(allreduce_scalar(r, g, r.id(), OpMax{}), n - 1);
    });
}

TEST_P(CollectivesParam, AllreduceElementwiseVector) {
    Machine m(cfg(GetParam()));
    int n = GetParam();
    m.run([n](Rank& r) {
        Group g = Group::world(r);
        std::vector<int> v{r.id(), 2 * r.id(), 1};
        v = allreduce(r, g, std::move(v), OpSum{});
        int s = n * (n - 1) / 2;
        EXPECT_EQ(v, (std::vector<int>{s, 2 * s, n}));
    });
}

TEST_P(CollectivesParam, GatherCollectsInOrder) {
    Machine m(cfg(GetParam()));
    int n = GetParam();
    m.run([n](Rank& r) {
        Group g = Group::world(r);
        // Rank i contributes i+1 copies of its id.
        std::vector<int> mine(static_cast<size_t>(r.id() + 1), r.id());
        auto all = gather(r, g, 0, mine);
        if (g.index_of(r.id()) == 0) {
            ASSERT_EQ(static_cast<int>(all.size()), n);
            for (int i = 0; i < n; ++i) {
                EXPECT_EQ(all[(size_t)i].size(), static_cast<size_t>(i + 1));
                for (int x : all[(size_t)i]) EXPECT_EQ(x, i);
            }
        } else {
            EXPECT_TRUE(all.empty());
        }
    });
}

TEST_P(CollectivesParam, AllgatherGivesEveryoneEverything) {
    Machine m(cfg(GetParam()));
    int n = GetParam();
    m.run([n](Rank& r) {
        Group g = Group::world(r);
        auto all = allgather_scalar(r, g, 100 + r.id());
        ASSERT_EQ(static_cast<int>(all.size()), n);
        for (int i = 0; i < n; ++i) EXPECT_EQ(all[(size_t)i], 100 + i);
    });
}

TEST_P(CollectivesParam, AlltoallRoutesChunks) {
    Machine m(cfg(GetParam()));
    int n = GetParam();
    m.run([n](Rank& r) {
        Group g = Group::world(r);
        std::vector<std::vector<int>> outgoing(static_cast<size_t>(n));
        for (int j = 0; j < n; ++j)
            outgoing[(size_t)j] = {r.id() * 1000 + j};
        auto incoming = alltoall(r, g, outgoing);
        ASSERT_EQ(static_cast<int>(incoming.size()), n);
        for (int i = 0; i < n; ++i) {
            ASSERT_EQ(incoming[(size_t)i].size(), 1u);
            EXPECT_EQ(incoming[(size_t)i][0], i * 1000 + r.id());
        }
    });
}

TEST_P(CollectivesParam, BarrierSynchronizes) {
    Machine m(cfg(GetParam()));
    m.run([](Rank& r) {
        Group g = Group::world(r);
        // Stagger arrival; after the barrier everyone's clock is >= the
        // slowest arrival.
        r.compute(0.1 * (r.id() + 1));
        barrier(r, g);
        EXPECT_GE(r.hrtime(), 0.1 * r.size() - 1e-9);
    });
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CollectivesParam,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST(Collectives, SubgroupLeavesOutsidersUntouched) {
    Machine m(cfg(4));
    m.run([](Rank& r) {
        Group active({0, 1, 3}); // rank 2 is "removed"
        if (active.contains(r.id())) {
            double sum =
                allreduce_scalar(r, active, 1.0 * (r.id() + 1), OpSum{});
            EXPECT_DOUBLE_EQ(sum, 1.0 + 2.0 + 4.0);
        } else {
            r.compute(0.01); // does something unrelated
        }
    });
}

TEST(Collectives, RelativeRanksFollowGroupOrder) {
    Group g({5, 2, 9});
    EXPECT_EQ(g.index_of(5), 0);
    EXPECT_EQ(g.index_of(2), 1);
    EXPECT_EQ(g.index_of(9), 2);
    EXPECT_EQ(g.index_of(7), -1);
    EXPECT_EQ(g.member(2), 9);
    EXPECT_TRUE(g.contains(2));
    EXPECT_FALSE(g.contains(3));
}

TEST(Collectives, GroupHashDistinguishesMembership) {
    Group a({0, 1, 2}), b({0, 1, 3}), c({0, 1, 2});
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_EQ(a.hash(), c.hash());
}

TEST(Collectives, MixedGroupSequencesStayAligned) {
    // Ranks use the world group and a subgroup in interleaved order; the
    // per-group sequence counters must keep tags matched.
    Machine m(cfg(3));
    m.run([](Rank& r) {
        Group world = Group::world(r);
        Group sub({0, 2});
        for (int iter = 0; iter < 3; ++iter) {
            if (sub.contains(r.id()))
                allreduce_scalar(r, sub, r.id(), OpSum{});
            double s = allreduce_scalar(r, world, 1.0, OpSum{});
            EXPECT_DOUBLE_EQ(s, 3.0);
        }
    });
}

TEST(Collectives, NonMemberCallRejected) {
    Machine m(cfg(2));
    EXPECT_THROW(m.run([](Rank& r) {
        Group sub({0});
        allreduce_scalar(r, sub, 1, OpSum{}); // rank 1 is not a member
    }),
                 Error);
}

TEST(Collectives, EmptyGroupRejected) {
    EXPECT_THROW(Group g(std::vector<int>{}), Error);
}

}  // namespace
}  // namespace dynmpi::msg
