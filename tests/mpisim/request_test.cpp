#include <gtest/gtest.h>

#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"
#include "support/error.hpp"

namespace dynmpi::msg {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

TEST(Request, IsendCompletesImmediately) {
    Machine m(cfg(2));
    m.run([](Rank& r) {
        if (r.id() == 0) {
            int v = 5;
            Request req = r.isend(1, 0, &v, sizeof v);
            EXPECT_TRUE(req.completed());
            EXPECT_EQ(r.wait(req), 0u);
        } else {
            EXPECT_EQ(r.recv_value<int>(0, 0), 5);
        }
    });
}

TEST(Request, IrecvWaitDeliversPayload) {
    Machine m(cfg(2));
    m.run([](Rank& r) {
        if (r.id() == 0) {
            double v = 2.5;
            r.send(1, 3, &v, sizeof v);
        } else {
            double buf = 0;
            Request req = r.irecv(0, 3, &buf, sizeof buf);
            EXPECT_FALSE(req.completed());
            EXPECT_EQ(r.wait(req), sizeof(double));
            EXPECT_DOUBLE_EQ(buf, 2.5);
            EXPECT_EQ(req.source(), 0);
        }
    });
}

TEST(Request, PostAllReceivesThenWaitall) {
    // The classic MPI pattern: post every halo receive up front, send, then
    // wait for all of them.
    Machine m(cfg(4));
    m.run([](Rank& r) {
        int left = (r.id() + r.size() - 1) % r.size();
        int right = (r.id() + 1) % r.size();
        int from_left = -1, from_right = -1;
        std::vector<Request> reqs;
        reqs.push_back(r.irecv(left, 1, &from_left, sizeof(int)));
        reqs.push_back(r.irecv(right, 2, &from_right, sizeof(int)));
        int me = r.id();
        r.send(right, 1, &me, sizeof me);
        r.send(left, 2, &me, sizeof me);
        r.waitall(reqs);
        EXPECT_EQ(from_left, left);
        EXPECT_EQ(from_right, right);
    });
}

TEST(Request, TestPollsWithoutBlocking) {
    Machine m(cfg(2));
    m.run([](Rank& r) {
        if (r.id() == 0) {
            r.sleep(1.0);
            int v = 9;
            r.send(1, 7, &v, sizeof v);
        } else {
            int buf = 0;
            Request req = r.irecv(0, 7, &buf, sizeof buf);
            EXPECT_FALSE(r.test(req)); // nothing sent yet
            r.sleep(2.0);              // message arrives meanwhile
            EXPECT_TRUE(r.test(req));
            EXPECT_EQ(buf, 9);
            EXPECT_TRUE(r.test(req)); // idempotent once complete
        }
    });
}

TEST(Request, AnySourceIrecvReportsSender) {
    Machine m(cfg(3));
    m.run([](Rank& r) {
        if (r.id() == 0) {
            int buf = 0;
            Request req = r.irecv(kAnySource, 4, &buf, sizeof buf);
            r.wait(req);
            EXPECT_EQ(buf, req.source() * 11);
        } else if (r.id() == 1) {
            int v = 11;
            r.send(0, 4, &v, sizeof v);
        }
    });
}

TEST(Request, WaitOnNullRequestRejected) {
    Machine m(cfg(1));
    EXPECT_THROW(m.run([](Rank& r) {
        Request req;
        r.wait(req);
    }),
                 Error);
}

TEST(Request, IrecvBufferTooSmallRejected) {
    Machine m(cfg(2));
    EXPECT_THROW(m.run([](Rank& r) {
        if (r.id() == 0) {
            double big[4] = {};
            r.send(1, 0, big, sizeof big);
        } else {
            double one;
            Request req = r.irecv(0, 0, &one, sizeof one);
            r.wait(req);
        }
    }),
                 Error);
}

}  // namespace
}  // namespace dynmpi::msg
