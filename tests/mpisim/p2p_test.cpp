#include <gtest/gtest.h>

#include <numeric>

#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"
#include "support/error.hpp"

namespace dynmpi::msg {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

TEST(P2P, PingPongDeliversPayload) {
    Machine m(cfg(2));
    m.run([](Rank& r) {
        if (r.id() == 0) {
            std::vector<double> v(100);
            std::iota(v.begin(), v.end(), 0.0);
            r.send_vector(1, 5, v);
            auto back = r.recv_vector<double>(1, 6);
            ASSERT_EQ(back.size(), 100u);
            for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(back[(size_t)i], 2.0 * i);
        } else {
            auto v = r.recv_vector<double>(0, 5);
            for (auto& x : v) x *= 2.0;
            r.send_vector(0, 6, v);
        }
    });
}

TEST(P2P, MessagesMatchedByTag) {
    Machine m(cfg(2));
    m.run([](Rank& r) {
        if (r.id() == 0) {
            int a = 111, b = 222;
            r.send_value(1, 10, a);
            r.send_value(1, 20, b);
        } else {
            // Receive out of order: tag 20 first.
            EXPECT_EQ(r.recv_value<int>(0, 20), 222);
            EXPECT_EQ(r.recv_value<int>(0, 10), 111);
        }
    });
}

TEST(P2P, MessagesMatchedBySource) {
    Machine m(cfg(3));
    m.run([](Rank& r) {
        if (r.id() == 2) {
            EXPECT_EQ(r.recv_value<int>(1, 0), 1);
            EXPECT_EQ(r.recv_value<int>(0, 0), 0);
        } else {
            int me = r.id();
            r.send_value(2, 0, me);
        }
    });
}

TEST(P2P, AnySourceReceivesFromEither) {
    Machine m(cfg(3));
    m.run([](Rank& r) {
        if (r.id() == 0) {
            int got_src_sum = 0;
            for (int i = 0; i < 2; ++i) {
                int v, src;
                r.recv(kAnySource, 3, &v, sizeof v, &src);
                EXPECT_EQ(v, src * 10);
                got_src_sum += src;
            }
            EXPECT_EQ(got_src_sum, 3); // ranks 1 and 2
        } else {
            int v = r.id() * 10;
            r.send_value(0, 3, v);
        }
    });
}

TEST(P2P, AnyTagReportsActualTag) {
    Machine m(cfg(2));
    m.run([](Rank& r) {
        if (r.id() == 0) {
            int v = 9;
            r.send_value(1, 42, v);
        } else {
            int v, tag;
            r.recv(0, kAnyTag, &v, sizeof v, nullptr, &tag);
            EXPECT_EQ(tag, 42);
            EXPECT_EQ(v, 9);
        }
    });
}

TEST(P2P, FifoPreservedPerSenderAndTag) {
    Machine m(cfg(2));
    m.run([](Rank& r) {
        const int kN = 50;
        if (r.id() == 0) {
            for (int i = 0; i < kN; ++i) r.send_value(1, 1, i);
        } else {
            for (int i = 0; i < kN; ++i) EXPECT_EQ(r.recv_value<int>(0, 1), i);
        }
    });
}

TEST(P2P, SendRecvCrossExchange) {
    Machine m(cfg(2));
    m.run([](Rank& r) {
        double mine = 100.0 + r.id(), theirs = -1;
        int peer = 1 - r.id();
        r.sendrecv(peer, 0, &mine, sizeof mine, peer, 0, &theirs, sizeof theirs);
        EXPECT_DOUBLE_EQ(theirs, 100.0 + peer);
    });
}

TEST(P2P, TransferTimeScalesWithMessageSize) {
    auto timed = [](std::size_t bytes) {
        Machine m(cfg(2));
        double t = 0;
        m.run([&](Rank& r) {
            if (r.id() == 0) {
                std::vector<std::uint8_t> buf(bytes, 1);
                r.send(1, 0, buf.data(), buf.size());
            } else {
                std::vector<std::uint8_t> buf(bytes);
                r.recv(0, 0, buf.data(), buf.size());
                t = r.hrtime();
            }
        });
        return t;
    };
    double small = timed(1000), large = timed(1000000);
    EXPECT_GT(large, 10 * small);
}

TEST(P2P, RecvBufferTooSmallRejected) {
    Machine m(cfg(2));
    EXPECT_THROW(m.run([](Rank& r) {
        if (r.id() == 0) {
            double big[4] = {1, 2, 3, 4};
            r.send(1, 0, big, sizeof big);
        } else {
            double one;
            r.recv(0, 0, &one, sizeof one);
        }
    }),
                 Error);
}

TEST(P2P, ProbeSeesBufferedMessage) {
    Machine m(cfg(2));
    m.run([](Rank& r) {
        if (r.id() == 0) {
            int v = 1;
            r.send_value(1, 8, v);
        } else {
            EXPECT_FALSE(r.probe(0, 8));
            r.sleep(1.0); // give the message time to arrive
            EXPECT_TRUE(r.probe(0, 8));
            EXPECT_FALSE(r.probe(0, 9));
            r.recv_value<int>(0, 8);
            EXPECT_FALSE(r.probe(0, 8));
        }
    });
}

TEST(P2P, SelfSendAllowed) {
    Machine m(cfg(1));
    m.run([](Rank& r) {
        int v = 77;
        r.send_value(0, 0, v);
        EXPECT_EQ(r.recv_value<int>(0, 0), 77);
    });
}

TEST(P2P, InvalidDestinationRejected) {
    Machine m(cfg(2));
    EXPECT_THROW(m.run([](Rank& r) {
        int v = 0;
        r.send_value(5, 0, v);
    }),
                 Error);
}

TEST(P2P, ZeroByteMessageWorks) {
    Machine m(cfg(2));
    m.run([](Rank& r) {
        if (r.id() == 0) {
            r.send(1, 0, nullptr, 0);
        } else {
            std::size_t n = r.recv(0, 0, nullptr, 0);
            EXPECT_EQ(n, 0u);
        }
    });
}

}  // namespace
}  // namespace dynmpi::msg
