// Collectives on awkward group sizes.  The binomial-tree algorithms are
// easiest to get wrong off the power-of-two rail, and 2-member groups are the
// smallest case where any communication happens at all — so bcast, reduce,
// allgather, and scan are pinned against brute force on sizes 2, 3, 5, 7.
// The scan check uses 2x2 matrix products, a genuinely non-commutative op,
// to verify the chain applies partial results in exact member order.
#include <gtest/gtest.h>

#include <vector>

#include "mpisim/collectives.hpp"
#include "mpisim/machine.hpp"
#include "support/rng.hpp"

namespace dynmpi::msg {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

/// Deterministic per-(rank, index) test value.
double value_of(int rank, int i) {
    return static_cast<double>(
               hash_combine(0x5151u, hash_combine((std::uint64_t)rank,
                                                  (std::uint64_t)i)) %
               1000) /
           7.0;
}

/// Row-major 2x2 matrix; multiplication does not commute.
struct Mat2 {
    double a, b, c, d;
};

struct MatMul {
    Mat2 operator()(const Mat2& x, const Mat2& y) const {
        return {x.a * y.a + x.b * y.c, x.a * y.b + x.b * y.d,
                x.c * y.a + x.d * y.c, x.c * y.b + x.d * y.d};
    }
};

/// Per-member matrix with no special structure (shears or diagonals would
/// commute and defeat the ordering check).
Mat2 mat_of(int rel) {
    return {1.0 + rel % 3, 2.0 + rel % 5, static_cast<double>(rel % 4),
            2.0 - rel % 2};
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BcastReduceAllgatherMatchBruteForce) {
    const int n = GetParam();
    // Offset members so absolute != relative ranks.
    std::vector<int> members;
    for (int i = 0; i < n; ++i) members.push_back(i + 1);
    const int len = 3;

    std::vector<double> ref_sum(len, 0.0);
    for (int rel = 0; rel < n; ++rel)
        for (int i = 0; i < len; ++i)
            ref_sum[(std::size_t)i] += value_of(members[(std::size_t)rel], i);

    Machine m(cfg(n + 1));
    m.run([&](Rank& r) {
        Group g(members);
        if (!g.contains(r.id())) {
            r.compute(0.001); // bystander: rank 0 is not a member
            return;
        }
        std::vector<double> mine((std::size_t)len);
        for (int i = 0; i < len; ++i)
            mine[(std::size_t)i] = value_of(r.id(), i);

        // bcast from every root position, including the last member.
        for (int root : {0, n - 1}) {
            auto b = mine;
            bcast(r, g, root, b);
            for (int i = 0; i < len; ++i)
                EXPECT_DOUBLE_EQ(b[(std::size_t)i],
                                 value_of(g.member(root), i));
        }

        // reduce to the last member (non-zero root exercises the rotated
        // virtual-rank tree).
        auto red = reduce(r, g, n - 1, mine, OpSum{});
        if (g.index_of(r.id()) == n - 1)
            for (int i = 0; i < len; ++i)
                EXPECT_NEAR(red[(std::size_t)i], ref_sum[(std::size_t)i],
                            1e-9);

        // allgather reassembles every member's vector in member order.
        auto all = allgather(r, g, mine);
        ASSERT_EQ(static_cast<int>(all.size()), n);
        for (int rel = 0; rel < n; ++rel)
            for (int i = 0; i < len; ++i)
                EXPECT_DOUBLE_EQ(all[(std::size_t)rel][(std::size_t)i],
                                 value_of(g.member(rel), i));
    });
}

TEST_P(CollectiveSizes, ScanAppliesNonCommutativeOpInMemberOrder) {
    const int n = GetParam();
    std::vector<int> members;
    for (int i = 0; i < n; ++i) members.push_back(i);

    // Reference: left-fold prefix products in member order.
    std::vector<Mat2> ref((std::size_t)n);
    ref[0] = mat_of(0);
    for (int rel = 1; rel < n; ++rel)
        ref[(std::size_t)rel] = MatMul{}(ref[(std::size_t)rel - 1],
                                         mat_of(rel));

    Machine m(cfg(n));
    m.run([&](Rank& r) {
        Group g(members);
        const int rel = g.index_of(r.id());
        std::vector<Mat2> mine{mat_of(rel)};
        auto pre = scan(r, g, mine, MatMul{});
        ASSERT_EQ(pre.size(), 1u);
        const Mat2& e = ref[(std::size_t)rel];
        EXPECT_DOUBLE_EQ(pre[0].a, e.a);
        EXPECT_DOUBLE_EQ(pre[0].b, e.b);
        EXPECT_DOUBLE_EQ(pre[0].c, e.c);
        EXPECT_DOUBLE_EQ(pre[0].d, e.d);
    });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes, ::testing::Values(2, 3, 5, 7));

}  // namespace
}  // namespace dynmpi::msg
