// Tests for the MPI-1 compatibility shim: the paper's "before" programs
// (Figure 1) written verbatim against the simulator.
#include "mpisim/mpi_compat.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mpisim/machine.hpp"

namespace dynmpi::mpi {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

TEST(MpiCompat, InitRankSizeFinalize) {
    msg::Machine m(cfg(3));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        int rank = -1, size = -1;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        MPI_Comm_size(MPI_COMM_WORLD, &size);
        EXPECT_EQ(rank, r.id());
        EXPECT_EQ(size, 3);
        MPI_Finalize();
    });
}

TEST(MpiCompat, Figure1StyleNearestNeighbor) {
    // The paper's Figure 1 skeleton: compute, then exchange boundary rows
    // with rank-relative neighbors.
    const int kN = 8;
    msg::Machine m(cfg(4));
    m.run([kN](msg::Rank& rk) {
        MPI_Init(rk);
        int rank, numprocs;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        MPI_Comm_size(MPI_COMM_WORLD, &numprocs);
        std::vector<double> boundary(kN, rank * 1.0);
        std::vector<double> ghost(kN, -1);
        for (int t = 0; t < 3; ++t) {
            if (rank > 0)
                MPI_Send(boundary.data(), kN, MPI_DOUBLE, rank - 1, 0,
                         MPI_COMM_WORLD);
            if (rank < numprocs - 1) {
                MPI_Status st;
                MPI_Recv(ghost.data(), kN, MPI_DOUBLE, rank + 1, 0,
                         MPI_COMM_WORLD, &st);
                EXPECT_EQ(st.MPI_SOURCE, rank + 1);
                EXPECT_DOUBLE_EQ(ghost[0], rank + 1.0);
            }
        }
        MPI_Finalize();
    });
}

TEST(MpiCompat, AllreduceAllTypesAndOps) {
    msg::Machine m(cfg(4));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        double d = r.id() + 1.0, dsum = 0;
        MPI_Allreduce(&d, &dsum, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
        EXPECT_DOUBLE_EQ(dsum, 10.0);
        int i = r.id(), imax = -1, imin = -1;
        MPI_Allreduce(&i, &imax, 1, MPI_INT, MPI_MAX, MPI_COMM_WORLD);
        MPI_Allreduce(&i, &imin, 1, MPI_INT, MPI_MIN, MPI_COMM_WORLD);
        EXPECT_EQ(imax, 3);
        EXPECT_EQ(imin, 0);
        long l = 1, lsum = 0;
        MPI_Allreduce(&l, &lsum, 1, MPI_LONG, MPI_SUM, MPI_COMM_WORLD);
        EXPECT_EQ(lsum, 4);
        MPI_Finalize();
    });
}

TEST(MpiCompat, BcastAndReduce) {
    msg::Machine m(cfg(4));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        double v[2] = {0, 0};
        if (r.id() == 2) {
            v[0] = 3.5;
            v[1] = -1.0;
        }
        MPI_Bcast(v, 2, MPI_DOUBLE, 2, MPI_COMM_WORLD);
        EXPECT_DOUBLE_EQ(v[0], 3.5);
        EXPECT_DOUBLE_EQ(v[1], -1.0);

        int x = 1, total = 0;
        MPI_Reduce(&x, &total, 1, MPI_INT, MPI_SUM, 0, MPI_COMM_WORLD);
        if (r.id() == 0) EXPECT_EQ(total, 4);
        MPI_Finalize();
    });
}

TEST(MpiCompat, AllgatherConcatenatesInRankOrder) {
    msg::Machine m(cfg(3));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        double mine[2] = {r.id() * 10.0, r.id() * 10.0 + 1};
        double all[6] = {};
        MPI_Allgather(mine, 2, MPI_DOUBLE, all, 2, MPI_DOUBLE,
                      MPI_COMM_WORLD);
        for (int k = 0; k < 3; ++k) {
            EXPECT_DOUBLE_EQ(all[2 * k], k * 10.0);
            EXPECT_DOUBLE_EQ(all[2 * k + 1], k * 10.0 + 1);
        }
        MPI_Finalize();
    });
}

TEST(MpiCompat, NonblockingWaitall) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        int me = r.id(), peer = 1 - me;
        int incoming = -1;
        MPI_Request reqs[2];
        MPI_Irecv(&incoming, 1, MPI_INT, peer, 5, MPI_COMM_WORLD, &reqs[0]);
        MPI_Isend(&me, 1, MPI_INT, peer, 5, MPI_COMM_WORLD, &reqs[1]);
        MPI_Waitall(2, reqs, nullptr);
        EXPECT_EQ(incoming, peer);
        MPI_Finalize();
    });
}

TEST(MpiCompat, SendrecvAndWtime) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        double t0 = MPI_Wtime();
        int me = r.id(), peer = 1 - me, got = -1;
        MPI_Sendrecv(&me, 1, MPI_INT, peer, 1, &got, 1, MPI_INT, peer, 1,
                     MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        EXPECT_EQ(got, peer);
        EXPECT_GT(MPI_Wtime(), t0);
        MPI_Finalize();
    });
}

TEST(MpiCompat, BarrierSynchronizes) {
    msg::Machine m(cfg(3));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        r.compute(0.1 * (r.id() + 1));
        MPI_Barrier(MPI_COMM_WORLD);
        EXPECT_GE(MPI_Wtime(), 0.3);
        MPI_Finalize();
    });
}

TEST(MpiCompat, UnsupportedCommRejected) {
    msg::Machine m(cfg(1));
    EXPECT_THROW(m.run([](msg::Rank& r) {
        MPI_Init(r);
        int x;
        MPI_Comm_rank(12345, &x);
    }),
                 Error);
}

TEST(MpiCompat, AnyTagAndAnySource) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        if (r.id() == 0) {
            int v = 42;
            MPI_Send(&v, 1, MPI_INT, 1, 17, MPI_COMM_WORLD);
        } else {
            int v = 0;
            MPI_Status st;
            MPI_Recv(&v, 1, MPI_INT, MPI_ANY_SOURCE, MPI_ANY_TAG,
                     MPI_COMM_WORLD, &st);
            EXPECT_EQ(v, 42);
            EXPECT_EQ(st.MPI_SOURCE, 0);
            EXPECT_EQ(st.MPI_TAG, 17);
        }
        MPI_Finalize();
    });
}

}  // namespace
}  // namespace dynmpi::mpi
