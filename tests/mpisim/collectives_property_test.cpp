// Property tests: every collective must agree with a brute-force reference
// computed from the same inputs, across random group subsets, vector sizes,
// and value sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "mpisim/collectives.hpp"
#include "mpisim/machine.hpp"
#include "support/rng.hpp"

namespace dynmpi::msg {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

/// Deterministic per-(seed, rank, index) test value.
double value_of(std::uint64_t seed, int rank, int i) {
    return static_cast<double>(
               hash_combine(hash_combine(seed, (std::uint64_t)rank),
                            (std::uint64_t)i) %
               1000) /
           7.0;
}

class CollectiveProperty : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveProperty, AllOpsMatchBruteForce) {
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 1299709;
    Rng rng(seed);
    const int world = 3 + static_cast<int>(rng.next_below(6)); // 3..8
    // Random subset of at least 2 members, in random order-preserving form.
    std::vector<int> members;
    for (int i = 0; i < world; ++i)
        if (rng.next_double() < 0.7) members.push_back(i);
    while (static_cast<int>(members.size()) < 2)
        members.push_back(world - 1 - static_cast<int>(members.size()));
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    const int n = static_cast<int>(members.size());
    const int len = 1 + static_cast<int>(rng.next_below(5));
    const int root = static_cast<int>(rng.next_below((std::uint64_t)n));

    // Brute-force references.
    std::vector<double> ref_sum(static_cast<std::size_t>(len), 0.0);
    std::vector<double> ref_max(static_cast<std::size_t>(len), -1e300);
    for (int rel = 0; rel < n; ++rel)
        for (int i = 0; i < len; ++i) {
            double v = value_of(seed, members[(std::size_t)rel], i);
            ref_sum[(std::size_t)i] += v;
            ref_max[(std::size_t)i] = std::max(ref_max[(std::size_t)i], v);
        }

    Machine m(cfg(world));
    m.run([&](Rank& r) {
        Group g(members);
        if (!g.contains(r.id())) {
            r.compute(0.001); // bystander
            return;
        }
        std::vector<double> mine(static_cast<std::size_t>(len));
        for (int i = 0; i < len; ++i)
            mine[(std::size_t)i] = value_of(seed, r.id(), i);

        // allreduce sum + max
        auto s = allreduce(r, g, mine, OpSum{});
        auto x = allreduce(r, g, mine, OpMax{});
        for (int i = 0; i < len; ++i) {
            EXPECT_NEAR(s[(std::size_t)i], ref_sum[(std::size_t)i], 1e-9);
            EXPECT_DOUBLE_EQ(x[(std::size_t)i], ref_max[(std::size_t)i]);
        }

        // bcast from the random root
        auto b = mine;
        bcast(r, g, root, b);
        for (int i = 0; i < len; ++i)
            EXPECT_DOUBLE_EQ(b[(std::size_t)i],
                             value_of(seed, g.member(root), i));

        // allgather reassembles every member's vector
        auto all = allgather(r, g, mine);
        ASSERT_EQ(static_cast<int>(all.size()), n);
        for (int rel = 0; rel < n; ++rel)
            for (int i = 0; i < len; ++i)
                EXPECT_DOUBLE_EQ(all[(std::size_t)rel][(std::size_t)i],
                                 value_of(seed, g.member(rel), i));

        // scan: inclusive prefix sums
        auto pre = scan(r, g, mine, OpSum{});
        int my_rel = g.index_of(r.id());
        for (int i = 0; i < len; ++i) {
            double expect = 0;
            for (int rel = 0; rel <= my_rel; ++rel)
                expect += value_of(seed, g.member(rel), i);
            EXPECT_NEAR(pre[(std::size_t)i], expect, 1e-9);
        }

        // alltoall: element (i -> j) routing
        std::vector<std::vector<double>> outgoing(
            static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j)
            outgoing[(std::size_t)j] = {
                value_of(seed, r.id(), j + 100)};
        auto incoming = alltoall(r, g, outgoing);
        for (int i = 0; i < n; ++i)
            EXPECT_DOUBLE_EQ(
                incoming[(std::size_t)i][0],
                value_of(seed, g.member(i), my_rel + 100));
    });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace dynmpi::msg
