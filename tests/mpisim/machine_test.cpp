#include "mpisim/machine.hpp"

#include <gtest/gtest.h>

#include "mpisim/rank.hpp"
#include "support/error.hpp"

namespace dynmpi::msg {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

TEST(Machine, RunsEveryRankExactlyOnce) {
    Machine m(cfg(4));
    std::vector<int> ran(4, 0);
    m.run([&](Rank& r) { ran[static_cast<size_t>(r.id())]++; });
    EXPECT_EQ(ran, (std::vector<int>{1, 1, 1, 1}));
}

TEST(Machine, RanksSeeCorrectIdAndSize) {
    Machine m(cfg(3));
    m.run([](Rank& r) {
        EXPECT_GE(r.id(), 0);
        EXPECT_LT(r.id(), 3);
        EXPECT_EQ(r.size(), 3);
    });
}

TEST(Machine, ComputeAdvancesVirtualTime) {
    Machine m(cfg(2));
    m.run([](Rank& r) { r.compute(1.0 + r.id()); });
    // Ranks compute in parallel: total time = max over ranks.
    EXPECT_NEAR(m.elapsed_seconds(), 2.0, 1e-6);
}

TEST(Machine, SleepIsNotCpuTime) {
    Machine m(cfg(1));
    double cpu = -1;
    m.run([&](Rank& r) {
        r.sleep(5.0);
        cpu = r.exact_cpu_time();
    });
    EXPECT_NEAR(m.elapsed_seconds(), 5.0, 1e-9);
    EXPECT_NEAR(cpu, 0.0, 1e-9);
}

TEST(Machine, RankExceptionPropagates) {
    Machine m(cfg(2));
    EXPECT_THROW(m.run([](Rank& r) {
        if (r.id() == 1) throw std::runtime_error("rank boom");
        r.compute(0.1);
    }),
                 std::runtime_error);
}

TEST(Machine, DeadlockDetectedAndReported) {
    Machine m(cfg(2));
    try {
        m.run([](Rank& r) {
            if (r.id() == 0) {
                double buf;
                r.recv(1, 7, &buf, sizeof buf); // never sent
            }
        });
        FAIL() << "expected deadlock error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("0"), std::string::npos);
    }
}

TEST(Machine, SecondRunRejected) {
    Machine m(cfg(1));
    m.run([](Rank&) {});
    EXPECT_THROW(m.run([](Rank&) {}), Error);
}

TEST(Machine, CompetingProcessSlowsOnlyItsNode) {
    Machine m(cfg(2));
    m.cluster().add_load_interval(1, 0.0, -1.0);
    std::vector<double> end_times(2);
    m.run([&](Rank& r) {
        r.compute(2.0);
        end_times[static_cast<size_t>(r.id())] = r.hrtime();
    });
    EXPECT_NEAR(end_times[0], 2.0, 1e-6);
    EXPECT_NEAR(end_times[1], 4.0, 1e-6);
}

TEST(Machine, DeterministicAcrossRuns) {
    auto run_once = [] {
        Machine m(cfg(4));
        m.cluster().add_load_interval(2, 0.5, 1.5);
        m.run([](Rank& r) {
            for (int i = 0; i < 5; ++i) {
                r.compute(0.1);
                int right = (r.id() + 1) % r.size();
                int left = (r.id() + r.size() - 1) % r.size();
                double x = r.hrtime();
                r.send(right, i, &x, sizeof x);
                double y;
                r.recv(left, i, &y, sizeof y);
            }
        });
        return m.elapsed_seconds();
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Machine, DestructorCleansUpAfterFailure) {
    // A machine whose run() threw must still destruct without hanging.
    auto m = std::make_unique<Machine>(cfg(2));
    EXPECT_THROW(m->run([](Rank& r) {
        if (r.id() == 0) throw std::runtime_error("die");
        double buf;
        r.recv(0, 1, &buf, sizeof buf);
    }),
                 std::runtime_error);
    m.reset(); // must not deadlock
    SUCCEED();
}

}  // namespace
}  // namespace dynmpi::msg
