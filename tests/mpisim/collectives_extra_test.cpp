// Tests for the second wave of collectives: scatter, scan, ring_shift.
#include <gtest/gtest.h>

#include "mpisim/collectives.hpp"
#include "mpisim/machine.hpp"

namespace dynmpi::msg {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

class ExtraCollectives : public ::testing::TestWithParam<int> {};

TEST_P(ExtraCollectives, ScatterDeliversPerMemberChunks) {
    Machine m(cfg(GetParam()));
    int n = GetParam();
    m.run([n](Rank& r) {
        Group g = Group::world(r);
        std::vector<std::vector<int>> chunks;
        if (g.index_of(r.id()) == 0) {
            for (int j = 0; j < n; ++j)
                chunks.push_back(std::vector<int>(static_cast<size_t>(j + 1),
                                                  j * 100));
        }
        auto mine = scatter(r, g, 0, chunks);
        int rel = g.index_of(r.id());
        ASSERT_EQ(mine.size(), static_cast<size_t>(rel + 1));
        for (int x : mine) EXPECT_EQ(x, rel * 100);
    });
}

TEST_P(ExtraCollectives, ScanComputesInclusivePrefix) {
    Machine m(cfg(GetParam()));
    m.run([](Rank& r) {
        Group g = Group::world(r);
        int rel = g.index_of(r.id());
        std::vector<int> v{rel + 1, 1};
        v = scan(r, g, std::move(v), OpSum{});
        // Element 0: sum of 1..rel+1; element 1: rel+1 ones.
        EXPECT_EQ(v[0], (rel + 1) * (rel + 2) / 2);
        EXPECT_EQ(v[1], rel + 1);
    });
}

TEST_P(ExtraCollectives, ScanRespectsNonCommutativeOrder) {
    Machine m(cfg(GetParam()));
    m.run([](Rank& r) {
        Group g = Group::world(r);
        int rel = g.index_of(r.id());
        // "First writer wins" op: keep the left operand.
        auto keep_left = [](int a, int) { return a; };
        std::vector<int> v{rel};
        v = scan(r, g, std::move(v), keep_left);
        EXPECT_EQ(v[0], 0); // everyone ends with member 0's value
    });
}

TEST_P(ExtraCollectives, RingShiftRoutesByDistance) {
    Machine m(cfg(GetParam()));
    int n = GetParam();
    m.run([n](Rank& r) {
        Group g = Group::world(r);
        int rel = g.index_of(r.id());
        std::vector<int> mine{rel};
        auto from1 = ring_shift(r, g, mine, 1);
        EXPECT_EQ(from1[0], (rel - 1 + n) % n);
        auto back2 = ring_shift(r, g, mine, -2);
        EXPECT_EQ(back2[0], (rel + 2) % n);
    });
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, ExtraCollectives,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(ExtraCollectives, ScatterFromNonRootRejectsWrongChunkCount) {
    Machine m(cfg(2));
    EXPECT_THROW(m.run([](Rank& r) {
        Group g = Group::world(r);
        std::vector<std::vector<int>> chunks(1); // should be 2 at the root
        scatter(r, g, 0, chunks);
    }),
                 Error);
}

TEST(ExtraCollectives, ScatterOnSubgroup) {
    Machine m(cfg(4));
    m.run([](Rank& r) {
        Group sub({1, 3});
        if (!sub.contains(r.id())) return;
        std::vector<std::vector<double>> chunks;
        if (sub.index_of(r.id()) == 0) chunks = {{1.5}, {2.5}};
        auto mine = scatter(r, sub, 0, chunks);
        ASSERT_EQ(mine.size(), 1u);
        EXPECT_DOUBLE_EQ(mine[0], sub.index_of(r.id()) == 0 ? 1.5 : 2.5);
    });
}

}  // namespace
}  // namespace dynmpi::msg
