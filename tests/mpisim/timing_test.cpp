// Tests for the measurement facilities the Dyn-MPI runtime relies on:
// gethrtime-style wall clocks, /proc-style quantized CPU time, and per-row
// compute timings (paper §4.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi::msg {
namespace {

sim::ClusterConfig cfg(int nodes, double jitter = 0.0) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = jitter;
    return c;
}

TEST(Timing, HrtimeTracksVirtualClock) {
    Machine m(cfg(1));
    m.run([](Rank& r) {
        double t0 = r.hrtime();
        r.compute(0.5);
        r.sleep(0.25);
        EXPECT_NEAR(r.hrtime() - t0, 0.75, 1e-6);
    });
}

TEST(Timing, ProcCpuTimeQuantizedToJiffy) {
    Machine m(cfg(1));
    m.run([](Rank& r) {
        r.compute(0.0153); // 15.3 ms of CPU
        EXPECT_NEAR(r.proc_cpu_time(), 0.010, 1e-9); // one whole jiffy
        EXPECT_NEAR(r.exact_cpu_time(), 0.0153, 1e-6);
    });
}

TEST(Timing, ProcCpuExcludesCompetingProcessTime) {
    // /proc counts only the app's own CPU — the property the paper exploits.
    Machine m(cfg(1));
    m.cluster().add_load_interval(0, 0.0, -1.0, 3);
    m.run([](Rank& r) {
        r.compute(0.1);
        double wall = r.hrtime();
        EXPECT_NEAR(wall, 0.4, 1e-6); // 4-way sharing
        EXPECT_NEAR(r.exact_cpu_time(), 0.1, 1e-6);
    });
}

TEST(Timing, ComputeRowsReturnsPerRowCosts) {
    Machine m(cfg(1));
    m.run([](Rank& r) {
        std::vector<double> rows{0.1, 0.2, 0.3};
        auto t = r.compute_rows(rows);
        ASSERT_EQ(t.wall.size(), 3u);
        EXPECT_NEAR(t.wall[0], 0.1, 1e-9);
        EXPECT_NEAR(t.wall[1], 0.2, 1e-9);
        EXPECT_NEAR(t.wall[2], 0.3, 1e-9);
        EXPECT_NEAR(t.cpu[0], 0.1, 1e-9);
        EXPECT_NEAR(r.hrtime(), 0.6, 1e-6);
    });
}

TEST(Timing, LoadedNodeWallTimesInflatedCpuTimesNot) {
    Machine m(cfg(1));
    m.cluster().add_load_interval(0, 0.0, -1.0, 1);
    m.run([](Rank& r) {
        std::vector<double> rows(4, 0.05);
        auto t = r.compute_rows(rows);
        for (double w : t.wall) EXPECT_NEAR(w, 0.10, 1e-9); // 2x slowdown
        for (double c : t.cpu) EXPECT_NEAR(c, 0.05, 1e-9);  // unchanged
    });
}

TEST(Timing, JitterMakesShortRowWallTimesNoisyButMinFilters) {
    // With scheduling jitter enabled and a loaded node, individual short-row
    // wall measurements are inflated, but the minimum over several phase
    // cycles approaches the true loaded time (paper: min over the grace
    // period removes context-switch spikes).
    Machine m(cfg(1, /*jitter=*/1.0));
    m.cluster().add_load_interval(0, 0.0, -1.0, 1);
    m.run([](Rank& r) {
        const double true_loaded = 0.004; // 2ms * (1+1)
        std::vector<double> best(8, 1e9);
        double worst_seen = 0.0;
        for (int cycle = 0; cycle < 5; ++cycle) {
            std::vector<double> rows(8, 0.002);
            auto t = r.compute_rows(rows);
            for (int i = 0; i < 8; ++i) {
                best[(size_t)i] = std::min(best[(size_t)i], t.wall[(size_t)i]);
                worst_seen = std::max(worst_seen, t.wall[(size_t)i]);
            }
        }
        // Jitter should have produced at least one sample well above truth.
        EXPECT_GT(worst_seen, 2 * true_loaded);
        // The min filter gets within one small epsilon of truth.
        for (double b : best) {
            EXPECT_GE(b, true_loaded - 1e-9);
            EXPECT_LT(b, true_loaded + 0.015);
        }
    });
}

TEST(Timing, ComputeRowsConsistentWithTotalElapsed) {
    Machine m(cfg(1));
    m.cluster().add_load_interval(0, 0.25, 0.75, 2);
    m.run([](Rank& r) {
        std::vector<double> rows(10, 0.1);
        double t0 = r.hrtime();
        auto t = r.compute_rows(rows);
        double measured_total =
            std::accumulate(t.wall.begin(), t.wall.end(), 0.0);
        EXPECT_NEAR(measured_total, r.hrtime() - t0, 1e-6);
    });
}

}  // namespace
}  // namespace dynmpi::msg
