// Second-wave MPI compat calls (gather/scatter/alltoall/probe/count) and
// the machine's traffic accounting.
#include <gtest/gtest.h>

#include "mpisim/machine.hpp"
#include "mpisim/mpi_compat.hpp"

namespace dynmpi::mpi {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

TEST(MpiCompatExtra, GatherCollectsAtRoot) {
    msg::Machine m(cfg(4));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        int mine[2] = {r.id(), r.id() * r.id()};
        int all[8] = {};
        MPI_Gather(mine, 2, MPI_INT, all, 2, MPI_INT, 1, MPI_COMM_WORLD);
        if (r.id() == 1)
            for (int k = 0; k < 4; ++k) {
                EXPECT_EQ(all[2 * k], k);
                EXPECT_EQ(all[2 * k + 1], k * k);
            }
        MPI_Finalize();
    });
}

TEST(MpiCompatExtra, ScatterDealsFromRoot) {
    msg::Machine m(cfg(3));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        double chunks[6] = {10, 11, 20, 21, 30, 31};
        double mine[2] = {};
        MPI_Scatter(r.id() == 0 ? chunks : nullptr, 2, MPI_DOUBLE, mine, 2,
                    MPI_DOUBLE, 0, MPI_COMM_WORLD);
        EXPECT_DOUBLE_EQ(mine[0], (r.id() + 1) * 10.0);
        EXPECT_DOUBLE_EQ(mine[1], (r.id() + 1) * 10.0 + 1);
        MPI_Finalize();
    });
}

TEST(MpiCompatExtra, AlltoallTransposes) {
    msg::Machine m(cfg(3));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        int out[3], in[3];
        for (int j = 0; j < 3; ++j) out[j] = r.id() * 10 + j;
        MPI_Alltoall(out, 1, MPI_INT, in, 1, MPI_INT, MPI_COMM_WORLD);
        for (int i = 0; i < 3; ++i) EXPECT_EQ(in[i], i * 10 + r.id());
        MPI_Finalize();
    });
}

TEST(MpiCompatExtra, IprobeAndGetCount) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        if (r.id() == 0) {
            double v[3] = {1, 2, 3};
            MPI_Send(v, 3, MPI_DOUBLE, 1, 9, MPI_COMM_WORLD);
        } else {
            int flag = 0;
            MPI_Iprobe(0, 9, MPI_COMM_WORLD, &flag, nullptr);
            EXPECT_EQ(flag, 0); // not yet arrived
            mpi_rank().sleep(0.5);
            MPI_Iprobe(0, 9, MPI_COMM_WORLD, &flag, nullptr);
            EXPECT_EQ(flag, 1);
            double v[3];
            MPI_Status st;
            MPI_Recv(v, 3, MPI_DOUBLE, 0, 9, MPI_COMM_WORLD, &st);
            int count = 0;
            MPI_Get_count(&st, MPI_DOUBLE, &count);
            EXPECT_EQ(count, 3);
        }
        MPI_Finalize();
    });
}

TEST(MpiCompatExtra, TrafficAccountingSplitsBySpace) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        MPI_Init(r);
        // One user message and one collective.
        if (r.id() == 0) {
            int v = 1;
            MPI_Send(&v, 1, MPI_INT, 1, 0, MPI_COMM_WORLD);
        } else {
            int v;
            MPI_Recv(&v, 1, MPI_INT, 0, 0, MPI_COMM_WORLD,
                     MPI_STATUS_IGNORE);
        }
        MPI_Barrier(MPI_COMM_WORLD);
        MPI_Finalize();
    });
    const auto& t = m.traffic();
    auto user = static_cast<std::size_t>(msg::TagSpace::User);
    auto coll = static_cast<std::size_t>(msg::TagSpace::Collective);
    EXPECT_EQ(t.messages[user], 1u);
    EXPECT_EQ(t.bytes[user], sizeof(int));
    EXPECT_GE(t.messages[coll], 2u); // barrier tree traffic
    EXPECT_EQ(t.control_messages, 0u);
}

TEST(MpiCompatExtra, ControlTrafficCountedSeparately) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        if (r.id() == 0) {
            msg::Rank::ControlScope control(r);
            double v = 1;
            r.send_wire(1, msg::make_tag(msg::TagSpace::Runtime, 5), &v,
                        sizeof v);
        } else {
            msg::Rank::ControlScope control(r);
            r.recv_wire(0, msg::make_tag(msg::TagSpace::Runtime, 5));
        }
    });
    EXPECT_EQ(m.traffic().control_messages, 1u);
    EXPECT_EQ(m.traffic().control_bytes, sizeof(double));
    EXPECT_EQ(m.traffic().total_messages(), 0u);
}

}  // namespace
}  // namespace dynmpi::mpi
