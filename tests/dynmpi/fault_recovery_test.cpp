// Runtime hardening under injected faults: crashes mid-run, stale and
// dropped load reports, quarantine/readmit, and transient send failures.
// The chaos invariants must hold through every fault class — every row
// owned exactly once, data intact, block counts covering the row space —
// and identical seed + script must give identical runs.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"
#include "sim/fault_plan.hpp"
#include "support/trace.hpp"

namespace dynmpi {
namespace {

struct FaultParams {
    int nodes = 4;
    int rows = 48;
    int cycles = 60;
    double row_cost = 4e-3;
    std::string script;
    RuntimeOptions opts;
    int collector = 0; ///< rank that reports the outcome (never crash it)
};

struct FaultOutcome {
    bool data_ok = true;
    double checksum = 0;
    int crash_repairs = 0;
    int quarantines = 0;
    int readmits = 0;
    int stale_fallbacks = 0;
    int readds = 0;
    std::vector<int> final_counts;
    double elapsed = 0;
    std::uint64_t send_failures = 0;
    // Replication / rejoin observables (summed or maxed over all ranks).
    double recovered_sum = 0; ///< rows handed out via take_recovered_rows()
    double restored_sum = 0;  ///< rows refilled from buddy replicas
    double lost_sum = 0;      ///< rows the restore protocol reported lost
    double rejoins_max = 0;
    int final_active = 0;
    std::uint64_t replica_bytes = 0;
};

FaultOutcome run_with_faults(const FaultParams& fp) {
    sim::ClusterConfig cc;
    cc.num_nodes = fp.nodes;
    cc.seed = 7;
    cc.cpu.jitter_frac = 0.0;
    cc.ps_period = sim::from_seconds(0.25);
    msg::Machine m(cc);
    if (!fp.script.empty())
        m.cluster().install_faults(sim::FaultPlan::parse(fp.script));

    FaultOutcome out;
    m.run([&](msg::Rank& r) {
        RuntimeOptions o = fp.opts;
        o.calibrate = false;
        Runtime rt(r, fp.rows, o);
        auto& A = rt.register_dense("A", 4, sizeof(double));
        int ph = rt.init_phase(
            0, fp.rows, PhaseComm{CommPattern::NearestNeighbor, 32});
        rt.add_array_access("A", AccessMode::Write, ph, 1, 0);
        rt.add_array_access("A", AccessMode::Read, ph, 1, -1);
        rt.add_array_access("A", AccessMode::Read, ph, 1, +1);
        rt.commit_setup();

        auto fill = [&](const std::vector<int>& rows) {
            for (int row : rows)
                for (int j = 0; j < 4; ++j)
                    A.at<double>(row, j) = row * 7.0 + j;
        };
        fill(rt.my_iters(ph).to_vector());

        int recovered = 0;
        // A revived rank re-enters here with stats().cycles already set to
        // the cycle it must pick up the status channel from.
        for (int c = rt.stats().cycles; c < fp.cycles; ++c) {
            rt.begin_cycle();
            if (rt.participating()) {
                std::vector<double> costs(
                    static_cast<std::size_t>(rt.my_iters(ph).count()),
                    fp.row_cost);
                rt.run_phase(ph, costs);
            }
            rt.end_cycle();
            // Rows the runtime could not restore arrive zero-filled; the
            // application regenerates them (checkpointless recovery).  With
            // replication on this only fires for double-crash losses.
            RowSet lost = rt.take_recovered_rows();
            recovered += lost.count();
            fill(lost.to_vector());
        }

        bool ok = true;
        for (int row : rt.my_iters(ph).to_vector())
            for (int j = 0; j < 4; ++j)
                if (A.at<double>(row, j) != row * 7.0 + j) ok = false;
        double local = 0;
        for (int row : rt.my_iters(ph).to_vector())
            local += A.at<double>(row, 0);
        double sum = rt.allreduce_active(local, msg::OpSum{});
        double lost_rows = 0;
        for (const RestoreRecord& rr : rt.stats().restores)
            lost_rows += rr.lost;
        double restored =
            rt.allreduce_active(static_cast<double>(rt.stats().restored_rows),
                                msg::OpSum{});
        double recovered_all = rt.allreduce_active(
            static_cast<double>(recovered), msg::OpSum{});
        double lost_all = rt.allreduce_active(lost_rows, msg::OpSum{});
        double rejoins = rt.allreduce_active(
            static_cast<double>(rt.stats().rejoins), msg::OpMax{});
        if (r.id() == fp.collector) {
            out.data_ok = ok;
            out.checksum = sum;
            out.crash_repairs = rt.stats().crash_repairs;
            out.quarantines = rt.stats().quarantines;
            out.readmits = rt.stats().quarantine_readmits;
            out.stale_fallbacks = rt.stats().stale_fallbacks;
            out.readds = rt.stats().readds;
            out.final_counts = rt.distribution().counts();
            out.recovered_sum = recovered_all;
            out.restored_sum = restored;
            out.lost_sum = lost_all;
            out.rejoins_max = rejoins;
            out.final_active = rt.num_active();
            out.replica_bytes = rt.stats().replica_bytes;
        } else if (!ok) {
            throw Error("data corrupted on rank " + std::to_string(r.id()));
        }
    });
    out.elapsed = m.elapsed_seconds();
    out.send_failures = m.cluster().network().send_failures();
    return out;
}

double expected_checksum(int rows) {
    double e = 0;
    for (int row = 0; row < rows; ++row) e += row * 7.0;
    return e;
}

// The headline acceptance scenario: 8 nodes, one crashes mid-run, the run
// completes with every row owned exactly once and data intact.
TEST(FaultRecovery, CrashMidRunEightNodes) {
    FaultParams fp;
    fp.nodes = 8;
    fp.rows = 96;
    fp.cycles = 60;
    fp.script = "crash node=5 t=1.5\n";
    FaultOutcome out = run_with_faults(fp);
    EXPECT_TRUE(out.data_ok);
    EXPECT_GE(out.crash_repairs, 1);
    EXPECT_EQ(std::accumulate(out.final_counts.begin(),
                              out.final_counts.end(), 0),
              fp.rows);
    EXPECT_NEAR(out.checksum, expected_checksum(fp.rows), 1e-6);
}

TEST(FaultRecovery, TwoCrashesStillRecover) {
    FaultParams fp;
    fp.nodes = 6;
    fp.rows = 72;
    fp.cycles = 80;
    fp.script =
        "crash node=3 t=1.2\n"
        "crash node=5 t=3.7\n";
    FaultOutcome out = run_with_faults(fp);
    EXPECT_TRUE(out.data_ok);
    EXPECT_GE(out.crash_repairs, 2);
    EXPECT_NEAR(out.checksum, expected_checksum(fp.rows), 1e-6);
}

// The leader (node 0) is not special: recovery elects the next survivor.
TEST(FaultRecovery, LeaderCrash) {
    FaultParams fp;
    fp.nodes = 4;
    fp.rows = 48;
    fp.cycles = 60;
    fp.script = "crash node=0 t=2\n";
    fp.collector = 1;
    FaultOutcome out = run_with_faults(fp);
    EXPECT_TRUE(out.data_ok);
    EXPECT_GE(out.crash_repairs, 1);
    EXPECT_NEAR(out.checksum, expected_checksum(fp.rows), 1e-6);
}

// Same seed + same script => identical runs (virtual time included).
TEST(FaultRecovery, DeterministicUnderFaults) {
    FaultParams fp;
    fp.nodes = 8;
    fp.rows = 96;
    fp.cycles = 50;
    fp.script =
        "crash node=6 t=1.1\n"
        "slow node=2 t=0.7 dur=2 factor=0.5\n"
        "net-delay t=2 dur=1 extra=0.002\n";
    FaultOutcome a = run_with_faults(fp);
    FaultOutcome b = run_with_faults(fp);
    EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
    EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.final_counts, b.final_counts);
    EXPECT_EQ(a.crash_repairs, b.crash_repairs);
}

// Byte-identical JSONL trace across two runs of the same faulty scenario.
TEST(FaultRecovery, TraceIsByteIdenticalAcrossRuns) {
    FaultParams fp;
    fp.nodes = 8;
    fp.rows = 96;
    fp.cycles = 40;
    fp.script = "crash node=5 t=1.5\n";
    std::string traces[2];
    for (std::string& t : traces) {
        support::trace().enable();
        run_with_faults(fp);
        t = support::trace().jsonl();
        support::trace().disable();
        support::trace().clear();
    }
    ASSERT_FALSE(traces[0].empty());
    EXPECT_EQ(traces[0], traces[1]);
    EXPECT_NE(traces[0].find("fault.inject"), std::string::npos);
    EXPECT_NE(traces[0].find("runtime.crash_repair"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Buddy replication: crashes lose zero row data
// ---------------------------------------------------------------------------

// The tentpole acceptance scenario: with replication on, a single mid-run
// crash loses no data.  The adopter's rows are refilled from the buddy —
// bitwise, since the fill pattern is exact in doubles — and the application
// never sees a zero-filled recovered row.
TEST(FaultRecovery, ReplicationCrashLosesNoData) {
    FaultParams fp;
    fp.nodes = 8;
    fp.rows = 96;
    fp.cycles = 60;
    fp.script = "crash node=5 t=1.5\n";
    fp.opts.replicate = true;
    FaultOutcome out = run_with_faults(fp);
    EXPECT_TRUE(out.data_ok);
    EXPECT_GE(out.crash_repairs, 1);
    EXPECT_DOUBLE_EQ(out.recovered_sum, 0.0); // nothing was zero-filled
    EXPECT_GT(out.restored_sum, 0.0);
    EXPECT_DOUBLE_EQ(out.lost_sum, 0.0);
    EXPECT_GT(out.replica_bytes, 0u);
    EXPECT_EQ(std::accumulate(out.final_counts.begin(),
                              out.final_counts.end(), 0),
              fp.rows);
    EXPECT_NEAR(out.checksum, expected_checksum(fp.rows), 1e-6);
}

// Identical contents to a fault-free run: both runs end with every element
// equal to the generator value, which the per-element data_ok check asserts
// bitwise on every rank.  Here the crash hits the replication leader.
TEST(FaultRecovery, ReplicationLeaderCrashLosesNoData) {
    FaultParams fp;
    fp.nodes = 8;
    fp.rows = 96;
    fp.cycles = 60;
    fp.script = "crash node=0 t=1.5\n";
    fp.collector = 1;
    fp.opts.replicate = true;
    FaultOutcome out = run_with_faults(fp);
    EXPECT_TRUE(out.data_ok);
    EXPECT_GE(out.crash_repairs, 1);
    EXPECT_DOUBLE_EQ(out.recovered_sum, 0.0);
    EXPECT_GT(out.restored_sum, 0.0);
    EXPECT_NEAR(out.checksum, expected_checksum(fp.rows), 1e-6);
}

// Owner and buddy die inside one refresh interval: the copies died with the
// buddy, so those rows come back zero-filled through the diagnostics-only
// take_recovered_rows() escape hatch and the application regenerates them.
TEST(FaultRecovery, DoubleCrashFallsBackToZeroFill) {
    FaultParams fp;
    fp.nodes = 8;
    fp.rows = 96;
    fp.cycles = 60;
    fp.script =
        "crash node=3 t=1.5\n"
        "crash node=4 t=1.5\n";
    fp.opts.replicate = true;
    FaultOutcome out = run_with_faults(fp);
    EXPECT_TRUE(out.data_ok);
    EXPECT_GE(out.crash_repairs, 2);
    // Node 3's buddy (node 4) died with it: its rows are lost and refilled
    // by the app.  Node 4's buddy (node 5) survived: its rows are restored.
    EXPECT_GT(out.recovered_sum, 0.0);
    EXPECT_GT(out.lost_sum, 0.0);
    EXPECT_GT(out.restored_sum, 0.0);
    EXPECT_NEAR(out.checksum, expected_checksum(fp.rows), 1e-6);
}

// ---------------------------------------------------------------------------
// Node rejoin: crash + revive closes the shrink/grow loop
// ---------------------------------------------------------------------------

// A crashed node restarts, is readmitted through the epoch-revocation
// protocol, and the balancer hands it rows again: world size grows back and
// every row stays owned exactly once.
TEST(FaultRecovery, CrashThenReviveRestoresWorldSize) {
    FaultParams fp;
    fp.nodes = 8;
    fp.rows = 96;
    fp.cycles = 90;
    fp.script =
        "crash node=5 t=1.5\n"
        "revive node=5 t=2.5\n";
    fp.opts.replicate = true;
    FaultOutcome out = run_with_faults(fp);
    EXPECT_TRUE(out.data_ok);
    EXPECT_GE(out.crash_repairs, 1);
    EXPECT_GE(out.rejoins_max, 1.0);
    EXPECT_GE(out.readds, 1);
    EXPECT_EQ(out.final_active, fp.nodes); // world size restored
    EXPECT_EQ(static_cast<int>(out.final_counts.size()), fp.nodes);
    EXPECT_EQ(std::accumulate(out.final_counts.begin(),
                              out.final_counts.end(), 0),
              fp.rows);
    EXPECT_DOUBLE_EQ(out.recovered_sum, 0.0);
    EXPECT_NEAR(out.checksum, expected_checksum(fp.rows), 1e-6);
}

// Rejoin also works without replication: the revived node receives its new
// block through the normal redistribution, which ships actual contents.
TEST(FaultRecovery, CrashThenReviveWithoutReplication) {
    FaultParams fp;
    fp.nodes = 6;
    fp.rows = 72;
    fp.cycles = 90;
    fp.script =
        "crash node=3 t=1.5\n"
        "revive node=3 t=2.5\n";
    FaultOutcome out = run_with_faults(fp);
    EXPECT_TRUE(out.data_ok);
    EXPECT_GE(out.rejoins_max, 1.0);
    EXPECT_EQ(out.final_active, fp.nodes);
    EXPECT_NEAR(out.checksum, expected_checksum(fp.rows), 1e-6);
}

// Determinism must survive the full crash/restore/rejoin machinery:
// identical seed + script still yields a byte-identical trace.
TEST(FaultRecovery, ReviveTraceIsByteIdenticalAcrossRuns) {
    FaultParams fp;
    fp.nodes = 8;
    fp.rows = 96;
    fp.cycles = 80;
    fp.script =
        "crash node=5 t=1.5\n"
        "revive node=5 t=2.5\n";
    fp.opts.replicate = true;
    std::string traces[2];
    for (std::string& t : traces) {
        support::trace().enable();
        run_with_faults(fp);
        t = support::trace().jsonl();
        support::trace().disable();
        support::trace().clear();
    }
    ASSERT_FALSE(traces[0].empty());
    EXPECT_EQ(traces[0], traces[1]);
    EXPECT_NE(traces[0].find("runtime.replica_refresh"), std::string::npos);
    EXPECT_NE(traces[0].find("runtime.replica_restore"), std::string::npos);
    EXPECT_NE(traces[0].find("runtime.rejoin"), std::string::npos);
}

// A daemon that stops publishing makes its reports stale; the leader falls
// back to the baseline load instead of acting on garbage.
TEST(FaultRecovery, StaleReportsFallBack) {
    FaultParams fp;
    fp.nodes = 4;
    fp.rows = 48;
    fp.cycles = 80;
    fp.row_cost = 8e-3;
    fp.script = "drop-reports node=1 t=1\n";
    fp.opts.report_staleness_s = 0.6;
    fp.opts.quarantine_bad_reports = 1000; // isolate staleness from quarantine
    FaultOutcome out = run_with_faults(fp);
    EXPECT_TRUE(out.data_ok);
    EXPECT_GT(out.stale_fallbacks, 0);
    EXPECT_NEAR(out.checksum, expected_checksum(fp.rows), 1e-6);
}

// K consecutive bad reports quarantine the node (logically dropped from the
// candidate set); a clean grace period readmits it.
TEST(FaultRecovery, QuarantineAndReadmit) {
    FaultParams fp;
    fp.nodes = 4;
    fp.rows = 48;
    fp.cycles = 140;
    fp.row_cost = 8e-3;
    fp.script = "drop-reports node=1 t=1 dur=4\n";
    fp.opts.report_staleness_s = 0.6;
    fp.opts.quarantine_bad_reports = 2;
    fp.opts.readmit_clean_cycles = 8;
    fp.opts.grace_cycles = 3;
    FaultOutcome out = run_with_faults(fp);
    EXPECT_TRUE(out.data_ok);
    EXPECT_GE(out.quarantines, 1);
    EXPECT_GE(out.readmits, 1);
    EXPECT_GE(out.readds, 1); // the node physically rejoined
    EXPECT_NEAR(out.checksum, expected_checksum(fp.rows), 1e-6);
}

// Transient send failures are absorbed by bounded retry with backoff: the
// doomed attempts are counted, and no data is lost.
TEST(FaultRecovery, MessageLossRetries) {
    sim::ClusterConfig cc;
    cc.num_nodes = 2;
    cc.seed = 7;
    msg::Machine m(cc);
    m.cluster().install_faults(
        sim::FaultPlan::parse("lose-sends node=1 t=0 count=3\n"));
    std::vector<double> got;
    m.run([&](msg::Rank& r) {
        if (r.id() == 1) {
            for (int i = 0; i < 5; ++i) {
                double v = 100.0 + i;
                r.send(0, 9, &v, sizeof v);
            }
        } else {
            for (int i = 0; i < 5; ++i) {
                double v = 0;
                r.recv(1, 9, &v, sizeof v);
                got.push_back(v);
            }
        }
    });
    EXPECT_EQ(m.cluster().network().send_failures(), 3u);
    ASSERT_EQ(got.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(got[(std::size_t)i], 100.0 + i);
}

// Frozen reports (stale value, fresh timestamp) are the documented blind
// spot of the staleness check — but the run must still complete correctly.
TEST(FaultRecovery, FrozenReportsDoNotBreakTheRun) {
    FaultParams fp;
    fp.nodes = 4;
    fp.rows = 48;
    fp.cycles = 60;
    fp.script = "freeze-reports node=2 t=0.5\n";
    FaultOutcome out = run_with_faults(fp);
    EXPECT_TRUE(out.data_ok);
    EXPECT_NEAR(out.checksum, expected_checksum(fp.rows), 1e-6);
}

}  // namespace
}  // namespace dynmpi
