// Cyclic initial distributions through the runtime (paper §2.1 supports
// DMPI_BLOCK and cyclic layouts; adaptation re-lays data out as variable
// blocks).
#include <gtest/gtest.h>

#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

RuntimeOptions cyclic_opts(int block = 1) {
    RuntimeOptions o;
    o.calibrate = false;
    o.initial_dist = Distribution::Kind::Cyclic;
    o.cyclic_block_size = block;
    return o;
}

TEST(CyclicRuntime, InitialOwnershipIsRoundRobin) {
    msg::Machine m(cfg(3));
    m.run([](msg::Rank& r) {
        Runtime rt(r, 12, cyclic_opts());
        rt.register_dense("A", 2, sizeof(double));
        int ph = rt.init_phase(0, 12, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        auto mine = rt.my_iters(ph).to_vector();
        ASSERT_EQ(mine.size(), 4u);
        for (int i : mine) EXPECT_EQ(i % 3, r.id());
    });
}

TEST(CyclicRuntime, BlockCyclicRespectsBlockSize) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        Runtime rt(r, 16, cyclic_opts(4));
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, 16, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        auto mine = rt.my_iters(ph);
        EXPECT_EQ(mine.intervals().size(), 2u); // two blocks of 4
        EXPECT_EQ(mine.count(), 8);
    });
}

TEST(CyclicRuntime, NonContiguousRowsAllocated) {
    msg::Machine m(cfg(4));
    m.run([](msg::Rank& r) {
        Runtime rt(r, 32, cyclic_opts());
        auto& A = rt.register_dense("A", 2, sizeof(double));
        int ph = rt.init_phase(0, 32, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int i : rt.my_iters(ph).to_vector())
            A.at<double>(i, 0) = i; // must be allocated
        // Exactly my (non-contiguous) rows are held — nothing else.
        EXPECT_EQ(A.held(), rt.my_iters(ph));
        EXPECT_FALSE(A.has_row((r.id() + 1) % 4));
    });
}

TEST(CyclicRuntime, AdaptationMovesCyclicToVariableBlock) {
    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(1, 0.5, -1.0, 2);
    m.run([](msg::Rank& r) {
        RuntimeOptions o = cyclic_opts();
        o.enable_removal = false;
        Runtime rt(r, 64, o);
        auto& A = rt.register_dense("A", 4, sizeof(double));
        int ph = rt.init_phase(0, 64, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();

        // Author data under the cyclic layout.
        for (int i : rt.my_iters(ph).to_vector())
            for (int j = 0; j < 4; ++j) A.at<double>(i, j) = i * 10.0 + j;

        for (int t = 0; t < 80; ++t) {
            rt.begin_cycle();
            if (rt.participating()) {
                std::vector<double> costs(
                    static_cast<std::size_t>(rt.my_iters(ph).count()), 5e-3);
                rt.run_phase(ph, costs);
            }
            rt.end_cycle();
        }
        // Adapted to a block distribution with the loaded node shorted.
        EXPECT_GE(rt.stats().redistributions, 1);
        EXPECT_EQ(rt.distribution().kind(), Distribution::Kind::Block);
        auto counts = rt.distribution().counts();
        EXPECT_LT(counts[1], counts[0]);
        // Data survived the cyclic→block move.
        for (int i : rt.my_iters(ph).to_vector())
            for (int j = 0; j < 4; ++j)
                EXPECT_DOUBLE_EQ(A.at<double>(i, j), i * 10.0 + j);
    });
}

}  // namespace
}  // namespace dynmpi
