// Machine-size scaling: the runtime's invariants and overheads at 16 and 32
// nodes (the paper's largest configuration).
#include <gtest/gtest.h>

#include <numeric>

#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

struct ScaleOutcome {
    std::vector<int> counts;
    int redists = 0;
    bool data_ok = true;
};

ScaleOutcome run_scale(int nodes, int cycles) {
    msg::Machine m(cfg(nodes));
    m.cluster().add_load_interval(nodes / 2, 0.5, -1.0, 2);
    ScaleOutcome out;
    const int rows = nodes * 8;
    m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        Runtime rt(r, rows, o);
        auto& A = rt.register_dense("A", 2, sizeof(double));
        int ph = rt.init_phase(0, rows, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int row : rt.my_iters(ph).to_vector())
            A.at<double>(row, 1) = row + 0.5;
        for (int c = 0; c < cycles; ++c) {
            rt.begin_cycle();
            rt.run_phase(ph, std::vector<double>(
                                 static_cast<std::size_t>(
                                     rt.my_iters(ph).count()),
                                 2e-3));
            rt.end_cycle();
        }
        bool ok = true;
        for (int row : rt.my_iters(ph).to_vector())
            if (A.at<double>(row, 1) != row + 0.5) ok = false;
        if (!ok) throw Error("scale data corruption");
        if (r.id() == 0) {
            out.counts = rt.distribution().counts();
            out.redists = rt.stats().redistributions;
        }
    });
    return out;
}

class Scale : public ::testing::TestWithParam<int> {};

TEST_P(Scale, AdaptationHoldsAtMachineScale) {
    const int nodes = GetParam();
    ScaleOutcome out = run_scale(nodes, 120);
    EXPECT_GE(out.redists, 1);
    ASSERT_EQ(static_cast<int>(out.counts.size()), nodes);
    EXPECT_EQ(std::accumulate(out.counts.begin(), out.counts.end(), 0),
              nodes * 8);
    // Loaded node clearly below the unloaded norm.
    EXPECT_LT(out.counts[(std::size_t)nodes / 2], 7);
    // Every unloaded node within one row of its neighbours.
    int lo = 1000, hi = 0;
    for (int j = 0; j < nodes; ++j) {
        if (j == nodes / 2) continue;
        lo = std::min(lo, out.counts[(std::size_t)j]);
        hi = std::max(hi, out.counts[(std::size_t)j]);
    }
    EXPECT_LE(hi - lo, 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Scale, ::testing::Values(16, 32));

TEST(Scale, ThirtyTwoNodeRemovalRoundTrip) {
    msg::Machine m(cfg(32));
    m.cluster().add_load_interval(9, 0.3, 2.0, 5);
    const int rows = 32 * 4;
    int drops = 0, readds = 0, final_active = 0;
    m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.force_drop_loaded = true;
        Runtime rt(r, rows, o);
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, rows, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int c = 0; c < 600; ++c) {
            rt.begin_cycle();
            if (rt.participating())
                rt.run_phase(ph, std::vector<double>(
                                     static_cast<std::size_t>(
                                         rt.my_iters(ph).count()),
                                     1e-3));
            rt.end_cycle();
        }
        if (r.id() == 0) {
            drops = rt.stats().physical_drops;
            readds = rt.stats().readds;
            final_active = rt.num_active();
        }
    });
    EXPECT_GE(drops, 1);
    EXPECT_GE(readds, 1);
    EXPECT_EQ(final_active, 32);
}

}  // namespace
}  // namespace dynmpi
