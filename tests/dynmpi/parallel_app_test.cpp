// Competing *parallel* applications — the paper's §6 future-work case.
//
// A parallel competitor alternates compute and communicate in lockstep
// across several nodes.  The windowed dmpi_ps average prices it at its
// compute fraction ("the probability that an application is computing"),
// which is exactly the load number the balancer needs; an instantaneous
// sampler sees only 0 or 1.
#include <gtest/gtest.h>

#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"
#include "sim/ps_daemon.hpp"

namespace dynmpi {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

TEST(ParallelApp, DaemonPricesItAtComputeFraction) {
    sim::Cluster c(cfg(4));
    // Period divides the daemon window exactly, so the average is exact.
    c.add_parallel_app({0, 1}, 0.0, -1.0, /*period=*/0.05, /*duty=*/0.6);
    c.engine().run_until(sim::from_seconds(3.1));
    EXPECT_NEAR(c.daemon(0).avg_competing(), 0.6, 0.05);
    EXPECT_NEAR(c.daemon(1).avg_competing(), 0.6, 0.05);
    EXPECT_NEAR(c.daemon(2).avg_competing(), 0.0, 1e-9);
    // Instantaneous sampling sees 0 or 1, never the truth.
    sim::VmstatSampler v(c.node(0));
    int inst = v.sample_runnable();
    EXPECT_TRUE(inst == 0 || inst == 1);
}

TEST(ParallelApp, LockstepAcrossItsNodes) {
    sim::Cluster c(cfg(3));
    c.add_parallel_app({0, 1, 2}, 0.0, -1.0, 0.2, 0.5);
    // At any instant all member processes are in the same phase.
    for (double t : {0.05, 0.15, 0.25, 0.72}) {
        c.engine().run_until(sim::from_seconds(t));
        int a = c.node(0).active_competing();
        EXPECT_EQ(a, c.node(1).active_competing()) << "t=" << t;
        EXPECT_EQ(a, c.node(2).active_competing()) << "t=" << t;
    }
}

// NOTE on row sizes in the two runtime tests below: they stay >= the 10 ms
// jiffy so the /proc timing path is chosen.  With sub-jiffy rows the
// gethrtime min-filter samples walls from the competitor's idle windows and
// de-rates them by the *average* load — underestimating bursty-loaded rows.
// That is exactly the open problem the paper's §6 flags ("the probability
// that an application is computing"); /proc accounting does not suffer from
// it because it never contains competitor time in the first place.

TEST(ParallelApp, RuntimeAssignsFractionalShares) {
    // A 50%-duty parallel app on nodes 0 and 1: effective power 1/1.5 each,
    // nodes 2 and 3 stay at 1 — optimal counts ~ 12.8/12.8/19.2/19.2 of 64.
    msg::Machine m(cfg(4));
    m.cluster().add_parallel_app({0, 1}, 0.5, -1.0, 0.05, 0.5);
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        o.load_change_eps = 0.25; // fractional parallel-app loads
        Runtime rt(r, 64, o);
        rt.register_dense("A", 2, sizeof(double));
        int ph = rt.init_phase(0, 64, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int c = 0; c < 100; ++c) {
            rt.begin_cycle();
            rt.run_phase(ph, std::vector<double>(
                                 static_cast<std::size_t>(
                                     rt.my_iters(ph).count()),
                                 2e-2));
            rt.end_cycle();
        }
        EXPECT_GE(rt.stats().redistributions, 1);
        auto counts = rt.distribution().counts();
        // Loaded pair ends with clearly fewer rows, but far more than a
        // fully-loaded node would (fractional pricing, not 0-or-1).
        EXPECT_LT(counts[0], 16);
        EXPECT_GT(counts[0], 8);
        EXPECT_NEAR(counts[0], counts[1], 3);
        EXPECT_GT(counts[2], 17);
    });
}

TEST(ParallelApp, BoundedAppEventuallyReleasesNodes) {
    msg::Machine m(cfg(2));
    m.cluster().add_parallel_app({1}, 0.5, 3.0, 0.05, 0.8);
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        o.load_change_eps = 0.25;
        Runtime rt(r, 32, o);
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, 32, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int c = 0; c < 120; ++c) {
            rt.begin_cycle();
            rt.run_phase(ph, std::vector<double>(
                                 static_cast<std::size_t>(
                                     rt.my_iters(ph).count()),
                                 15e-3));
            rt.end_cycle();
        }
        // Shifted away while the app ran, then drifted back near even.
        EXPECT_GE(rt.stats().redistributions, 2);
        auto counts = rt.distribution().counts();
        EXPECT_NEAR(counts[0], counts[1], 3);
    });
}

}  // namespace
}  // namespace dynmpi
