// Element-type generality of the dense allocator: the paper registers arrays
// with an element size (Figure 2 passes sizeof(double) and an MPI datatype);
// float, int, and struct payloads must all round-trip.
#include <gtest/gtest.h>

#include "dynmpi/dense_array.hpp"

namespace dynmpi {
namespace {

struct Cell {
    float density;
    int flags;
    bool operator==(const Cell&) const = default;
};
static_assert(std::is_trivially_copyable_v<Cell>);

template <typename T>
class DenseTyped : public ::testing::Test {};

using Types = ::testing::Types<float, int, long, Cell>;
TYPED_TEST_SUITE(DenseTyped, Types);

template <typename T>
T test_value(int row, int j);
template <>
float test_value<float>(int row, int j) { return row * 2.5f + j; }
template <>
int test_value<int>(int row, int j) { return row * 100 + j; }
template <>
long test_value<long>(int row, int j) { return row * 1000L - j; }
template <>
Cell test_value<Cell>(int row, int j) {
    return Cell{row * 1.5f, row ^ j};
}

TYPED_TEST(DenseTyped, WriteReadPackUnpack) {
    DenseArray src("A", 12, 5, sizeof(TypeParam));
    src.ensure_rows(RowSet(2, 9));
    for (int row = 2; row < 9; ++row)
        for (int j = 0; j < 5; ++j)
            src.at<TypeParam>(row, j) = test_value<TypeParam>(row, j);

    DenseArray dst("A", 12, 5, sizeof(TypeParam));
    dst.unpack_rows(src.pack_rows(RowSet(3, 8)));
    for (int row = 3; row < 8; ++row)
        for (int j = 0; j < 5; ++j)
            EXPECT_EQ(dst.at<TypeParam>(row, j),
                      test_value<TypeParam>(row, j));
}

TYPED_TEST(DenseTyped, ElementSizeMismatchRejected) {
    DenseArray a("A", 4, 2, sizeof(TypeParam));
    a.ensure_rows(RowSet(0, 4));
    if constexpr (sizeof(TypeParam) != sizeof(double)) {
        EXPECT_THROW(a.template at<double>(0, 0), Error);
    } else {
        SUCCEED();
    }
}

TYPED_TEST(DenseTyped, NominalBytesMatchElementSize) {
    DenseArray a("A", 4, 3, sizeof(TypeParam));
    EXPECT_EQ(a.nominal_row_bytes(), 3 * sizeof(TypeParam));
}

}  // namespace
}  // namespace dynmpi
