// Fragmentation stress: cyclic ownership makes every transfer set maximally
// fragmented; data integrity and plan coverage must hold regardless.
#include <gtest/gtest.h>

#include "dynmpi/dense_array.hpp"
#include "dynmpi/redistributor.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"
#include "support/rng.hpp"

namespace dynmpi {
namespace {

using msg::Group;

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

TEST(CyclicRedistStress, CyclicToBlockMovesEverythingIntact) {
    const int nodes = 8, rows = 128;
    msg::Machine m(cfg(nodes));
    m.run([&](msg::Rank& r) {
        std::vector<int> members(nodes);
        for (int i = 0; i < nodes; ++i) members[(std::size_t)i] = i;
        Group g(members);
        auto oldd = Distribution::cyclic(0, rows, nodes);
        auto newd = Distribution::even_block(0, rows, nodes);

        std::vector<ArrayInfo> arrays;
        ArrayInfo ai;
        ai.array = std::make_unique<DenseArray>("A", rows, 2, sizeof(double));
        ai.accesses = {Drsd{"A", AccessMode::Write, 0, 1, 0}};
        arrays.push_back(std::move(ai));
        auto& A = static_cast<DenseArray&>(*arrays[0].array);
        A.ensure_rows(owned_rows(g, oldd, r.id()));
        for (int row : owned_rows(g, oldd, r.id()).to_vector())
            A.at<double>(row, 0) = row * 1.5;

        RedistContext ctx{rows, &g, &oldd, &g, &newd};
        auto stats = execute_redistribution(r, ctx, arrays, 11);
        // Under cyclic->block, this node keeps only the rows of its own new
        // block that it cyclically owned (one in every `nodes`), shipping
        // the rest: 16 owned - 2 kept = 14 here.
        EXPECT_EQ(static_cast<int>(stats.rows_moved),
                  rows / nodes - rows / (nodes * nodes));
        for (int row : owned_rows(g, newd, r.id()).to_vector())
            EXPECT_DOUBLE_EQ(A.at<double>(row, 0), row * 1.5);
        EXPECT_EQ(A.held(), owned_rows(g, newd, r.id()));
    });
}

TEST(CyclicRedistStress, RandomBlockPairsPreserveData) {
    Rng rng(99);
    for (int trial = 0; trial < 6; ++trial) {
        const int nodes = 2 + static_cast<int>(rng.next_below(5));
        const int rows = nodes * (4 + static_cast<int>(rng.next_below(12)));
        // Two random block distributions.
        auto random_counts = [&]() {
            std::vector<int> c(static_cast<std::size_t>(nodes), 1);
            int left = rows - nodes;
            for (int k = 0; k < left; ++k)
                ++c[rng.next_below((std::uint64_t)nodes)];
            return c;
        };
        auto c1 = random_counts(), c2 = random_counts();

        msg::Machine m(cfg(nodes));
        m.run([&](msg::Rank& r) {
            std::vector<int> members(nodes);
            for (int i = 0; i < nodes; ++i) members[(std::size_t)i] = i;
            Group g(members);
            auto oldd = Distribution::block(0, rows, c1);
            auto newd = Distribution::block(0, rows, c2);
            std::vector<ArrayInfo> arrays;
            ArrayInfo ai;
            ai.array =
                std::make_unique<DenseArray>("A", rows, 1, sizeof(double));
            ai.accesses = {Drsd{"A", AccessMode::Write, 0, 1, 0}};
            arrays.push_back(std::move(ai));
            auto& A = static_cast<DenseArray&>(*arrays[0].array);
            A.ensure_rows(owned_rows(g, oldd, r.id()));
            for (int row : owned_rows(g, oldd, r.id()).to_vector())
                A.at<double>(row, 0) = row + 0.25;

            RedistContext ctx{rows, &g, &oldd, &g, &newd};
            execute_redistribution(r, ctx, arrays, 21);
            for (int row : owned_rows(g, newd, r.id()).to_vector())
                ASSERT_DOUBLE_EQ(A.at<double>(row, 0), row + 0.25)
                    << "trial " << trial << " rank " << r.id();
        });
    }
}

}  // namespace
}  // namespace dynmpi
