// Golden regression: one fixed end-to-end scenario whose observable outcome
// is pinned.  Any change to the simulator's cost models, the balancer, or
// the redistribution machinery that shifts behaviour shows up here first —
// by design.  If a deliberate model change lands, re-derive the constants
// (they are printed on failure) and update them together with EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi {
namespace {

TEST(Golden, CanonicalAdaptationScenario) {
    sim::ClusterConfig cc;
    cc.num_nodes = 4;
    cc.seed = 42;
    msg::Machine m(cc);
    m.cluster().add_load_interval(2, 1.0, 6.0, 2);

    std::vector<int> counts;
    int redists = 0, drops = 0;
    m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 128, o);
        rt.register_dense("A", 16, sizeof(double));
        int ph = rt.init_phase(
            0, 128, PhaseComm{CommPattern::NearestNeighbor, 128});
        rt.add_array_access("A", AccessMode::Write, ph, 1, 0);
        rt.add_array_access("A", AccessMode::Read, ph, 1, -1);
        rt.add_array_access("A", AccessMode::Read, ph, 1, +1);
        rt.commit_setup();
        for (int c = 0; c < 120; ++c) {
            rt.begin_cycle();
            if (rt.participating()) {
                std::vector<double> costs(
                    static_cast<std::size_t>(rt.my_iters(ph).count()), 2e-3);
                rt.run_phase(ph, costs);
            }
            rt.end_cycle();
        }
        if (r.id() == 0) {
            counts = rt.distribution().counts();
            redists = rt.stats().redistributions;
            drops = rt.stats().physical_drops;
        }
    });

    // Pinned outcome (derived 2026-07; update deliberately, not casually).
    EXPECT_EQ(redists, 2) << "elapsed=" << m.elapsed_seconds();
    EXPECT_EQ(drops, 0);
    ASSERT_EQ(counts.size(), 4u);
    // After the CP clears, the distribution returns to near-even.
    for (int c : counts) EXPECT_NEAR(c, 32, 2) << m.elapsed_seconds();
    // Total virtual time pinned to the millisecond.
    EXPECT_NEAR(m.elapsed_seconds(), 9.9107, 0.02)
        << "exact: " << m.elapsed_seconds();
}

TEST(Golden, ExactRepeatability) {
    auto once = [] {
        sim::ClusterConfig cc;
        cc.num_nodes = 3;
        cc.seed = 7;
        msg::Machine m(cc);
        m.cluster().add_load_interval(1, 0.5, -1.0);
        m.run([&](msg::Rank& r) {
            RuntimeOptions o;
            o.calibrate = false;
            Runtime rt(r, 48, o);
            rt.register_dense("A", 4, sizeof(double));
            int ph = rt.init_phase(0, 48, PhaseComm{CommPattern::None, 0});
            rt.add_array_access("A", AccessMode::Write, ph);
            rt.commit_setup();
            for (int c = 0; c < 60; ++c) {
                rt.begin_cycle();
                if (rt.participating())
                    rt.run_phase(ph,
                                 std::vector<double>(
                                     static_cast<std::size_t>(
                                         rt.my_iters(ph).count()),
                                     3e-3));
                rt.end_cycle();
            }
        });
        return m.elapsed_seconds();
    };
    double a = once(), b = once();
    EXPECT_EQ(a, b); // bit-for-bit, not just close
}

}  // namespace
}  // namespace dynmpi
