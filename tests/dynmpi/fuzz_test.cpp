// Failure injection and malformed-input fuzzing.
//
// Redistribution trusts wire payloads produced by pack_rows; these tests
// feed truncated, corrupted, and randomized buffers into unpack_rows and
// assert that every malformed input is rejected with a clean Error — never
// a crash, never silent acceptance of a short buffer.
#include <gtest/gtest.h>

#include <cstring>

#include "dynmpi/dense_array.hpp"
#include "dynmpi/runtime.hpp"
#include "dynmpi/sparse_matrix.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"
#include "support/rng.hpp"

namespace dynmpi {
namespace {

std::vector<std::byte> packed_dense() {
    DenseArray a("A", 8, 4, sizeof(double));
    a.ensure_rows(RowSet(0, 4));
    for (int r = 0; r < 4; ++r)
        for (int j = 0; j < 4; ++j) a.at<double>(r, j) = r + j;
    return a.pack_rows(RowSet(0, 4));
}

std::vector<std::byte> packed_sparse() {
    SparseMatrix m("S", 8, 16);
    m.ensure_rows(RowSet(0, 4));
    for (int r = 0; r < 4; ++r) m.set(r, (r * 3) % 16, 1.5 * r);
    return m.pack_rows(RowSet(0, 4));
}

TEST(Fuzz, TruncatedDenseBufferRejected) {
    auto good = packed_dense();
    for (std::size_t cut : {0u, 2u, 5u, 17u, 40u}) {
        if (cut >= good.size()) continue;
        std::vector<std::byte> bad(good.begin(),
                                   good.begin() + (std::ptrdiff_t)cut);
        DenseArray dst("A", 8, 4, sizeof(double));
        EXPECT_THROW(dst.unpack_rows(bad), Error) << "cut=" << cut;
    }
}

TEST(Fuzz, TruncatedSparseBufferRejected) {
    auto good = packed_sparse();
    for (std::size_t frac : {1u, 3u, 7u}) {
        std::vector<std::byte> bad(
            good.begin(), good.begin() + (std::ptrdiff_t)(good.size() * frac / 8));
        SparseMatrix dst("S", 8, 16);
        EXPECT_THROW(dst.unpack_rows(bad), Error) << "frac=" << frac;
    }
}

TEST(Fuzz, WrongRowSizeRejected) {
    auto good = packed_dense();
    DenseArray narrow("A", 8, 2, sizeof(double)); // rows half the size
    EXPECT_THROW(narrow.unpack_rows(good), Error);
}

TEST(Fuzz, SparsePayloadNotEntireEntriesRejected) {
    auto good = packed_sparse();
    // Corrupt a row's byte-length field to a non-multiple of the entry size.
    // Layout: u32 nrows, then u32 row_id, u64 nbytes, ...
    std::uint64_t bogus = 13;
    std::memcpy(good.data() + 8, &bogus, sizeof bogus);
    SparseMatrix dst("S", 8, 16);
    EXPECT_THROW(dst.unpack_rows(good), Error);
}

TEST(Fuzz, RandomBuffersNeverCrash) {
    Rng rng(31337);
    int rejected = 0, accepted = 0;
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<std::byte> junk(rng.next_below(96));
        for (auto& b : junk)
            b = static_cast<std::byte>(rng.next_below(256));
        DenseArray d("A", 8, 4, sizeof(double));
        SparseMatrix s("S", 8, 16);
        try {
            d.unpack_rows(junk);
            ++accepted;
        } catch (const Error&) {
            ++rejected;
        }
        try {
            s.unpack_rows(junk);
            ++accepted;
        } catch (const Error&) {
            ++rejected;
        }
    }
    // Random junk should essentially never validate (a zero-row header is
    // the only trivially-valid input).
    EXPECT_GT(rejected, 300);
    (void)accepted;
}

TEST(Fuzz, MutatedValidBufferEitherRejectedOrConsistent) {
    Rng rng(2718);
    auto good = packed_dense();
    for (int trial = 0; trial < 200; ++trial) {
        auto mutated = good;
        std::size_t pos = rng.next_below(mutated.size());
        mutated[pos] = static_cast<std::byte>(rng.next_below(256));
        DenseArray dst("A", 8, 4, sizeof(double));
        try {
            dst.unpack_rows(mutated);
            // If accepted, the array must be internally consistent: every
            // held row readable.
            for (int r : dst.held().to_vector())
                (void)dst.row_data(r);
        } catch (const Error&) {
            // Clean rejection is fine.
        }
    }
    SUCCEED();
}

// ---------------------------------------------------------------------------
// Failure injection in the SPMD machine
// ---------------------------------------------------------------------------

TEST(Fuzz, RankFailureMidCollectiveUnwindsCleanly) {
    msg::Machine m([] {
        sim::ClusterConfig c;
        c.num_nodes = 4;
        c.cpu.jitter_frac = 0.0;
        return c;
    }());
    EXPECT_THROW(m.run([](msg::Rank& r) {
        msg::Group g = msg::Group::world(r);
        msg::barrier(r, g);
        if (r.id() == 2) throw std::runtime_error("injected fault");
        // The others head into a collective that can never complete.
        msg::allreduce_scalar(r, g, 1.0, msg::OpSum{});
    }),
                 std::runtime_error);
}

TEST(Fuzz, RuntimeMisuseAfterCommitRejected) {
    msg::Machine m([] {
        sim::ClusterConfig c;
        c.num_nodes = 2;
        c.cpu.jitter_frac = 0.0;
        return c;
    }());
    EXPECT_THROW(m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 16, o);
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, 16, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        rt.register_dense("B", 1, sizeof(double)); // too late
    }),
                 Error);
}

}  // namespace
}  // namespace dynmpi
