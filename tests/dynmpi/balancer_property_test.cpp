// Property tests for the balancing math: monotonicity, conservation, and
// consistency laws that must hold for arbitrary inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "dynmpi/balancer.hpp"
#include "support/rng.hpp"

namespace dynmpi {
namespace {

class BalancerProperty : public ::testing::TestWithParam<int> {};

BalanceInput random_input(Rng& rng) {
    BalanceInput in;
    int nodes = 2 + static_cast<int>(rng.next_below(10));
    int rows = nodes * (2 + static_cast<int>(rng.next_below(40)));
    in.row_costs.resize(static_cast<std::size_t>(rows));
    for (auto& c : in.row_costs) c = rng.uniform(1e-5, 5e-3);
    for (int j = 0; j < nodes; ++j) {
        double load = rng.next_double() < 0.4
                          ? rng.uniform(0.5, 4.0)
                          : 0.0;
        in.nodes.push_back(NodePower{rng.uniform(0.5, 2.0), load});
    }
    in.comm_cpu_per_node = rng.uniform(0.0, 2e-3);
    return in;
}

TEST_P(BalancerProperty, SharesFormAValidDistribution) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7717);
    for (int trial = 0; trial < 20; ++trial) {
        BalanceInput in = random_input(rng);
        for (auto shares : {successive_shares(in), naive_shares(in.nodes)}) {
            double sum = std::accumulate(shares.begin(), shares.end(), 0.0);
            ASSERT_NEAR(sum, 1.0, 1e-6);
            for (double s : shares) ASSERT_GE(s, -1e-12);
        }
    }
}

TEST_P(BalancerProperty, MoreLoadNeverMeansMoreShare) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
    for (int trial = 0; trial < 15; ++trial) {
        BalanceInput in = random_input(rng);
        auto base = successive_shares(in);
        // Add one competitor to a random node: its share must not grow.
        std::size_t victim = rng.next_below(in.nodes.size());
        BalanceInput heavier = in;
        heavier.nodes[victim].avg_competing += 1.0;
        auto worse = successive_shares(heavier);
        ASSERT_LE(worse[victim], base[victim] + 1e-9)
            << "trial " << trial << " victim " << victim;
    }
}

TEST_P(BalancerProperty, BlocksConserveRowsUnderAnyShares) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
    for (int trial = 0; trial < 20; ++trial) {
        BalanceInput in = random_input(rng);
        auto shares = successive_shares(in);
        for (int min_rows : {0, 1}) {
            auto counts = blocks_from_shares(in.row_costs, shares, min_rows);
            ASSERT_EQ(std::accumulate(counts.begin(), counts.end(), 0),
                      static_cast<int>(in.row_costs.size()));
            for (int c : counts) ASSERT_GE(c, min_rows);
        }
    }
}

TEST_P(BalancerProperty, PoolWorkIsConserved) {
    // Pool assignment must hand out exactly the requested work, even under
    // strong heterogeneity and comm terms large enough to park weak members
    // at zero (the old clamp leaked the parked members' deficits).
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 52361);
    for (int trial = 0; trial < 25; ++trial) {
        int n = 1 + static_cast<int>(rng.next_below(12));
        std::vector<NodePower> nodes;
        std::vector<std::size_t> pool;
        for (int j = 0; j < n; ++j) {
            // Spread powers over ~3 orders of magnitude.
            nodes.push_back(NodePower{rng.uniform(0.005, 5.0),
                                      rng.uniform(0.0, 3.0)});
            pool.push_back(static_cast<std::size_t>(j));
        }
        double work = rng.uniform(0.0, 10.0);
        double comm = rng.uniform(0.0, 2.0);
        std::vector<double> w(static_cast<std::size_t>(n), -1.0);
        assign_pool_work(nodes, pool, work, comm, w);
        double sum = 0.0;
        for (auto j : pool) {
            ASSERT_GE(w[j], 0.0) << "trial " << trial << " member " << j;
            sum += w[j];
        }
        ASSERT_NEAR(sum, work, 1e-9 * std::max(1.0, work))
            << "trial " << trial;
    }
}

TEST_P(BalancerProperty, PredictedTimeNeverBelowPerfectParallel) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 997);
    for (int trial = 0; trial < 15; ++trial) {
        BalanceInput in = random_input(rng);
        auto counts = blocks_from_shares(in.row_costs, successive_shares(in));
        double t = predict_cycle_time(in, counts);
        double total =
            std::accumulate(in.row_costs.begin(), in.row_costs.end(), 0.0);
        double power = 0;
        for (const auto& n : in.nodes) power += n.power();
        ASSERT_GE(t, total / power - 1e-12); // lower bound: ideal split
    }
}

TEST_P(BalancerProperty, CapsNeverViolatedByRandomSpills) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537);
    for (int trial = 0; trial < 25; ++trial) {
        int nodes = 2 + static_cast<int>(rng.next_below(8));
        int rows = nodes * (4 + static_cast<int>(rng.next_below(30)));
        std::vector<int> counts(static_cast<std::size_t>(nodes), 0);
        for (int k = 0; k < rows; ++k)
            ++counts[rng.next_below((std::uint64_t)nodes)];
        // Caps: generous enough in aggregate, tight on some nodes.
        std::vector<int> caps(static_cast<std::size_t>(nodes), 0);
        for (int j = 0; j < nodes / 2; ++j)
            caps[(std::size_t)j] =
                1 + static_cast<int>(rng.next_below((std::uint64_t)rows));
        long long capacity = 0;
        bool unlimited = false;
        for (int j = 0; j < nodes; ++j) {
            if (caps[(std::size_t)j] == 0) unlimited = true;
            capacity += caps[(std::size_t)j];
        }
        if (!unlimited && capacity < rows) continue; // infeasible draw
        auto result = apply_row_caps(counts, caps);
        ASSERT_EQ(std::accumulate(result.begin(), result.end(), 0), rows);
        for (int j = 0; j < nodes; ++j)
            if (caps[(std::size_t)j] > 0)
                ASSERT_LE(result[(std::size_t)j], caps[(std::size_t)j]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalancerProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace dynmpi
