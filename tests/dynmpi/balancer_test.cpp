#include "dynmpi/balancer.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/error.hpp"

namespace dynmpi {
namespace {

std::vector<double> uniform_costs(int n, double c = 0.001) {
    return std::vector<double>(static_cast<size_t>(n), c);
}

BalanceInput make_input(std::vector<NodePower> nodes, int rows = 1024,
                        double comm = 0.0) {
    BalanceInput in;
    in.row_costs = uniform_costs(rows);
    in.nodes = std::move(nodes);
    in.comm_cpu_per_node = comm;
    return in;
}

TEST(NaiveShares, EqualNodesSplitEvenly) {
    auto s = naive_shares({{1, 0}, {1, 0}, {1, 0}, {1, 0}});
    for (double x : s) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(NaiveShares, LoadedNodeGetsPowerShare) {
    // One competing process halves the node's power: shares 2/7,2/7,2/7,1/7 —
    // exactly the paper's 4-node CG distribution.
    auto s = naive_shares({{1, 0}, {1, 0}, {1, 0}, {1, 1}});
    EXPECT_NEAR(s[0], 2.0 / 7.0, 1e-12);
    EXPECT_NEAR(s[3], 1.0 / 7.0, 1e-12);
}

TEST(NaiveShares, SpeedScales) {
    auto s = naive_shares({{2, 0}, {1, 0}});
    EXPECT_NEAR(s[0], 2.0 / 3.0, 1e-12);
}

TEST(SuccessiveShares, NoCommReducesToNaive) {
    auto in = make_input({{1, 0}, {1, 0}, {1, 1}}, 1024, 0.0);
    auto s = successive_shares(in);
    auto n = naive_shares(in.nodes);
    for (size_t i = 0; i < s.size(); ++i) EXPECT_NEAR(s[i], n[i], 1e-6);
}

TEST(SuccessiveShares, AllUnloadedSplitsEvenly) {
    auto in = make_input({{1, 0}, {1, 0}, {1, 0}}, 300, 0.002);
    auto s = successive_shares(in);
    for (double x : s) EXPECT_NEAR(x, 1.0 / 3.0, 1e-9);
}

TEST(SuccessiveShares, CommCostShiftsWorkOffLoadedNode) {
    // The §4.3 effect: with a CPU cost of communication, the loaded node
    // should get *less* than its naive relative-power share.
    auto in = make_input({{1, 0}, {1, 0}, {1, 0}, {1, 2}}, 1024, 0.05);
    auto s = successive_shares(in);
    auto nv = naive_shares(in.nodes);
    EXPECT_LT(s[3], nv[3]);
    EXPECT_GT(s[0], nv[0]);
}

TEST(SuccessiveShares, EqualizesPredictedCompletionTimes) {
    auto in = make_input({{1, 0}, {1, 0}, {1, 1}, {1, 3}}, 4096, 0.02);
    auto s = successive_shares(in);
    double total =
        std::accumulate(in.row_costs.begin(), in.row_costs.end(), 0.0);
    std::vector<double> t;
    for (size_t j = 0; j < s.size(); ++j)
        t.push_back((s[j] * total + in.comm_cpu_per_node) /
                    in.nodes[j].power());
    double tmin = *std::min_element(t.begin(), t.end());
    double tmax = *std::max_element(t.begin(), t.end());
    EXPECT_LT((tmax - tmin) / tmax, 0.05);
}

TEST(SuccessiveShares, SharesSumToOne) {
    auto in = make_input({{1, 0}, {2, 1}, {0.5, 0}, {1, 4}}, 512, 0.01);
    auto s = successive_shares(in);
    EXPECT_NEAR(std::accumulate(s.begin(), s.end(), 0.0), 1.0, 1e-9);
    for (double x : s) EXPECT_GE(x, 0.0);
}

TEST(SuccessiveShares, HeavilyLoadedNodeCanReachZero) {
    // When comm overhead dominates, assigning the loaded node anything is a
    // loss; the share should collapse toward zero.
    auto in = make_input({{1, 0}, {1, 0}, {1, 9}}, 64, 0.5);
    auto s = successive_shares(in);
    EXPECT_LT(s[2], 0.02);
}

TEST(SuccessiveShares, SingleNodeGetsEverything) {
    auto in = make_input({{1, 2}}, 100, 0.1);
    auto s = successive_shares(in);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_DOUBLE_EQ(s[0], 1.0);
}

TEST(BlocksFromShares, UniformCostsMatchShares) {
    auto counts = blocks_from_shares(uniform_costs(100),
                                     {0.25, 0.25, 0.25, 0.25});
    EXPECT_EQ(counts, (std::vector<int>{25, 25, 25, 25}));
}

TEST(BlocksFromShares, CountsCoverAllRows) {
    auto counts = blocks_from_shares(uniform_costs(101), {0.4, 0.35, 0.25});
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 101);
}

TEST(BlocksFromShares, SkewedCostsBalanceCostNotRows) {
    // First half of rows cost 3x the second half; equal shares should give
    // the first node fewer rows.
    std::vector<double> costs(100, 0.001);
    for (int i = 0; i < 50; ++i) costs[(size_t)i] = 0.003;
    auto counts = blocks_from_shares(costs, {0.5, 0.5});
    EXPECT_LT(counts[0], 50);
    double c0 = 0;
    for (int i = 0; i < counts[0]; ++i) c0 += costs[(size_t)i];
    EXPECT_NEAR(c0, 0.1, 0.004); // half the 0.2 total
}

TEST(BlocksFromShares, MinRowsEnforced) {
    auto counts = blocks_from_shares(uniform_costs(10), {0.99, 0.005, 0.005},
                                     /*min_rows=*/1);
    EXPECT_GE(counts[1], 1);
    EXPECT_GE(counts[2], 1);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 10);
}

TEST(BlocksFromShares, ZeroShareNodeGetsNothing) {
    auto counts = blocks_from_shares(uniform_costs(10), {0.5, 0.0, 0.5});
    EXPECT_EQ(counts[1], 0);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 10);
}

TEST(BlocksFromShares, ZeroCostFallbackUsesShares) {
    auto counts =
        blocks_from_shares(std::vector<double>(8, 0.0), {0.5, 0.25, 0.25});
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 8);
    EXPECT_EQ(counts[0], 4);
}

TEST(BlocksFromShares, ZeroCostFallbackHonorsMinRows) {
    // Regression: the zero-total fallback used to ignore min_rows entirely —
    // a near-zero share got floor(share*nrows) = 0 rows and the round-robin
    // top-up handed the remainder to the first party, yielding {4, 0} here.
    auto counts = blocks_from_shares(std::vector<double>(4, 0.0),
                                     {0.99, 0.01}, /*min_rows=*/2);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 4);
    EXPECT_GE(counts[0], 2);
    EXPECT_GE(counts[1], 2);
}

TEST(AssignPoolWork, DeficitRedistributedNotDropped) {
    // Regression: a weak node whose comm-adjusted target went negative was
    // clamped to zero without reassigning the cut-off work, so the pool's
    // assigned total exceeded the requested work (1.475 vs 0.5 here).
    std::vector<NodePower> nodes{{1.0, 0}, {0.01, 0}};
    std::vector<double> w(2, -1.0);
    assign_pool_work(nodes, {0, 1}, /*work=*/0.5, /*comm_cpu=*/1.0, w);
    EXPECT_NEAR(w[0] + w[1], 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(AssignPoolWork, EqualizesCompletionAcrossPool) {
    std::vector<NodePower> nodes{{2.0, 0}, {1.0, 0}, {1.0, 1}};
    std::vector<double> w(3, 0.0);
    const double c = 0.05;
    assign_pool_work(nodes, {0, 1, 2}, /*work=*/3.0, c, w);
    EXPECT_NEAR(w[0] + w[1] + w[2], 3.0, 1e-12);
    double t0 = (w[0] + c) / nodes[0].power();
    for (std::size_t j = 1; j < 3; ++j)
        EXPECT_NEAR((w[j] + c) / nodes[j].power(), t0, 1e-9);
}

TEST(AssignPoolWork, ZeroWorkAssignsNothing) {
    std::vector<NodePower> nodes{{1.0, 0}, {0.25, 0}};
    std::vector<double> w(2, -1.0);
    assign_pool_work(nodes, {0, 1}, /*work=*/0.0, /*comm_cpu=*/0.2, w);
    EXPECT_DOUBLE_EQ(w[0], 0.0);
    EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(PredictCycleTime, LoadedNodeDominates) {
    auto in = make_input({{1, 0}, {1, 1}}, 100, 0.0);
    double t = predict_cycle_time(in, {50, 50});
    // Node 1 runs its 50 rows (0.05s) at half power → 0.1s.
    EXPECT_NEAR(t, 0.1, 1e-9);
}

TEST(PredictCycleTime, CommWireAdds) {
    auto in = make_input({{1, 0}, {1, 0}}, 100, 0.0);
    double t = predict_cycle_time(in, {50, 50}, 0.02);
    EXPECT_NEAR(t, 0.07, 1e-9);
}

TEST(PredictCycleTime, CountsMustCover) {
    auto in = make_input({{1, 0}, {1, 0}}, 100);
    EXPECT_THROW(predict_cycle_time(in, {50, 40}), Error);
}

TEST(EvaluateRemoval, DropWhenLoadedNodeBottlenecks) {
    // 2 unloaded + 1 node with 3 competitors, big comm overhead: predicted
    // unloaded-only time beats the measured loaded time.
    auto in = make_input({{1, 0}, {1, 0}, {1, 3}}, 90, 0.03);
    // Measured: loaded config is slow.
    auto d = evaluate_removal(in, /*measured=*/0.12,
                              /*comm_cpu_unloaded=*/0.03,
                              /*comm_wire_unloaded=*/0.005);
    EXPECT_TRUE(d.drop);
    EXPECT_EQ(d.unloaded_members, (std::vector<int>{0, 1}));
    EXPECT_LT(d.predicted_unloaded_s, 0.12);
}

TEST(EvaluateRemoval, KeepWhenComputationDominates) {
    // Plenty of compute per node: losing a worker hurts more than the load.
    auto in = make_input({{1, 0}, {1, 0}, {1, 1}}, 3000, 0.001);
    // Loaded config measured close to its ideal (~1.05s with shares).
    auto d = evaluate_removal(in, /*measured=*/1.2, 0.001, 0.0005);
    EXPECT_FALSE(d.drop);
    EXPECT_GT(d.predicted_unloaded_s, 1.2);
}

TEST(EvaluateRemoval, AllLoadedNeverDrops) {
    auto in = make_input({{1, 1}, {1, 2}}, 100, 0.01);
    auto d = evaluate_removal(in, 1.0, 0.01, 0.0);
    EXPECT_FALSE(d.drop);
}

TEST(EvaluateRemoval, AllUnloadedNeverDrops) {
    auto in = make_input({{1, 0}, {1, 0}}, 100, 0.01);
    auto d = evaluate_removal(in, 1.0, 0.01, 0.0);
    EXPECT_FALSE(d.drop);
}

TEST(CommModel, NearestNeighborCpuPerCycle) {
    CommCosts c;
    PhaseComm p{CommPattern::NearestNeighbor, 1024};
    double cpu = comm_cpu_per_cycle(c, p, 8);
    EXPECT_NEAR(cpu, 4 * c.cpu_cost(1024), 1e-12);
    EXPECT_DOUBLE_EQ(comm_cpu_per_cycle(c, p, 1), 0.0);
}

TEST(CommModel, AllGatherGrowsWithNodes) {
    CommCosts c;
    PhaseComm p{CommPattern::AllGather, 4096};
    EXPECT_LT(comm_cpu_per_cycle(c, p, 4), comm_cpu_per_cycle(c, p, 32));
}

TEST(CommModel, NonePatternIsFree) {
    CommCosts c;
    PhaseComm p{CommPattern::None, 1 << 20};
    EXPECT_DOUBLE_EQ(comm_cpu_per_cycle(c, p, 16), 0.0);
    EXPECT_DOUBLE_EQ(comm_wire_per_cycle(c, p, 16), 0.0);
}

}  // namespace
}  // namespace dynmpi
