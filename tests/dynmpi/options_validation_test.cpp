// RuntimeOptions and setup validation: every misuse has a clear error.
#include <gtest/gtest.h>

#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

template <typename Fn>
void expect_rank_error(int nodes, Fn fn) {
    msg::Machine m(cfg(nodes));
    EXPECT_THROW(m.run(fn), Error);
}

TEST(OptionsValidation, NonPositiveRowSpaceRejected) {
    expect_rank_error(1, [](msg::Rank& r) { Runtime rt(r, 0); });
}

TEST(OptionsValidation, ZeroGraceCyclesRejected) {
    expect_rank_error(1, [](msg::Rank& r) {
        RuntimeOptions o;
        o.grace_cycles = 0;
        Runtime rt(r, 8, o);
    });
}

TEST(OptionsValidation, PhaseOutsideRowSpaceRejected) {
    expect_rank_error(1, [](msg::Rank& r) {
        Runtime rt(r, 8);
        rt.init_phase(0, 9, PhaseComm{CommPattern::None, 0});
    });
}

TEST(OptionsValidation, EmptyPhaseRejected) {
    expect_rank_error(1, [](msg::Rank& r) {
        Runtime rt(r, 8);
        rt.init_phase(4, 4, PhaseComm{CommPattern::None, 0});
    });
}

TEST(OptionsValidation, AccessOnUnknownPhaseRejected) {
    expect_rank_error(1, [](msg::Rank& r) {
        Runtime rt(r, 8);
        rt.register_dense("A", 1, sizeof(double));
        rt.add_array_access("A", AccessMode::Write, 3);
    });
}

TEST(OptionsValidation, AccessOnUnknownArrayRejected) {
    expect_rank_error(1, [](msg::Rank& r) {
        Runtime rt(r, 8);
        rt.init_phase(0, 8, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("ghost", AccessMode::Write, 0);
    });
}

TEST(OptionsValidation, CommitWithoutPhaseRejected) {
    expect_rank_error(1, [](msg::Rank& r) {
        Runtime rt(r, 8);
        rt.register_dense("A", 1, sizeof(double));
        rt.commit_setup();
    });
}

TEST(OptionsValidation, EndCycleWithoutBeginRejected) {
    expect_rank_error(1, [](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 8, o);
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, 8, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        rt.end_cycle();
    });
}

TEST(OptionsValidation, DoubleBeginCycleRejected) {
    expect_rank_error(1, [](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 8, o);
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, 8, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        rt.begin_cycle();
        rt.begin_cycle();
    });
}

TEST(OptionsValidation, ReplicaRefreshShorterThanMonitoringRejected) {
    // The monitoring period is the fastest the refresh can physically run;
    // asking for a shorter interval is a configuration error, not a silent
    // clamp.
    expect_rank_error(2, [](msg::Rank& r) {
        RuntimeOptions o;
        o.replicate = true;
        o.replica_refresh_s = 1e-6;
        Runtime rt(r, 8, o);
    });
}

TEST(OptionsValidation, ReplicaRefreshEveryCycleAccepted) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.replicate = true;
        o.replica_refresh_s = 0.0; // refresh every cycle
        Runtime rt(r, 8, o);
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, 8, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
    });
}

TEST(OptionsValidation, DenseLookupOfSparseRejected) {
    expect_rank_error(1, [](msg::Rank& r) {
        Runtime rt(r, 8);
        rt.register_sparse("S", 16);
        rt.dense("S");
    });
}

}  // namespace
}  // namespace dynmpi
