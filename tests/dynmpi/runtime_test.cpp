// End-to-end tests of the Dyn-MPI runtime state machine on the simulated
// cluster: detection → grace → redistribution → post-grace → removal.
#include "dynmpi/runtime.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi {
namespace {

sim::ClusterConfig cfg(int nodes, double jitter = 0.0) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = jitter;
    c.ps_period = sim::from_seconds(0.25); // fast daemon for quick tests
    return c;
}

RuntimeOptions fast_opts() {
    RuntimeOptions o;
    o.calibrate = false; // defaults match the simulated network
    return o;
}

/// A minimal Jacobi-like SPMD driver: N rows, per-row cost `row_cost`,
/// nearest-neighbor halo exchange, `cycles` phase cycles.  Returns the
/// runtime for post-run inspection via `out`.
struct DriverResult {
    RuntimeStats stats;
    Distribution final_dist;
    msg::Group final_active;
    bool data_ok = true;
};

DriverResult run_driver(msg::Machine& m, int rows, double row_cost,
                        int cycles, RuntimeOptions opts,
                        std::size_t row_elems = 16) {
    DriverResult result;
    m.run([&](msg::Rank& r) {
        Runtime rt(r, rows, opts);
        auto& A = rt.register_dense("A", static_cast<int>(row_elems),
                                    sizeof(double));
        int ph = rt.init_phase(
            0, rows, PhaseComm{CommPattern::NearestNeighbor,
                               row_elems * sizeof(double)});
        rt.add_array_access("A", AccessMode::Write, ph, 1, 0);
        rt.add_array_access("A", AccessMode::Read, ph, 1, -1);
        rt.add_array_access("A", AccessMode::Read, ph, 1, +1);
        rt.commit_setup();

        // Author the initial data: every owned row gets f(row).
        for (int row : rt.my_iters(ph).to_vector())
            for (std::size_t j = 0; j < row_elems; ++j)
                A.at<double>(row, static_cast<int>(j)) = row * 100.0 + (double)j;

        for (int c = 0; c < cycles; ++c) {
            rt.begin_cycle();
            if (rt.participating()) {
                RowSet iters = rt.my_iters(ph);
                std::vector<double> costs(
                    static_cast<std::size_t>(iters.count()), row_cost);
                rt.run_phase(ph, costs);
                // Halo exchange with relative neighbors.
                int rel = rt.rel_rank(), n = rt.num_active();
                std::vector<double> row_buf(row_elems);
                if (rel > 0)
                    rt.send_rel(rel - 1, 1,
                                A.row_data(rt.start_iter(ph)),
                                row_elems * sizeof(double));
                if (rel < n - 1)
                    rt.send_rel(rel + 1, 2, A.row_data(rt.end_iter(ph)),
                                row_elems * sizeof(double));
                if (rel < n - 1)
                    rt.recv_rel(rel + 1, 1, row_buf.data(),
                                row_elems * sizeof(double));
                if (rel > 0)
                    rt.recv_rel(rel - 1, 2, row_buf.data(),
                                row_elems * sizeof(double));
            }
            rt.end_cycle();
        }

        // Validate data integrity after any number of redistributions.
        for (int row : rt.my_iters(ph).to_vector())
            for (std::size_t j = 0; j < row_elems; ++j)
                if (A.at<double>(row, static_cast<int>(j)) !=
                    row * 100.0 + (double)j)
                    result.data_ok = false;

        if (r.id() == 0) {
            result.stats = rt.stats();
            result.final_dist = rt.distribution();
            result.final_active = rt.active_group();
        }
    });
    return result;
}

TEST(Runtime, StaysEvenWhenDedicated) {
    msg::Machine m(cfg(4));
    auto res = run_driver(m, 64, 0.005, 20, fast_opts());
    EXPECT_EQ(res.stats.redistributions, 0);
    EXPECT_EQ(res.final_dist.counts(), (std::vector<int>{16, 16, 16, 16}));
    EXPECT_TRUE(res.data_ok);
}

TEST(Runtime, AdaptsToCompetingProcess) {
    msg::Machine m(cfg(4));
    // CP lands on node 2 at t=1s and stays.
    m.cluster().add_load_interval(2, 1.0, -1.0);
    RuntimeOptions o = fast_opts();
    o.enable_removal = false;
    auto res = run_driver(m, 64, 0.02, 60, o);
    EXPECT_GE(res.stats.redistributions, 1);
    EXPECT_TRUE(res.data_ok);
    auto counts = res.final_dist.counts();
    ASSERT_EQ(counts.size(), 4u);
    // Loaded node gets materially fewer rows than unloaded peers.
    EXPECT_LT(counts[2], counts[0] - 2);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 64);
}

TEST(Runtime, NoAdaptBaselineNeverRedistributes) {
    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(2, 1.0, -1.0);
    RuntimeOptions o = fast_opts();
    o.adapt = false;
    auto res = run_driver(m, 64, 0.02, 40, o);
    EXPECT_EQ(res.stats.redistributions, 0);
    EXPECT_EQ(res.final_dist.counts(), (std::vector<int>{16, 16, 16, 16}));
}

TEST(Runtime, AdaptationImprovesElapsedTime) {
    auto elapsed_with = [](bool adapt) {
        msg::Machine m(cfg(4));
        m.cluster().add_load_interval(1, 1.0, -1.0, 2); // 2 CPs
        RuntimeOptions o;
        o.calibrate = false;
        o.adapt = adapt;
        o.enable_removal = false;
        run_driver(m, 64, 0.02, 80, o);
        return m.elapsed_seconds();
    };
    double t_adapt = elapsed_with(true);
    double t_static = elapsed_with(false);
    EXPECT_LT(t_adapt, 0.8 * t_static);
}

TEST(Runtime, RebalancesBackWhenLoadDisappears) {
    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(3, 1.0, 6.0);
    RuntimeOptions o = fast_opts();
    o.enable_removal = false;
    auto res = run_driver(m, 64, 0.02, 120, o);
    EXPECT_GE(res.stats.redistributions, 2); // away and back
    auto counts = res.final_dist.counts();
    // After the CP dies, the distribution drifts back to near-even.
    for (int c : counts) EXPECT_NEAR(c, 16, 3);
    EXPECT_TRUE(res.data_ok);
}

TEST(Runtime, PhysicalRemovalDropsLoadedNode) {
    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(1, 0.3, -1.0, 5); // heavy load
    RuntimeOptions o = fast_opts();
    o.enable_removal = true;
    // Small compute, expensive comm (32 KB rows): removal-friendly regime.
    auto res = run_driver(m, 48, 0.0001, 400, o, /*row_elems=*/4096);
    EXPECT_GE(res.stats.physical_drops, 1);
    EXPECT_EQ(res.final_active.size(), 3);
    EXPECT_FALSE(res.final_active.contains(1));
    EXPECT_TRUE(res.data_ok);
}

TEST(Runtime, RemovalKeepsNodeWhenComputeDominates) {
    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(1, 1.0, -1.0, 1);
    RuntimeOptions o = fast_opts();
    o.enable_removal = true;
    auto res = run_driver(m, 64, 0.05, 80, o); // compute-heavy
    EXPECT_EQ(res.stats.physical_drops, 0);
    EXPECT_EQ(res.final_active.size(), 4);
}

TEST(Runtime, LogicalDropKeepsMinimumRows) {
    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(1, 0.3, -1.0, 5);
    RuntimeOptions o = fast_opts();
    o.drop_mode = DropMode::Logical;
    auto res = run_driver(m, 48, 0.0001, 400, o, /*row_elems=*/4096);
    EXPECT_GE(res.stats.logical_drops, 1);
    EXPECT_EQ(res.final_active.size(), 4); // still in the active set
    auto counts = res.final_dist.counts();
    EXPECT_GE(counts[1], 1);
    EXPECT_LE(counts[1], 2); // minimum assignment only
    EXPECT_TRUE(res.data_ok);
}

TEST(Runtime, DroppedNodeReturnsWhenLoadClears) {
    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(1, 0.3, 2.5, 5);
    RuntimeOptions o = fast_opts();
    o.enable_removal = true;
    auto res = run_driver(m, 48, 0.0001, 700, o, /*row_elems=*/4096);
    EXPECT_GE(res.stats.physical_drops, 1);
    EXPECT_GE(res.stats.readds, 1);
    EXPECT_EQ(res.final_active.size(), 4);
    EXPECT_TRUE(res.data_ok);
}

TEST(Runtime, DeterministicAcrossIdenticalRuns) {
    auto run_once = [] {
        msg::Machine m(cfg(4));
        m.cluster().add_load_interval(2, 1.0, 5.0, 2);
        auto res = run_driver(m, 64, 0.01, 60, fast_opts());
        return std::make_pair(m.elapsed_seconds(), res.final_dist.counts());
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_DOUBLE_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(Runtime, SetupOrderEnforced) {
    msg::Machine m(cfg(2));
    EXPECT_THROW(m.run([](msg::Rank& r) {
        Runtime rt(r, 16);
        rt.begin_cycle(); // before commit_setup
    }),
                 Error);
}

TEST(Runtime, RunPhaseCostAlignmentEnforced) {
    msg::Machine m(cfg(2));
    EXPECT_THROW(m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 16, o);
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, 16, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        rt.begin_cycle();
        rt.run_phase(ph, std::vector<double>(3, 0.1)); // wrong length
    }),
                 Error);
}

TEST(Runtime, CalibrationProducesPlausibleModel) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        Runtime rt(r, 16); // calibrate = true by default
        rt.register_dense("A", 4, sizeof(double));
        int ph = rt.init_phase(0, 16, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        const CommCosts& c = rt.comm_costs();
        const sim::NetParams truth{}; // simulator ground truth
        EXPECT_NEAR(c.bandwidth_Bps, truth.bandwidth_Bps,
                    truth.bandwidth_Bps * 0.2);
        EXPECT_NEAR(c.cpu_per_msg_s, truth.cpu_per_msg_s,
                    truth.cpu_per_msg_s * 0.5 + 1e-5);
        EXPECT_GT(c.latency_s, 0.0);
        EXPECT_LT(c.latency_s, 5 * truth.latency_s);
    });
}

TEST(Runtime, AllreduceActiveSendOutReachesRemovedNodes) {
    msg::Machine m(cfg(3));
    m.cluster().add_load_interval(2, 0.5, -1.0, 3);
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = true;
        Runtime rt(r, 24, o);
        rt.register_dense("A", 2, sizeof(double));
        int ph = rt.init_phase(
            0, 24, PhaseComm{CommPattern::NearestNeighbor, 16});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();

        double final_sum = -1;
        for (int c = 0; c < 150; ++c) {
            rt.begin_cycle();
            if (rt.participating()) {
                std::vector<double> costs(
                    static_cast<std::size_t>(rt.my_iters(ph).count()),
                    0.0005);
                rt.run_phase(ph, costs);
            }
            // Every world rank calls this: active contribute, removed get
            // the result pushed (send-out).
            final_sum = rt.allreduce_active(
                rt.participating() ? 1.0 : 1000.0, msg::OpSum{});
            rt.end_cycle();
        }
        // After the drop, only active nodes contribute (sum == #active);
        // the removed node must still observe the same value.
        EXPECT_LT(final_sum, 100.0) << "removed node leaked into send-in";
        EXPECT_DOUBLE_EQ(final_sum,
                         static_cast<double>(rt.num_active()));
    });
}

TEST(Runtime, SparseArrayRedistributesWithRuntime) {
    msg::Machine m(cfg(3));
    m.cluster().add_load_interval(0, 1.0, -1.0, 2);
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        Runtime rt(r, 30, o);
        auto& S = rt.register_sparse("S", 50);
        int ph = rt.init_phase(0, 30, PhaseComm{CommPattern::AllGather, 64});
        rt.add_array_access("S", AccessMode::Write, ph);
        rt.commit_setup();

        for (int row : rt.my_iters(ph).to_vector()) {
            S.set(row, row % 50, row + 0.5);
            S.set(row, (row + 13) % 50, -1.0);
        }

        for (int c = 0; c < 60; ++c) {
            rt.begin_cycle();
            if (rt.participating()) {
                std::vector<double> costs(
                    static_cast<std::size_t>(rt.my_iters(ph).count()), 0.01);
                rt.run_phase(ph, costs);
            }
            rt.end_cycle();
        }
        EXPECT_GE(rt.stats().redistributions, 1);
        for (int row : rt.my_iters(ph).to_vector()) {
            EXPECT_DOUBLE_EQ(S.get(row, row % 50), row + 0.5);
            EXPECT_EQ(S.row_nnz(row), row % 50 == (row + 13) % 50 ? 1 : 2);
        }
    });
}

TEST(Runtime, HistoryRecordsRedistributionCycles) {
    msg::Machine m(cfg(2));
    m.cluster().add_load_interval(1, 1.0, -1.0);
    RuntimeOptions o = fast_opts();
    o.enable_removal = false;
    auto res = run_driver(m, 32, 0.02, 50, o);
    int redist_cycles = 0;
    for (const auto& rec : res.stats.history)
        if (rec.redistributed) ++redist_cycles;
    EXPECT_EQ(redist_cycles, res.stats.redistributions);
    EXPECT_EQ(static_cast<int>(res.stats.history.size()), 50);
    EXPECT_GT(res.stats.redist_wall_s, 0.0);
}

}  // namespace
}  // namespace dynmpi
