#include "dynmpi/drsd.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace dynmpi {
namespace {

TEST(Drsd, IdentityAccessTouchesOwnRows) {
    Drsd d{"A", AccessMode::Write, 0, 1, 0};
    RowSet iters(10, 20);
    EXPECT_EQ(rows_touched(d, iters, 100), RowSet(10, 20));
}

TEST(Drsd, OffsetAccessShiftsRows) {
    Drsd left{"B", AccessMode::Read, 0, 1, -1};
    Drsd right{"B", AccessMode::Read, 0, 1, +1};
    RowSet iters(10, 20);
    EXPECT_EQ(rows_touched(left, iters, 100), RowSet(9, 19));
    EXPECT_EQ(rows_touched(right, iters, 100), RowSet(11, 21));
}

TEST(Drsd, ClipsAtArrayBounds) {
    Drsd left{"B", AccessMode::Read, 0, 1, -1};
    EXPECT_EQ(rows_touched(left, RowSet(0, 5), 100), RowSet(0, 4));
    Drsd right{"B", AccessMode::Read, 0, 1, +1};
    EXPECT_EQ(rows_touched(right, RowSet(95, 100), 100), RowSet(96, 100));
}

TEST(Drsd, StridedCoefficient) {
    Drsd d{"A", AccessMode::Read, 0, 2, 1}; // rows 2i+1
    RowSet iters(0, 4);
    RowSet rows = rows_touched(d, iters, 100);
    EXPECT_EQ(rows.to_vector(), (std::vector<int>{1, 3, 5, 7}));
}

TEST(Drsd, ZeroCoefficientRejected) {
    Drsd d{"A", AccessMode::Read, 0, 0, 5};
    EXPECT_THROW(rows_touched(d, RowSet(0, 1), 10), Error);
}

TEST(Drsd, RowsNeededUnionsDescriptors) {
    std::vector<Drsd> ds{
        {"B", AccessMode::Read, 0, 1, -1},
        {"B", AccessMode::Read, 0, 1, 0},
        {"B", AccessMode::Read, 0, 1, +1},
    };
    RowSet iters(10, 20);
    RowSet need = rows_needed(ds, iters, 100);
    EXPECT_EQ(need, RowSet(9, 21)); // halo of one row on each side
}

TEST(Drsd, RowsNeededFiltersByMode) {
    std::vector<Drsd> ds{
        {"A", AccessMode::Write, 0, 1, 0},
        {"A", AccessMode::Read, 0, 1, -1},
    };
    RowSet iters(10, 20);
    AccessMode w = AccessMode::Write;
    EXPECT_EQ(rows_needed(ds, iters, 100, &w), RowSet(10, 20));
    AccessMode r = AccessMode::Read;
    EXPECT_EQ(rows_needed(ds, iters, 100, &r), RowSet(9, 19));
}

TEST(Drsd, NonContiguousIterSet) {
    Drsd d{"A", AccessMode::Read, 0, 1, 0};
    RowSet iters;
    iters.add(0, 2);
    iters.add(8, 10);
    RowSet rows = rows_touched(d, iters, 20);
    EXPECT_EQ(rows.to_vector(), (std::vector<int>{0, 1, 8, 9}));
}

}  // namespace
}  // namespace dynmpi
