#include "dynmpi/row_set.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace dynmpi {
namespace {

TEST(RowSet, SingleIntervalBasics) {
    RowSet s(3, 7);
    EXPECT_EQ(s.count(), 4);
    EXPECT_TRUE(s.contains(3));
    EXPECT_TRUE(s.contains(6));
    EXPECT_FALSE(s.contains(7));
    EXPECT_FALSE(s.contains(2));
    EXPECT_EQ(s.first(), 3);
    EXPECT_EQ(s.last(), 6);
}

TEST(RowSet, EmptyBehaviour) {
    RowSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0);
    EXPECT_FALSE(s.contains(0));
    EXPECT_THROW(s.first(), Error);
    RowSet degenerate(5, 5);
    EXPECT_TRUE(degenerate.empty());
}

TEST(RowSet, AddCoalescesAdjacent) {
    RowSet s;
    s.add(0, 3);
    s.add(3, 6);
    EXPECT_EQ(s.intervals().size(), 1u);
    EXPECT_EQ(s.intervals()[0], (RowInterval{0, 6}));
}

TEST(RowSet, AddMergesOverlap) {
    RowSet s;
    s.add(0, 5);
    s.add(3, 10);
    s.add(20, 25);
    EXPECT_EQ(s.intervals().size(), 2u);
    EXPECT_EQ(s.count(), 15);
}

TEST(RowSet, IntersectBasics) {
    RowSet a;
    a.add(0, 10);
    a.add(20, 30);
    RowSet b(5, 25);
    RowSet c = a.intersect(b);
    EXPECT_EQ(c.intervals().size(), 2u);
    EXPECT_EQ(c.intervals()[0], (RowInterval{5, 10}));
    EXPECT_EQ(c.intervals()[1], (RowInterval{20, 25}));
}

TEST(RowSet, SubtractSplitsIntervals) {
    RowSet a(0, 10);
    RowSet b(4, 6);
    RowSet c = a.subtract(b);
    EXPECT_EQ(c.intervals().size(), 2u);
    EXPECT_EQ(c.intervals()[0], (RowInterval{0, 4}));
    EXPECT_EQ(c.intervals()[1], (RowInterval{6, 10}));
}

TEST(RowSet, SubtractAllYieldsEmpty) {
    RowSet a(3, 9);
    EXPECT_TRUE(a.subtract(RowSet(0, 20)).empty());
}

TEST(RowSet, SubtractDisjointIsIdentity) {
    RowSet a(0, 5);
    EXPECT_EQ(a.subtract(RowSet(10, 20)), a);
}

TEST(RowSet, UniteKeepsAll) {
    RowSet a(0, 3), b(10, 12);
    RowSet u = a.unite(b);
    EXPECT_EQ(u.count(), 5);
    EXPECT_TRUE(u.contains(1));
    EXPECT_TRUE(u.contains(11));
}

TEST(RowSet, ToVectorAscending) {
    RowSet s;
    s.add(5, 7);
    s.add(1, 3);
    EXPECT_EQ(s.to_vector(), (std::vector<int>{1, 2, 5, 6}));
}

TEST(RowSet, ClipRestrictsRange) {
    RowSet s(0, 100);
    RowSet c = s.clip(40, 60);
    EXPECT_EQ(c.count(), 20);
    EXPECT_EQ(c.first(), 40);
}

TEST(RowSet, InvalidIntervalRejected) {
    EXPECT_THROW(RowSet(5, 3), Error);
    RowSet s;
    EXPECT_THROW(s.add(9, 2), Error);
}

TEST(RowSet, IntersectWithMatchesIntersect) {
    RowSet a;
    a.add(0, 4);
    a.add(6, 10);
    a.add(12, 15);
    // Single-interval operand exercises the in-place fast path.
    RowSet b(3, 13);
    RowSet in_place = a;
    in_place.intersect_with(b);
    EXPECT_EQ(in_place, a.intersect(b));
    // Multi-interval operand falls back to the allocating algorithm.
    RowSet c;
    c.add(1, 2);
    c.add(7, 14);
    in_place = a;
    in_place.intersect_with(c);
    EXPECT_EQ(in_place, a.intersect(c));
    in_place = a;
    in_place.intersect_with(RowSet());
    EXPECT_TRUE(in_place.empty());
}

TEST(RowSet, SubtractWithMatchesSubtract) {
    RowSet a;
    a.add(0, 4);
    a.add(6, 10);
    a.add(12, 15);
    for (RowSet b : {RowSet(7, 9),   // splits the middle interval
                     RowSet(0, 4),   // removes the first exactly
                     RowSet(3, 13),  // trims across all three
                     RowSet(20, 25), // disjoint: identity
                     RowSet()}) {
        RowSet in_place = a;
        in_place.subtract_with(b);
        EXPECT_EQ(in_place, a.subtract(b));
    }
    RowSet multi;
    multi.add(1, 3);
    multi.add(8, 13);
    RowSet in_place = a;
    in_place.subtract_with(multi);
    EXPECT_EQ(in_place, a.subtract(multi));
}

// Property test: set algebra laws on randomized sets, checked against a
// brute-force bitmap model.
class RowSetProperty : public ::testing::TestWithParam<int> {};

namespace {
RowSet random_set(Rng& rng, int universe) {
    RowSet s;
    int k = 1 + static_cast<int>(rng.next_below(6));
    for (int i = 0; i < k; ++i) {
        int lo = static_cast<int>(rng.next_below(static_cast<uint64_t>(universe)));
        int hi = lo + static_cast<int>(rng.next_below(12));
        s.add(lo, std::min(hi, universe));
    }
    return s;
}

std::vector<bool> bitmap(const RowSet& s, int universe) {
    std::vector<bool> m(static_cast<size_t>(universe), false);
    for (int r : s.to_vector()) m[static_cast<size_t>(r)] = true;
    return m;
}
}  // namespace

TEST_P(RowSetProperty, AlgebraMatchesBitmapModel) {
    const int universe = 64;
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
    for (int trial = 0; trial < 50; ++trial) {
        RowSet a = random_set(rng, universe);
        RowSet b = random_set(rng, universe);
        auto ma = bitmap(a, universe), mb = bitmap(b, universe);

        auto check = [&](const RowSet& got, auto op, const char* what) {
            auto mg = bitmap(got, universe);
            for (int i = 0; i < universe; ++i)
                ASSERT_EQ(mg[(size_t)i], op(ma[(size_t)i], mb[(size_t)i]))
                    << what << " mismatch at " << i;
        };
        check(a.intersect(b), [](bool x, bool y) { return x && y; }, "and");
        check(a.unite(b), [](bool x, bool y) { return x || y; }, "or");
        check(a.subtract(b), [](bool x, bool y) { return x && !y; }, "diff");

        // In-place variants must agree with their allocating counterparts.
        RowSet ai = a;
        ai.intersect_with(b);
        ASSERT_EQ(ai, a.intersect(b));
        RowSet as = a;
        as.subtract_with(b);
        ASSERT_EQ(as, a.subtract(b));

        // Normalization invariants: sorted, disjoint, non-empty intervals.
        RowSet u = a.unite(b);
        const auto& ivs = u.intervals();
        for (std::size_t i = 0; i < ivs.size(); ++i) {
            ASSERT_LT(ivs[i].lo, ivs[i].hi);
            if (i > 0) ASSERT_GT(ivs[i].lo, ivs[i - 1].hi); // gap required
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowSetProperty, ::testing::Range(1, 6));

}  // namespace
}  // namespace dynmpi
