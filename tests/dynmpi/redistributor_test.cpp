// Pure-plan tests for redistribution scheduling (no machine needed), plus
// machine-backed execution tests for data integrity.
#include "dynmpi/redistributor.hpp"

#include <gtest/gtest.h>

#include "dynmpi/dense_array.hpp"
#include "dynmpi/sparse_matrix.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi {
namespace {

using msg::Group;

std::vector<Drsd> halo_accesses(const std::string& name) {
    return {
        Drsd{name, AccessMode::Write, 0, 1, 0},
        Drsd{name, AccessMode::Read, 0, 1, -1},
        Drsd{name, AccessMode::Read, 0, 1, +1},
    };
}

TEST(RedistPlan, OwnedRowsFollowDistribution) {
    Group g({0, 1, 2});
    auto d = Distribution::block(0, 30, {10, 15, 5});
    EXPECT_EQ(owned_rows(g, d, 0), RowSet(0, 10));
    EXPECT_EQ(owned_rows(g, d, 1), RowSet(10, 25));
    EXPECT_EQ(owned_rows(g, d, 2), RowSet(25, 30));
    EXPECT_TRUE(owned_rows(g, d, 7).empty()); // non-member
}

TEST(RedistPlan, NeededRowsIncludeGhosts) {
    Group g({0, 1, 2});
    auto d = Distribution::block(0, 30, {10, 10, 10});
    auto acc = halo_accesses("A");
    EXPECT_EQ(needed_rows(g, d, 1, acc, 30), RowSet(9, 21));
    EXPECT_EQ(needed_rows(g, d, 0, acc, 30), RowSet(0, 11)); // clipped low
    EXPECT_EQ(needed_rows(g, d, 2, acc, 30), RowSet(19, 30)); // clipped high
}

TEST(RedistPlan, NoAccessesMeansOwnedOnly) {
    Group g({0, 1});
    auto d = Distribution::block(0, 10, {4, 6});
    EXPECT_EQ(needed_rows(g, d, 1, {}, 10), RowSet(4, 10));
}

TEST(RedistPlan, TransferMovesOnlyChangedRows) {
    Group g({0, 1});
    auto oldd = Distribution::block(0, 100, {50, 50});
    auto newd = Distribution::block(0, 100, {30, 70});
    RedistContext ctx{100, &g, &oldd, &g, &newd};
    std::vector<Drsd> acc; // no ghosts: pure ownership
    // Node 1 now also owns rows 30..50, previously owned by node 0.
    EXPECT_EQ(transfer_rows(ctx, acc, 0, 1), RowSet(30, 50));
    EXPECT_TRUE(transfer_rows(ctx, acc, 1, 0).empty());
    EXPECT_TRUE(transfer_rows(ctx, acc, 0, 0).empty()); // self
}

TEST(RedistPlan, TransferIncludesGhostRefresh) {
    Group g({0, 1});
    auto oldd = Distribution::block(0, 100, {50, 50});
    auto newd = Distribution::block(0, 100, {40, 60});
    RedistContext ctx{100, &g, &oldd, &g, &newd};
    auto acc = halo_accesses("A");
    // Node 0 needs rows 0..41 (ghost row 40 now at 40? new own 0..40 plus
    // ghost 40). Ghost row 40 was old-owned by node 0 itself; ghost row 41
    // too. Node 1 needs 39..100: ghost row 39 comes from node 0.
    RowSet s01 = transfer_rows(ctx, acc, 0, 1);
    EXPECT_TRUE(s01.contains(39)); // ghost refresh
    EXPECT_TRUE(s01.contains(40));
    EXPECT_TRUE(s01.contains(49));
    EXPECT_FALSE(s01.contains(50)); // node 1 already owned it
}

TEST(RedistPlan, NodeRemovalDrainsItsRows) {
    Group oldg({0, 1, 2});
    Group newg({0, 2}); // node 1 physically dropped
    auto oldd = Distribution::block(0, 30, {10, 10, 10});
    auto newd = Distribution::block(0, 30, {15, 15});
    RedistContext ctx{30, &oldg, &oldd, &newg, &newd};
    std::vector<Drsd> acc;
    // Node 1's old rows 10..20 split between nodes 0 and 2.
    EXPECT_EQ(transfer_rows(ctx, acc, 1, 0), RowSet(10, 15));
    EXPECT_EQ(transfer_rows(ctx, acc, 1, 2), RowSet(15, 20));
    // Node 1 receives nothing.
    EXPECT_TRUE(transfer_rows(ctx, acc, 0, 1).empty());
    EXPECT_TRUE(transfer_rows(ctx, acc, 2, 1).empty());
}

TEST(RedistPlan, NodeReaddReceivesItsNewRows) {
    Group oldg({0, 2});
    Group newg({0, 1, 2}); // node 1 re-added
    auto oldd = Distribution::block(0, 30, {15, 15});
    auto newd = Distribution::block(0, 30, {10, 10, 10});
    RedistContext ctx{30, &oldg, &oldd, &newg, &newd};
    std::vector<Drsd> acc;
    EXPECT_EQ(transfer_rows(ctx, acc, 0, 1), RowSet(10, 15));
    EXPECT_EQ(transfer_rows(ctx, acc, 2, 1), RowSet(15, 20));
}

TEST(RedistPlan, PlanIsSymmetricallyConsistent) {
    // For every pair, what i sends to j is exactly what j expects from i —
    // and transfers partition each node's newly-needed rows.
    Group oldg({0, 1, 2, 3});
    Group newg({0, 1, 3});
    auto oldd = Distribution::block(0, 64, {16, 16, 16, 16});
    auto newd = Distribution::block(0, 64, {30, 4, 30});
    RedistContext ctx{64, &oldg, &oldd, &newg, &newd};
    auto acc = halo_accesses("A");
    for (int dst = 0; dst < 4; ++dst) {
        RowSet incoming;
        for (int src = 0; src < 4; ++src) {
            RowSet t = transfer_rows(ctx, acc, src, dst);
            EXPECT_TRUE(incoming.intersect(t).empty())
                << "row sent twice to " << dst;
            incoming.add(t);
        }
        RowSet need = needed_rows(newg, newd, dst, acc, 64);
        RowSet kept = owned_rows(oldg, oldd, dst).intersect(need);
        EXPECT_EQ(incoming.unite(kept), need) << "coverage for " << dst;
    }
}

TEST(RedistPlan, PlanMatchesPairwiseTransferRows) {
    // The plan-once schedule must be row-for-row identical to the reference
    // pairwise formulation, for every perspective rank, across distribution
    // shape changes (block -> cyclic) and active-set shrink/grow.
    const int rows = 48;
    std::vector<ArrayInfo> arrays;
    for (const char* name : {"A", "B"}) {
        ArrayInfo ai;
        ai.accesses = name[0] == 'A' ? halo_accesses(name)
                                     : std::vector<Drsd>{};
        arrays.push_back(std::move(ai));
    }

    auto check = [&](const Group& oldg, const Distribution& oldd,
                     const Group& newg, const Distribution& newd) {
        RedistContext ctx{rows, &oldg, &oldd, &newg, &newd};
        for (int me = 0; me < 7; ++me) { // includes non-parties
            RedistPlan plan = build_redist_plan(ctx, arrays, me);
            ASSERT_EQ(plan.per_array.size(), arrays.size());
            for (std::size_t k = 0; k < arrays.size(); ++k) {
                const auto& ap = plan.per_array[k];
                ASSERT_EQ(ap.send_to.size(), plan.parties.size());
                ASSERT_EQ(ap.recv_from.size(), plan.parties.size());
                for (std::size_t i = 0; i < plan.parties.size(); ++i) {
                    const int peer = plan.parties[i];
                    EXPECT_EQ(ap.send_to[i],
                              transfer_rows(ctx, arrays[k].accesses, me,
                                            peer))
                        << "send me=" << me << " peer=" << peer << " k=" << k;
                    EXPECT_EQ(ap.recv_from[i],
                              transfer_rows(ctx, arrays[k].accesses, peer,
                                            me))
                        << "recv me=" << me << " peer=" << peer << " k=" << k;
                }
                EXPECT_EQ(ap.my_needed,
                          needed_rows(newg, newd, me, arrays[k].accesses,
                                      rows))
                    << "needed me=" << me << " k=" << k;
            }
        }
    };

    // Same membership, block -> cyclic.
    check(Group({0, 1, 2, 3}), Distribution::block(0, rows, {12, 12, 12, 12}),
          Group({0, 1, 2, 3}), Distribution::cyclic(0, rows, 4));
    // Shrink: six nodes down to three, even block -> block-cyclic.
    check(Group({0, 1, 2, 3, 4, 5}), Distribution::even_block(0, rows, 6),
          Group({1, 3, 4}), Distribution::cyclic(0, rows, 3, 2));
    // Grow: two nodes up to four, cyclic -> variable block.
    check(Group({0, 2}), Distribution::cyclic(0, rows, 2),
          Group({0, 1, 2, 4}), Distribution::block(0, rows, {10, 14, 16, 8}));
}

// ---------------------------------------------------------------------------
// Execution on the machine
// ---------------------------------------------------------------------------

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    return c;
}

TEST(RedistExec, DenseDataSurvivesOwnershipChange) {
    msg::Machine m(cfg(3));
    m.run([](msg::Rank& r) {
        Group g({0, 1, 2});
        auto oldd = Distribution::block(0, 30, {10, 10, 10});
        auto newd = Distribution::block(0, 30, {4, 20, 6});

        std::vector<ArrayInfo> arrays;
        ArrayInfo ai;
        ai.array = std::make_unique<DenseArray>("A", 30, 8, sizeof(double));
        ai.accesses = halo_accesses("A");
        arrays.push_back(std::move(ai));

        auto& A = static_cast<DenseArray&>(*arrays[0].array);
        RowSet mine = needed_rows(g, oldd, r.id(), arrays[0].accesses, 30);
        A.ensure_rows(mine);
        // Each node authors only the rows it OWNS.
        for (int row : owned_rows(g, oldd, r.id()).to_vector())
            for (int j = 0; j < 8; ++j)
                A.at<double>(row, j) = row * 1000.0 + j;

        RedistContext ctx{30, &g, &oldd, &g, &newd};
        execute_redistribution(r, ctx, arrays, 1);

        RowSet need = needed_rows(g, newd, r.id(), arrays[0].accesses, 30);
        EXPECT_EQ(A.held(), need);
        for (int row : need.to_vector())
            for (int j = 0; j < 8; ++j)
                EXPECT_DOUBLE_EQ(A.at<double>(row, j), row * 1000.0 + j)
                    << "rank " << r.id() << " row " << row;
    });
}

TEST(RedistExec, SparseDataAndMetadataSurvive) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        Group g({0, 1});
        auto oldd = Distribution::block(0, 20, {10, 10});
        auto newd = Distribution::block(0, 20, {3, 17});

        std::vector<ArrayInfo> arrays;
        ArrayInfo ai;
        ai.array = std::make_unique<SparseMatrix>("S", 20, 40);
        ai.accesses = {Drsd{"S", AccessMode::Write, 0, 1, 0}};
        arrays.push_back(std::move(ai));
        auto& S = static_cast<SparseMatrix&>(*arrays[0].array);

        S.ensure_rows(owned_rows(g, oldd, r.id()));
        for (int row : owned_rows(g, oldd, r.id()).to_vector()) {
            S.set(row, row % 40, row * 2.0);
            S.set(row, (row * 7) % 40, -row * 1.0);
        }

        RedistContext ctx{20, &g, &oldd, &g, &newd};
        execute_redistribution(r, ctx, arrays, 9);

        for (int row : owned_rows(g, newd, r.id()).to_vector()) {
            EXPECT_DOUBLE_EQ(S.get(row, row % 40), row * 2.0);
            if ((row * 7) % 40 != row % 40)
                EXPECT_DOUBLE_EQ(S.get(row, (row * 7) % 40), -row * 1.0);
        }
    });
}

TEST(RedistExec, MultipleArraysMoveTogether) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        Group g({0, 1});
        auto oldd = Distribution::block(0, 16, {8, 8});
        auto newd = Distribution::block(0, 16, {12, 4});

        std::vector<ArrayInfo> arrays;
        for (const char* name : {"A", "B"}) {
            ArrayInfo ai;
            ai.array = std::make_unique<DenseArray>(name, 16, 2, sizeof(int));
            ai.accesses = {Drsd{name, AccessMode::Write, 0, 1, 0}};
            arrays.push_back(std::move(ai));
        }
        for (auto& ai : arrays) {
            auto& arr = static_cast<DenseArray&>(*ai.array);
            arr.ensure_rows(owned_rows(g, oldd, r.id()));
            int salt = ai.array->name() == "A" ? 1 : 2;
            for (int row : owned_rows(g, oldd, r.id()).to_vector())
                arr.at<int>(row, 0) = row * 10 + salt;
        }

        RedistContext ctx{16, &g, &oldd, &g, &newd};
        auto stats = execute_redistribution(r, ctx, arrays, 3);
        if (r.id() == 0) {
            // Rank 1 ships rows 8..12 of both arrays to rank 0.
            EXPECT_EQ(stats.messages, 0u); // rank 0 sends nothing
        }
        for (auto& ai : arrays) {
            auto& arr = static_cast<DenseArray&>(*ai.array);
            int salt = ai.array->name() == "A" ? 1 : 2;
            for (int row : owned_rows(g, newd, r.id()).to_vector())
                EXPECT_EQ(arr.at<int>(row, 0), row * 10 + salt);
        }
    });
}

TEST(RedistExec, IdentityRedistributionRefreshesGhostsOnly) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        Group g({0, 1});
        auto d = Distribution::block(0, 10, {5, 5});
        std::vector<ArrayInfo> arrays;
        ArrayInfo ai;
        ai.array = std::make_unique<DenseArray>("A", 10, 1, sizeof(double));
        ai.accesses = halo_accesses("A");
        arrays.push_back(std::move(ai));
        auto& A = static_cast<DenseArray&>(*arrays[0].array);
        A.ensure_rows(needed_rows(g, d, r.id(), arrays[0].accesses, 10));
        for (int row : owned_rows(g, d, r.id()).to_vector())
            A.at<double>(row, 0) = 5.0 + row;

        RedistContext ctx{10, &g, &d, &g, &d};
        auto stats = execute_redistribution(r, ctx, arrays, 4);
        // Only the single ghost row crosses in each direction.
        EXPECT_EQ(stats.rows_moved, 1u);
        // Ghost got refreshed with the authoritative value.
        int ghost = r.id() == 0 ? 5 : 4;
        EXPECT_DOUBLE_EQ(A.at<double>(ghost, 0), 5.0 + ghost);
    });
}

}  // namespace
}  // namespace dynmpi
