// Heterogeneous clusters: static speed differences are the other half of
// "relative power" — the runtime must fold node speed into every decision
// alongside the dynamic load.
#include <gtest/gtest.h>

#include <numeric>

#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi {
namespace {

sim::ClusterConfig hetero(std::vector<double> speeds) {
    sim::ClusterConfig c;
    c.num_nodes = static_cast<int>(speeds.size());
    c.speeds = std::move(speeds);
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

struct Outcome {
    std::vector<int> counts;
    int redists = 0;
    double elapsed = 0;
};

Outcome run(sim::ClusterConfig cc, int rows, int cycles, double row_cost,
            std::function<void(msg::Machine&)> setup = {}) {
    msg::Machine m(cc);
    if (setup) setup(m);
    Outcome out;
    m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        Runtime rt(r, rows, o);
        rt.register_dense("A", 4, sizeof(double));
        int ph = rt.init_phase(0, rows, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int c = 0; c < cycles; ++c) {
            rt.begin_cycle();
            std::vector<double> costs(
                static_cast<std::size_t>(rt.my_iters(ph).count()), row_cost);
            rt.run_phase(ph, costs);
            rt.end_cycle();
        }
        if (r.id() == 0) {
            out.counts = rt.distribution().counts();
            out.redists = rt.stats().redistributions;
        }
    });
    out.elapsed = m.elapsed_seconds();
    return out;
}

TEST(Heterogeneous, FastNodeEndsUpWithProportionalBlock) {
    // 2x-speed node: after a load event triggers measurement, the measured
    // per-row costs plus speeds give it ~2x the rows.
    auto out = run(hetero({2.0, 1.0, 1.0}), 64, 80, 5e-3,
                   [](msg::Machine& m) {
                       m.cluster().add_load_interval(1, 0.5, 2.0);
                   });
    EXPECT_GE(out.redists, 1);
    ASSERT_EQ(out.counts.size(), 3u);
    // After the CP clears, the 2x node should hold roughly twice the rows.
    EXPECT_NEAR(out.counts[0], 32, 4);
    EXPECT_NEAR(out.counts[1], 16, 4);
}

TEST(Heterogeneous, SpeedAndLoadCompose) {
    // Fast unloaded node (power 2) vs slow node with one competitor (power
    // 0.5): a 4:1 block ratio.
    auto out = run(hetero({2.0, 1.0}), 50, 80, 5e-3, [](msg::Machine& m) {
        m.cluster().add_load_interval(1, 0.5, -1.0, 1);
    });
    EXPECT_GE(out.redists, 1);
    ASSERT_EQ(out.counts.size(), 2u);
    EXPECT_NEAR(out.counts[0], 40, 4);
    EXPECT_NEAR(out.counts[1], 10, 4);
}

TEST(Heterogeneous, BalancedPowersNeedNoRedistribution) {
    // A fast node with one competitor has effective power 2/2 = 1, same as a
    // slow unloaded node: the even initial split is already right, and the
    // runtime should *recognize* that instead of redistributing.
    auto out = run(hetero({2.0, 1.0}), 48, 80, 5e-3, [](msg::Machine& m) {
        m.cluster().add_load_interval(0, 0.5, -1.0, 1);
    });
    EXPECT_EQ(out.redists, 0);
    EXPECT_EQ(out.counts[0], out.counts[1]);
}

TEST(Heterogeneous, MeasurementsNormalizeBySpeed) {
    // The IterationTimer must report reference-CPU seconds: a row on the
    // slow (0.5x) node takes 2x wall but must estimate the same cost.
    msg::Machine m(hetero({1.0, 0.5}));
    m.cluster().add_load_interval(0, 0.5, -1.0); // trigger measurement
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        Runtime rt(r, 32, o);
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, 32, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int c = 0; c < 50; ++c) {
            rt.begin_cycle();
            std::vector<double> costs(
                static_cast<std::size_t>(rt.my_iters(ph).count()), 2e-2);
            rt.run_phase(ph, costs);
            rt.end_cycle();
        }
        const auto& est = rt.last_row_costs();
        ASSERT_EQ(est.size(), 32u);
        // All rows cost 20 ms reference regardless of who measured them.
        double lo = *std::min_element(est.begin(), est.end());
        double hi = *std::max_element(est.begin(), est.end());
        EXPECT_GT(lo, 0.015);
        EXPECT_LT(hi, 0.025);
    });
}

}  // namespace
}  // namespace dynmpi
