// Memory-aware balancing and paging (the AppLeS-style constraint from the
// paper's related work, implemented as a runtime extension).
#include <gtest/gtest.h>

#include <numeric>

#include "dynmpi/balancer.hpp"
#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi {
namespace {

// ---------------------------------------------------------------------------
// apply_row_caps (pure)
// ---------------------------------------------------------------------------

TEST(RowCaps, NoCapsIsIdentity) {
    auto c = apply_row_caps({10, 20, 30}, {0, 0, 0});
    EXPECT_EQ(c, (std::vector<int>{10, 20, 30}));
}

TEST(RowCaps, OverflowSpillsToOthers) {
    auto c = apply_row_caps({40, 10, 10}, {20, 0, 0});
    EXPECT_EQ(c[0], 20);
    EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0), 60);
    EXPECT_GT(c[1], 10);
    EXPECT_GT(c[2], 10);
}

TEST(RowCaps, SpillRespectsOtherCaps) {
    auto c = apply_row_caps({40, 10, 10}, {20, 15, 0});
    EXPECT_EQ(c[0], 20);
    EXPECT_LE(c[1], 15);
    EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0), 60);
}

TEST(RowCaps, CascadingSpill) {
    // Overflow from node 0 pushes node 1 over its own cap.
    auto c = apply_row_caps({50, 14, 0}, {10, 15, 0});
    EXPECT_EQ(c[0], 10);
    EXPECT_LE(c[1], 15);
    EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0), 64);
}

TEST(RowCaps, InfeasibleCapsRejected) {
    EXPECT_THROW(apply_row_caps({30, 30}, {10, 10}), Error);
}

TEST(RowCaps, ExactFitAccepted) {
    auto c = apply_row_caps({30, 30}, {30, 30});
    EXPECT_EQ(c, (std::vector<int>{30, 30}));
}

// ---------------------------------------------------------------------------
// Runtime integration
// ---------------------------------------------------------------------------

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

TEST(MemoryAware, AdaptationHonorsNodeMemory) {
    auto c = cfg(4);
    // Node 3 can hold only ~10 rows of the registered array (64 doubles).
    c.memories = {0, 0, 0, 10 * 64 * sizeof(double) + 100};
    msg::Machine m(c);
    m.cluster().add_load_interval(1, 0.5, -1.0, 2); // trigger adaptation
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        Runtime rt(r, 64, o);
        rt.register_dense("A", 64, sizeof(double));
        int ph = rt.init_phase(0, 64, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int t = 0; t < 80; ++t) {
            rt.begin_cycle();
            std::vector<double> costs(
                static_cast<std::size_t>(rt.my_iters(ph).count()), 5e-3);
            rt.run_phase(ph, costs);
            rt.end_cycle();
        }
        EXPECT_GE(rt.stats().redistributions, 1);
        auto counts = rt.distribution().counts();
        EXPECT_LE(counts[3], 10); // memory cap respected
        EXPECT_LT(counts[1], counts[0]); // load still matters
    });
}

TEST(MemoryAware, PagingInflatesCharges) {
    auto c = cfg(1);
    c.memories = {8 * 16 * sizeof(double)}; // fits only 8 of 16 rows
    msg::Machine m(c);
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 16, o);
        rt.register_dense("A", 16, sizeof(double));
        int ph = rt.init_phase(0, 16, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        rt.begin_cycle();
        rt.run_phase(ph, std::vector<double>(16, 0.01)); // 0.16 s of work
        rt.end_cycle();
        // 4x paging slowdown (single node cannot shed rows).
        EXPECT_NEAR(r.hrtime(), 0.64, 0.1);
    });
}

TEST(MemoryAware, NoPagingWhenDataFits) {
    auto c = cfg(1);
    c.memories = {16 * 16 * sizeof(double) + 1024};
    msg::Machine m(c);
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 16, o);
        rt.register_dense("A", 16, sizeof(double));
        int ph = rt.init_phase(0, 16, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        rt.begin_cycle();
        rt.run_phase(ph, std::vector<double>(16, 0.01));
        rt.end_cycle();
        EXPECT_NEAR(r.hrtime(), 0.16, 0.02);
    });
}

TEST(MemoryAware, UnlimitedMemoryMeansNoCaps) {
    msg::Machine m(cfg(2));
    m.cluster().add_load_interval(0, 0.5, -1.0, 2);
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        Runtime rt(r, 32, o);
        rt.register_dense("A", 8, sizeof(double));
        int ph = rt.init_phase(0, 32, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int t = 0; t < 60; ++t) {
            rt.begin_cycle();
            std::vector<double> costs(
                static_cast<std::size_t>(rt.my_iters(ph).count()), 5e-3);
            rt.run_phase(ph, costs);
            rt.end_cycle();
        }
        auto counts = rt.distribution().counts();
        EXPECT_GT(counts[1], counts[0]); // pure load-based split
    });
}

}  // namespace
}  // namespace dynmpi
