// Multi-phase programs with distinct iteration sub-ranges: per-phase DRSDs,
// per-phase cost measurement, and redistribution correctness when phases
// cover different slices of the row space.
#include <gtest/gtest.h>

#include <numeric>

#include "dynmpi/report.hpp"
#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

TEST(MultiPhase, SubRangePhasesClipToOwnership) {
    msg::Machine m(cfg(4));
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 64, o);
        rt.register_dense("A", 2, sizeof(double));
        int top = rt.init_phase(0, 32, PhaseComm{CommPattern::None, 0});
        int bottom = rt.init_phase(32, 64, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, top);
        rt.add_array_access("A", AccessMode::Write, bottom);
        rt.commit_setup();

        // With the even split {16,16,16,16}: ranks 0/1 own the top phase's
        // iterations, ranks 2/3 the bottom's.
        if (r.id() <= 1) {
            EXPECT_EQ(rt.my_iters(top).count(), 16);
            EXPECT_EQ(rt.my_iters(bottom).count(), 0);
        } else {
            EXPECT_EQ(rt.my_iters(top).count(), 0);
            EXPECT_EQ(rt.my_iters(bottom).count(), 16);
        }
    });
}

TEST(MultiPhase, PerPhaseCostsCombineInGlobalVector) {
    // Phase "top" charges 2ms/row on rows [0,32); phase "bottom" charges
    // 6ms/row on rows [32,64).  The measured global cost vector must show
    // the step, and the resulting blocks must give the bottom's owners
    // fewer rows.
    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(0, 0.5, 1.2); // trigger one grace period
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        Runtime rt(r, 64, o);
        rt.register_dense("A", 2, sizeof(double));
        int top = rt.init_phase(0, 32, PhaseComm{CommPattern::None, 0});
        int bottom = rt.init_phase(32, 64, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, top);
        rt.add_array_access("A", AccessMode::Write, bottom);
        rt.commit_setup();

        for (int c = 0; c < 80; ++c) {
            rt.begin_cycle();
            if (rt.participating()) {
                for (int ph : {top, bottom}) {
                    int n = rt.my_iters(ph).count();
                    if (n > 0)
                        rt.run_phase(
                            ph, std::vector<double>(
                                    static_cast<std::size_t>(n),
                                    ph == top ? 2e-3 : 6e-3));
                }
            }
            rt.end_cycle();
        }
        const auto& costs = rt.last_row_costs();
        ASSERT_EQ(costs.size(), 64u);
        EXPECT_NEAR(costs[10], 2e-3, 5e-4);
        EXPECT_NEAR(costs[50], 6e-3, 1.5e-3);
        // Cost-balanced blocks: the last owner (expensive rows) holds fewer.
        auto counts = rt.distribution().counts();
        EXPECT_LT(counts[3], counts[0]);
        int total = std::accumulate(counts.begin(), counts.end(), 0);
        EXPECT_EQ(total, 64);
    });
}

TEST(MultiPhase, DataIntactAcrossRedistributionWithSubRanges) {
    msg::Machine m(cfg(3));
    m.cluster().add_load_interval(1, 0.5, -1.0, 2);
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        Runtime rt(r, 48, o);
        auto& A = rt.register_dense("A", 3, sizeof(double));
        int top = rt.init_phase(0, 24, PhaseComm{CommPattern::None, 0});
        int bottom = rt.init_phase(24, 48, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, top);
        rt.add_array_access("A", AccessMode::Write, bottom);
        rt.commit_setup();

        // Author every owned row once (phases partition the row space).
        for (int ph : {top, bottom})
            for (int row : rt.my_iters(ph).to_vector())
                for (int j = 0; j < 3; ++j)
                    A.at<double>(row, j) = row * 3.0 + j;

        for (int c = 0; c < 60; ++c) {
            rt.begin_cycle();
            if (rt.participating()) {
                for (int ph : {top, bottom}) {
                    int n = rt.my_iters(ph).count();
                    if (n > 0)
                        rt.run_phase(ph,
                                     std::vector<double>(
                                         static_cast<std::size_t>(n), 4e-3));
                }
            }
            rt.end_cycle();
        }
        EXPECT_GE(rt.stats().redistributions, 1);
        for (int ph : {top, bottom})
            for (int row : rt.my_iters(ph).to_vector())
                for (int j = 0; j < 3; ++j)
                    EXPECT_DOUBLE_EQ(A.at<double>(row, j), row * 3.0 + j);
    });
}

TEST(MultiPhase, CsvExportCoversEveryCycle) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 16, o);
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, 16, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int c = 0; c < 12; ++c) {
            rt.begin_cycle();
            rt.run_phase(ph, std::vector<double>(8, 1e-3));
            rt.end_cycle();
        }
        if (r.id() == 0) {
            std::string csv = history_csv(rt.stats());
            // Header + one line per cycle.
            EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 13);
            EXPECT_NE(csv.find("cycle,start_s"), std::string::npos);
        }
    });
}

}  // namespace
}  // namespace dynmpi
