// Strided and multi-phase DRSD coverage: the a != 1 cases (red-black
// colorings, strided references) and their interaction with redistribution
// planning.
#include <gtest/gtest.h>

#include "dynmpi/redistributor.hpp"

namespace dynmpi {
namespace {

using msg::Group;

TEST(StridedDrsd, RedBlackColoringNeedsBothColors) {
    // A red sweep over iterations i reads rows 2i and 2i+1 of a color-split
    // array (a=2).
    std::vector<Drsd> acc{
        Drsd{"U", AccessMode::Read, 0, 2, 0},
        Drsd{"U", AccessMode::Write, 0, 2, 1},
    };
    RowSet iters(0, 8); // 8 iterations
    RowSet rows = rows_needed(acc, iters, 16);
    EXPECT_EQ(rows, RowSet(0, 16)); // every row touched
    AccessMode w = AccessMode::Write;
    RowSet writes = rows_needed(acc, iters, 16, &w);
    EXPECT_EQ(writes.to_vector(),
              (std::vector<int>{1, 3, 5, 7, 9, 11, 13, 15}));
}

TEST(StridedDrsd, NeededRowsWithStrideAndBlocks) {
    Group g({0, 1});
    auto d = Distribution::block(0, 8, {4, 4});
    std::vector<Drsd> acc{Drsd{"A", AccessMode::Write, 0, 2, 0}};
    // Node 0 iterates 0..3, writing rows {0,2,4,6} of a 16-row array.
    EXPECT_EQ(needed_rows(g, d, 0, acc, 16).to_vector(),
              (std::vector<int>{0, 1, 2, 3, 4, 6}));
    // (rows 0..3 from ownership-identity plus strided writes 0/2/4/6.)
}

TEST(StridedDrsd, TransferPlanCoversStridedNeeds) {
    // Redistribution with strided accesses still satisfies every need.
    Group g({0, 1, 2});
    auto oldd = Distribution::block(0, 12, {4, 4, 4});
    auto newd = Distribution::block(0, 12, {6, 3, 3});
    std::vector<Drsd> acc{
        Drsd{"A", AccessMode::Write, 0, 1, 0},
        Drsd{"A", AccessMode::Read, 0, 2, 0}, // strided read within array
    };
    RedistContext ctx{12, &g, &oldd, &g, &newd};
    for (int dst = 0; dst < 3; ++dst) {
        RowSet incoming;
        for (int src = 0; src < 3; ++src)
            incoming.add(transfer_rows(ctx, acc, src, dst));
        RowSet need = needed_rows(g, newd, dst, acc, 12);
        RowSet kept = owned_rows(g, oldd, dst).intersect(need);
        EXPECT_EQ(incoming.unite(kept), need) << "dst " << dst;
    }
}

TEST(StridedDrsd, NegativeStrideReflectsRows) {
    // row = -i + 11: iteration k touches the mirrored row.
    Drsd d{"A", AccessMode::Read, 0, -1, 11};
    RowSet rows = rows_touched(d, RowSet(0, 4), 12);
    EXPECT_EQ(rows.to_vector(), (std::vector<int>{8, 9, 10, 11}));
}

TEST(StridedDrsd, WideStrideSparseTouch) {
    Drsd d{"A", AccessMode::Read, 0, 5, 2};
    RowSet rows = rows_touched(d, RowSet(0, 4), 100);
    EXPECT_EQ(rows.to_vector(), (std::vector<int>{2, 7, 12, 17}));
}

}  // namespace
}  // namespace dynmpi
