#include "dynmpi/report.hpp"

#include <gtest/gtest.h>

namespace dynmpi {
namespace {

RuntimeStats make_stats() {
    RuntimeStats s;
    s.cycles = 30;
    s.redistributions = 2;
    s.physical_drops = 1;
    s.readds = 1;
    s.redist_wall_s = 0.5;
    s.transfer.rows_moved = 123;
    s.transfer.bytes = 4567;
    s.transfer.messages = 8;
    for (int c = 0; c < 30; ++c) {
        CycleRecord r;
        r.cycle = c;
        r.wall_s = c < 10 ? 0.1 : 0.2;
        r.max_wall_s = r.wall_s;
        r.mode = c >= 10 && c < 15 ? 1 : 0;
        r.redistributed = c == 15;
        s.history.push_back(r);
    }
    return s;
}

TEST(Report, SummaryMentionsAllEvents) {
    std::string s = summarize(make_stats());
    EXPECT_NE(s.find("30 cycles"), std::string::npos);
    EXPECT_NE(s.find("2 redistribution"), std::string::npos);
    EXPECT_NE(s.find("1 physical drop"), std::string::npos);
    EXPECT_NE(s.find("1 re-add"), std::string::npos);
    EXPECT_NE(s.find("123 rows"), std::string::npos);
}

TEST(Report, TimelineMarksRedistributionBucket) {
    std::string t = render_timeline(make_stats(), 5, 20);
    // Bucket starting at cycle 15 contains the redistribution.
    EXPECT_NE(t.find("cyc    15 |"), std::string::npos);
    std::size_t line_start = t.find("cyc    15");
    std::size_t line_end = t.find('\n', line_start);
    EXPECT_NE(t.substr(line_start, line_end - line_start).find(" R"),
              std::string::npos);
}

TEST(Report, TimelineBarsScaleWithCycleTime) {
    std::string t = render_timeline(make_stats(), 10, 40);
    // Second/third buckets (0.2s) should have ~twice the bars of the first.
    auto bars_in = [&](const char* label) {
        std::size_t p = t.find(label);
        std::size_t bar = t.find('|', p);
        int n = 0;
        while (t[bar + 1 + (std::size_t)n] == '#') ++n;
        return n;
    };
    EXPECT_NEAR(bars_in("cyc    10"), 2 * bars_in("cyc     0"), 1);
}

TEST(Report, PeriodSumsSplitCorrectly) {
    auto sums = period_sums(make_stats(), {10, 20});
    ASSERT_EQ(sums.size(), 3u);
    EXPECT_NEAR(sums[0], 1.0, 1e-9); // 10 x 0.1
    EXPECT_NEAR(sums[1], 2.0, 1e-9); // 10 x 0.2
    EXPECT_NEAR(sums[2], 2.0, 1e-9);
}

TEST(Report, SettledCycleTime) {
    EXPECT_NEAR(settled_cycle_time(make_stats(), 10), 0.2, 1e-9);
    EXPECT_NEAR(settled_cycle_time(make_stats(), 30), (1.0 + 4.0) / 30, 1e-9);
}

TEST(Report, BadArgumentsRejected) {
    EXPECT_THROW(settled_cycle_time(make_stats(), 100), Error);
    EXPECT_THROW(settled_cycle_time(make_stats(), 0), Error);
    EXPECT_THROW(period_sums(make_stats(), {20, 10}), Error);
    EXPECT_THROW(render_timeline(make_stats(), 0, 10), Error);
}

TEST(Report, EmptyHistoryHandled) {
    RuntimeStats s;
    EXPECT_EQ(render_timeline(s), "(no cycles)\n");
    EXPECT_NE(summarize(s).find("0 cycles"), std::string::npos);
}

}  // namespace
}  // namespace dynmpi
