#include "dynmpi/timing.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace dynmpi {
namespace {

TEST(IterationTimer, ChoosesProcForLongIterations) {
    IterationTimer t;
    t.start(4);
    std::vector<double> cpu(4, 0.05); // 50ms rows: >= 10ms threshold
    std::vector<double> wall(4, 0.05);
    t.record_cycle(wall, cpu, 0.0, 1.0);
    EXPECT_EQ(t.chosen_method(), IterationTimer::Method::Proc);
}

TEST(IterationTimer, ChoosesHrtimeForShortIterations) {
    IterationTimer t;
    t.start(4);
    std::vector<double> cpu(4, 0.002); // 2ms rows
    std::vector<double> wall(4, 0.002);
    t.record_cycle(wall, cpu, 0.0, 1.0);
    EXPECT_EQ(t.chosen_method(), IterationTimer::Method::Hrtime);
}

TEST(IterationTimer, ProcEstimatesConvergeOverCycles) {
    IterationTimer t;
    t.start(3);
    std::vector<double> cpu{0.033, 0.047, 0.021}; // not jiffy-aligned
    std::vector<double> wall = cpu;
    for (int c = 0; c < 5; ++c) t.record_cycle(wall, cpu, 0.0, 1.0);
    auto est = t.estimates();
    // Quantization error per reading is < 1 jiffy; averaging keeps the per-
    // row estimate within a jiffy of truth.
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(est[(size_t)i], cpu[(size_t)i], 0.010);
}

TEST(IterationTimer, ProcIgnoresCompetingLoad) {
    IterationTimer t;
    t.start(2);
    std::vector<double> cpu{0.05, 0.05};
    std::vector<double> wall{0.15, 0.15}; // 3x inflation from load
    t.record_cycle(wall, cpu, 2.0, 1.0);
    EXPECT_EQ(t.chosen_method(), IterationTimer::Method::Proc);
    auto est = t.estimates();
    EXPECT_NEAR(est[0], 0.05, 0.011);
}

TEST(IterationTimer, HrtimeDeratesByLoad) {
    IterationTimer t;
    t.start(2);
    std::vector<double> cpu{0.002, 0.004};
    std::vector<double> wall{0.006, 0.012}; // 2 competitors: 3x wall
    t.record_cycle(wall, cpu, 2.0, 1.0);
    auto est = t.estimates();
    EXPECT_NEAR(est[0], 0.002, 1e-9);
    EXPECT_NEAR(est[1], 0.004, 1e-9);
}

TEST(IterationTimer, MinFilterRemovesSpikes) {
    IterationTimer t;
    t.start(1);
    std::vector<double> cpu{0.002};
    // Cycle 1 and 2 spike (context switch landed in the row); cycle 3 clean.
    t.record_cycle({0.060}, cpu, 1.0, 1.0);
    t.record_cycle({0.031}, cpu, 1.0, 1.0);
    t.record_cycle({0.004}, cpu, 1.0, 1.0);
    auto est = t.estimates();
    EXPECT_NEAR(est[0], 0.002, 1e-9); // 0.004 / (1+1)
}

TEST(IterationTimer, SingleCycleKeepsSpike) {
    // The GP=1 failure mode of Figure 7: one noisy sample is all you get.
    IterationTimer t;
    t.start(1);
    t.record_cycle({0.060}, {0.002}, 1.0, 1.0);
    auto est = t.estimates();
    EXPECT_NEAR(est[0], 0.030, 1e-9); // wildly over the true 0.002
}

TEST(IterationTimer, SpeedScalesEstimates) {
    IterationTimer t;
    t.start(1);
    // On a 2x-speed node, a row taking 1ms wall costs 2ms reference CPU.
    t.record_cycle({0.001}, {0.001}, 0.0, 2.0);
    EXPECT_NEAR(t.estimates()[0], 0.002, 1e-9);
}

TEST(IterationTimer, CompleteAfterConfiguredCycles) {
    TimingConfig cfg;
    cfg.grace_cycles = 3;
    IterationTimer t(cfg);
    t.start(1);
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(t.complete());
        t.record_cycle({0.01}, {0.01}, 0.0, 1.0);
    }
    EXPECT_TRUE(t.complete());
}

TEST(IterationTimer, MismatchedLengthsRejected) {
    IterationTimer t;
    t.start(2);
    EXPECT_THROW(t.record_cycle({0.1}, {0.1, 0.1}, 0.0, 1.0), Error);
}

TEST(IterationTimer, EstimatesWithoutDataRejected) {
    IterationTimer t;
    t.start(2);
    EXPECT_THROW(t.estimates(), Error);
}

TEST(IterationTimer, UnbalancedRowsPreserved) {
    // Particle-simulation shape: row costs differ wildly; the estimator must
    // preserve the profile, not average it away.
    IterationTimer t;
    Rng rng(7);
    const int n = 64;
    std::vector<double> truth(n);
    for (auto& c : truth) c = rng.uniform(0.001, 0.008);
    t.start(n);
    for (int cycle = 0; cycle < 5; ++cycle) {
        std::vector<double> wall(n);
        for (int i = 0; i < n; ++i) {
            double spike = rng.next_double() < 0.2 ? rng.uniform(0, 0.03) : 0.0;
            wall[(size_t)i] = truth[(size_t)i] * 2.0 + spike; // 1 competitor
        }
        t.record_cycle(wall, truth, 1.0, 1.0);
    }
    auto est = t.estimates();
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(est[(size_t)i], truth[(size_t)i], truth[(size_t)i] * 0.05);
}

}  // namespace
}  // namespace dynmpi
