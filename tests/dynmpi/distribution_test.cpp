#include "dynmpi/distribution.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace dynmpi {
namespace {

TEST(Distribution, EvenBlockSplitsFairly) {
    auto d = Distribution::even_block(0, 10, 3);
    EXPECT_EQ(d.counts(), (std::vector<int>{4, 3, 3}));
    EXPECT_EQ(d.block_range(0), (RowInterval{0, 4}));
    EXPECT_EQ(d.block_range(1), (RowInterval{4, 7}));
    EXPECT_EQ(d.block_range(2), (RowInterval{7, 10}));
}

TEST(Distribution, VariableBlockOwnership) {
    auto d = Distribution::block(0, 10, {5, 2, 3});
    EXPECT_EQ(d.owner_of(0), 0);
    EXPECT_EQ(d.owner_of(4), 0);
    EXPECT_EQ(d.owner_of(5), 1);
    EXPECT_EQ(d.owner_of(6), 1);
    EXPECT_EQ(d.owner_of(7), 2);
    EXPECT_EQ(d.owner_of(9), 2);
}

TEST(Distribution, OwnershipConsistentWithItersOf) {
    auto d = Distribution::block(100, 200, {30, 0, 50, 20});
    for (int rel = 0; rel < 4; ++rel)
        for (int i : d.iters_of(rel).to_vector())
            EXPECT_EQ(d.owner_of(i), rel) << "iter " << i;
}

TEST(Distribution, ZeroCountPartyOwnsNothing) {
    auto d = Distribution::block(0, 10, {5, 0, 5});
    EXPECT_TRUE(d.iters_of(1).empty());
    EXPECT_EQ(d.owner_of(5), 2);
    EXPECT_EQ(d.count_of(1), 0);
}

TEST(Distribution, CountsMustCoverSpace) {
    EXPECT_THROW(Distribution::block(0, 10, {3, 3}), Error);
    EXPECT_THROW(Distribution::block(0, 10, {5, 6}), Error);
    EXPECT_THROW(Distribution::block(0, 10, {11, -1}), Error);
}

TEST(Distribution, NonZeroLowerBound) {
    auto d = Distribution::block(50, 60, {4, 6});
    EXPECT_EQ(d.owner_of(53), 0);
    EXPECT_EQ(d.owner_of(54), 1);
    EXPECT_EQ(d.iters_of(1), RowSet(54, 60));
    EXPECT_THROW(d.owner_of(49), Error);
    EXPECT_THROW(d.owner_of(60), Error);
}

TEST(Distribution, CyclicDealsRoundRobin) {
    auto d = Distribution::cyclic(0, 10, 3);
    EXPECT_EQ(d.owner_of(0), 0);
    EXPECT_EQ(d.owner_of(1), 1);
    EXPECT_EQ(d.owner_of(2), 2);
    EXPECT_EQ(d.owner_of(3), 0);
    EXPECT_EQ(d.iters_of(0).to_vector(), (std::vector<int>{0, 3, 6, 9}));
    EXPECT_EQ(d.count_of(0), 4);
    EXPECT_EQ(d.count_of(1), 3);
}

TEST(Distribution, BlockCyclicRespectsBlockSize) {
    auto d = Distribution::cyclic(0, 12, 2, 3);
    EXPECT_EQ(d.iters_of(0).to_vector(),
              (std::vector<int>{0, 1, 2, 6, 7, 8}));
    EXPECT_EQ(d.owner_of(4), 1);
    EXPECT_EQ(d.owner_of(8), 0);
}

TEST(Distribution, CyclicOwnershipConsistentWithIters) {
    auto d = Distribution::cyclic(5, 42, 4, 2);
    int covered = 0;
    for (int rel = 0; rel < 4; ++rel) {
        for (int i : d.iters_of(rel).to_vector()) {
            EXPECT_EQ(d.owner_of(i), rel);
            ++covered;
        }
    }
    EXPECT_EQ(covered, 37);
}

TEST(Distribution, EveryIterationHasExactlyOneOwner) {
    auto d = Distribution::block(0, 100, {13, 0, 37, 50});
    std::vector<int> owners(100, -1);
    for (int rel = 0; rel < 4; ++rel)
        for (int i : d.iters_of(rel).to_vector()) {
            EXPECT_EQ(owners[(size_t)i], -1);
            owners[(size_t)i] = rel;
        }
    for (int i = 0; i < 100; ++i) EXPECT_NE(owners[(size_t)i], -1);
}

TEST(Distribution, BlockRangeOnCyclicRejected) {
    auto d = Distribution::cyclic(0, 10, 2);
    EXPECT_THROW(d.block_range(0), Error);
}

}  // namespace
}  // namespace dynmpi
