#include "dynmpi/dense_array.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace dynmpi {
namespace {

DenseArray make(int rows = 16, int cols = 4) {
    return DenseArray("A", rows, cols, sizeof(double));
}

void fill(DenseArray& a, int row) {
    for (int j = 0; j < a.row_elems(); ++j)
        a.at<double>(row, j) = row * 100.0 + j;
}

void expect_filled(const DenseArray& a, int row) {
    for (int j = 0; j < a.row_elems(); ++j)
        EXPECT_DOUBLE_EQ(a.at<double>(row, j), row * 100.0 + j);
}

TEST(DenseArray, EnsureAllocatesZeroedRows) {
    auto a = make();
    a.ensure_rows(RowSet(2, 5));
    EXPECT_EQ(a.held(), RowSet(2, 5));
    for (int r = 2; r < 5; ++r)
        for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(a.at<double>(r, j), 0.0);
    EXPECT_EQ(a.stats().rows_allocated, 3u);
}

TEST(DenseArray, EnsureIsIdempotent) {
    auto a = make();
    a.ensure_rows(RowSet(0, 4));
    fill(a, 1);
    a.ensure_rows(RowSet(0, 4)); // must not wipe existing data
    expect_filled(a, 1);
    EXPECT_EQ(a.stats().rows_allocated, 4u);
}

TEST(DenseArray, AccessToMissingRowRejected) {
    auto a = make();
    a.ensure_rows(RowSet(0, 2));
    EXPECT_THROW(a.at<double>(5, 0), Error);
    EXPECT_THROW(a.row_data(2), Error);
}

TEST(DenseArray, DropReleasesRows) {
    auto a = make();
    a.ensure_rows(RowSet(0, 8));
    a.drop_rows(RowSet(2, 4));
    EXPECT_FALSE(a.has_row(2));
    EXPECT_TRUE(a.has_row(4));
    EXPECT_EQ(a.stats().rows_freed, 2u);
    EXPECT_EQ(a.held().count(), 6);
}

TEST(DenseArray, PackUnpackRoundTripsData) {
    auto src = make();
    src.ensure_rows(RowSet(3, 7));
    for (int r = 3; r < 7; ++r) fill(src, r);

    auto dst = make();
    dst.unpack_rows(src.pack_rows(RowSet(4, 6)));
    EXPECT_EQ(dst.held(), RowSet(4, 6));
    expect_filled(dst, 4);
    expect_filled(dst, 5);
}

TEST(DenseArray, UnpackOverwritesExistingRows) {
    auto src = make(), dst = make();
    src.ensure_rows(RowSet(0, 1));
    fill(src, 0);
    dst.ensure_rows(RowSet(0, 1)); // zeroed
    dst.unpack_rows(src.pack_rows(RowSet(0, 1)));
    expect_filled(dst, 0);
    EXPECT_EQ(dst.stats().rows_allocated, 1u); // reused, not reallocated
}

TEST(DenseArray, PackNonContiguousRows) {
    auto src = make(), dst = make();
    RowSet rows;
    rows.add(1, 2);
    rows.add(9, 11);
    src.ensure_rows(rows);
    fill(src, 1);
    fill(src, 9);
    fill(src, 10);
    dst.unpack_rows(src.pack_rows(rows));
    EXPECT_EQ(dst.held(), rows);
    expect_filled(dst, 10);
}

TEST(DenseArray, RetainOnlyKeepsRequestedRows) {
    auto a = make();
    a.ensure_rows(RowSet(0, 10));
    fill(a, 4);
    a.retain_only(RowSet(4, 6));
    EXPECT_EQ(a.held(), RowSet(4, 6));
    expect_filled(a, 4); // survivor untouched — projection reuse
}

TEST(DenseArray, EnsureOutOfRangeRejected) {
    auto a = make(8);
    EXPECT_THROW(a.ensure_rows(RowSet(6, 10)), Error);
}

TEST(DenseArray, ProjectionDoesNotCopyOnGrowth) {
    // The headline property of §4.1.1: growing the held set never touches
    // existing rows.
    auto a = make(1000, 64);
    a.ensure_rows(RowSet(0, 100));
    const std::byte* before = a.row_data(50);
    a.ensure_rows(RowSet(100, 900));
    EXPECT_EQ(a.row_data(50), before);
    EXPECT_EQ(a.stats().bytes_copied, 0u);
}

// ---------------------------------------------------------------------------
// Contiguous baseline
// ---------------------------------------------------------------------------

TEST(ContiguousDenseArray, GrowthCopiesSurvivors) {
    ContiguousDenseArray a("A", 1000, 64, sizeof(double));
    a.ensure_rows(RowSet(0, 100));
    a.at<double>(10, 3) = 42.0;
    a.ensure_rows(RowSet(100, 900)); // re-extent to [0,900): full copy
    EXPECT_GT(a.stats().bytes_copied, 0u);
    EXPECT_DOUBLE_EQ(a.at<double>(10, 3), 42.0);
    EXPECT_GE(a.stats().reallocations, 2u);
}

TEST(ContiguousDenseArray, ShiftOnFrontExtension) {
    ContiguousDenseArray a("A", 100, 2, sizeof(double));
    a.ensure_rows(RowSet(50, 60));
    a.at<double>(55, 0) = 7.0;
    std::uint64_t copied_before = a.stats().bytes_copied;
    a.ensure_rows(RowSet(40, 50)); // extend at the front: everything shifts
    EXPECT_GT(a.stats().bytes_copied, copied_before);
    EXPECT_DOUBLE_EQ(a.at<double>(55, 0), 7.0);
}

TEST(ContiguousDenseArray, PackUnpackCompatibleWithProjection) {
    // Both implementations share the wire format.
    DenseArray src("A", 16, 4, sizeof(double));
    src.ensure_rows(RowSet(2, 6));
    for (int r = 2; r < 6; ++r)
        for (int j = 0; j < 4; ++j) src.at<double>(r, j) = r + 0.25 * j;

    ContiguousDenseArray dst("A", 16, 4, sizeof(double));
    dst.unpack_rows(src.pack_rows(RowSet(2, 6)));
    EXPECT_DOUBLE_EQ(dst.at<double>(3, 2), 3.5);
}

TEST(ContiguousDenseArray, DropShrinksToHeldSpan) {
    ContiguousDenseArray a("A", 100, 2, sizeof(double));
    a.ensure_rows(RowSet(0, 50));
    a.at<double>(30, 1) = 9.0;
    a.drop_rows(RowSet(0, 20));
    EXPECT_EQ(a.held(), RowSet(20, 50));
    EXPECT_DOUBLE_EQ(a.at<double>(30, 1), 9.0);
    EXPECT_THROW(a.row_data(5), Error);
}

}  // namespace
}  // namespace dynmpi
