// The adaptation event log: every decision leaves a structured record in
// the order it happened.
#include <gtest/gtest.h>

#include "dynmpi/report.hpp"
#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

RuntimeStats run_with_load(sim::ClusterConfig cc, RuntimeOptions o,
                           int cycles, double row_cost,
                           std::function<void(msg::Machine&)> setup) {
    msg::Machine m(cc);
    setup(m);
    RuntimeStats out;
    m.run([&](msg::Rank& r) {
        o.calibrate = false;
        Runtime rt(r, 48, o);
        rt.register_dense("A", 4, sizeof(double));
        int ph = rt.init_phase(0, 48, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int c = 0; c < cycles; ++c) {
            rt.begin_cycle();
            if (rt.participating())
                rt.run_phase(ph, std::vector<double>(
                                     static_cast<std::size_t>(
                                         rt.my_iters(ph).count()),
                                     row_cost));
            rt.end_cycle();
        }
        if (r.id() == 0) out = rt.stats();
    });
    return out;
}

TEST(Events, LoadChangeThenRedistributionRecorded) {
    RuntimeOptions o;
    o.enable_removal = false;
    auto stats = run_with_load(cfg(4), o, 60, 5e-3, [](msg::Machine& m) {
        m.cluster().add_load_interval(1, 0.5, -1.0, 2);
    });
    ASSERT_GE(stats.events.size(), 2u);
    EXPECT_EQ(stats.events[0].kind, AdaptationEvent::Kind::LoadChange);
    EXPECT_EQ(stats.events[1].kind, AdaptationEvent::Kind::Redistributed);
    EXPECT_GT(stats.events[1].cycle, stats.events[0].cycle);
    EXPECT_NE(stats.events[1].detail.find("/"), std::string::npos);
}

TEST(Events, ImmaterialChangeRecordsSkip) {
    // The same load lands on BOTH nodes at once: detection fires, but the
    // balanced shares do not move — the decision must be visibly Skipped.
    RuntimeOptions o;
    o.enable_removal = false;
    auto stats = run_with_load(cfg(2), o, 80, 5e-3, [](msg::Machine& m) {
        m.cluster().add_load_interval(0, 0.5, -1.0, 1);
        m.cluster().add_load_interval(1, 0.5, -1.0, 1);
    });
    bool skipped = false, redistributed = false;
    for (const auto& e : stats.events) {
        if (e.kind == AdaptationEvent::Kind::Skipped) skipped = true;
        if (e.kind == AdaptationEvent::Kind::Redistributed)
            redistributed = true;
    }
    EXPECT_TRUE(skipped);
    EXPECT_FALSE(redistributed);
}

TEST(Events, DropAndReaddRecordedInOrder) {
    RuntimeOptions o;
    o.enable_removal = true;
    o.force_drop_loaded = true;
    auto stats = run_with_load(cfg(4), o, 700, 2e-4, [](msg::Machine& m) {
        m.cluster().add_load_interval(1, 0.3, 1.5, 4);
    });
    std::vector<AdaptationEvent::Kind> kinds;
    for (const auto& e : stats.events) kinds.push_back(e.kind);
    auto find_kind = [&](AdaptationEvent::Kind k) {
        for (std::size_t i = 0; i < kinds.size(); ++i)
            if (kinds[i] == k) return static_cast<int>(i);
        return -1;
    };
    int drop = find_kind(AdaptationEvent::Kind::Dropped);
    ASSERT_GE(drop, 0) << render_events(stats);
    // Re-add appears on the REJOINING node's log; rank 0 stays active, so
    // here we check the dropped node's own record via a second run if rank 0
    // is the victim.  In this setup node 1 is dropped, so rank 0 records the
    // Dropped event and a later Redistributed for the re-add.
    int redist_after = -1;
    for (std::size_t i = static_cast<std::size_t>(drop) + 1;
         i < kinds.size(); ++i)
        if (kinds[i] == AdaptationEvent::Kind::Redistributed)
            redist_after = static_cast<int>(i);
    EXPECT_GE(redist_after, 0) << render_events(stats);
}

TEST(Events, RenderEventsIsHumanReadable) {
    RuntimeOptions o;
    o.enable_removal = false;
    auto stats = run_with_load(cfg(2), o, 60, 5e-3, [](msg::Machine& m) {
        m.cluster().add_load_interval(1, 0.5, -1.0, 1);
    });
    std::string s = render_events(stats);
    EXPECT_NE(s.find("load-change"), std::string::npos);
    EXPECT_NE(s.find("redistributed"), std::string::npos);
    EXPECT_NE(s.find("t="), std::string::npos);
}

TEST(Events, QuietRunHasNoEvents) {
    RuntimeOptions o;
    auto stats = run_with_load(cfg(2), o, 20, 1e-3, [](msg::Machine&) {});
    EXPECT_TRUE(stats.events.empty());
    EXPECT_EQ(render_events(stats), "(no adaptation events)\n");
}

}  // namespace
}  // namespace dynmpi
