#include "dynmpi/sparse_matrix.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace dynmpi {
namespace {

SparseMatrix make(int rows = 10, int cols = 10) {
    return SparseMatrix("S", rows, cols);
}

void put32(std::vector<std::byte>& out, std::uint32_t v) {
    std::byte b[4];
    std::memcpy(b, &v, 4);
    out.insert(out.end(), b, b + 4);
}

void put64(std::vector<std::byte>& out, std::uint64_t v) {
    std::byte b[8];
    std::memcpy(b, &v, 8);
    out.insert(out.end(), b, b + 8);
}

TEST(SparseMatrix, SetAndGet) {
    auto m = make();
    m.ensure_rows(RowSet(0, 3));
    m.set(1, 4, 2.5);
    EXPECT_DOUBLE_EQ(m.get(1, 4), 2.5);
    EXPECT_DOUBLE_EQ(m.get(1, 5), 0.0); // structural zero
    EXPECT_EQ(m.nnz(), 1);
}

TEST(SparseMatrix, SetOverwritesInPlace) {
    auto m = make();
    m.ensure_rows(RowSet(0, 1));
    m.set(0, 2, 1.0);
    m.set(0, 2, 3.0);
    EXPECT_DOUBLE_EQ(m.get(0, 2), 3.0);
    EXPECT_EQ(m.row_nnz(0), 1);
}

TEST(SparseMatrix, RowsKeptSortedByColumn) {
    auto m = make();
    m.ensure_rows(RowSet(0, 1));
    m.set(0, 7, 7.0);
    m.set(0, 2, 2.0);
    m.set(0, 5, 5.0);
    std::vector<int> cols;
    for (const auto& e : m.row(0)) cols.push_back(e.col);
    EXPECT_EQ(cols, (std::vector<int>{2, 5, 7}));
}

TEST(SparseMatrix, EraseRemovesElement) {
    auto m = make();
    m.ensure_rows(RowSet(0, 1));
    m.set(0, 3, 1.0);
    EXPECT_TRUE(m.erase(0, 3));
    EXPECT_FALSE(m.erase(0, 3));
    EXPECT_EQ(m.nnz(), 0);
}

TEST(SparseMatrix, AccessToMissingRowRejected) {
    auto m = make();
    EXPECT_THROW(m.set(0, 0, 1.0), Error);
    EXPECT_THROW(m.row(0), Error);
    EXPECT_THROW(m.get(0, 0), Error);
}

TEST(SparseMatrix, ColumnBoundsChecked) {
    auto m = make(4, 4);
    m.ensure_rows(RowSet(0, 1));
    EXPECT_THROW(m.set(0, 4, 1.0), Error);
    EXPECT_THROW(m.set(0, -1, 1.0), Error);
}

TEST(SparseMatrix, PackUnpackRoundTripsDataAndMetadata) {
    auto src = make();
    src.ensure_rows(RowSet(0, 5));
    src.set(1, 3, 1.5);
    src.set(1, 7, 2.5);
    src.set(4, 0, -1.0);
    // Row 2 stays empty — empty rows must survive the trip too.

    auto dst = make();
    dst.unpack_rows(src.pack_rows(RowSet(1, 5)));
    EXPECT_EQ(dst.held(), RowSet(1, 5));
    EXPECT_DOUBLE_EQ(dst.get(1, 3), 1.5);
    EXPECT_DOUBLE_EQ(dst.get(1, 7), 2.5);
    EXPECT_DOUBLE_EQ(dst.get(4, 0), -1.0);
    EXPECT_EQ(dst.row_nnz(2), 0);
    EXPECT_EQ(dst.nnz(), 3);
}

TEST(SparseMatrix, UnpackPreservesColumnOrder) {
    auto src = make();
    src.ensure_rows(RowSet(0, 1));
    src.set(0, 9, 9.0);
    src.set(0, 1, 1.0);
    src.set(0, 5, 5.0);
    auto dst = make();
    dst.unpack_rows(src.pack_rows(RowSet(0, 1)));
    std::vector<int> cols;
    for (const auto& e : dst.row(0)) cols.push_back(e.col);
    EXPECT_EQ(cols, (std::vector<int>{1, 5, 9}));
}

TEST(SparseMatrix, UnpackRejectsRowBeyondGlobalRows) {
    // Regression: unpack_rows accepted any decoded row id and happily
    // materialized phantom rows outside [0, global_rows).  A blob packed by
    // a larger matrix must be rejected by a smaller one.
    SparseMatrix src("S", 20, 10);
    src.ensure_rows(RowSet(12, 13));
    src.set(12, 3, 1.0);
    auto blob = src.pack_rows(RowSet(12, 13));
    auto dst = make(10, 10);
    EXPECT_THROW(dst.unpack_rows(blob), Error);
    EXPECT_TRUE(dst.held().empty());
    EXPECT_FALSE(dst.has_row(12));
}

TEST(SparseMatrix, UnpackRejectsNegativeRowId) {
    // A row id whose u32 wire encoding decodes to a negative int.
    std::vector<std::byte> blob;
    put32(blob, 1);           // nrows
    put32(blob, 0xFFFFFFFFu); // row id -1
    put64(blob, 0);           // empty payload
    auto dst = make();
    EXPECT_THROW(dst.unpack_rows(blob), Error);
    EXPECT_TRUE(dst.held().empty());
}

TEST(SparseMatrix, DropFreesRows) {
    auto m = make();
    m.ensure_rows(RowSet(0, 4));
    m.set(2, 2, 1.0);
    m.drop_rows(RowSet(2, 3));
    EXPECT_FALSE(m.has_row(2));
    EXPECT_EQ(m.nnz(), 0);
    EXPECT_EQ(m.stats().rows_freed, 1u);
}

// ---------------------------------------------------------------------------
// Paper-style cursor
// ---------------------------------------------------------------------------

TEST(SparseCursor, VisitsElementsInRowColumnOrder) {
    auto m = make();
    m.ensure_rows(RowSet(0, 4));
    m.set(0, 1, 0.1);
    m.set(2, 0, 2.0);
    m.set(2, 3, 2.3);
    m.set(3, 2, 3.2);

    auto c = m.cursor();
    std::vector<std::pair<int, int>> visited;
    while (!c.at_end()) {
        visited.emplace_back(c.current_row(), c.current().col);
        c.next();
    }
    EXPECT_EQ(visited,
              (std::vector<std::pair<int, int>>{{0, 1}, {2, 0}, {2, 3}, {3, 2}}));
}

TEST(SparseCursor, SkipsEmptyRows) {
    auto m = make();
    m.ensure_rows(RowSet(0, 5)); // all empty
    m.set(4, 4, 1.0);
    auto c = m.cursor();
    ASSERT_FALSE(c.at_end());
    EXPECT_EQ(c.current_row(), 4);
    c.next();
    EXPECT_TRUE(c.at_end());
}

TEST(SparseCursor, SetNextUpdatesValues) {
    auto m = make();
    m.ensure_rows(RowSet(0, 1));
    m.set(0, 0, 1.0);
    m.set(0, 1, 2.0);
    auto c = m.cursor();
    c.set_next(10.0);
    c.set_next(20.0);
    EXPECT_TRUE(c.at_end());
    EXPECT_DOUBLE_EQ(m.get(0, 0), 10.0);
    EXPECT_DOUBLE_EQ(m.get(0, 1), 20.0);
}

TEST(SparseCursor, AdvanceRowSkipsRest) {
    auto m = make();
    m.ensure_rows(RowSet(0, 2));
    m.set(0, 0, 1.0);
    m.set(0, 1, 2.0);
    m.set(1, 0, 3.0);
    auto c = m.cursor();
    EXPECT_EQ(c.current_row(), 0);
    c.advance_row();
    EXPECT_EQ(c.current_row(), 1);
    EXPECT_DOUBLE_EQ(c.current().value, 3.0);
}

TEST(SparseCursor, MoveFirstRestarts) {
    auto m = make();
    m.ensure_rows(RowSet(0, 1));
    m.set(0, 0, 1.0);
    auto c = m.cursor();
    c.next();
    EXPECT_TRUE(c.at_end());
    c.move_first();
    EXPECT_FALSE(c.at_end());
    EXPECT_DOUBLE_EQ(c.current().value, 1.0);
}

TEST(SparseCursor, EmptyMatrixStartsAtEnd) {
    auto m = make();
    auto c = m.cursor();
    EXPECT_TRUE(c.at_end());
    EXPECT_THROW(c.next(), Error);
}

// Property: pack/unpack round trip on random matrices preserves everything.
TEST(SparseMatrix, RandomRoundTripProperty) {
    Rng rng(2024);
    for (int trial = 0; trial < 20; ++trial) {
        int rows = 1 + static_cast<int>(rng.next_below(20));
        int cols = 1 + static_cast<int>(rng.next_below(30));
        SparseMatrix src("S", rows, cols);
        src.ensure_rows(RowSet(0, rows));
        int n = static_cast<int>(rng.next_below(60));
        for (int i = 0; i < n; ++i)
            src.set(static_cast<int>(rng.next_below((uint64_t)rows)),
                    static_cast<int>(rng.next_below((uint64_t)cols)),
                    rng.uniform(-5, 5));

        SparseMatrix dst("S", rows, cols);
        dst.unpack_rows(src.pack_rows(src.held()));
        ASSERT_EQ(dst.nnz(), src.nnz());
        for (int r = 0; r < rows; ++r) {
            ASSERT_EQ(dst.row_nnz(r), src.row_nnz(r));
            auto a = src.row(r).begin();
            auto b = dst.row(r).begin();
            for (; a != src.row(r).end(); ++a, ++b) ASSERT_EQ(*a, *b);
        }
    }
}

}  // namespace
}  // namespace dynmpi
