// Randomized end-to-end stress: arbitrary load scripts, node counts, and
// cost profiles.  Whatever the adaptation sequence turns out to be, the
// invariants must hold:
//   - every row is owned by exactly one active node,
//   - data written once is intact wherever it lands,
//   - block counts always cover the row space,
//   - identical seeds give identical runs.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"
#include "sim/fault_plan.hpp"
#include "support/rng.hpp"

namespace dynmpi {
namespace {

struct ChaosParams {
    int nodes;
    int rows;
    int cycles;
    std::uint64_t seed;
    std::string faults; ///< optional fault script injected into the run
    bool replicate = false; ///< buddy replication on every node
};

struct ChaosOutcome {
    bool data_ok = true;
    int redistributions = 0;
    int drops = 0;
    int readds = 0;
    std::vector<int> final_counts;
    double elapsed = 0;
    double checksum = 0;
    int restored_rows = 0;
    int zero_filled = 0;
};

ChaosOutcome run_chaos(const ChaosParams& cp) {
    Rng rng(cp.seed);
    sim::ClusterConfig cc;
    cc.num_nodes = cp.nodes;
    cc.seed = cp.seed;
    cc.ps_period = sim::from_seconds(0.25);
    msg::Machine m(cc);

    // Random load script: competing processes come and go on random nodes.
    int n_events = 2 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < n_events; ++e) {
        int node = static_cast<int>(rng.next_below((std::uint64_t)cp.nodes));
        double start = rng.uniform(0.2, 3.0);
        double end = rng.next_double() < 0.5 ? -1.0 : start + rng.uniform(1.0, 4.0);
        int count = 1 + static_cast<int>(rng.next_below(3));
        sim::BurstSpec spec;
        if (rng.next_double() < 0.3) {
            spec.period_s = rng.uniform(0.05, 0.4);
            spec.duty = rng.uniform(0.3, 0.9);
        }
        m.cluster().add_load_interval(node, start, end, count, spec);
    }

    if (!cp.faults.empty())
        m.cluster().install_faults(sim::FaultPlan::parse(cp.faults));

    double row_cost_base = rng.uniform(1e-3, 8e-3);
    ChaosOutcome out;
    m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = true; // anything may happen
        o.replicate = cp.replicate;
        Runtime rt(r, cp.rows, o);
        auto& A = rt.register_dense("A", 4, sizeof(double));
        int ph = rt.init_phase(
            0, cp.rows, PhaseComm{CommPattern::NearestNeighbor, 32});
        rt.add_array_access("A", AccessMode::Write, ph, 1, 0);
        rt.add_array_access("A", AccessMode::Read, ph, 1, -1);
        rt.add_array_access("A", AccessMode::Read, ph, 1, +1);
        rt.commit_setup();

        for (int row : rt.my_iters(ph).to_vector())
            for (int j = 0; j < 4; ++j)
                A.at<double>(row, j) = row * 7.0 + j;

        int zero_filled = 0;
        for (int c = 0; c < cp.cycles; ++c) {
            rt.begin_cycle();
            if (rt.participating()) {
                std::vector<double> costs(
                    static_cast<std::size_t>(rt.my_iters(ph).count()),
                    row_cost_base);
                rt.run_phase(ph, costs);
            }
            rt.end_cycle();
            // Rows adopted after a crash without a usable replica arrive
            // zero-filled; regenerate them so the data-integrity invariant
            // stays checkable.  With replication and a live buddy this loop
            // must never run — the invariant below enforces that.
            for (int row : rt.take_recovered_rows().to_vector()) {
                ++zero_filled;
                for (int j = 0; j < 4; ++j)
                    A.at<double>(row, j) = row * 7.0 + j;
            }
        }

        // With replication on, a crash whose buddy survived and had at least
        // one refresh must restore every row: a zero-filled row slipping
        // through here is data loss the replica should have prevented.
        for (const auto& rec : rt.stats().restores)
            if (rec.buddy_alive && rec.refreshed && rec.lost > 0)
                throw Error("replica restore lost " +
                            std::to_string(rec.lost) + " rows of node " +
                            std::to_string(rec.node) +
                            " although buddy was alive (rank " +
                            std::to_string(r.id()) + ")");

        // Invariants.
        bool ok = true;
        for (int row : rt.my_iters(ph).to_vector())
            for (int j = 0; j < 4; ++j)
                if (A.at<double>(row, j) != row * 7.0 + j) ok = false;
        double local = 0;
        for (int row : rt.my_iters(ph).to_vector())
            local += A.at<double>(row, 0);
        double sum = rt.allreduce_active(local, msg::OpSum{});
        double restored = rt.allreduce_active(
            static_cast<double>(rt.stats().restored_rows), msg::OpSum{});
        double zf = rt.allreduce_active(static_cast<double>(zero_filled),
                                        msg::OpSum{});
        if (r.id() == 0) {
            out.data_ok = ok;
            out.checksum = sum;
            out.redistributions = rt.stats().redistributions;
            out.drops = rt.stats().physical_drops;
            out.readds = rt.stats().readds;
            out.final_counts = rt.distribution().counts();
            out.restored_rows = static_cast<int>(restored);
            out.zero_filled = static_cast<int>(zf);
        } else if (!ok) {
            throw Error("data corrupted on rank " + std::to_string(r.id()));
        }
    });
    out.elapsed = m.elapsed_seconds();
    return out;
}

class Chaos : public ::testing::TestWithParam<int> {};

TEST_P(Chaos, InvariantsSurviveRandomLoadHistory) {
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 0x9E37;
    Rng rng(seed);
    ChaosParams cp;
    cp.nodes = 2 + static_cast<int>(rng.next_below(6));
    cp.rows = cp.nodes * (8 + static_cast<int>(rng.next_below(24)));
    cp.cycles = 80 + static_cast<int>(rng.next_below(120));
    cp.seed = seed;

    ChaosOutcome out = run_chaos(cp);
    EXPECT_TRUE(out.data_ok) << "seed " << seed;
    EXPECT_EQ(std::accumulate(out.final_counts.begin(),
                              out.final_counts.end(), 0),
              cp.rows)
        << "seed " << seed;
    // Checksum: sum over rows of row*7 (column 0), distribution-independent.
    double expect = 0;
    for (int row = 0; row < cp.rows; ++row) expect += row * 7.0;
    EXPECT_NEAR(out.checksum, expect, 1e-6) << "seed " << seed;
}

TEST_P(Chaos, DeterministicUnderSameSeed) {
    std::uint64_t seed = 77777 + static_cast<std::uint64_t>(GetParam());
    ChaosParams cp{4, 48, 100, seed};
    ChaosOutcome a = run_chaos(cp);
    ChaosOutcome b = run_chaos(cp);
    EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.final_counts, b.final_counts);
    EXPECT_EQ(a.redistributions, b.redistributions);
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.readds, b.readds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chaos, ::testing::Range(1, 11));

/// Random fault script on top of the random load history: at most one crash
/// (never node 0, which collects results), plus report pathologies, send
/// loss, and latency spikes.
std::string random_fault_script(Rng& rng, int nodes, double horizon_s) {
    std::string s;
    auto node_not_zero = [&] {
        return 1 + static_cast<int>(
                       rng.next_below(static_cast<std::uint64_t>(nodes - 1)));
    };
    auto t = [&] { return rng.uniform(0.5, horizon_s); };
    if (nodes >= 3 && rng.next_double() < 0.7)
        s += "crash node=" + std::to_string(node_not_zero()) +
             " t=" + std::to_string(t()) + "\n";
    if (rng.next_double() < 0.5)
        s += "drop-reports node=" + std::to_string(node_not_zero()) +
             " t=" + std::to_string(t()) +
             " dur=" + std::to_string(rng.uniform(0.5, 2.0)) + "\n";
    if (rng.next_double() < 0.5)
        s += "lose-sends node=" + std::to_string(node_not_zero()) +
             " t=" + std::to_string(t()) + " count=" +
             std::to_string(1 + rng.next_below(3)) + "\n";
    if (rng.next_double() < 0.3)
        s += "net-delay t=" + std::to_string(t()) +
             " dur=" + std::to_string(rng.uniform(0.2, 1.0)) +
             " extra=" + std::to_string(rng.uniform(1e-4, 5e-3)) + "\n";
    return s;
}

class FaultChaos : public ::testing::TestWithParam<int> {};

TEST_P(FaultChaos, InvariantsSurviveRandomFaultScripts) {
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 0xC0FFEE;
    Rng rng(seed);
    ChaosParams cp;
    cp.nodes = 3 + static_cast<int>(rng.next_below(5));
    cp.rows = cp.nodes * (8 + static_cast<int>(rng.next_below(16)));
    cp.cycles = 60 + static_cast<int>(rng.next_below(60));
    cp.seed = seed;
    cp.faults = random_fault_script(rng, cp.nodes, 3.0);

    ChaosOutcome out = run_chaos(cp);
    EXPECT_TRUE(out.data_ok) << "seed " << seed << "\n" << cp.faults;
    EXPECT_EQ(std::accumulate(out.final_counts.begin(),
                              out.final_counts.end(), 0),
              cp.rows)
        << "seed " << seed << "\n" << cp.faults;
    double expect = 0;
    for (int row = 0; row < cp.rows; ++row) expect += row * 7.0;
    EXPECT_NEAR(out.checksum, expect, 1e-6) << "seed " << seed << "\n"
                                            << cp.faults;
}

TEST_P(FaultChaos, DeterministicUnderSameSeedAndScript) {
    std::uint64_t seed = 424242 + static_cast<std::uint64_t>(GetParam());
    ChaosParams cp{5, 60, 70, seed,
                   "crash node=2 t=1.3\n"
                   "drop-reports node=3 t=0.8 dur=1.5\n"
                   "lose-sends node=1 t=0.5 count=2\n"};
    ChaosOutcome a = run_chaos(cp);
    ChaosOutcome b = run_chaos(cp);
    EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
    EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.final_counts, b.final_counts);
    EXPECT_EQ(a.redistributions, b.redistributions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultChaos, ::testing::Range(1, 11));

/// FaultChaos with buddy replication: the same random fault scripts, but any
/// crash whose buddy survived must lose zero row data — run_chaos throws if
/// a restore record shows loss while the buddy was alive, and the zero-fill
/// counter must stay at zero whenever rows were restored.
class ReplicatedFaultChaos : public ::testing::TestWithParam<int> {};

TEST_P(ReplicatedFaultChaos, CrashesLoseNoDataWhileBuddyAlive) {
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 0xBEEFED;
    Rng rng(seed);
    ChaosParams cp;
    cp.nodes = 3 + static_cast<int>(rng.next_below(5));
    cp.rows = cp.nodes * (8 + static_cast<int>(rng.next_below(16)));
    cp.cycles = 60 + static_cast<int>(rng.next_below(60));
    cp.seed = seed;
    cp.faults = random_fault_script(rng, cp.nodes, 3.0);
    cp.replicate = true;

    ChaosOutcome out = run_chaos(cp);
    EXPECT_TRUE(out.data_ok) << "seed " << seed << "\n" << cp.faults;
    EXPECT_EQ(std::accumulate(out.final_counts.begin(),
                              out.final_counts.end(), 0),
              cp.rows)
        << "seed " << seed << "\n" << cp.faults;
    double expect = 0;
    for (int row = 0; row < cp.rows; ++row) expect += row * 7.0;
    EXPECT_NEAR(out.checksum, expect, 1e-6) << "seed " << seed << "\n"
                                            << cp.faults;
    // A single crash with replication never zero-fills: either the buddy
    // restores everything, or nothing crashed and there is nothing to fill.
    EXPECT_EQ(out.zero_filled, 0) << "seed " << seed << "\n" << cp.faults;
}

TEST_P(ReplicatedFaultChaos, DeterministicUnderSameSeedAndScript) {
    std::uint64_t seed = 515151 + static_cast<std::uint64_t>(GetParam());
    ChaosParams cp{5, 60, 70, seed,
                   "crash node=2 t=1.3\n"
                   "drop-reports node=3 t=0.8 dur=1.5\n"
                   "lose-sends node=1 t=0.5 count=2\n",
                   /*replicate=*/true};
    ChaosOutcome a = run_chaos(cp);
    ChaosOutcome b = run_chaos(cp);
    EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
    EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.final_counts, b.final_counts);
    EXPECT_EQ(a.redistributions, b.redistributions);
    EXPECT_EQ(a.restored_rows, b.restored_rows);
    EXPECT_EQ(a.zero_filled, 0);
    EXPECT_EQ(b.zero_filled, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicatedFaultChaos,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace dynmpi
