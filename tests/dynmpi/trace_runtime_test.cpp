// Integration: the observability layer watching a real adaptation.  A
// scripted load spike drives Monitor -> Grace -> redistribute -> PostGrace,
// and the trace must show that story in order, byte-identically across two
// runs of the same scenario.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace dynmpi {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

/// One scripted scenario: 4 nodes, a competing process lands on node 1 at
/// t = 0.5 s and stays.  Returns the JSONL trace; the registries are left
/// enabled for the caller to inspect and must be cleaned up via Observed.
std::string run_traced(int cycles) {
    support::trace().enable();
    support::metrics().reset();
    support::metrics().enable();

    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(1, 0.5, -1.0, 2);
    m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        Runtime rt(r, 48, o);
        rt.register_dense("A", 4, sizeof(double));
        int ph = rt.init_phase(0, 48, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int c = 0; c < cycles; ++c) {
            rt.begin_cycle();
            if (rt.participating())
                rt.run_phase(ph, std::vector<double>(
                                     static_cast<std::size_t>(
                                         rt.my_iters(ph).count()),
                                     5e-3));
            rt.end_cycle();
        }
    });
    return support::trace().jsonl();
}

/// RAII guard: the trace sink and metrics registry are process-global, so
/// every test must leave them disabled and empty for the rest of the suite.
struct Observed {
    ~Observed() {
        support::trace().disable();
        support::trace().clear();
        support::metrics().disable();
        support::metrics().reset();
    }
};

int first_index(const std::vector<support::TraceEvent>& evs,
                const std::string& name, int rank) {
    for (std::size_t i = 0; i < evs.size(); ++i)
        if (evs[i].name == name && evs[i].rank == rank)
            return static_cast<int>(i);
    return -1;
}

TEST(TraceRuntime, AdaptationStoryInOrder) {
    Observed guard;
    run_traced(60);
    auto evs = support::trace().sorted_events();
    ASSERT_FALSE(evs.empty());

    int load_change = first_index(evs, "runtime.load_change", 0);
    int grace_enter = first_index(evs, "runtime.grace_enter", 0);
    int decision = first_index(evs, "balancer.decision", 0);
    int redistributed = first_index(evs, "runtime.redistributed", 0);
    int redist_apply = first_index(evs, "redist.apply", 0);
    int post_enter = first_index(evs, "runtime.post_grace_enter", 0);
    int post_exit = first_index(evs, "runtime.post_grace_exit", 0);

    ASSERT_GE(load_change, 0);
    ASSERT_GE(grace_enter, 0);
    ASSERT_GE(decision, 0);
    ASSERT_GE(redistributed, 0);
    ASSERT_GE(redist_apply, 0);
    ASSERT_GE(post_enter, 0);
    ASSERT_GE(post_exit, 0);

    EXPECT_LT(load_change, grace_enter);
    EXPECT_LT(grace_enter, decision);
    EXPECT_LT(decision, redistributed);
    EXPECT_LT(redistributed, post_enter);
    EXPECT_LT(post_enter, post_exit);

    // The redistribution phases appear on rank 0 too.
    EXPECT_GE(first_index(evs, "redist.pack", 0), 0);
    EXPECT_GE(first_index(evs, "redist.unpack", 0), 0);

    // Per-cycle spans cover every cycle of every rank; the machine summary
    // event closes the trace at rank -1.
    int cycles_seen = 0;
    for (const auto& e : evs)
        if (e.name == "runtime.cycle" && e.rank == 0) ++cycles_seen;
    EXPECT_EQ(cycles_seen, 60);
    EXPECT_GE(first_index(evs, "machine.run_end", -1), 0);
}

TEST(TraceRuntime, ByteIdenticalAcrossRuns) {
    Observed guard;
    std::string a = run_traced(60);
    std::string b = run_traced(60);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(TraceRuntime, MetricsMatchTheTrace) {
    Observed guard;
    run_traced(60);
    auto& mx = support::metrics();

    // Run-level metrics are rank-0-gated.
    EXPECT_EQ(mx.counter("runtime.cycles").value(), 60u);
    EXPECT_GE(mx.counter("runtime.load_changes").value(), 1u);
    EXPECT_GE(mx.counter("runtime.redistributions").value(), 1u);
    EXPECT_EQ(mx.histogram("runtime.cycle_wall_s").count(), 60u);

    // Cluster-wide transfer totals aggregate over all ranks.
    EXPECT_GT(mx.counter("redist.rows_moved").value(), 0u);
    EXPECT_GT(mx.counter("redist.bytes").value(), 0u);
    EXPECT_GT(mx.counter("balancer.calls").value(), 0u);

    // Machine/engine summary instruments.
    EXPECT_EQ(mx.counter("machine.runs").value(), 1u);
    EXPECT_GT(mx.counter("sim.events_fired").value(), 0u);
    EXPECT_GT(mx.gauge("machine.elapsed_s").value(), 0.0);
    EXPECT_GT(mx.gauge("sim.peak_pending_events").value(), 0.0);

    // Snapshots of the same registry are deterministic.
    EXPECT_EQ(mx.snapshot_json(), mx.snapshot_json());
}

TEST(TraceRuntime, QuietRunStaysQuiet) {
    Observed guard;
    support::trace().enable();
    msg::Machine m(cfg(2));
    m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 16, o);
        rt.register_dense("A", 2, sizeof(double));
        int ph = rt.init_phase(0, 16, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int c = 0; c < 10; ++c) {
            rt.begin_cycle();
            if (rt.participating())
                rt.run_phase(ph, std::vector<double>(
                                     static_cast<std::size_t>(
                                         rt.my_iters(ph).count()),
                                     1e-3));
            rt.end_cycle();
        }
    });
    auto evs = support::trace().sorted_events();
    for (const auto& e : evs) {
        EXPECT_NE(e.name, "runtime.grace_enter");
        EXPECT_NE(e.name, "runtime.redistributed");
        EXPECT_NE(e.name, "redist.apply");
    }
    // Cycle spans still cover the run.
    EXPECT_GE(first_index(evs, "runtime.cycle", 0), 0);
}

}  // namespace
}  // namespace dynmpi
