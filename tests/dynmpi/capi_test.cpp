// Tests for the paper-style DMPI_* call surface (Figure 2 fidelity).
#include "dynmpi/dmpi_c_api.hpp"

#include <gtest/gtest.h>

#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi::capi {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

RuntimeOptions fast() {
    RuntimeOptions o;
    o.calibrate = false;
    return o;
}

TEST(CApi, LifecycleMirrorsFigure2) {
    msg::Machine m(cfg(4));
    m.run([](msg::Rank& r) {
        DMPI_init(r, 64, fast());
        DenseArray& A = DMPI_register_dense_array("A", 4, sizeof(double));
        int ph = DMPI_init_phase(0, 64, DMPI_NEAREST_NEIGHBOR, 32);
        DMPI_add_array_access("A", DMPI_WRITE, ph, 1, 0);
        DMPI_commit();

        for (int t = 0; t < 5; ++t) {
            DMPI_begin_cycle();
            EXPECT_TRUE(DMPI_participating());
            int lo = DMPI_get_start_iter(ph), hi = DMPI_get_end_iter(ph);
            EXPECT_EQ(hi - lo + 1, 16); // even 64/4 split
            for (int i = lo; i <= hi; ++i) A.at<double>(i, 0) = i;
            DMPI_run_phase(ph, std::vector<double>(16, 1e-4));
            DMPI_end_cycle();
        }
        EXPECT_EQ(DMPI_get_num_active(), 4);
        EXPECT_EQ(DMPI_get_rel_rank(), r.id());
        DMPI_finalize();
    });
}

TEST(CApi, RelativeRankMessaging) {
    msg::Machine m(cfg(3));
    m.run([](msg::Rank& r) {
        DMPI_init(r, 30, fast());
        DMPI_register_dense_array("A", 1, sizeof(double));
        int ph = DMPI_init_phase(0, 30, DMPI_NEAREST_NEIGHBOR, 8);
        DMPI_add_array_access("A", DMPI_WRITE, ph, 1, 0);
        DMPI_commit();

        DMPI_begin_cycle();
        int rel = DMPI_get_rel_rank();
        if (rel > 0) {
            int v = rel;
            DMPI_Send(rel - 1, 9, &v, sizeof v);
        }
        if (rel < DMPI_get_num_active() - 1) {
            int got = -1;
            DMPI_Recv(rel + 1, 9, &got, sizeof got);
            EXPECT_EQ(got, rel + 1);
        }
        DMPI_end_cycle();
        DMPI_finalize();
    });
}

TEST(CApi, SparseRegistration) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        DMPI_init(r, 16, fast());
        SparseMatrix& S = DMPI_register_sparse_array("S", 32);
        int ph = DMPI_init_phase(0, 16, DMPI_NONE, 0);
        DMPI_add_array_access("S", DMPI_WRITE, ph, 1, 0);
        DMPI_commit();
        DMPI_begin_cycle();
        for (int i = DMPI_get_start_iter(ph); i <= DMPI_get_end_iter(ph); ++i)
            S.set(i, i % 32, 1.0);
        DMPI_run_phase(ph,
                       std::vector<double>(
                           static_cast<std::size_t>(DMPI_get_end_iter(ph) -
                                                    DMPI_get_start_iter(ph) +
                                                    1),
                           1e-4));
        DMPI_end_cycle();
        EXPECT_EQ(S.nnz(), 8);
        DMPI_finalize();
    });
}

TEST(CApi, DoubleInitRejected) {
    msg::Machine m(cfg(1));
    EXPECT_THROW(m.run([](msg::Rank& r) {
        DMPI_init(r, 8, fast());
        DMPI_init(r, 8, fast());
    }),
                 Error);
}

TEST(CApi, UseBeforeInitRejected) {
    msg::Machine m(cfg(1));
    EXPECT_THROW(m.run([](msg::Rank&) { DMPI_begin_cycle(); }), Error);
}

TEST(CApi, FinalizeAllowsReinit) {
    msg::Machine m(cfg(1));
    m.run([](msg::Rank& r) {
        DMPI_init(r, 8, fast());
        DMPI_finalize();
        DMPI_init(r, 8, fast());
        DMPI_finalize();
        SUCCEED();
    });
}

TEST(CApi, AdaptationWorksThroughShim) {
    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(2, 0.5, -1.0, 2);
    std::vector<int> counts;
    m.run([&](msg::Rank& r) {
        RuntimeOptions o = fast();
        o.enable_removal = false;
        DMPI_init(r, 64, o);
        DenseArray& A = DMPI_register_dense_array("A", 4, sizeof(double));
        (void)A;
        int ph = DMPI_init_phase(0, 64, DMPI_NEAREST_NEIGHBOR, 32);
        DMPI_add_array_access("A", DMPI_WRITE, ph, 1, 0);
        DMPI_commit();
        for (int t = 0; t < 80; ++t) {
            DMPI_begin_cycle();
            if (DMPI_participating()) {
                int n = DMPI_get_end_iter(ph) - DMPI_get_start_iter(ph) + 1;
                DMPI_run_phase(ph, std::vector<double>(
                                       static_cast<std::size_t>(n), 5e-3));
            }
            DMPI_end_cycle();
        }
        if (r.id() == 0)
            counts = DMPI_runtime().distribution().counts();
        DMPI_finalize();
    });
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_LT(counts[2], counts[0]); // loaded node sheds rows
}

TEST(CApi, GlobalReductionsAndClock) {
    msg::Machine m(cfg(3));
    m.run([](msg::Rank& r) {
        DMPI_init(r, 24, fast());
        DMPI_register_dense_array("A", 1, sizeof(double));
        int ph = DMPI_init_phase(0, 24, DMPI_NONE, 0);
        DMPI_add_array_access("A", DMPI_WRITE, ph, 1, 0);
        DMPI_commit();
        DMPI_begin_cycle();
        double t0 = DMPI_Wtime();
        DMPI_run_phase(ph, std::vector<double>(8, 1e-3));
        EXPECT_GT(DMPI_Wtime(), t0);
        EXPECT_DOUBLE_EQ(DMPI_Allreduce_sum(1.0), 3.0);
        EXPECT_DOUBLE_EQ(DMPI_Allreduce_max((double)r.id()), 2.0);
        DMPI_end_cycle();
        DMPI_finalize();
    });
}

}  // namespace
}  // namespace dynmpi::capi
