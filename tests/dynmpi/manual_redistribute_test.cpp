// Manual REDISTRIBUTE (the language-annotation approach from the paper's
// related work) and daemon windowed queries.
#include <gtest/gtest.h>

#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"
#include "sim/ps_daemon.hpp"

namespace dynmpi {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

TEST(ManualRedistribute, AppliesExplicitCountsAndMovesData) {
    msg::Machine m(cfg(3));
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.adapt = false; // the programmer drives everything
        Runtime rt(r, 30, o);
        auto& A = rt.register_dense("A", 2, sizeof(double));
        int ph = rt.init_phase(0, 30, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        for (int row : rt.my_iters(ph).to_vector())
            A.at<double>(row, 0) = row * 2.0;

        rt.redistribute_manual({5, 20, 5});
        EXPECT_EQ(rt.distribution().counts(), (std::vector<int>{5, 20, 5}));
        for (int row : rt.my_iters(ph).to_vector())
            EXPECT_DOUBLE_EQ(A.at<double>(row, 0), row * 2.0);
        EXPECT_EQ(rt.stats().redistributions, 1);
        ASSERT_EQ(rt.stats().events.size(), 1u);
        EXPECT_NE(rt.stats().events[0].detail.find("manual"),
                  std::string::npos);
    });
}

TEST(ManualRedistribute, CountsMustMatchActiveSet) {
    msg::Machine m(cfg(2));
    EXPECT_THROW(m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 16, o);
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, 16, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        rt.redistribute_manual({4, 4, 8}); // 3 counts, 2 nodes
    }),
                 Error);
}

TEST(ManualRedistribute, RejectedInsideCycle) {
    msg::Machine m(cfg(1));
    EXPECT_THROW(m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 8, o);
        rt.register_dense("A", 1, sizeof(double));
        int ph = rt.init_phase(0, 8, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        rt.begin_cycle();
        rt.redistribute_manual({8});
    }),
                 Error);
}

TEST(DaemonWindow, AvgOverSelectsRecentSamples) {
    sim::Cluster c(cfg(1));
    // Load only during [0, 2): later windows must fade it out.
    c.add_load_interval(0, 0.0, 2.0);
    c.engine().run_until(sim::from_seconds(4.1));
    // Last 1s: no load at all.
    EXPECT_NEAR(c.daemon(0).avg_over(1.0), 0.0, 1e-9);
    // Last 4s: half the samples loaded.
    EXPECT_NEAR(c.daemon(0).avg_over(4.0), 0.5, 0.07);
}

TEST(DaemonWindow, EmptyHistoryIsZero) {
    sim::Cluster c(cfg(1));
    EXPECT_DOUBLE_EQ(c.daemon(0).avg_over(5.0), 0.0);
}

}  // namespace
}  // namespace dynmpi
