#include "support/table.hpp"

#include <gtest/gtest.h>

namespace dynmpi {
namespace {

TEST(TextTable, AlignsColumns) {
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer-name", "22"});
    std::string s = t.render();
    // Every line should have the same position for the second column.
    auto first_line_end = s.find('\n');
    ASSERT_NE(first_line_end, std::string::npos);
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    EXPECT_NE(s.find("value"), std::string::npos);
}

TEST(TextTable, CountsRows) {
    TextTable t;
    t.header({"x"});
    EXPECT_EQ(t.num_rows(), 0u);
    t.row({"1"});
    t.row({"2"});
    EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, HandlesRaggedRows) {
    TextTable t;
    t.header({"a", "b"});
    t.row({"only-one"});
    t.row({"x", "y", "extra"});
    std::string s = t.render();
    EXPECT_NE(s.find("extra"), std::string::npos);
}

TEST(Fmt, FormatsWithPrecision) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Pct, FormatsRatioAsPercent) {
    EXPECT_EQ(pct(0.167, 1), "16.7%");
    EXPECT_EQ(pct(1.0, 0), "100%");
}


TEST(CsvWriter, PlainRowsJoinWithCommas) {
    CsvWriter w;
    w.row({"a", "b", "c"});
    w.row({"1", "2", "3"});
    EXPECT_EQ(w.str(), "a,b,c\n1,2,3\n");
}

TEST(CsvWriter, QuotesPerRfc4180) {
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, RowAppliesQuoting) {
    CsvWriter w;
    w.row({"x,y", "z"});
    EXPECT_EQ(w.str(), "\"x,y\",z\n");
}

TEST(CsvWriter, EmptyCellsStayEmpty) {
    CsvWriter w;
    w.row({"", "", "v"});
    EXPECT_EQ(w.str(), ",,v\n");
}

}  // namespace
}  // namespace dynmpi
