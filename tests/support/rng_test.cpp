#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dynmpi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(7), b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, DoublesInUnitInterval) {
    Rng r(123);
    for (int i = 0; i < 1000; ++i) {
        double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, UniformRespectsBounds) {
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double d = r.uniform(-2.5, 4.5);
        EXPECT_GE(d, -2.5);
        EXPECT_LT(d, 4.5);
    }
}

TEST(Rng, UniformMeanRoughlyCentered) {
    Rng r(55);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += r.next_double();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Splitmix, IsAPermutationOnSmallSample) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(splitmix64(i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashCombine, OrderSensitive) {
    EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Splitmix, Constexpr) {
    static_assert(splitmix64(0) != 0, "splitmix64 must be usable at compile time");
    SUCCEED();
}

}  // namespace
}  // namespace dynmpi
