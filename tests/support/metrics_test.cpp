// The metrics registry: counters/gauges/histograms, nearest-rank
// percentiles, deterministic JSON/CSV snapshots.
#include <gtest/gtest.h>

#include "support/metrics.hpp"

namespace dynmpi::support {
namespace {

TEST(Metrics, CounterAccumulates) {
    MetricsRegistry r;
    r.counter("redist.bytes").add(100);
    r.counter("redist.bytes").add(28);
    EXPECT_EQ(r.counter("redist.bytes").value(), 128u);
    EXPECT_EQ(r.counter("fresh").value(), 0u);
}

TEST(Metrics, GaugeLastWriteWins) {
    MetricsRegistry r;
    r.gauge("runtime.active_nodes").set(4);
    r.gauge("runtime.active_nodes").set(3);
    EXPECT_DOUBLE_EQ(r.gauge("runtime.active_nodes").value(), 3.0);
}

TEST(Metrics, HistogramStats) {
    Histogram h;
    for (double v : {4.0, 1.0, 3.0, 2.0}) h.record(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 10.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(Metrics, NearestRankPercentile) {
    // Classic nearest-rank example: n = 5 samples.
    Histogram h;
    for (double v : {15.0, 20.0, 35.0, 40.0, 50.0}) h.record(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 15.0);   // p=0 -> minimum
    EXPECT_DOUBLE_EQ(h.percentile(30.0), 20.0);  // ceil(1.5) = 2nd
    EXPECT_DOUBLE_EQ(h.percentile(40.0), 20.0);  // ceil(2.0) = 2nd
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 35.0);  // ceil(2.5) = 3rd
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 50.0); // maximum
}

TEST(Metrics, PercentileSingleSample) {
    Histogram h;
    h.record(7.0);
    for (double p : {0.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), 7.0);
}

TEST(Metrics, DisabledByDefaultButInstrumentsAlwaysWork) {
    MetricsRegistry r;
    EXPECT_FALSE(r.enabled());
    r.counter("x").add(1); // direct use is not gated
    EXPECT_EQ(r.counter("x").value(), 1u);
    r.enable();
    EXPECT_TRUE(r.enabled());
}

TEST(Metrics, SnapshotJsonSortedAndDeterministic) {
    auto build = [] {
        MetricsRegistry r;
        r.counter("zeta").add(2);
        r.counter("alpha").add(1);
        r.gauge("mid").set(0.5);
        r.histogram("h").record(1.0);
        r.histogram("h").record(3.0);
        return r.snapshot_json();
    };
    std::string a = build();
    EXPECT_EQ(a, build());
    // std::map iteration: alpha before zeta regardless of insertion order.
    EXPECT_LT(a.find("\"alpha\""), a.find("\"zeta\""));
    EXPECT_NE(a.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(a.find("\"mean\": 2"), std::string::npos);
}

TEST(Metrics, SnapshotJsonEmptyRegistry) {
    MetricsRegistry r;
    std::string s = r.snapshot_json();
    EXPECT_NE(s.find("\"counters\": {}"), std::string::npos);
    EXPECT_NE(s.find("\"gauges\": {}"), std::string::npos);
    EXPECT_NE(s.find("\"histograms\": {}"), std::string::npos);
}

TEST(Metrics, CsvHasHeaderAndKinds) {
    MetricsRegistry r;
    r.counter("c").add(5);
    r.gauge("g").set(1.5);
    r.histogram("h").record(2.0);
    std::string csv = r.csv();
    EXPECT_EQ(csv.substr(0, csv.find('\n')),
              "name,kind,value,count,sum,min,max,mean,p50,p90,p99");
    EXPECT_NE(csv.find("c,counter,5,"), std::string::npos);
    EXPECT_NE(csv.find("g,gauge,1.5,"), std::string::npos);
    EXPECT_NE(csv.find("h,histogram,,1,2,2,2,2,2,2,2"), std::string::npos);
}

TEST(Metrics, ResetDropsInstrumentsKeepsFlag) {
    MetricsRegistry r;
    r.enable();
    r.counter("a").add(1);
    r.histogram("b").record(1.0);
    EXPECT_EQ(r.size(), 2u);
    r.reset();
    EXPECT_EQ(r.size(), 0u);
    EXPECT_TRUE(r.enabled());
}

TEST(Metrics, GlobalRegistrySingleton) {
    EXPECT_EQ(&metrics(), &metrics());
}

}  // namespace
}  // namespace dynmpi::support
