// The trace-event sink: disabled-by-default, fixed JSONL schema, bounded
// ring, chrome://tracing export.  docs/OBSERVABILITY.md documents the
// formats these tests pin down.
#include <gtest/gtest.h>

#include <sstream>

#include "support/trace.hpp"

namespace dynmpi::support {
namespace {

TEST(Trace, DisabledSinkRecordsNothing) {
    TraceSink s;
    EXPECT_FALSE(s.enabled());
    s.instant(1.0, 0, "runtime.grace_enter");
    s.span(1.0, 2.0, 1, "redist.pack");
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.jsonl(), "");
}

TEST(Trace, EnableClearsAndRecords) {
    TraceSink s;
    s.enable();
    s.instant(0.5, 2, "runtime.load_change");
    EXPECT_EQ(s.size(), 1u);
    s.enable(); // re-enable wipes the buffer
    EXPECT_EQ(s.size(), 0u);
}

TEST(Trace, JsonlFixedKeyOrderAndFormat) {
    TraceSink s;
    s.enable();
    s.instant(1.25, 3, "runtime.grace_enter",
              {targ("cycle", 7), targ("grace_cycles", 5)});
    std::string line = s.jsonl();
    EXPECT_EQ(line,
              "{\"t\":1.250000000,\"rank\":3,\"ev\":\"runtime.grace_enter\","
              "\"args\":{\"cycle\":7,\"grace_cycles\":5}}\n");
}

TEST(Trace, SpanCarriesDuration) {
    TraceSink s;
    s.enable();
    s.span(1.0, 1.5, 0, "redist.pack", {targ("bytes", std::uint64_t{4096})});
    std::string line = s.jsonl();
    EXPECT_NE(line.find("\"dur\":0.500000000"), std::string::npos);
    EXPECT_NE(line.find("\"bytes\":4096"), std::string::npos);
}

TEST(Trace, StringArgsAreQuotedAndEscaped) {
    TraceSink s;
    s.enable();
    s.instant(0.0, 0, "runtime.skipped",
              {targ("detail", std::string("a \"b\"\nc"))});
    std::string line = s.jsonl();
    EXPECT_NE(line.find("\"detail\":\"a \\\"b\\\"\\nc\""), std::string::npos);
}

TEST(Trace, BoolAndDoubleArgs) {
    TraceSink s;
    s.enable();
    s.instant(0.0, 0, "runtime.removal_eval",
              {targ("drop", true), targ("predicted_unloaded_s", 0.125)});
    std::string line = s.jsonl();
    EXPECT_NE(line.find("\"drop\":true"), std::string::npos);
    EXPECT_NE(line.find("\"predicted_unloaded_s\":0.125"), std::string::npos);
}

TEST(Trace, ExportSortsByTimeStably) {
    TraceSink s;
    s.enable();
    s.instant(2.0, 0, "b");
    s.instant(1.0, 0, "a");
    s.instant(2.0, 1, "c"); // same time as "b": record order must hold
    auto evs = s.sorted_events();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].name, "a");
    EXPECT_EQ(evs[1].name, "b");
    EXPECT_EQ(evs[2].name, "c");
}

TEST(Trace, RingDropsOldestAndCounts) {
    TraceSink s;
    s.enable(/*capacity=*/4);
    for (int i = 0; i < 10; ++i)
        s.instant(static_cast<double>(i), 0, "ev", {targ("i", i)});
    EXPECT_EQ(s.size(), 4u);
    EXPECT_EQ(s.dropped(), 6u);
    auto evs = s.sorted_events();
    EXPECT_DOUBLE_EQ(evs.front().time_s, 6.0); // 0..5 were dropped
}

TEST(Trace, ByteIdenticalAcrossIdenticalRecordings) {
    auto run = [] {
        TraceSink s;
        s.enable();
        s.instant(0.25, 0, "runtime.load_change", {targ("cycle", 3)});
        s.span(0.25, 0.75, 1, "redist.pack", {targ("rows", 42)});
        return s.jsonl();
    };
    EXPECT_EQ(run(), run());
}

TEST(Trace, ChromeTraceShape) {
    TraceSink s;
    s.enable();
    s.instant(1.0, 2, "runtime.grace_enter", {targ("cycle", 1)});
    s.span(1.0, 2.0, 0, "runtime.cycle");
    std::string j = s.chrome_trace();
    EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos); // instant
    EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos); // complete span
    EXPECT_NE(j.find("\"tid\":2"), std::string::npos);    // one track per rank
    // 1 s  ->  1e6 µs
    EXPECT_NE(j.find("\"dur\":1000000.000"), std::string::npos);
}

TEST(Trace, JsonEscape) {
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("q\"b\\s"), "q\\\"b\\\\s");
    EXPECT_EQ(json_escape("tab\tnl\n"), "tab\\tnl\\n");
    EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Trace, JsonNumberIsCompactAndDeterministic) {
    EXPECT_EQ(json_number(0.5), "0.5");
    EXPECT_EQ(json_number(3.0), "3");
    EXPECT_EQ(json_number(0.1), json_number(0.1));
}

TEST(Trace, GlobalSinkSingleton) {
    TraceSink& a = trace();
    TraceSink& b = trace();
    EXPECT_EQ(&a, &b);
    // Leave the global sink untouched for other tests.
    EXPECT_FALSE(a.enabled());
}

}  // namespace
}  // namespace dynmpi::support
