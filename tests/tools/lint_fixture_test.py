#!/usr/bin/env python3
"""Golden-fixture tests for tools/dynmpi_lint (run via ctest: lint.fixtures).

Two miniature repos live under fixtures/:

  * violations/ — one seeded violation per check; this test asserts the
    EXACT finding code and location of every one of them, and that nothing
    else fires (so the suppression syntax and the clean lines are pinned
    too);
  * clean/ — sanctioned versions of the same constructs; must exit 0 with
    zero findings.

The regex backend is pinned so the expectations hold with or without
libclang installed.
"""

import os
import re
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "dynmpi_lint", "lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

# Every finding the violations/ tree must produce: (path, line, code).
EXPECTED_VIOLATIONS = sorted([
    ("src/det_random.cpp", 3, "DET001"),
    ("src/det_wallclock.cpp", 2, "DET002"),   # #include <ctime>
    ("src/det_wallclock.cpp", 4, "DET002"),   # time(nullptr)
    ("src/det_unordered.cpp", 6, "DET003"),
    ("src/tag_raw.cpp", 4, "TAG001"),         # >> 62
    ("src/tag_raw.cpp", 7, "TAG001"),         # wide literal
    ("src/tag_switch.cpp", 5, "TAG002"),
    ("src/exc_dtor.cpp", 8, "EXC001"),
    ("src/exc_repair.cpp", 8, "EXC002"),
    ("src/trace_drift.cpp", 12, "TRC001"),    # runtime.bogus_event
    ("src/trace_drift.cpp", 13, "TRC004"),    # runtime.mystery_metric
    ("src/trace_drift.cpp", 17, "TRC005"),    # runtime.rogue_name
    ("tools/check_trace.py", 4, "TRC003"),    # runtime.undocumented_event
    ("tools/check_trace.py", 5, "TRC002"),    # runtime.dead_event
    ("docs/OBSERVABILITY.md", 9, "TRC006"),   # runtime.ghost_event
    ("docs/OBSERVABILITY.md", 16, "TRC006"),  # runtime.stale_metric
])

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+):(?P<col>\d+): "
                        r"(?P<code>[A-Z]{3}\d{3}): (?P<msg>.+)$")


def run_lint(fixture):
    proc = subprocess.run(
        [sys.executable, LINT, "--repo", os.path.join(FIXTURES, fixture),
         "--backend", "regex"],
        capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append((m.group("path"), int(m.group("line")),
                             m.group("code")))
        elif line.strip():
            raise AssertionError(f"unparseable output line: {line!r}")
    return proc.returncode, sorted(findings)


class ViolationsFixture(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.returncode, cls.findings = run_lint("violations")

    def test_exit_status_signals_findings(self):
        self.assertEqual(self.returncode, 1)

    def test_exact_findings(self):
        """Every seeded violation fires at its documented code + location,
        and no unexpected finding appears (pins suppressions too)."""
        self.assertEqual(self.findings, EXPECTED_VIOLATIONS)

    def test_every_check_family_is_covered(self):
        codes = {c for _, _, c in self.findings}
        self.assertEqual(codes, {
            "DET001", "DET002", "DET003",
            "TAG001", "TAG002",
            "EXC001", "EXC002",
            "TRC001", "TRC002", "TRC003", "TRC004", "TRC005", "TRC006",
        })


class CleanFixture(unittest.TestCase):
    def test_clean_tree_is_silent(self):
        returncode, findings = run_lint("clean")
        self.assertEqual(findings, [])
        self.assertEqual(returncode, 0)


class CliBehavior(unittest.TestCase):
    def test_missing_schema_is_a_usage_error(self):
        proc = subprocess.run(
            [sys.executable, LINT, "--repo", FIXTURES, "--backend", "regex"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2)

    def test_list_checks_mentions_every_code(self):
        proc = subprocess.run([sys.executable, LINT, "--list-checks"],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0)
        for code in ("DET001", "DET002", "DET003", "TRC001", "TRC002",
                     "TRC003", "TRC004", "TRC005", "TRC006", "TAG001",
                     "TAG002", "EXC001", "EXC002"):
            self.assertIn(code, proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
