"""Fixture schema for the clean tree (never executed by the test)."""
KNOWN_EVENTS = {
    "runtime.documented": {"cycle"},
}
