// Fixture: a fully sanctioned file — the linter must stay silent.
#include <unordered_map>

enum class TagSpace { User, Collective, Runtime };
TagSpace tag_space(unsigned long long t);

struct Sink {
    void instant(double, int, const char*);
};
Sink& trace();
struct Registry {
    int& counter(const char*);
};
Registry& metrics();

// pid -> slot lookups only; never iterated.
struct Table {
    std::unordered_map<int, int> slots; // dynmpi-lint: ok(unordered-lookup)
};

int classify(unsigned long long t) {
    switch (tag_space(t)) {
    case TagSpace::User: return 0;
    case TagSpace::Collective: return 1;
    case TagSpace::Runtime: return 2;
    }
    return -1;
}

void emit() {
    trace().instant(0.0, 0, "runtime.documented");
    metrics().counter("runtime.good_metric");
}
