// Fixture: consistent emissions — these lines must produce no findings.
struct Sink {
    void instant(double, int, const char*);
};
Sink& trace();
struct Registry {
    int& counter(const char*);
};
Registry& metrics();

void emit_ok() {
    trace().instant(0.0, 0, "runtime.documented");
    trace().instant(0.0, 0, "runtime.undocumented_event");
    metrics().counter("runtime.good_metric");
}
