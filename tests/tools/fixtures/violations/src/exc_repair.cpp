// Fixture: EXC002 — throwing protocol call inside a repair-critical
// function.
struct Rank {
    void recv_wire(int, unsigned long long);
};
// dynmpi-lint: repair-critical
void repair_membership(Rank& r) {
    r.recv_wire(0, 0);
}
