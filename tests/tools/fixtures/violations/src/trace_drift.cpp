// Fixture: TRC001/TRC004/TRC005 — names that drifted from schema and docs.
struct Sink {
    void instant(double, int, const char*);
};
Sink& trace();
struct Registry {
    int& counter(const char*);
};
Registry& metrics();

void emit_drift() {
    trace().instant(0.0, 0, "runtime.bogus_event");
    metrics().counter("runtime.mystery_metric");
}

// A name that never reaches either sink.
const char* kRogue = "runtime.rogue_name";
