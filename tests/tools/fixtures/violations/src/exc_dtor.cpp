// Fixture: EXC001 — throwing protocol call in a destructor.
struct Rank {
    void send_wire(int, unsigned long long, const void*, unsigned long);
};
struct Flusher {
    Rank& rank;
    ~Flusher() {
        rank.send_wire(0, 0, nullptr, 0);
    }
};
