// Fixture: DET001 — banned randomness outside support/rng.hpp.
int noisy_seed() {
    return rand();
}
