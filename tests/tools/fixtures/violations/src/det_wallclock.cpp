// Fixture: DET002 — wall-clock time outside sim/time.hpp.
#include <ctime>
long now_wall() {
    return time(nullptr);
}
