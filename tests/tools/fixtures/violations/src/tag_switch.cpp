// Fixture: TAG002 — non-exhaustive TagSpace switch without default.
enum class TagSpace { User, Collective, Runtime };
TagSpace tag_space(unsigned long long t);
int classify(unsigned long long t) {
    switch (tag_space(t)) {
    case TagSpace::User: return 0;
    case TagSpace::Collective: return 1;
    }
    return 2;
}
