// Fixture: DET003 — unordered container without a suppression, next to a
// sanctioned lookup-only table that must stay silent.
#include <unordered_map>

struct Index {
    std::unordered_map<int, int> order_sensitive;
    // pid -> slot lookups only; never iterated.
    std::unordered_map<int, int> lookup_only; // dynmpi-lint: ok(unordered-lookup)
};
