// Fixture: TAG001 — raw tag arithmetic and a wide literal.
#include <cstdint>
std::uint64_t space_of(std::uint64_t wire) {
    return wire >> 62;
}
std::uint64_t runtime_bit() {
    return 0x8000000000000000ULL;
}
