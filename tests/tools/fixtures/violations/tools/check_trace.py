"""Fixture schema for the trace cross-check (never executed by the test)."""
KNOWN_EVENTS = {
    "runtime.documented": {"cycle"},
    "runtime.undocumented_event": {"cycle"},
    "runtime.dead_event": {"cycle"},
}
