// Multi-loop translation: programs with several phases (the paper's SOR has
// two) translate to one DMPI_init_phase per loop, with per-phase DRSDs.
#include <gtest/gtest.h>

#include "mpisim/machine.hpp"
#include "translate/translator.hpp"

namespace dynmpi::xlate {
namespace {

MpiProgram two_phase_program() {
    MpiProgram p;
    p.name = "red_black";
    p.global_rows = 64;
    p.arrays = {ArrayDecl{"U", 8, sizeof(double), false, 0}};
    for (int sweep = 0; sweep < 2; ++sweep) {
        LoopNest loop;
        loop.lo = 0;
        loop.hi = 64;
        loop.refs = {
            ArrayRef{"U", AccessMode::Write, false, 1, 0},
            ArrayRef{"U", AccessMode::Read, false, 1, -1},
            ArrayRef{"U", AccessMode::Read, false, 1, +1},
        };
        p.loops.push_back(loop);
    }
    return p;
}

TEST(MultiLoopTranslate, OnePhasePerLoop) {
    auto plan = translate(two_phase_program());
    ASSERT_EQ(plan.phases.size(), 2u);
    for (const auto& ph : plan.phases) {
        EXPECT_EQ(ph.comm.pattern, CommPattern::NearestNeighbor);
        EXPECT_EQ(ph.accesses.size(), 3u);
    }
    std::string src = emit_source(plan);
    EXPECT_NE(src.find("phase0"), std::string::npos);
    EXPECT_NE(src.find("phase1"), std::string::npos);
    EXPECT_NE(src.find("DMPI_get_start_iter(phase1)"), std::string::npos);
}

TEST(MultiLoopTranslate, PhaseDrsdsCarryTheirPhaseIds) {
    auto plan = translate(two_phase_program());
    for (std::size_t ph = 0; ph < plan.phases.size(); ++ph)
        for (const auto& d : plan.phases[ph].accesses)
            EXPECT_EQ(d.phase, static_cast<int>(ph));
}

TEST(MultiLoopTranslate, TwoPhaseProgramExecutes) {
    sim::ClusterConfig cc;
    cc.num_nodes = 4;
    cc.cpu.jitter_frac = 0.0;
    cc.ps_period = sim::from_seconds(0.25);
    msg::Machine m(cc);
    m.cluster().add_load_interval(3, 0.5, -1.0);
    TranslatedRunResult out;
    m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        auto res = run_translated(r, two_phase_program(), 60, 3e-3, o);
        if (r.id() == 0) out = res;
    });
    EXPECT_EQ(out.stats.cycles, 60);
    EXPECT_GE(out.stats.redistributions, 1);
    ASSERT_EQ(out.final_counts.size(), 4u);
    EXPECT_LT(out.final_counts[3], out.final_counts[0]);
}

TEST(MultiLoopTranslate, MixedPatternsPerPhase) {
    MpiProgram p;
    p.name = "mixed";
    p.global_rows = 32;
    p.arrays = {ArrayDecl{"A", 4, sizeof(double), false, 0},
                ArrayDecl{"v", 1, sizeof(double), false, 0}};
    LoopNest stencil;
    stencil.lo = 0;
    stencil.hi = 32;
    stencil.refs = {ArrayRef{"A", AccessMode::Write, false, 1, 0},
                    ArrayRef{"A", AccessMode::Read, false, 1, -1}};
    LoopNest gatherish;
    gatherish.lo = 0;
    gatherish.hi = 32;
    gatherish.refs = {ArrayRef{"v", AccessMode::Read, true, 0, 0},
                      ArrayRef{"A", AccessMode::Write, false, 1, 0}};
    p.loops = {stencil, gatherish};
    auto plan = translate(p);
    EXPECT_EQ(plan.phases[0].comm.pattern, CommPattern::NearestNeighbor);
    EXPECT_EQ(plan.phases[1].comm.pattern, CommPattern::AllGather);
}

TEST(MultiLoopTranslate, SubSpanNearestNeighborExecutionRejected) {
    MpiProgram p = two_phase_program();
    p.loops[0].lo = 8; // sub-span stencil phase
    sim::ClusterConfig cc;
    cc.num_nodes = 2;
    cc.cpu.jitter_frac = 0.0;
    msg::Machine m(cc);
    EXPECT_THROW(m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        run_translated(r, p, 5, 1e-3, o);
    }),
                 Error);
}

}  // namespace
}  // namespace dynmpi::xlate
