// Tests for the §2.3 MPI → Dyn-MPI translator: DRSD derivation, pattern
// inference, local→global view conversion, Figure-2 style code emission, and
// end-to-end execution of a translated program.
#include "translate/translator.hpp"

#include <gtest/gtest.h>

#include "mpisim/machine.hpp"

namespace dynmpi::xlate {
namespace {

/// The paper's Figure 1 program: one loop writing A[i] from B with a
/// nearest-neighbor dependence.
MpiProgram figure1_program() {
    MpiProgram p;
    p.name = "figure1";
    p.global_rows = 64;
    p.arrays = {
        ArrayDecl{"A", 16, sizeof(double), false, 0},
        ArrayDecl{"B", 16, sizeof(double), false, 0},
    };
    LoopNest loop;
    loop.lo = 0;
    loop.hi = 64;
    loop.refs = {
        ArrayRef{"A", AccessMode::Write, false, 1, 0},
        ArrayRef{"B", AccessMode::Read, false, 1, 0},
        ArrayRef{"B", AccessMode::Read, false, 1, -1},
        ArrayRef{"B", AccessMode::Read, false, 1, +1},
    };
    p.loops.push_back(loop);
    return p;
}

/// A CG-shaped program: sparse matrix rows times a gathered vector.
MpiProgram cg_program() {
    MpiProgram p;
    p.name = "cg";
    p.global_rows = 64;
    p.arrays = {
        ArrayDecl{"M", 0, 8, true, 64},
        ArrayDecl{"p", 1, sizeof(double), false, 0},
        ArrayDecl{"q", 1, sizeof(double), false, 0},
    };
    LoopNest loop;
    loop.lo = 0;
    loop.hi = 64;
    loop.refs = {
        ArrayRef{"M", AccessMode::Read, false, 1, 0},
        ArrayRef{"p", AccessMode::Read, true, 0, 0}, // full-range read
        ArrayRef{"q", AccessMode::Write, false, 1, 0},
    };
    p.loops.push_back(loop);
    return p;
}

TEST(Translator, DerivesDedupedDrsds) {
    auto plan = translate(figure1_program());
    ASSERT_EQ(plan.phases.size(), 1u);
    const auto& acc = plan.phases[0].accesses;
    ASSERT_EQ(acc.size(), 4u); // A write + 3 distinct B reads
    // Dedup check: translating a program with a repeated reference.
    MpiProgram p = figure1_program();
    p.loops[0].refs.push_back(ArrayRef{"B", AccessMode::Read, false, 1, 0});
    auto plan2 = translate(p);
    EXPECT_EQ(plan2.phases[0].accesses.size(), 4u);
}

TEST(Translator, InfersNearestNeighborFromOffsets) {
    auto plan = translate(figure1_program());
    EXPECT_EQ(plan.phases[0].comm.pattern, CommPattern::NearestNeighbor);
    EXPECT_EQ(plan.phases[0].comm.bytes_per_message, 16 * sizeof(double));
}

TEST(Translator, InfersAllGatherFromFullRangeRead) {
    auto plan = translate(cg_program());
    EXPECT_EQ(plan.phases[0].comm.pattern, CommPattern::AllGather);
    EXPECT_EQ(plan.phases[0].comm.bytes_per_message, 64 * sizeof(double));
}

TEST(Translator, InfersNoneWithoutCrossIterationRefs) {
    MpiProgram p = figure1_program();
    p.loops[0].refs = {ArrayRef{"A", AccessMode::Write, false, 1, 0}};
    auto plan = translate(p);
    EXPECT_EQ(plan.phases[0].comm.pattern, CommPattern::None);
}

TEST(Translator, GlobalizeConvertsLocalView) {
    // A[local_i - 1] in a block-distributed program is the global row i-1.
    ArrayRef r = globalize("B", AccessMode::Read, -1);
    EXPECT_EQ(r.array, "B");
    EXPECT_EQ(r.a, 1);
    EXPECT_EQ(r.b, -1);
    EXPECT_EQ(r.mode, AccessMode::Read);
}

TEST(Translator, RejectsUnknownArray) {
    MpiProgram p = figure1_program();
    p.loops[0].refs.push_back(ArrayRef{"ghost", AccessMode::Read, false, 1, 0});
    EXPECT_THROW(translate(p), Error);
}

TEST(Translator, RejectsBadLoopBounds) {
    MpiProgram p = figure1_program();
    p.loops[0].hi = 1000;
    EXPECT_THROW(translate(p), Error);
}

TEST(Translator, EmitsFigure2StyleSource) {
    std::string src = emit_source(translate(figure1_program()));
    // The paper's call sequence, in order.
    auto pos = [&](const char* needle) { return src.find(needle); };
    EXPECT_NE(pos("DMPI_init(rank, 64)"), std::string::npos);
    EXPECT_NE(pos("DMPI_register_dense_array(\"A\", 16, 8)"),
              std::string::npos);
    EXPECT_NE(pos("DMPI_init_phase(0, 64, DMPI_NEAREST_NEIGHBOR"),
              std::string::npos);
    EXPECT_NE(pos("DMPI_add_array_access(\"B\", DMPI_READ, phase0, 1, -1)"),
              std::string::npos);
    EXPECT_NE(pos("DMPI_get_start_iter"), std::string::npos);
    EXPECT_NE(pos("DMPI_participating()"), std::string::npos);
    EXPECT_NE(pos("DMPI_get_rel_rank"), std::string::npos);
    // Ordering: init before registration before phase before commit.
    EXPECT_LT(pos("DMPI_init(rank"), pos("DMPI_register_dense_array"));
    EXPECT_LT(pos("DMPI_register_dense_array"), pos("DMPI_init_phase"));
    EXPECT_LT(pos("DMPI_init_phase"), pos("DMPI_commit()"));
}

TEST(Translator, EmitsSparseRegistration) {
    std::string src = emit_source(translate(cg_program()));
    EXPECT_NE(src.find("DMPI_register_sparse_array(\"M\", 64)"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Executable translation
// ---------------------------------------------------------------------------

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

TEST(Translator, TranslatedProgramRunsAndAdapts) {
    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(1, 0.5, -1.0, 2);
    TranslatedRunResult out;
    m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.enable_removal = false;
        auto res = run_translated(r, figure1_program(), 80, 5e-3, o);
        if (r.id() == 0) out = res;
    });
    EXPECT_GE(out.stats.redistributions, 1);
    ASSERT_EQ(out.final_counts.size(), 4u);
    EXPECT_LT(out.final_counts[1], out.final_counts[0]);
}

TEST(Translator, TranslatedCgShapeRuns) {
    msg::Machine m(cfg(3));
    TranslatedRunResult out;
    m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        auto res = run_translated(r, cg_program(), 20, 1e-3, o);
        if (r.id() == 0) out = res;
    });
    EXPECT_EQ(out.stats.cycles, 20);
    EXPECT_EQ(out.stats.redistributions, 0); // dedicated: no change
}

TEST(Translator, ConfiguredRuntimeMatchesManualSetup) {
    msg::Machine m(cfg(2));
    m.run([](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        Runtime rt(r, 64, o);
        auto plan = translate(figure1_program());
        auto phases = configure_runtime(rt, plan);
        ASSERT_EQ(phases.size(), 1u);
        // Ghost rows present exactly as the DRSDs demand.
        RowSet need = rt.dense("B").held();
        RowSet own = rt.my_iters(phases[0]);
        EXPECT_TRUE(need.count() >= own.count());
        if (r.id() == 0) {
            EXPECT_TRUE(need.contains(32)); // ghost of row 31's +1 access
            EXPECT_FALSE(need.contains(40));
        }
    });
}

}  // namespace
}  // namespace dynmpi::xlate
