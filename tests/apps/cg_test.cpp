#include "apps/cg.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sim/fault_plan.hpp"
#include "support/error.hpp"

namespace dynmpi::apps {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

CgConfig small_cg() {
    CgConfig cc;
    cc.n = 128;
    cc.cycles = 15;
    cc.sec_per_nnz = 5e-5;
    cc.runtime.calibrate = false;
    return cc;
}

CgResult run_on(int nodes, CgConfig cc,
                std::function<void(msg::Machine&)> setup = {}) {
    msg::Machine m(cfg(nodes));
    if (setup) setup(m);
    CgResult out;
    m.run([&](msg::Rank& r) {
        auto res = run_cg(r, cc);
        if (r.id() == 0) out = res;
    });
    return out;
}

TEST(CgApp, MatchesSerialReference) {
    CgConfig cc = small_cg();
    auto ref = reference_cg_residuals(cc);
    auto res = run_on(3, cc);
    ASSERT_EQ(res.residual_history.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(res.residual_history[i], ref[i],
                    std::abs(ref[i]) * 1e-8 + 1e-12)
            << "iteration " << i;
}

TEST(CgApp, ResidualDecreases) {
    auto res = run_on(2, small_cg());
    ASSERT_GE(res.residual_history.size(), 2u);
    EXPECT_LT(res.residual_norm2, res.residual_history.front() * 1e-2);
}

TEST(CgApp, SparseRedistributionPreservesConvergence) {
    CgConfig cc = small_cg();
    cc.cycles = 40;
    auto quiet = run_on(4, cc);
    auto adapted = run_on(4, cc, [](msg::Machine& m) {
        m.cluster().add_load_interval(2, 0.4, -1.0, 2);
    });
    EXPECT_GE(adapted.stats.redistributions, 1);
    ASSERT_EQ(adapted.residual_history.size(), quiet.residual_history.size());
    // Same numerics, redistribution or not.
    for (std::size_t i = 0; i < quiet.residual_history.size(); ++i)
        EXPECT_NEAR(adapted.residual_history[i], quiet.residual_history[i],
                    std::abs(quiet.residual_history[i]) * 1e-8 + 1e-12);
}

TEST(CgApp, CostProfileFollowsMatrixStructure) {
    // Band edges have fewer stored entries; the balancer should see a non-
    // uniform profile.  We just verify the run completes and the loaded node
    // sheds rows.
    CgConfig cc = small_cg();
    cc.cycles = 150;
    cc.runtime.enable_removal = false;
    auto res = run_on(4, cc, [](msg::Machine& m) {
        m.cluster().add_load_interval(0, 0.2, -1.0, 1);
    });
    ASSERT_EQ(res.final_counts.size(), 4u);
    EXPECT_GE(res.stats.redistributions, 1);
    EXPECT_LT(res.final_counts[0], res.final_counts[1]);
}

TEST(CgApp, SingleNodeRuns) {
    auto res = run_on(1, small_cg());
    EXPECT_GT(res.residual_history.front(), res.residual_norm2);
}

// ---------------------------------------------------------------------------
// Crash recovery with buddy replication (sparse matrix + iteration vectors)
// ---------------------------------------------------------------------------

CgRecoverResult run_recoverable(int nodes, CgConfig cc,
                                const std::string& faults = {},
                                int collector = 0) {
    cc.runtime.replicate = true;
    msg::Machine m(cfg(nodes));
    if (!faults.empty())
        m.cluster().install_faults(sim::FaultPlan::parse(faults));
    CgRecoverResult out;
    m.run([&](msg::Rank& r) {
        auto res = run_cg_recoverable(r, cc);
        if (!res.matrix_intact)
            throw Error("matrix rows corrupted on rank " +
                        std::to_string(r.id()));
        if (r.id() == collector) out = res;
    });
    return out;
}

// An 8-node CG run loses a node mid-solve; the buddy restore hands the
// adopter the sparse matrix rows and iteration vectors bitwise intact, so
// the solve converges through the same residuals as the fault-free run.
TEST(CgApp, CrashMidSolveConvergesLikeFaultFree) {
    CgConfig cc = small_cg();
    cc.cycles = 30;
    auto clean = run_recoverable(8, cc);
    auto crashed = run_recoverable(8, cc, "crash node=5 t=0.08\n");
    EXPECT_GE(crashed.stats.crash_repairs, 1);
    EXPECT_GE(crashed.redo_cycles, 1);
    ASSERT_EQ(crashed.residual_history.size(),
              clean.residual_history.size());
    // Summation order differs once ownership changes, so the comparison is
    // tight-relative rather than bitwise; the matrix compare above is
    // bitwise on every rank.
    for (std::size_t i = 0; i < clean.residual_history.size(); ++i)
        EXPECT_NEAR(crashed.residual_history[i], clean.residual_history[i],
                    std::abs(clean.residual_history[i]) * 1e-8 + 1e-12)
            << "iteration " << i;
    EXPECT_EQ(crashed.final_active, 7);
}

// The replication leader (relative rank 0) is not special either.
TEST(CgApp, LeaderCrashMidSolveConvergesLikeFaultFree) {
    CgConfig cc = small_cg();
    cc.cycles = 30;
    auto clean = run_recoverable(8, cc);
    auto crashed = run_recoverable(8, cc, "crash node=0 t=0.08\n", 1);
    EXPECT_GE(crashed.stats.crash_repairs, 1);
    ASSERT_EQ(crashed.residual_history.size(),
              clean.residual_history.size());
    for (std::size_t i = 0; i < clean.residual_history.size(); ++i)
        EXPECT_NEAR(crashed.residual_history[i], clean.residual_history[i],
                    std::abs(clean.residual_history[i]) * 1e-8 + 1e-12)
            << "iteration " << i;
}

}  // namespace
}  // namespace dynmpi::apps
