#include "apps/cg.hpp"

#include <gtest/gtest.h>

namespace dynmpi::apps {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

CgConfig small_cg() {
    CgConfig cc;
    cc.n = 128;
    cc.cycles = 15;
    cc.sec_per_nnz = 5e-5;
    cc.runtime.calibrate = false;
    return cc;
}

CgResult run_on(int nodes, CgConfig cc,
                std::function<void(msg::Machine&)> setup = {}) {
    msg::Machine m(cfg(nodes));
    if (setup) setup(m);
    CgResult out;
    m.run([&](msg::Rank& r) {
        auto res = run_cg(r, cc);
        if (r.id() == 0) out = res;
    });
    return out;
}

TEST(CgApp, MatchesSerialReference) {
    CgConfig cc = small_cg();
    auto ref = reference_cg_residuals(cc);
    auto res = run_on(3, cc);
    ASSERT_EQ(res.residual_history.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(res.residual_history[i], ref[i],
                    std::abs(ref[i]) * 1e-8 + 1e-12)
            << "iteration " << i;
}

TEST(CgApp, ResidualDecreases) {
    auto res = run_on(2, small_cg());
    ASSERT_GE(res.residual_history.size(), 2u);
    EXPECT_LT(res.residual_norm2, res.residual_history.front() * 1e-2);
}

TEST(CgApp, SparseRedistributionPreservesConvergence) {
    CgConfig cc = small_cg();
    cc.cycles = 40;
    auto quiet = run_on(4, cc);
    auto adapted = run_on(4, cc, [](msg::Machine& m) {
        m.cluster().add_load_interval(2, 0.4, -1.0, 2);
    });
    EXPECT_GE(adapted.stats.redistributions, 1);
    ASSERT_EQ(adapted.residual_history.size(), quiet.residual_history.size());
    // Same numerics, redistribution or not.
    for (std::size_t i = 0; i < quiet.residual_history.size(); ++i)
        EXPECT_NEAR(adapted.residual_history[i], quiet.residual_history[i],
                    std::abs(quiet.residual_history[i]) * 1e-8 + 1e-12);
}

TEST(CgApp, CostProfileFollowsMatrixStructure) {
    // Band edges have fewer stored entries; the balancer should see a non-
    // uniform profile.  We just verify the run completes and the loaded node
    // sheds rows.
    CgConfig cc = small_cg();
    cc.cycles = 150;
    cc.runtime.enable_removal = false;
    auto res = run_on(4, cc, [](msg::Machine& m) {
        m.cluster().add_load_interval(0, 0.2, -1.0, 1);
    });
    ASSERT_EQ(res.final_counts.size(), 4u);
    EXPECT_GE(res.stats.redistributions, 1);
    EXPECT_LT(res.final_counts[0], res.final_counts[1]);
}

TEST(CgApp, SingleNodeRuns) {
    auto res = run_on(1, small_cg());
    EXPECT_GT(res.residual_history.front(), res.residual_norm2);
}

}  // namespace
}  // namespace dynmpi::apps
