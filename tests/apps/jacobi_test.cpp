#include "apps/jacobi.hpp"

#include <gtest/gtest.h>

namespace dynmpi::apps {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

JacobiConfig small_jacobi() {
    JacobiConfig jc;
    jc.rows = 64;
    jc.cols_stored = 16;
    jc.cols_math = 16;
    jc.cycles = 20;
    jc.sec_per_row = 5e-4;
    jc.runtime.calibrate = false;
    return jc;
}

double run_on(int nodes, JacobiConfig jc,
              std::function<void(msg::Machine&)> setup = {}) {
    msg::Machine m(cfg(nodes));
    if (setup) setup(m);
    double checksum = 0;
    m.run([&](msg::Rank& r) {
        auto res = run_jacobi(r, jc);
        if (r.id() == 0) checksum = res.checksum;
    });
    return checksum;
}

TEST(JacobiApp, ChecksumIndependentOfNodeCount) {
    JacobiConfig jc = small_jacobi();
    double c1 = run_on(1, jc);
    double c2 = run_on(2, jc);
    double c4 = run_on(4, jc);
    EXPECT_NEAR(c2, c1, std::abs(c1) * 1e-10);
    EXPECT_NEAR(c4, c1, std::abs(c1) * 1e-10);
}

TEST(JacobiApp, ChecksumStableUnderRedistribution) {
    JacobiConfig jc = small_jacobi();
    jc.cycles = 60;
    double quiet = run_on(4, jc);
    double adapted = run_on(4, jc, [](msg::Machine& m) {
        m.cluster().add_load_interval(1, 1.0, 6.0, 2);
    });
    // Redistribution must not change the numerics.
    EXPECT_NEAR(adapted, quiet, std::abs(quiet) * 1e-9);
}

TEST(JacobiApp, AdaptationBeatsNoAdaptUnderLoad) {
    JacobiConfig jc = small_jacobi();
    jc.cycles = 250;
    auto timed = [&](bool adapt) {
        msg::Machine m(cfg(4));
        m.cluster().add_load_interval(2, 0.2, -1.0, 2);
        JacobiConfig c = jc;
        c.runtime.adapt = adapt;
        c.runtime.enable_removal = false;
        m.run([&](msg::Rank& r) { run_jacobi(r, c); });
        return m.elapsed_seconds();
    };
    EXPECT_LT(timed(true), 0.85 * timed(false));
}

TEST(JacobiApp, ConvergesTowardHarmonicSolution) {
    // With Dirichlet boundaries, repeated Jacobi sweeps must shrink the
    // residual of the interior stencil equation.
    JacobiConfig jc = small_jacobi();
    jc.cycles = 4;
    double early = run_on(2, jc);
    jc.cycles = 40;
    double late = run_on(2, jc);
    // Values head monotonically toward the fixed point; checksums differ.
    EXPECT_NE(early, late);
}

TEST(JacobiApp, HookFiresOncePerCycle) {
    JacobiConfig jc = small_jacobi();
    jc.cycles = 7;
    int fired = 0;
    jc.on_cycle = [&](msg::Rank&, int) { ++fired; };
    run_on(2, jc);
    EXPECT_EQ(fired, 7);
}

}  // namespace
}  // namespace dynmpi::apps
