#include "apps/sor.hpp"

#include <gtest/gtest.h>

namespace dynmpi::apps {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

SorConfig small_sor() {
    SorConfig sc;
    sc.rows = 64;
    sc.cols_stored = 16;
    sc.cols_math = 16;
    sc.cycles = 20;
    sc.sec_per_row = 4e-4;
    sc.runtime.calibrate = false;
    return sc;
}

double run_on(int nodes, SorConfig sc,
              std::function<void(msg::Machine&)> setup = {}) {
    msg::Machine m(cfg(nodes));
    if (setup) setup(m);
    double checksum = 0;
    m.run([&](msg::Rank& r) {
        auto res = run_sor(r, sc);
        if (r.id() == 0) checksum = res.checksum;
    });
    return checksum;
}

TEST(SorApp, ChecksumIndependentOfNodeCount) {
    SorConfig sc = small_sor();
    double c1 = run_on(1, sc);
    double c3 = run_on(3, sc);
    EXPECT_NEAR(c3, c1, std::abs(c1) * 1e-10);
}

TEST(SorApp, ChecksumStableUnderRedistribution) {
    SorConfig sc = small_sor();
    sc.cycles = 60;
    double quiet = run_on(4, sc);
    double adapted = run_on(4, sc, [](msg::Machine& m) {
        m.cluster().add_load_interval(3, 1.0, -1.0);
    });
    EXPECT_NEAR(adapted, quiet, std::abs(quiet) * 1e-9);
}

TEST(SorApp, TwoPhasesPerCycleCharged) {
    // SOR's two sweeps mean its per-cycle comm/compute profile differs from
    // Jacobi; verify both phases exist and both run.
    msg::Machine m(cfg(2));
    SorConfig sc = small_sor();
    sc.cycles = 5;
    m.run([&](msg::Rank& r) {
        auto res = run_sor(r, sc);
        if (r.id() == 0) {
            EXPECT_EQ(res.stats.cycles, 5);
        }
    });
    // Each cycle burns sec_per_row per row total across both sweeps.
    double expected = 64.0 / 2 * 4e-4 * 5; // rows/nodes * cost * cycles
    EXPECT_GT(m.elapsed_seconds(), expected * 0.9);
}

TEST(SorApp, RemovalTriggersInCommHeavyRegime) {
    // The §5.3 scenario in miniature: little compute, boundary exchanges
    // dominate, several competing processes on one node.
    msg::Machine m(cfg(4));
    m.cluster().add_load_interval(1, 0.3, -1.0, 5);
    SorConfig sc = small_sor();
    sc.rows = 48;
    sc.cols_stored = 4096; // 32 KB boundary rows
    sc.cols_math = 8;
    sc.sec_per_row = 1e-4;
    sc.cycles = 400;
    sc.runtime.enable_removal = true;
    int final_active = -1, drops = 0;
    m.run([&](msg::Rank& r) {
        auto res = run_sor(r, sc);
        if (r.id() == 0) {
            final_active = res.final_active;
            drops = res.stats.physical_drops;
        }
    });
    EXPECT_GE(drops, 1);
    EXPECT_EQ(final_active, 3);
}

}  // namespace
}  // namespace dynmpi::apps
