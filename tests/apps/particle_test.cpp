#include "apps/particle.hpp"

#include <gtest/gtest.h>

namespace dynmpi::apps {
namespace {

sim::ClusterConfig cfg(int nodes, double jitter = 0.0) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = jitter;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

ParticleConfig small_particle() {
    ParticleConfig pc;
    pc.rows = 48;
    pc.cols = 16;
    pc.cycles = 30;
    pc.sec_per_particle = 5e-5;
    pc.runtime.calibrate = false;
    return pc;
}

ParticleResult run_on(int nodes, ParticleConfig pc,
                      std::function<void(msg::Machine&)> setup = {}) {
    msg::Machine m(cfg(nodes));
    if (setup) setup(m);
    ParticleResult out;
    m.run([&](msg::Rank& r) {
        auto res = run_particle(r, pc);
        if (r.id() == 0) out = res;
    });
    return out;
}

TEST(ParticleApp, MassConservedExactly) {
    ParticleConfig pc = small_particle();
    auto res = run_on(3, pc);
    double expected = 48.0 * 16.0 * pc.base_density;
    EXPECT_NEAR(res.total_mass, expected, expected * 1e-9);
}

TEST(ParticleApp, MassConservedAcrossRedistributions) {
    ParticleConfig pc = small_particle();
    pc.cycles = 80;
    pc.boost_rows = 12;
    pc.boost_density = 3.0;
    auto res = run_on(4, pc, [](msg::Machine& m) {
        m.cluster().add_load_interval(1, 0.5, 4.0, 2);
    });
    EXPECT_GE(res.stats.redistributions, 1);
    double expected = (48.0 - 12.0) * 16.0 * 1.0 + 12.0 * 16.0 * 3.0;
    EXPECT_NEAR(res.total_mass, expected, expected * 1e-9);
}

TEST(ParticleApp, DiffusionFlattensImbalance) {
    ParticleConfig pc = small_particle();
    pc.boost_rows = 8;
    pc.boost_density = 10.0;
    pc.cycles = 2;
    auto early = run_on(2, pc);
    pc.cycles = 120;
    auto late = run_on(2, pc);
    EXPECT_LT(late.max_row_mass, early.max_row_mass);
}

TEST(ParticleApp, UnbalancedComputationShiftsDistribution) {
    // Without any competing process, the initial particle imbalance alone is
    // not a load *change* — but once a CP appears and triggers measurement,
    // the per-row costs steer the blocks: the boosted region's owner should
    // get fewer rows than an even split.
    ParticleConfig pc = small_particle();
    pc.rows = 64;
    pc.boost_rows = 16; // node 0's initial block is heavy
    pc.boost_density = 8.0;
    pc.cycles = 90;
    pc.runtime.enable_removal = false;
    auto res = run_on(4, pc, [](msg::Machine& m) {
        m.cluster().add_load_interval(3, 0.5, -1.0, 1);
    });
    ASSERT_EQ(res.final_counts.size(), 4u);
    EXPECT_GE(res.stats.redistributions, 1);
    // Node 0 holds the dense rows: fewer rows than the even 16.
    EXPECT_LT(res.final_counts[0], 16);
}

TEST(ParticleApp, GracePeriodFiveMeasuresRowCostsBetter) {
    // Figure 7's mechanism: short iterations + scheduling jitter make GP=1
    // mis-measure the loaded node's row costs; GP=5's min filter removes the
    // spikes.  Compare the estimated cost of the loaded node's rows (its
    // initial block) against the clean-node estimate of a comparable block.
    auto estimates = [&](int gp) {
        auto c = cfg(4, /*jitter=*/1.0);
        c.cpu.quantum_s = 0.010;
        msg::Machine m(c);
        m.cluster().add_load_interval(1, 0.5, -1.0, 2);
        ParticleConfig pc = small_particle();
        pc.rows = 64;
        pc.cycles = 40;
        pc.sec_per_particle = 2e-4; // 3ms rows: below the /proc threshold
        pc.runtime.enable_removal = false;
        pc.runtime.grace_cycles = gp;
        pc.runtime.max_redistributions = 1;
        ParticleResult out;
        m.run([&](msg::Rank& r) {
            auto res = run_particle(r, pc);
            if (r.id() == 0) out = res;
        });
        return out.last_row_costs;
    };
    auto e1 = estimates(1);
    auto e5 = estimates(5);
    ASSERT_EQ(e1.size(), 64u);
    ASSERT_EQ(e5.size(), 64u);
    // Node 1's initial block is rows [16, 32): the only jitter-affected rows.
    auto block_sum = [](const std::vector<double>& v, int lo, int hi) {
        double s = 0;
        for (int i = lo; i < hi; ++i) s += v[(size_t)i];
        return s;
    };
    double clean_truth = block_sum(e5, 0, 16); // unloaded node, same density
    double loaded_gp1 = block_sum(e1, 16, 32);
    double loaded_gp5 = block_sum(e5, 16, 32);
    // GP=5 estimates the loaded block close to the clean block's cost;
    // GP=1 inflates it noticeably more.
    EXPECT_GT(loaded_gp1, loaded_gp5 * 1.05);
    EXPECT_LT(std::abs(loaded_gp5 - clean_truth), clean_truth * 0.25);
}

}  // namespace
}  // namespace dynmpi::apps
