// Cross-app removal-path coverage: every application must survive physical
// node removal and later re-addition with its numerics intact.
#include <gtest/gtest.h>

#include "apps/cg.hpp"
#include "apps/particle.hpp"
#include "apps/sor.hpp"

namespace dynmpi::apps {
namespace {

sim::ClusterConfig cfg(int nodes) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.cpu.jitter_frac = 0.0;
    c.ps_period = sim::from_seconds(0.25);
    return c;
}

/// Heavy load on one node + comm-heavy settings force a physical drop;
/// killing the load later forces the re-add.
void heavy_then_clear(msg::Machine& m, int node, double clear_at = 4.0) {
    m.cluster().add_load_interval(node, 0.3, clear_at, 5);
}

TEST(AppsRemoval, CgDropsAndReaddsWithCorrectResiduals) {
    msg::Machine m(cfg(4));
    heavy_then_clear(m, 1, /*clear_at=*/1.0);
    CgConfig cc;
    cc.n = 256;
    cc.cycles = 400;
    cc.sec_per_nnz = 2e-6; // small compute, allgather-heavy: drop-friendly
    cc.runtime.calibrate = false;
    cc.runtime.force_drop_loaded = true;
    auto ref = reference_cg_residuals(cc);
    CgResult out;
    m.run([&](msg::Rank& r) {
        auto res = run_cg(r, cc);
        if (r.id() == 0) out = res;
    });
    EXPECT_GE(out.stats.physical_drops, 1);
    EXPECT_GE(out.stats.readds, 1);
    EXPECT_EQ(out.final_active, 4);
    // Numerics match the serial reference throughout the drop/re-add.
    // Once CG converges the residual is numerical dust whose exact value
    // depends on reduction grouping, so compare only meaningful magnitudes.
    ASSERT_EQ(out.residual_history.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (ref[i] < 1e-20) break;
        EXPECT_NEAR(out.residual_history[i], ref[i], std::abs(ref[i]) * 1e-8)
            << "iteration " << i;
    }
}

TEST(AppsRemoval, ParticleMassSurvivesDropAndReadd) {
    msg::Machine m(cfg(4));
    heavy_then_clear(m, 2);
    ParticleConfig pc;
    pc.rows = 48;
    pc.cols = 8;
    pc.cycles = 500;
    pc.sec_per_particle = 1e-5;
    pc.sec_per_row_base = 5e-5;
    pc.runtime.calibrate = false;
    pc.runtime.force_drop_loaded = true;
    ParticleResult out;
    m.run([&](msg::Rank& r) {
        auto res = run_particle(r, pc);
        if (r.id() == 0) out = res;
    });
    EXPECT_GE(out.stats.physical_drops, 1);
    double expected = 48.0 * 8.0;
    EXPECT_NEAR(out.total_mass, expected, expected * 1e-9);
}

TEST(AppsRemoval, SorChecksumUnchangedByDropPath) {
    auto run_once = [](bool with_load) {
        msg::Machine m(cfg(4));
        if (with_load) heavy_then_clear(m, 1);
        SorConfig sc;
        sc.rows = 48;
        sc.cols_stored = 8;
        sc.cols_math = 8;
        sc.cycles = 500;
        sc.sec_per_row = 2e-4;
        sc.runtime.calibrate = false;
        sc.runtime.force_drop_loaded = true;
        SorResult out;
        m.run([&](msg::Rank& r) {
            auto res = run_sor(r, sc);
            if (r.id() == 0) out = res;
        });
        return out;
    };
    SorResult quiet = run_once(false);
    SorResult dropped = run_once(true);
    EXPECT_GE(dropped.stats.physical_drops, 1);
    EXPECT_NEAR(dropped.checksum, quiet.checksum,
                std::abs(quiet.checksum) * 1e-9);
}

}  // namespace
}  // namespace dynmpi::apps
