// Red-Black Successive Over-Relaxation (paper §5.1, §5.3).
//
// One dense array, two half-sweeps (red then black) per phase cycle, each
// preceded by a boundary exchange — twice the communication of Jacobi for
// half the per-sweep compute, which is exactly why the paper uses SOR for
// the node-removal study (smaller computation/communication ratio).
#pragma once

#include "apps/app_common.hpp"

namespace dynmpi::apps {

struct SorConfig {
    int rows = 256;       ///< paper §5.3: 1024
    int cols_stored = 64;
    int cols_math = 32;
    int cycles = 50;
    double omega = 1.5;        ///< over-relaxation factor
    double sec_per_row = 1e-4; ///< per full cycle (split across sweeps)
    RuntimeOptions runtime;
    CycleHook on_cycle;
};

struct SorResult : AppResult {
    // checksum = global sum of the final grid's math stripe.
};

SorResult run_sor(msg::Rank& rank, const SorConfig& config);

}  // namespace dynmpi::apps
