#include "apps/sor.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dynmpi::apps {

namespace {
double initial_value(int row, int col) {
    return (row % 7) * 0.125 + (col % 5) * 0.25;
}
}  // namespace

SorResult run_sor(msg::Rank& rank, const SorConfig& config) {
    DYNMPI_REQUIRE(config.cols_math >= 3, "stencil needs at least 3 columns");
    DYNMPI_REQUIRE(config.cols_math <= config.cols_stored,
                   "cols_math must fit in cols_stored");
    const int n = config.rows;
    const int w = config.cols_math;
    const std::size_t row_bytes =
        static_cast<std::size_t>(config.cols_stored) * sizeof(double);

    Runtime rt(rank, n, config.runtime);
    DenseArray& U = rt.register_dense("U", config.cols_stored, sizeof(double));
    // Two phases per cycle: the red and black half-sweeps.
    int ph_red = rt.init_phase(
        0, n, PhaseComm{CommPattern::NearestNeighbor, row_bytes});
    int ph_black = rt.init_phase(
        0, n, PhaseComm{CommPattern::NearestNeighbor, row_bytes});
    for (int ph : {ph_red, ph_black}) {
        rt.add_array_access("U", AccessMode::Write, ph, 1, 0);
        rt.add_array_access("U", AccessMode::Read, ph, 1, -1);
        rt.add_array_access("U", AccessMode::Read, ph, 1, +1);
    }
    rt.commit_setup();

    for (int r : U.held().to_vector())
        for (int c = 0; c < config.cols_stored; ++c)
            U.at<double>(r, c) = initial_value(r, c);

    auto exchange_halo = [&](int tag_base) {
        const int rel = rt.rel_rank();
        const int nact = rt.num_active();
        const int lo = rt.start_iter(ph_red);
        const int hi = rt.end_iter(ph_red);
        std::vector<std::byte> ghost(row_bytes);
        if (rel > 0)
            rt.send_rel(rel - 1, tag_base, U.row_data(lo), row_bytes);
        if (rel < nact - 1)
            rt.send_rel(rel + 1, tag_base + 1, U.row_data(hi), row_bytes);
        if (rel < nact - 1) {
            rt.recv_rel(rel + 1, tag_base, ghost.data(), row_bytes);
            std::memcpy(U.row_data(hi + 1), ghost.data(), row_bytes);
        }
        if (rel > 0) {
            rt.recv_rel(rel - 1, tag_base + 1, ghost.data(), row_bytes);
            std::memcpy(U.row_data(lo - 1), ghost.data(), row_bytes);
        }
    };

    auto sweep = [&](int color) {
        const int lo = rt.start_iter(ph_red);
        const int hi = rt.end_iter(ph_red);
        for (int i = std::max(lo, 1); i <= std::min(hi, n - 2); ++i) {
            for (int j = 1; j < w - 1; ++j) {
                if ((i + j) % 2 != color) continue;
                double gs = 0.25 * (U.at<double>(i - 1, j) +
                                    U.at<double>(i + 1, j) +
                                    U.at<double>(i, j - 1) +
                                    U.at<double>(i, j + 1));
                U.at<double>(i, j) =
                    (1.0 - config.omega) * U.at<double>(i, j) +
                    config.omega * gs;
            }
        }
    };

    for (int cycle = 0; cycle < config.cycles; ++cycle) {
        fire_hook(config.on_cycle, rank, cycle);
        rt.begin_cycle();
        if (rt.participating()) {
            std::vector<double> half_costs(
                static_cast<std::size_t>(rt.my_iters(ph_red).count()),
                config.sec_per_row / 2.0);

            exchange_halo(20);
            sweep(0);
            rt.run_phase(ph_red, half_costs);

            exchange_halo(22);
            sweep(1);
            rt.run_phase(ph_black, half_costs);
        }
        rt.end_cycle();
    }

    double local = 0.0;
    for (int r : rt.my_iters(ph_red).to_vector())
        for (int c = 0; c < w; ++c) local += U.at<double>(r, c);
    double sum = rt.allreduce_active(local, msg::OpSum{});

    SorResult out;
    out.checksum = sum;
    fill_common_result(out, rt);
    return out;
}

}  // namespace dynmpi::apps
