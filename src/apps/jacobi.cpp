#include "apps/jacobi.hpp"

#include "support/error.hpp"

namespace dynmpi::apps {

namespace {

/// Deterministic initial condition, independent of the distribution.
/// Deliberately non-harmonic so the sweeps actually change the field.
double initial_value(int row, int col) {
    return 1.0 + 0.1 * ((row % 7) * (col % 5)) + 0.001 * row;
}

}  // namespace

JacobiResult run_jacobi(msg::Rank& rank, const JacobiConfig& config) {
    DYNMPI_REQUIRE(config.cols_math >= 3, "stencil needs at least 3 columns");
    DYNMPI_REQUIRE(config.cols_math <= config.cols_stored,
                   "cols_math must fit in cols_stored");
    const int n = config.rows;
    const int w = config.cols_math;
    const std::size_t row_bytes =
        static_cast<std::size_t>(config.cols_stored) * sizeof(double);

    Runtime rt(rank, n, config.runtime);
    DenseArray* grid[2] = {
        &rt.register_dense("A", config.cols_stored, sizeof(double)),
        &rt.register_dense("B", config.cols_stored, sizeof(double)),
    };
    int ph = rt.init_phase(
        0, n, PhaseComm{CommPattern::NearestNeighbor, row_bytes});
    for (const char* name : {"A", "B"}) {
        rt.add_array_access(name, AccessMode::Write, ph, 1, 0);
        rt.add_array_access(name, AccessMode::Read, ph, 1, -1);
        rt.add_array_access(name, AccessMode::Read, ph, 1, +1);
    }
    rt.commit_setup();

    // Initialize all held rows (ghosts included) deterministically.
    for (DenseArray* g : grid)
        for (int r : g->held().to_vector())
            for (int c = 0; c < config.cols_stored; ++c)
                g->at<double>(r, c) = initial_value(r, c);

    for (int cycle = 0; cycle < config.cycles; ++cycle) {
        fire_hook(config.on_cycle, rank, cycle);
        rt.begin_cycle();
        if (rt.participating()) {
            DenseArray& read = *grid[cycle % 2];
            DenseArray& write = *grid[(cycle + 1) % 2];
            const int rel = rt.rel_rank();
            const int nact = rt.num_active();
            const int lo = rt.start_iter(ph);
            const int hi = rt.end_iter(ph); // inclusive

            // Halo exchange on the read array (paper Figure 1 pattern).
            std::vector<std::byte> ghost(row_bytes);
            if (rel > 0) rt.send_rel(rel - 1, 10, read.row_data(lo), row_bytes);
            if (rel < nact - 1)
                rt.send_rel(rel + 1, 11, read.row_data(hi), row_bytes);
            if (rel < nact - 1) {
                rt.recv_rel(rel + 1, 10, ghost.data(), row_bytes);
                std::memcpy(read.row_data(hi + 1), ghost.data(), row_bytes);
            }
            if (rel > 0) {
                rt.recv_rel(rel - 1, 11, ghost.data(), row_bytes);
                std::memcpy(read.row_data(lo - 1), ghost.data(), row_bytes);
            }

            // Real stencil on the math stripe.
            for (int i = lo; i <= hi; ++i) {
                if (i == 0 || i == n - 1) {
                    // Dirichlet boundary rows stay fixed.
                    std::memcpy(write.row_data(i), read.row_data(i),
                                row_bytes);
                    continue;
                }
                for (int j = 0; j < config.cols_stored; ++j) {
                    double v;
                    if (j == 0 || j >= w - 1) {
                        v = read.at<double>(i, j); // fixed outside the stripe
                    } else {
                        v = 0.25 * (read.at<double>(i - 1, j) +
                                    read.at<double>(i + 1, j) +
                                    read.at<double>(i, j - 1) +
                                    read.at<double>(i, j + 1));
                    }
                    write.at<double>(i, j) = v;
                }
            }

            // Charge the paper-scale virtual cost.
            std::vector<double> costs(
                static_cast<std::size_t>(rt.my_iters(ph).count()),
                config.sec_per_row);
            rt.run_phase(ph, costs);
        }
        rt.end_cycle();
    }

    // Checksum over the final read array (the one written last).
    DenseArray& last = *grid[config.cycles % 2];
    double local = 0.0;
    for (int r : rt.my_iters(ph).to_vector())
        for (int c = 0; c < w; ++c) local += last.at<double>(r, c);
    double sum = rt.allreduce_active(local, msg::OpSum{});

    JacobiResult out;
    out.checksum = sum;
    fill_common_result(out, rt);
    return out;
}

}  // namespace dynmpi::apps
