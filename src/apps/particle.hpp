// Particle simulation (paper §5.1, §5.4) — a scaled-down MP3D-style code.
//
// A rows×cols grid of cells carries particle mass, distributed by grid rows.
// Each time step a fixed fraction of every cell's particles diffuses to the
// neighboring rows; mass crossing a block boundary is shipped to the
// neighbor.  Per-row compute cost is proportional to the particles in the
// row, so the computation is *unbalanced* and shifts over time — the
// workload the paper uses to exercise per-iteration timing (Figure 7) and
// an initially skewed load (Figure 4: one node starts with twice the
// particles).
//
// Total mass is conserved exactly (checksum), which makes redistribution
// correctness observable end to end.
#pragma once

#include "apps/app_common.hpp"

namespace dynmpi::apps {

struct ParticleConfig {
    int rows = 64;  ///< grid rows (paper: 256)
    int cols = 64;  ///< grid cols (paper: 256)
    int cycles = 50; ///< time steps (paper: 200)
    double base_density = 1.0; ///< particles per cell
    /// Rows [0, boost_rows) start with `boost_density` particles per cell
    /// (Figure 4: first node's rows at 2x; Figure 7: Part=10/50 on the top
    /// half of P0's rows).
    int boost_rows = 0;
    double boost_density = 1.0;
    double move_fraction = 0.15; ///< mass moving to each neighbor row
    double sec_per_particle = 2e-6;
    double sec_per_row_base = 1e-6;
    RuntimeOptions runtime;
    CycleHook on_cycle;
};

struct ParticleResult : AppResult {
    double total_mass = 0.0; ///< checksum; conserved across the run
    double max_row_mass = 0.0;
};

ParticleResult run_particle(msg::Rank& rank, const ParticleConfig& config);

}  // namespace dynmpi::apps
