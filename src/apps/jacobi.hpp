// Jacobi iteration (paper §5.1, §5.2): the five-point stencil PDE solver.
//
// Two dense arrays ping-pong as read/write targets each phase cycle; the
// boundary rows of the read array are exchanged with nearest neighbors.  The
// paper runs 2048x2048 doubles for 250 iterations; the default virtual cost
// model reproduces that scale while the real arithmetic runs on a narrower
// stored stripe (cols_math <= cols_stored).
#pragma once

#include "apps/app_common.hpp"

namespace dynmpi::apps {

struct JacobiConfig {
    int rows = 256;        ///< distributed dimension (paper: 2048)
    int cols_stored = 64;  ///< stored row width (redistribution payload)
    int cols_math = 32;    ///< columns the real stencil touches
    int cycles = 50;       ///< phase cycles (paper: 250)
    double sec_per_row = 1e-4; ///< unloaded reference cost per row per cycle
    RuntimeOptions runtime;
    CycleHook on_cycle;
};

struct JacobiResult : AppResult {
    // checksum = global sum of the final read array's interior.
};

/// SPMD body; call from every rank of a Machine.
JacobiResult run_jacobi(msg::Rank& rank, const JacobiConfig& config);

}  // namespace dynmpi::apps
