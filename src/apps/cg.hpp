// Conjugate Gradient on an unstructured sparse system (paper §5.1; the NAS
// CG benchmark is the model).
//
// The matrix is a deterministic symmetric positive-definite band matrix
// stored in the Dyn-MPI vector-of-lists sparse format, distributed by rows
// together with the dense iteration vectors.  Each CG iteration gathers the
// full search direction p (AllGather pattern), applies A, and reduces two
// dot products through the removal-aware global reduction.  Per-row virtual
// cost is proportional to the row's stored entries, so the measured cost
// profile tracks the matrix structure.
#pragma once

#include "apps/app_common.hpp"

namespace dynmpi::apps {

struct CgConfig {
    int n = 512;    ///< system size (paper: 14000)
    int cycles = 25; ///< CG iterations run as phase cycles
    double sec_per_nnz = 1e-5; ///< unloaded reference cost per stored entry
    std::uint64_t seed = 99;   ///< matrix structure seed
    RuntimeOptions runtime;
    CycleHook on_cycle;
};

struct CgResult : AppResult {
    double residual_norm2 = 0.0; ///< final ||r||^2 (checksum mirrors this)
    std::vector<double> residual_history;
};

CgResult run_cg(msg::Rank& rank, const CgConfig& config);

struct CgRecoverResult : CgResult {
    bool matrix_intact = true; ///< owned A rows match the generator bitwise
    int redo_cycles = 0;       ///< cycles rolled back and redone after repair
};

/// Crash-masked CG.  Requires RuntimeOptions.replicate: every completed
/// cycle's replica refresh makes the buddies hold the cycle-boundary state,
/// so when a node crash is repaired mid-cycle the adopter's restored rows
/// and every survivor's snapshot rollback meet at the same consistent point
/// and the cycle is simply redone.  Intended for quiet-load scenarios (no
/// removal of live nodes): a removed-but-alive follower could not take part
/// in the rollback.
CgRecoverResult run_cg_recoverable(msg::Rank& rank, const CgConfig& config);

/// Reference single-process CG on the same system; returns ||r||^2 history.
std::vector<double> reference_cg_residuals(const CgConfig& config);

}  // namespace dynmpi::apps
