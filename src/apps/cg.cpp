#include "apps/cg.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace dynmpi::apps {

namespace {

/// Symmetric band offsets; values depend only on the unordered pair, so the
/// matrix is symmetric by construction, and the diagonal dominates the
/// absolute row sum, so it is positive definite.
constexpr int kBand[] = {1, 7, 41};

double offdiag_value(std::uint64_t seed, int lo, int hi) {
    std::uint64_t h = hash_combine(hash_combine(seed, (std::uint64_t)lo),
                                   (std::uint64_t)hi);
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return -0.1 - 0.4 * u; // in [-0.5, -0.1]; 6 entries < diag 4.0
}

double diag_value(std::uint64_t seed, int r) {
    std::uint64_t h = hash_combine(seed ^ 0xD1A6ULL, (std::uint64_t)r);
    return 4.0 + static_cast<double>(h >> 11) * 0x1.0p-53;
}

double rhs_value(int r) { return 1.0 + 0.01 * (r % 13); }

/// Stored entries of row r: (col, value) pairs including the diagonal.
std::vector<std::pair<int, double>> row_entries(const CgConfig& cfg, int r) {
    std::vector<std::pair<int, double>> out;
    for (int band : kBand) {
        if (r - band >= 0)
            out.emplace_back(r - band, offdiag_value(cfg.seed, r - band, r));
    }
    out.emplace_back(r, diag_value(cfg.seed, r));
    for (int band : kBand) {
        if (r + band < cfg.n)
            out.emplace_back(r + band, offdiag_value(cfg.seed, r, r + band));
    }
    return out;
}

}  // namespace

std::vector<double> reference_cg_residuals(const CgConfig& cfg) {
    const int n = cfg.n;
    std::vector<double> x(n, 0.0), r(n), p(n), q(n);
    for (int i = 0; i < n; ++i) r[(size_t)i] = rhs_value(i);
    p = r;
    double rr = 0.0;
    for (int i = 0; i < n; ++i) rr += r[(size_t)i] * r[(size_t)i];

    std::vector<double> history;
    for (int it = 0; it < cfg.cycles; ++it) {
        for (int i = 0; i < n; ++i) {
            double s = 0.0;
            for (auto [c, v] : row_entries(cfg, i)) s += v * p[(size_t)c];
            q[(size_t)i] = s;
        }
        double pq = 0.0;
        for (int i = 0; i < n; ++i) pq += p[(size_t)i] * q[(size_t)i];
        double alpha = rr / pq;
        for (int i = 0; i < n; ++i) {
            x[(size_t)i] += alpha * p[(size_t)i];
            r[(size_t)i] -= alpha * q[(size_t)i];
        }
        double rr_new = 0.0;
        for (int i = 0; i < n; ++i) rr_new += r[(size_t)i] * r[(size_t)i];
        double beta = rr_new / rr;
        rr = rr_new;
        for (int i = 0; i < n; ++i)
            p[(size_t)i] = r[(size_t)i] + beta * p[(size_t)i];
        history.push_back(rr);
    }
    return history;
}

CgResult run_cg(msg::Rank& rank, const CgConfig& config) {
    const int n = config.n;
    Runtime rt(rank, n, config.runtime);

    SparseMatrix& A = rt.register_sparse("A", n);
    DenseArray& X = rt.register_dense("x", 1, sizeof(double));
    DenseArray& R = rt.register_dense("r", 1, sizeof(double));
    DenseArray& P = rt.register_dense("p", 1, sizeof(double));
    DenseArray& Q = rt.register_dense("q", 1, sizeof(double));

    int ph = rt.init_phase(
        0, n,
        PhaseComm{CommPattern::AllGather,
                  static_cast<std::size_t>(n) * sizeof(double)});
    for (const char* name : {"A", "x", "r", "p", "q"})
        rt.add_array_access(name, AccessMode::Write, ph, 1, 0);
    rt.commit_setup();

    // Build this node's matrix rows and vector entries.
    auto init_rows = [&](const RowSet& rows) {
        for (int i : rows.to_vector()) {
            for (auto [c, v] : row_entries(config, i)) A.set(i, c, v);
            X.at<double>(i, 0) = 0.0;
            R.at<double>(i, 0) = rhs_value(i);
            P.at<double>(i, 0) = rhs_value(i);
            Q.at<double>(i, 0) = 0.0;
        }
    };
    init_rows(rt.my_iters(ph));

    auto local_dot = [&](DenseArray& a, DenseArray& b) {
        double s = 0.0;
        for (int i : rt.my_iters(ph).to_vector())
            s += a.at<double>(i, 0) * b.at<double>(i, 0);
        return s;
    };

    double rr = rt.allreduce_active(
        rt.participating() ? local_dot(R, R) : 0.0, msg::OpSum{});

    CgResult out;
    for (int cycle = 0; cycle < config.cycles; ++cycle) {
        fire_hook(config.on_cycle, rank, cycle);
        rt.begin_cycle();
        if (rt.participating()) {
            // Gather the full search direction p (AllGather pattern).
            std::vector<double> mine;
            std::vector<int> my_rows = rt.my_iters(ph).to_vector();
            mine.reserve(my_rows.size());
            for (int i : my_rows) mine.push_back(P.at<double>(i, 0));
            auto gathered =
                msg::allgather(rank, rt.active_group(), mine);
            std::vector<double> full_p(static_cast<std::size_t>(n), 0.0);
            for (int rel = 0; rel < rt.num_active(); ++rel) {
                auto rows = rt.distribution().iters_of(rel).to_vector();
                const auto& vals = gathered[static_cast<std::size_t>(rel)];
                DYNMPI_CHECK(vals.size() == rows.size(),
                             "gathered p misaligned");
                for (std::size_t k = 0; k < rows.size(); ++k)
                    full_p[static_cast<std::size_t>(rows[k])] = vals[k];
            }

            // q = A * p over my rows; virtual cost tracks stored entries.
            std::vector<double> costs;
            costs.reserve(my_rows.size());
            for (int i : my_rows) {
                double s = 0.0;
                for (const auto& e : A.row(i))
                    s += e.value * full_p[static_cast<std::size_t>(e.col)];
                Q.at<double>(i, 0) = s;
                costs.push_back(config.sec_per_nnz * A.row_nnz(i));
            }
            rt.run_phase(ph, costs);
        }

        double pq = rt.allreduce_active(
            rt.participating() ? local_dot(P, Q) : 0.0, msg::OpSum{});
        double alpha = rr / pq;
        if (rt.participating()) {
            for (int i : rt.my_iters(ph).to_vector()) {
                X.at<double>(i, 0) += alpha * P.at<double>(i, 0);
                R.at<double>(i, 0) -= alpha * Q.at<double>(i, 0);
            }
        }
        double rr_new = rt.allreduce_active(
            rt.participating() ? local_dot(R, R) : 0.0, msg::OpSum{});
        double beta = rr_new / rr;
        rr = rr_new;
        if (rt.participating()) {
            for (int i : rt.my_iters(ph).to_vector())
                P.at<double>(i, 0) =
                    R.at<double>(i, 0) + beta * P.at<double>(i, 0);
        }
        out.residual_history.push_back(rr);
        rt.end_cycle();
    }

    out.residual_norm2 = rr;
    out.checksum = rr;
    fill_common_result(out, rt);
    return out;
}

CgRecoverResult run_cg_recoverable(msg::Rank& rank, const CgConfig& config) {
    const int n = config.n;
    DYNMPI_REQUIRE(config.runtime.replicate,
                   "run_cg_recoverable requires RuntimeOptions.replicate");
    Runtime rt(rank, n, config.runtime);

    SparseMatrix& A = rt.register_sparse("A", n);
    DenseArray& X = rt.register_dense("x", 1, sizeof(double));
    DenseArray& R = rt.register_dense("r", 1, sizeof(double));
    DenseArray& P = rt.register_dense("p", 1, sizeof(double));
    DenseArray& Q = rt.register_dense("q", 1, sizeof(double));

    int ph = rt.init_phase(
        0, n,
        PhaseComm{CommPattern::AllGather,
                  static_cast<std::size_t>(n) * sizeof(double)});
    for (const char* name : {"A", "x", "r", "p", "q"})
        rt.add_array_access(name, AccessMode::Write, ph, 1, 0);
    rt.commit_setup();

    for (int i : rt.my_iters(ph).to_vector()) {
        for (auto [c, v] : row_entries(config, i)) A.set(i, c, v);
        X.at<double>(i, 0) = 0.0;
        R.at<double>(i, 0) = rhs_value(i);
        P.at<double>(i, 0) = rhs_value(i);
        Q.at<double>(i, 0) = 0.0;
    }

    auto local_dot = [&](DenseArray& a, DenseArray& b) {
        double s = 0.0;
        for (int i : rt.my_iters(ph).to_vector())
            s += a.at<double>(i, 0) * b.at<double>(i, 0);
        return s;
    };
    auto sum_active = [&](double v) {
        return msg::allreduce_scalar(rank, rt.active_group(), v, msg::OpSum{});
    };

    double rr = sum_active(local_dot(R, R));

    CgRecoverResult out;
    int repairs_seen = rt.stats().crash_repairs;
    for (int cycle = 0; cycle < config.cycles; ++cycle) {
        fire_hook(config.on_cycle, rank, cycle);
        for (;;) {
            // Snapshot the cycle-start state of my rows.  After a rollback
            // the restored + rolled-back rows are again at cycle start, so
            // re-snapshotting each attempt also covers freshly adopted rows
            // before a possible second crash.
            std::vector<int> snap_rows = rt.my_iters(ph).to_vector();
            std::vector<double> snap_x, snap_r, snap_p, snap_q;
            for (int i : snap_rows) {
                snap_x.push_back(X.at<double>(i, 0));
                snap_r.push_back(R.at<double>(i, 0));
                snap_p.push_back(P.at<double>(i, 0));
                snap_q.push_back(Q.at<double>(i, 0));
            }
            const double rr_snap = rr;

            try {
                rt.begin_cycle();
                std::vector<double> mine;
                std::vector<int> my_rows = rt.my_iters(ph).to_vector();
                mine.reserve(my_rows.size());
                for (int i : my_rows) mine.push_back(P.at<double>(i, 0));
                auto gathered = msg::allgather(rank, rt.active_group(), mine);
                std::vector<double> full_p(static_cast<std::size_t>(n), 0.0);
                for (int rel = 0; rel < rt.num_active(); ++rel) {
                    auto rows = rt.distribution().iters_of(rel).to_vector();
                    const auto& vals = gathered[static_cast<std::size_t>(rel)];
                    DYNMPI_CHECK(vals.size() == rows.size(),
                                 "gathered p misaligned");
                    for (std::size_t k = 0; k < rows.size(); ++k)
                        full_p[static_cast<std::size_t>(rows[k])] = vals[k];
                }

                std::vector<double> costs;
                costs.reserve(my_rows.size());
                for (int i : my_rows) {
                    double s = 0.0;
                    for (const auto& e : A.row(i))
                        s += e.value * full_p[static_cast<std::size_t>(e.col)];
                    Q.at<double>(i, 0) = s;
                    costs.push_back(config.sec_per_nnz * A.row_nnz(i));
                }
                rt.run_phase(ph, costs);

                double pq = sum_active(local_dot(P, Q));
                double alpha = rr / pq;
                for (int i : my_rows) {
                    X.at<double>(i, 0) += alpha * P.at<double>(i, 0);
                    R.at<double>(i, 0) -= alpha * Q.at<double>(i, 0);
                }
                double rr_new = sum_active(local_dot(R, R));
                double beta = rr_new / rr;
                rr = rr_new;
                for (int i : my_rows)
                    P.at<double>(i, 0) =
                        R.at<double>(i, 0) + beta * P.at<double>(i, 0);
                rt.end_cycle();
            } catch (const msg::PeerFailure&) {
                // A peer died mid-cycle.  Wake every rank stranded in the
                // abandoned collective, then join the survivors in
                // end_cycle: its monitoring pass repairs the active set and
                // restores the dead node's rows from the buddy.
                rank.revoke_control();
                rt.end_cycle();
            } catch (const msg::EpochRevoked&) {
                rt.end_cycle();
            }
            if (rt.stats().crash_repairs == repairs_seen) break;
            // A crash was repaired somewhere in this cycle (possibly after
            // the arithmetic above completed): roll my rows and rr back to
            // the snapshot and redo the whole cycle against the repaired
            // ownership.  The adopter's restored rows already hold the
            // cycle-start state, so no rollback is needed for them.
            repairs_seen = rt.stats().crash_repairs;
            ++out.redo_cycles;
            for (std::size_t k = 0; k < snap_rows.size(); ++k) {
                int i = snap_rows[k];
                X.at<double>(i, 0) = snap_x[k];
                R.at<double>(i, 0) = snap_r[k];
                P.at<double>(i, 0) = snap_p[k];
                Q.at<double>(i, 0) = snap_q[k];
            }
            rr = rr_snap;
        }
        out.residual_history.push_back(rr);
    }

    // Bitwise row compare: restored matrix rows must match the generator
    // exactly, not approximately.  Stored rows are col-sorted; the generator
    // emits bands outward from the diagonal, so sort before comparing.
    for (int i : rt.my_iters(ph).to_vector()) {
        auto expect = row_entries(config, i);
        std::sort(expect.begin(), expect.end());
        const auto& got = A.row(i);
        if (got.size() != expect.size()) {
            out.matrix_intact = false;
            continue;
        }
        std::size_t k = 0;
        for (const auto& e : got) {
            if (e.col != expect[k].first || e.value != expect[k].second)
                out.matrix_intact = false;
            ++k;
        }
    }

    out.residual_norm2 = rr;
    out.checksum = rr;
    fill_common_result(out, rt);
    return out;
}

}  // namespace dynmpi::apps
