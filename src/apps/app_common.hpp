// Shared plumbing for the four evaluation applications (paper §5).
//
// Each application is written once, against the Dyn-MPI runtime; the three
// experimental versions of the paper fall out of configuration:
//   - Dedicated:   no competing processes scripted (harness side),
//   - No-Adapt:    RuntimeOptions.adapt = false (plain MPI behaviour),
//   - Dyn-MPI:     adapt = true.
//
// Applications do *real* arithmetic on stored data (so tests can verify
// numerics across redistributions) and charge *virtual* time through a cost
// model calibrated to the paper's problem sizes: `sec_per_row` (or per
// particle) expresses what one row of the paper-scale problem costs on an
// unloaded reference CPU.  Stored row width can exceed the width the real
// math touches so that redistribution traffic matches paper-scale rows
// without paper-scale host arithmetic.
#pragma once

#include <functional>

#include "dynmpi/runtime.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"

namespace dynmpi::apps {

/// Called on rank 0 at the top of every phase cycle — the harness uses it to
/// script events in application time ("a competing process is introduced on
/// the 10th iteration").
using CycleHook = std::function<void(msg::Rank&, int cycle)>;

/// Result fields common to every application.
struct AppResult {
    double checksum = 0.0; ///< app-specific correctness value
    RuntimeStats stats;    ///< rank-0 runtime statistics
    std::vector<int> final_counts;
    int final_active = 0;
    double elapsed_virtual_s = 0.0; ///< hrtime at app completion
    /// Global per-row cost estimates from the last grace period (empty if
    /// no adaptation ran) — lets tests judge measurement quality directly.
    std::vector<double> last_row_costs;
};

inline void fire_hook(const CycleHook& hook, msg::Rank& rank, int cycle) {
    if (hook && rank.id() == 0) hook(rank, cycle);
}

inline void fill_common_result(AppResult& out, Runtime& rt) {
    out.stats = rt.stats();
    out.final_counts = rt.distribution().counts();
    out.final_active = rt.num_active();
    out.elapsed_virtual_s = rt.rank().hrtime();
    out.last_row_costs = rt.last_row_costs();
}

}  // namespace dynmpi::apps
