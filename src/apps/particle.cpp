#include "apps/particle.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dynmpi::apps {

ParticleResult run_particle(msg::Rank& rank, const ParticleConfig& config) {
    const int n = config.rows;
    const int w = config.cols;
    const std::size_t row_bytes = static_cast<std::size_t>(w) * sizeof(double);

    Runtime rt(rank, n, config.runtime);
    DenseArray& P = rt.register_dense("particles", w, sizeof(double));
    int ph = rt.init_phase(
        0, n, PhaseComm{CommPattern::NearestNeighbor, row_bytes});
    rt.add_array_access("particles", AccessMode::Write, ph, 1, 0);
    rt.commit_setup();

    for (int r : rt.my_iters(ph).to_vector()) {
        double density =
            r < config.boost_rows ? config.boost_density : config.base_density;
        for (int c = 0; c < w; ++c) P.at<double>(r, c) = density;
    }

    std::vector<double> up_out(static_cast<std::size_t>(w));
    std::vector<double> down_out(static_cast<std::size_t>(w));

    for (int cycle = 0; cycle < config.cycles; ++cycle) {
        fire_hook(config.on_cycle, rank, cycle);
        rt.begin_cycle();
        if (rt.participating()) {
            const int rel = rt.rel_rank();
            const int nact = rt.num_active();
            const int lo = rt.start_iter(ph);
            const int hi = rt.end_iter(ph);

            // Per-row virtual cost before the move (cost tracks current
            // occupancy, like collision work in MP3D).
            std::vector<double> costs;
            std::vector<int> my_rows = rt.my_iters(ph).to_vector();
            costs.reserve(my_rows.size());
            for (int r : my_rows) {
                double mass = 0.0;
                for (int c = 0; c < w; ++c) mass += P.at<double>(r, c);
                costs.push_back(config.sec_per_row_base +
                                config.sec_per_particle * mass);
            }

            // Diffusion step: each interior row sends move_fraction of its
            // mass to each neighboring row; global boundary rows reflect.
            const double f = config.move_fraction;
            std::fill(up_out.begin(), up_out.end(), 0.0);
            std::fill(down_out.begin(), down_out.end(), 0.0);
            // Flows between rows inside my block, accumulated in a scratch
            // delta to keep the update order-independent.
            std::vector<std::vector<double>> delta(
                my_rows.size(), std::vector<double>(static_cast<size_t>(w)));
            for (std::size_t k = 0; k < my_rows.size(); ++k) {
                int r = my_rows[k];
                for (int c = 0; c < w; ++c) {
                    double m = P.at<double>(r, c);
                    double to_up = r > 0 ? f * m : 0.0;
                    double to_down = r < n - 1 ? f * m : 0.0;
                    delta[k][(size_t)c] -= to_up + to_down;
                    if (r > 0) {
                        if (r - 1 >= lo)
                            delta[k - 1][(size_t)c] += to_up;
                        else
                            up_out[(size_t)c] += to_up;
                    }
                    if (r < n - 1) {
                        if (r + 1 <= hi)
                            delta[k + 1][(size_t)c] += to_down;
                        else
                            down_out[(size_t)c] += to_down;
                    }
                }
            }
            // Ship boundary flows to the relative-rank neighbors.
            if (rel > 0)
                rt.send_rel(rel - 1, 30, up_out.data(), row_bytes);
            if (rel < nact - 1)
                rt.send_rel(rel + 1, 31, down_out.data(), row_bytes);
            std::vector<double> inflow(static_cast<std::size_t>(w));
            if (rel < nact - 1) {
                rt.recv_rel(rel + 1, 30, inflow.data(), row_bytes);
                for (int c = 0; c < w; ++c)
                    delta.back()[(size_t)c] += inflow[(size_t)c];
            }
            if (rel > 0) {
                rt.recv_rel(rel - 1, 31, inflow.data(), row_bytes);
                for (int c = 0; c < w; ++c)
                    delta.front()[(size_t)c] += inflow[(size_t)c];
            }
            for (std::size_t k = 0; k < my_rows.size(); ++k)
                for (int c = 0; c < w; ++c)
                    P.at<double>(my_rows[k], c) += delta[k][(size_t)c];

            rt.run_phase(ph, costs);
        }
        rt.end_cycle();
    }

    double local_mass = 0.0, local_max_row = 0.0;
    for (int r : rt.my_iters(ph).to_vector()) {
        double row_mass = 0.0;
        for (int c = 0; c < w; ++c) row_mass += P.at<double>(r, c);
        local_mass += row_mass;
        local_max_row = std::max(local_max_row, row_mass);
    }
    ParticleResult out;
    out.total_mass = rt.allreduce_active(local_mass, msg::OpSum{});
    out.max_row_mass = rt.allreduce_active(local_max_row, msg::OpMax{});
    out.checksum = out.total_mass;
    fill_common_result(out, rt);
    return out;
}

}  // namespace dynmpi::apps
