// Diskless buddy replication (docs/FAULTS.md "Crashes" section).
//
// Each active node shadows its owned rows of every registered array onto its
// replication buddy — the successor in the active ring.  The store keeps the
// packed payload of each replicated row verbatim, so restoring after the
// owner's crash is a straight re-frame of the buddy's copies back into the
// shared pack wire format (u32 nrows, then per row u32 row_id,
// u64 payload_bytes, payload — see dist_array.hpp).
//
// The store is deliberately dumb: it does no messaging and knows nothing
// about ownership.  The runtime decides what to ship (dirty-row deltas on
// the monitoring cycle, wholesale rewrites around redistributions) and what
// to restore (a dead predecessor's block).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "dynmpi/row_set.hpp"

namespace dynmpi {

class ReplicaStore {
public:
    explicit ReplicaStore(std::size_t num_arrays);

    /// Absorb a pack-format blob for array `array_idx`, replacing any
    /// previous copy of each contained row.  Returns the rows stored.
    RowSet store_blob(std::size_t array_idx,
                      const std::vector<std::byte>& blob);

    /// Re-frame the stored copies of `rows` (those present) as a
    /// pack-format blob suitable for DistArray::unpack_rows.  Rows the
    /// store never saw are simply absent from the result.
    std::vector<std::byte> extract(std::size_t array_idx,
                                   const RowSet& rows) const;

    /// Rows of `array_idx` currently replicated within `scope`.
    RowSet rows_held(std::size_t array_idx, const RowSet& scope) const;

    /// Row ids framed in a pack-format blob (no payload copies).
    static RowSet rows_in_blob(const std::vector<std::byte>& blob);

    /// Drop replicas of `array_idx` outside `keep`.
    void retain_only(std::size_t array_idx, const RowSet& keep);

    void clear();
    std::size_t bytes() const { return bytes_; }

private:
    // Per array: row id → packed payload.  Ordered so extraction (and thus
    // restore traffic) is deterministic.
    std::vector<std::map<int, std::vector<std::byte>>> rows_;
    std::size_t bytes_ = 0;
};

}  // namespace dynmpi
