#include "dynmpi/replica.hpp"

#include "dynmpi/dist_array.hpp"
#include "support/error.hpp"

namespace dynmpi {

ReplicaStore::ReplicaStore(std::size_t num_arrays) : rows_(num_arrays) {}

// dynmpi-lint: repair-critical
RowSet ReplicaStore::store_blob(std::size_t array_idx,
                                const std::vector<std::byte>& blob) {
    DYNMPI_REQUIRE(array_idx < rows_.size(), "replica store: bad array");
    auto& store = rows_[array_idx];
    RowSet stored;
    std::size_t pos = 0;
    std::uint32_t nrows = DistArray::get_u32(blob, pos);
    for (std::uint32_t i = 0; i < nrows; ++i) {
        int row = static_cast<int>(DistArray::get_u32(blob, pos));
        std::uint64_t nbytes = DistArray::get_u64(blob, pos);
        DYNMPI_REQUIRE(pos + nbytes <= blob.size(),
                       "replica store: truncated blob");
        auto& slot = store[row];
        bytes_ -= slot.size();
        slot.assign(blob.begin() + static_cast<std::ptrdiff_t>(pos),
                    blob.begin() + static_cast<std::ptrdiff_t>(pos + nbytes));
        bytes_ += slot.size();
        pos += nbytes;
        stored.add(row, row + 1);
    }
    return stored;
}

// dynmpi-lint: repair-critical
std::vector<std::byte> ReplicaStore::extract(std::size_t array_idx,
                                             const RowSet& rows) const {
    DYNMPI_REQUIRE(array_idx < rows_.size(), "replica store: bad array");
    const auto& store = rows_[array_idx];
    std::vector<std::byte> out;
    std::uint32_t count = 0;
    DistArray::put_u32(out, 0); // patched below
    for (const auto& iv : rows.intervals()) {
        for (int r = iv.lo; r < iv.hi; ++r) {
            auto it = store.find(r);
            if (it == store.end()) continue;
            DistArray::put_u32(out, static_cast<std::uint32_t>(r));
            DistArray::put_u64(out, it->second.size());
            out.insert(out.end(), it->second.begin(), it->second.end());
            ++count;
        }
    }
    // Patch the row count now that we know it.
    std::vector<std::byte> header;
    DistArray::put_u32(header, count);
    std::copy(header.begin(), header.end(), out.begin());
    return out;
}

RowSet ReplicaStore::rows_held(std::size_t array_idx,
                               const RowSet& scope) const {
    DYNMPI_REQUIRE(array_idx < rows_.size(), "replica store: bad array");
    const auto& store = rows_[array_idx];
    RowSet held;
    for (const auto& iv : scope.intervals())
        for (int r = iv.lo; r < iv.hi; ++r)
            if (store.count(r)) held.add(r, r + 1);
    return held;
}

RowSet ReplicaStore::rows_in_blob(const std::vector<std::byte>& blob) {
    RowSet rows;
    std::size_t pos = 0;
    std::uint32_t nrows = DistArray::get_u32(blob, pos);
    for (std::uint32_t i = 0; i < nrows; ++i) {
        int row = static_cast<int>(DistArray::get_u32(blob, pos));
        std::uint64_t nbytes = DistArray::get_u64(blob, pos);
        DYNMPI_REQUIRE(pos + nbytes <= blob.size(),
                       "replica blob: truncated row");
        pos += nbytes;
        rows.add(row, row + 1);
    }
    return rows;
}

void ReplicaStore::retain_only(std::size_t array_idx, const RowSet& keep) {
    DYNMPI_REQUIRE(array_idx < rows_.size(), "replica store: bad array");
    auto& store = rows_[array_idx];
    for (auto it = store.begin(); it != store.end();) {
        if (keep.contains(it->first)) {
            ++it;
        } else {
            bytes_ -= it->second.size();
            it = store.erase(it);
        }
    }
}

void ReplicaStore::clear() {
    for (auto& store : rows_) store.clear();
    bytes_ = 0;
}

}  // namespace dynmpi
