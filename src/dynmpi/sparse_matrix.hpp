// Sparse matrices in the paper's vector-of-lists format (paper §2.2, §4.1.2).
//
// Each held row is a linked list of (column id, value) pairs kept sorted by
// column.  The format mirrors the dense scheme as closely as possible: the
// distributed dimension is a per-row table, and an "extended row" is the
// list.  Redistribution packs a row's list into a flat vector for the wire
// and rebuilds the list on receipt (paper §4.4) — data *and* metadata move
// together.
//
// The Cursor class provides the paper's user-convenience iterator: move to
// the first element, get the next element, set the next element, and advance
// the row.
#pragma once

#include <algorithm>
#include <list>
#include <map>

#include "dynmpi/dist_array.hpp"
#include "support/error.hpp"

namespace dynmpi {

/// One stored element: (data element, column id) pair.
struct SparseEntry {
    int col = 0;
    double value = 0.0;
    bool operator==(const SparseEntry&) const = default;
};

class SparseMatrix final : public DistArray {
public:
    using RowList = std::list<SparseEntry>;

    SparseMatrix(std::string name, int global_rows, int global_cols);

    int global_cols() const { return global_cols_; }

    // ---- element access ----

    /// Insert or overwrite element (row, col).  The row must be held.
    void set(int row, int col, double value);

    /// Value at (row, col); structural zeros read as 0.0.
    double get(int row, int col) const;

    /// Remove an element if present; returns true if removed.
    bool erase(int row, int col);

    /// The stored list for a held row (sorted by column).
    const RowList& row(int r) const;

    /// Number of stored elements in a held row.
    int row_nnz(int r) const;

    /// Stored elements across all held rows.
    int nnz() const;

    // ---- paper-style iterator ----

    /// Walks held rows in ascending row order, elements in column order.
    class Cursor {
    public:
        explicit Cursor(SparseMatrix& m);

        /// Reset to the first element of the first held row.
        void move_first();

        /// True when the cursor has passed the last element.
        bool at_end() const;

        /// Current position (valid unless at_end()).
        int current_row() const;
        const SparseEntry& current() const;

        /// Return the current element and step forward.  Equivalent to the
        /// paper's "get the next element".
        SparseEntry next();

        /// Overwrite the current element's value and step forward ("set the
        /// next element").
        void set_next(double value);

        /// Skip the rest of this row and move to the next held row.
        void advance_row();

    private:
        void skip_empty_rows();

        SparseMatrix& m_;
        std::vector<int> held_rows_;
        std::size_t row_idx_ = 0;
        RowList::iterator elem_;
    };

    Cursor cursor() { return Cursor(*this); }

    // ---- DistArray ----
    std::vector<std::byte> pack_rows(const RowSet& rows) const override;
    void unpack_rows(const std::vector<std::byte>& data) override;
    void drop_rows(const RowSet& rows) override;
    void ensure_rows(const RowSet& rows) override;
    std::size_t nominal_row_bytes() const override {
        int held = held_.count();
        int avg_nnz = held > 0 ? (nnz() + held - 1) / held : 1;
        return static_cast<std::size_t>(std::max(1, avg_nnz)) *
               sizeof(SparseEntry);
    }
    std::size_t local_bytes() const override {
        return static_cast<std::size_t>(nnz()) * sizeof(SparseEntry);
    }

private:
    RowList& row_mut(int r);

    int global_cols_;
    // Ordered: nnz() and friends iterate this map, and sparse row blobs are
    // replica-/redistribution-visible, so iteration order must not depend
    // on hash seeding.
    std::map<int, RowList> rows_;
};

}  // namespace dynmpi
