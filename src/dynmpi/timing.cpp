#include "dynmpi/timing.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace dynmpi {

IterationTimer::IterationTimer(TimingConfig cfg) : cfg_(cfg) {
    DYNMPI_REQUIRE(cfg_.grace_cycles > 0, "grace period needs cycles");
    DYNMPI_REQUIRE(cfg_.jiffy_s > 0, "jiffy must be positive");
}

void IterationTimer::start(int num_rows) {
    DYNMPI_REQUIRE(num_rows >= 0, "negative row count");
    num_rows_ = num_rows;
    cycles_ = 0;
    hrtime_min_.assign(static_cast<std::size_t>(num_rows), 1e300);
    proc_sum_.assign(static_cast<std::size_t>(num_rows), 0.0);
}

std::vector<double> IterationTimer::quantize_proc(
    const std::vector<double>& cpu) const {
    // A real program reads the cumulative /proc counter before and after each
    // row; each reading floors to a jiffy.
    std::vector<double> out(cpu.size());
    double cum = 0.0;
    double prev_reading = 0.0;
    for (std::size_t i = 0; i < cpu.size(); ++i) {
        cum += cpu[i];
        // Real jiffy counters are integral; the epsilon keeps accumulated
        // floating-point error from flipping an exact boundary downward.
        double reading =
            std::floor(cum / cfg_.jiffy_s + 1e-9) * cfg_.jiffy_s;
        out[i] = reading - prev_reading;
        prev_reading = reading;
    }
    return out;
}

void IterationTimer::record_cycle(const std::vector<double>& wall,
                                  const std::vector<double>& cpu,
                                  double avg_competing, double speed) {
    DYNMPI_REQUIRE(static_cast<int>(wall.size()) == num_rows_ &&
                       static_cast<int>(cpu.size()) == num_rows_,
                   "measurement length mismatch");
    DYNMPI_REQUIRE(speed > 0, "speed must be positive");
    speed_ = speed;

    // gethrtime path: de-rate the wall time by the observed load, keep the
    // minimum across cycles (removes context-switch spikes).
    double derate = speed / (1.0 + std::max(0.0, avg_competing));
    for (int i = 0; i < num_rows_; ++i) {
        double est = wall[static_cast<std::size_t>(i)] * derate;
        hrtime_min_[static_cast<std::size_t>(i)] =
            std::min(hrtime_min_[static_cast<std::size_t>(i)], est);
    }

    // /proc path: accumulate jiffy-quantized readings; averaging across
    // cycles smooths the quantization.
    std::vector<double> q = quantize_proc(cpu);
    for (int i = 0; i < num_rows_; ++i)
        proc_sum_[static_cast<std::size_t>(i)] +=
            q[static_cast<std::size_t>(i)] * speed;

    ++cycles_;
}

IterationTimer::Method IterationTimer::chosen_method() const {
    if (cycles_ == 0 || num_rows_ == 0) return Method::Hrtime;
    double mean_row =
        std::accumulate(proc_sum_.begin(), proc_sum_.end(), 0.0) /
        (static_cast<double>(cycles_) * static_cast<double>(num_rows_));
    return mean_row >= cfg_.proc_threshold_s ? Method::Proc : Method::Hrtime;
}

std::vector<double> IterationTimer::estimates() const {
    DYNMPI_REQUIRE(cycles_ > 0, "no measurements recorded");
    std::vector<double> out(static_cast<std::size_t>(num_rows_));
    if (chosen_method() == Method::Proc) {
        for (int i = 0; i < num_rows_; ++i)
            out[static_cast<std::size_t>(i)] =
                proc_sum_[static_cast<std::size_t>(i)] / cycles_;
    } else {
        out = hrtime_min_;
    }
    return out;
}

}  // namespace dynmpi
