#include "dynmpi/sparse_matrix.hpp"

#include <algorithm>
#include <cstring>

namespace dynmpi {

SparseMatrix::SparseMatrix(std::string name, int global_rows, int global_cols)
    : DistArray(std::move(name), global_rows), global_cols_(global_cols) {
    DYNMPI_REQUIRE(global_cols_ > 0, "matrix needs at least one column");
}

SparseMatrix::RowList& SparseMatrix::row_mut(int r) {
    auto it = rows_.find(r);
    DYNMPI_REQUIRE(it != rows_.end(), "access to non-held row of " + name_);
    return it->second;
}

const SparseMatrix::RowList& SparseMatrix::row(int r) const {
    auto it = rows_.find(r);
    DYNMPI_REQUIRE(it != rows_.end(), "access to non-held row of " + name_);
    return it->second;
}

void SparseMatrix::set(int row, int col, double value) {
    DYNMPI_REQUIRE(col >= 0 && col < global_cols_, "column out of range");
    RowList& list = row_mut(row);
    auto it = std::find_if(list.begin(), list.end(),
                           [col](const SparseEntry& e) { return e.col >= col; });
    if (it != list.end() && it->col == col)
        it->value = value;
    else
        list.insert(it, SparseEntry{col, value});
    mark_row_dirty(row);
}

double SparseMatrix::get(int row, int col) const {
    const RowList& list = this->row(row);
    for (const auto& e : list) {
        if (e.col == col) return e.value;
        if (e.col > col) break;
    }
    return 0.0;
}

bool SparseMatrix::erase(int row, int col) {
    RowList& list = row_mut(row);
    auto it = std::find_if(list.begin(), list.end(),
                           [col](const SparseEntry& e) { return e.col == col; });
    if (it == list.end()) return false;
    list.erase(it);
    mark_row_dirty(row);
    return true;
}

int SparseMatrix::row_nnz(int r) const {
    return static_cast<int>(row(r).size());
}

int SparseMatrix::nnz() const {
    int n = 0;
    for (const auto& [r, list] : rows_) n += static_cast<int>(list.size());
    return n;
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

SparseMatrix::Cursor::Cursor(SparseMatrix& m) : m_(m) { move_first(); }

void SparseMatrix::Cursor::move_first() {
    held_rows_ = m_.held().to_vector();
    row_idx_ = 0;
    if (!held_rows_.empty())
        elem_ = m_.row_mut(held_rows_[0]).begin();
    skip_empty_rows();
}

void SparseMatrix::Cursor::skip_empty_rows() {
    while (row_idx_ < held_rows_.size() &&
           elem_ == m_.row_mut(held_rows_[row_idx_]).end()) {
        ++row_idx_;
        if (row_idx_ < held_rows_.size())
            elem_ = m_.row_mut(held_rows_[row_idx_]).begin();
    }
}

bool SparseMatrix::Cursor::at_end() const {
    return row_idx_ >= held_rows_.size();
}

int SparseMatrix::Cursor::current_row() const {
    DYNMPI_REQUIRE(!at_end(), "cursor past the end");
    return held_rows_[row_idx_];
}

const SparseEntry& SparseMatrix::Cursor::current() const {
    DYNMPI_REQUIRE(!at_end(), "cursor past the end");
    return *elem_;
}

SparseEntry SparseMatrix::Cursor::next() {
    DYNMPI_REQUIRE(!at_end(), "cursor past the end");
    SparseEntry e = *elem_;
    ++elem_;
    skip_empty_rows();
    return e;
}

void SparseMatrix::Cursor::set_next(double value) {
    DYNMPI_REQUIRE(!at_end(), "cursor past the end");
    elem_->value = value;
    m_.mark_row_dirty(held_rows_[row_idx_]);
    ++elem_;
    skip_empty_rows();
}

void SparseMatrix::Cursor::advance_row() {
    DYNMPI_REQUIRE(!at_end(), "cursor past the end");
    ++row_idx_;
    if (row_idx_ < held_rows_.size())
        elem_ = m_.row_mut(held_rows_[row_idx_]).begin();
    skip_empty_rows();
}

// ---------------------------------------------------------------------------
// DistArray interface
// ---------------------------------------------------------------------------

std::vector<std::byte> SparseMatrix::pack_rows(const RowSet& rows) const {
    // Pack each linked-list row into the flat wire vector (paper §4.4: a row
    // "must be packed into a vector" before transfer).  The buffer is sized
    // by an exact precount so the write pass never reallocates, and rows_ is
    // ordered, so each interval is one lower_bound plus a linear walk instead
    // of a map lookup per row.
    std::size_t total = 4;
    for (const RowInterval& iv : rows.intervals()) {
        auto it = rows_.lower_bound(iv.lo);
        for (int r = iv.lo; r < iv.hi; ++r, ++it) {
            DYNMPI_REQUIRE(it != rows_.end() && it->first == r,
                           "access to non-held row of " + name_);
            total += 12 + it->second.size() * sizeof(SparseEntry);
        }
    }
    std::vector<std::byte> out;
    out.reserve(total);
    put_u32(out, static_cast<std::uint32_t>(rows.count()));
    for (const RowInterval& iv : rows.intervals()) {
        auto it = rows_.lower_bound(iv.lo);
        for (int r = iv.lo; r < iv.hi; ++r, ++it) {
            const RowList& list = it->second;
            put_u32(out, static_cast<std::uint32_t>(r));
            put_u64(out, list.size() * sizeof(SparseEntry));
            for (const auto& e : list) {
                std::byte b[sizeof(SparseEntry)];
                std::memcpy(b, &e, sizeof(SparseEntry));
                out.insert(out.end(), b, b + sizeof(SparseEntry));
            }
        }
    }
    stats_.bytes_packed += out.size();
    return out;
}

void SparseMatrix::unpack_rows(const std::vector<std::byte>& data) {
    std::size_t pos = 0;
    std::uint32_t nrows = get_u32(data, pos);
    for (std::uint32_t k = 0; k < nrows; ++k) {
        int r = static_cast<int>(get_u32(data, pos));
        DYNMPI_REQUIRE(r >= 0 && r < global_rows_,
                       "unpacked row id out of range for " + name_);
        std::uint64_t nbytes = get_u64(data, pos);
        DYNMPI_REQUIRE(nbytes % sizeof(SparseEntry) == 0,
                       "sparse row payload not a whole number of entries");
        DYNMPI_REQUIRE(pos + nbytes <= data.size(), "truncated sparse row");
        std::size_t count = nbytes / sizeof(SparseEntry);
        auto [it, inserted] = rows_.try_emplace(r);
        if (inserted) ++stats_.rows_allocated;
        it->second.clear();
        for (std::size_t i = 0; i < count; ++i) {
            SparseEntry e;
            std::memcpy(&e, data.data() + pos, sizeof(SparseEntry));
            pos += sizeof(SparseEntry);
            it->second.push_back(e); // wire order is column order
        }
        held_.add(r, r + 1);
        mark_row_dirty(r);
    }
    stats_.bytes_unpacked += data.size();
}

void SparseMatrix::drop_rows(const RowSet& rows) {
    for (int r : rows.to_vector())
        if (rows_.erase(r) > 0) ++stats_.rows_freed;
    held_ = held_.subtract(rows);
}

void SparseMatrix::ensure_rows(const RowSet& rows) {
    for (int r : rows.to_vector()) {
        DYNMPI_REQUIRE(r >= 0 && r < global_rows_, "row out of range");
        auto [it, inserted] = rows_.try_emplace(r);
        if (inserted) {
            ++stats_.rows_allocated;
            mark_row_dirty(r);
        }
    }
    held_.add(rows);
}

}  // namespace dynmpi
