// Redistribution planning and execution (paper §4.4).
//
// A redistribution is described by (old active set, old distribution) →
// (new active set, new distribution).  Because every node knows both
// distributions and every array's DRSDs, the complete transfer plan is a
// deterministic pure function — no negotiation round is needed: each node
// derives exactly which rows it must send to and receive from every peer.
//
// Authoritative data for a row lives at its *old owner*; nodes re-fetch even
// rows they hold as (possibly stale) ghosts.  Execution packs rows (sparse
// rows are flattened to vectors on the wire), sends eagerly, receives, then
// drops storage for rows no longer needed — surviving rows are reused in
// place, which is the point of the §4.1 allocation scheme.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dynmpi/dist_array.hpp"
#include "dynmpi/distribution.hpp"
#include "dynmpi/drsd.hpp"
#include "mpisim/collectives.hpp"

namespace dynmpi {

/// A registered array plus its access descriptors.
struct ArrayInfo {
    std::unique_ptr<DistArray> array;
    std::vector<Drsd> accesses;
};

/// One redistribution's endpoints.
struct RedistContext {
    int global_rows = 0;
    const msg::Group* old_active = nullptr;
    const Distribution* old_dist = nullptr;
    const msg::Group* new_active = nullptr;
    const Distribution* new_dist = nullptr;
};

/// Rows `abs_rank` owns under (active, dist): its iteration block, identity-
/// mapped into row space.  Empty for non-members.
RowSet owned_rows(const msg::Group& active, const Distribution& dist,
                  int abs_rank);

/// Rows `abs_rank` must hold for `accesses` under (active, dist): its owned
/// rows plus every row its DRSDs touch (ghosts).  Empty for non-members.
RowSet needed_rows(const msg::Group& active, const Distribution& dist,
                   int abs_rank, const std::vector<Drsd>& accesses,
                   int global_rows);

/// Rows `src_abs` must ship to `dst_abs` for one array: the source's old
/// ownership intersected with the destination's newly-needed rows, excluding
/// rows the destination already owned authoritatively.
///
/// This is the reference formulation: calling it for every (src, dst) pair
/// rebuilds the same owned/needed sets O(P²·A) times per redistribution.
/// Execution uses RedistPlan instead; tests pin the two against each other.
RowSet transfer_rows(const RedistContext& ctx,
                     const std::vector<Drsd>& accesses, int src_abs,
                     int dst_abs);

/// One redistribution's complete transfer schedule from the calling rank's
/// perspective, computed once and shared by the pack, unpack, and cleanup
/// phases.  Building it materializes every party's old-owned RowSet once
/// (it is array-independent) and every (array, party) needed RowSet exactly
/// once — O(P·A) set constructions instead of the O(P²·A) that pairwise
/// transfer_rows calls in both the send and the receive phase would cost.
struct RedistPlan {
    /// Union of old and new active members, ascending — the deterministic
    /// traversal order of every execution phase.
    std::vector<int> parties;

    struct ArrayPlan {
        /// Rows this rank ships to / receives from parties[i].  Both are
        /// empty at this rank's own slot.
        std::vector<RowSet> send_to;
        std::vector<RowSet> recv_from;
        /// Rows this rank must hold once the redistribution lands — the
        /// cleanup phase's retain/ensure target.
        RowSet my_needed;
    };
    /// One plan per registered array, in registration order.
    std::vector<ArrayPlan> per_array;
};

/// Build the calling rank's schedule for one redistribution.  Pure and
/// deterministic: every rank derives a mutually consistent plan from the
/// shared context, so no negotiation round is needed.
RedistPlan build_redist_plan(const RedistContext& ctx,
                             const std::vector<ArrayInfo>& arrays, int me);

struct RedistStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t rows_moved = 0;

    /// Per-array slice of the totals above, in registration order (what this
    /// rank *sent*; feeds the redist.apply trace event's breakdown).
    struct ArrayTransfer {
        std::string array;
        std::uint64_t messages = 0;
        std::uint64_t bytes = 0;
        std::uint64_t rows_moved = 0;
    };
    std::vector<ArrayTransfer> per_array;

    /// Phase timings on this rank (sim seconds): transfer planning,
    /// pack+send, recv+unpack, the closing barrier, and storage cleanup.
    double plan_s = 0.0;
    double pack_s = 0.0;
    double unpack_s = 0.0;
    double sync_s = 0.0;
    double cleanup_s = 0.0;
};

/// Execute the full plan for all arrays on the calling rank.  Collective
/// across the union of old and new active sets (every member must call with
/// identical arguments).  `redist_seq` isolates this redistribution's tags.
RedistStats execute_redistribution(msg::Rank& rank, const RedistContext& ctx,
                                   std::vector<ArrayInfo>& arrays,
                                   std::uint64_t redist_seq);

}  // namespace dynmpi
