#include "dynmpi/distribution.hpp"

#include <numeric>

#include "support/error.hpp"

namespace dynmpi {

Distribution Distribution::block(int lo, int hi, std::vector<int> counts) {
    DYNMPI_REQUIRE(lo <= hi, "invalid iteration bounds");
    DYNMPI_REQUIRE(!counts.empty(), "block distribution needs parties");
    int total = std::accumulate(counts.begin(), counts.end(), 0);
    DYNMPI_REQUIRE(total == hi - lo,
                   "block counts must cover the iteration space exactly");
    for (int c : counts) DYNMPI_REQUIRE(c >= 0, "negative block count");

    Distribution d;
    d.kind_ = Kind::Block;
    d.lo_ = lo;
    d.hi_ = hi;
    d.parties_ = static_cast<int>(counts.size());
    d.counts_ = std::move(counts);
    d.starts_.resize(d.counts_.size() + 1);
    d.starts_[0] = lo;
    for (std::size_t j = 0; j < d.counts_.size(); ++j)
        d.starts_[j + 1] = d.starts_[j] + d.counts_[j];
    return d;
}

Distribution Distribution::even_block(int lo, int hi, int parties) {
    DYNMPI_REQUIRE(parties > 0, "need at least one party");
    int n = hi - lo;
    std::vector<int> counts(static_cast<std::size_t>(parties));
    for (int j = 0; j < parties; ++j)
        counts[static_cast<std::size_t>(j)] =
            n / parties + (j < n % parties ? 1 : 0);
    return block(lo, hi, std::move(counts));
}

Distribution Distribution::cyclic(int lo, int hi, int parties,
                                  int block_size) {
    DYNMPI_REQUIRE(lo <= hi, "invalid iteration bounds");
    DYNMPI_REQUIRE(parties > 0, "need at least one party");
    DYNMPI_REQUIRE(block_size > 0, "cyclic block size must be positive");
    Distribution d;
    d.kind_ = Kind::Cyclic;
    d.lo_ = lo;
    d.hi_ = hi;
    d.parties_ = parties;
    d.block_size_ = block_size;
    return d;
}

int Distribution::owner_of(int iter) const {
    DYNMPI_REQUIRE(iter >= lo_ && iter < hi_, "iteration out of range");
    if (kind_ == Kind::Block) {
        // Binary search over prefix sums.
        int lo = 0, hi = parties_;
        while (lo + 1 < hi) {
            int mid = (lo + hi) / 2;
            if (starts_[static_cast<std::size_t>(mid)] <= iter)
                lo = mid;
            else
                hi = mid;
        }
        // Skip zero-count parties that share the same start.
        while (counts_[static_cast<std::size_t>(lo)] == 0 ||
               iter >= starts_[static_cast<std::size_t>(lo) + 1]) {
            ++lo;
            DYNMPI_CHECK(lo < parties_, "owner search overran parties");
        }
        return lo;
    }
    return ((iter - lo_) / block_size_) % parties_;
}

RowSet Distribution::iters_of(int rel) const {
    DYNMPI_REQUIRE(rel >= 0 && rel < parties_, "relative rank out of range");
    if (kind_ == Kind::Block) {
        return RowSet(starts_[static_cast<std::size_t>(rel)],
                      starts_[static_cast<std::size_t>(rel) + 1]);
    }
    RowSet out;
    int stride = block_size_ * parties_;
    for (int base = lo_ + rel * block_size_; base < hi_; base += stride)
        out.add(base, std::min(base + block_size_, hi_));
    return out;
}

int Distribution::count_of(int rel) const {
    if (kind_ == Kind::Block) {
        DYNMPI_REQUIRE(rel >= 0 && rel < parties_, "relative rank out of range");
        return counts_[static_cast<std::size_t>(rel)];
    }
    return iters_of(rel).count();
}

RowInterval Distribution::block_range(int rel) const {
    DYNMPI_REQUIRE(kind_ == Kind::Block, "block_range on non-block");
    DYNMPI_REQUIRE(rel >= 0 && rel < parties_, "relative rank out of range");
    return RowInterval{starts_[static_cast<std::size_t>(rel)],
                       starts_[static_cast<std::size_t>(rel) + 1]};
}

std::vector<int> Distribution::counts() const {
    if (kind_ == Kind::Block) return counts_;
    std::vector<int> c(static_cast<std::size_t>(parties_));
    for (int j = 0; j < parties_; ++j)
        c[static_cast<std::size_t>(j)] = count_of(j);
    return c;
}

}  // namespace dynmpi
