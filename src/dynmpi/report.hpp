// Human-readable reporting over RuntimeStats.
//
// Benches and examples repeatedly need the same three views of a run:
// a summary block, a per-period accounting, and an ASCII timeline of cycle
// times with adaptation markers.  Keeping them here keeps the harnesses
// short and the output uniform.
#pragma once

#include <string>
#include <vector>

#include "dynmpi/runtime.hpp"

namespace dynmpi {

/// One-paragraph summary: cycles, adaptations, drops/re-adds, redistribution
/// overhead, transfer volume.
std::string summarize(const RuntimeStats& stats);

/// ASCII timeline: one bar per `bucket` cycles, bar length proportional to
/// the mean cycle wall in the bucket; 'R' marks buckets containing a
/// redistribution, 'g'/'p' mark grace / post-grace activity.
std::string render_timeline(const RuntimeStats& stats, int bucket = 10,
                            int width = 50);

/// Sum of cycle wall times split at the given cycle boundaries (e.g. the
/// three periods of the Figure 5 experiment).  boundaries must be ascending;
/// returns boundaries.size()+1 sums.
std::vector<double> period_sums(const RuntimeStats& stats,
                                const std::vector<int>& boundaries);

/// Mean of max_wall_s over the last `n` cycles (settled cycle time).
double settled_cycle_time(const RuntimeStats& stats, int n);

/// One line per adaptation event: "t=2.21s cyc 21  redistributed  blocks ...".
std::string render_events(const RuntimeStats& stats);

/// Cycle history as CSV ("cycle,start_s,wall_s,max_wall_s,mode,redistributed")
/// for external plotting.
std::string history_csv(const RuntimeStats& stats);

}  // namespace dynmpi
