// Paper-faithful DMPI_* call surface (Figure 2).
//
// The C++ Runtime is the primary API; this shim mirrors the paper's flat
// function style for programs ported directly from the paper's examples
// (see examples/quickstart.cpp).  Each SPMD rank runs on its own thread, so
// a thread_local Runtime pointer binds the free functions to "this rank's"
// runtime instance.
#pragma once

#include <memory>

#include "dynmpi/runtime.hpp"

namespace dynmpi::capi {

/// Constants mirroring the paper's flags.
inline constexpr AccessMode DMPI_READ = AccessMode::Read;
inline constexpr AccessMode DMPI_WRITE = AccessMode::Write;
inline constexpr CommPattern DMPI_NEAREST_NEIGHBOR =
    CommPattern::NearestNeighbor;
inline constexpr CommPattern DMPI_ALLGATHER = CommPattern::AllGather;
inline constexpr CommPattern DMPI_NONE = CommPattern::None;

/// Create this rank's runtime.  Call once per rank before any other DMPI_*.
void DMPI_init(msg::Rank& rank, int global_rows, RuntimeOptions opts = {});

/// Destroy this rank's runtime (optional; also safe to leak until thread
/// exit in tests).
void DMPI_finalize();

/// The bound runtime (throws if DMPI_init has not run on this thread).
Runtime& DMPI_runtime();

DenseArray& DMPI_register_dense_array(const char* name, int row_elems,
                                      std::size_t elem_bytes);
SparseMatrix& DMPI_register_sparse_array(const char* name, int global_cols);
int DMPI_init_phase(int lo, int hi, CommPattern pattern,
                    std::size_t bytes_per_message);
void DMPI_add_array_access(const char* name, AccessMode mode, int phase,
                           int a = 1, int b = 0);
void DMPI_commit();

void DMPI_begin_cycle();
void DMPI_end_cycle();
void DMPI_run_phase(int phase, const std::vector<double>& row_costs);

bool DMPI_participating();
int DMPI_get_start_iter(int phase = 0);
int DMPI_get_end_iter(int phase = 0);
int DMPI_get_rel_rank();
int DMPI_get_num_active();

void DMPI_Send(int rel_dst, int tag, const void* data, std::size_t bytes);
std::size_t DMPI_Recv(int rel_src, int tag, void* data, std::size_t capacity);

/// Removal-aware global reductions (paper §4.4 send-out semantics): every
/// world rank calls these; removed nodes receive the result without
/// contributing.
double DMPI_Allreduce_sum(double value);
double DMPI_Allreduce_max(double value);

/// gethrtime-equivalent wall clock of this rank.
double DMPI_Wtime();

}  // namespace dynmpi::capi
