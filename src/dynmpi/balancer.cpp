#include "dynmpi/balancer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"
#include "support/metrics.hpp"

namespace dynmpi {

namespace {

double total_power(const std::vector<NodePower>& nodes) {
    double p = 0.0;
    for (const auto& n : nodes) p += n.power();
    DYNMPI_CHECK(p > 0.0, "no processing power in node set");
    return p;
}

/// Two-node split (paper §4.3): fraction of the combined work W2 assigned to
/// the node with effective power pa so that both finish together, each also
/// paying comm CPU cost C:
///     (x*W2 + C)/pa = ((1-x)*W2 + C)/pb
double two_node_split(double w2, double c, double pa, double pb) {
    if (w2 <= 0.0) return 0.0;
    double x = (pa * w2 + c * (pa - pb)) / (w2 * (pa + pb));
    return std::clamp(x, 0.0, 1.0);
}

}  // namespace

void assign_pool_work(const std::vector<NodePower>& nodes,
                      const std::vector<std::size_t>& pool, double work,
                      double comm_cpu, std::vector<double>& w) {
    DYNMPI_REQUIRE(!pool.empty(), "empty balancing pool");
    work = std::max(0.0, work);
    // Active-set iteration: equalize (w_j + C)/p_j over the members whose
    // target is non-negative.  A member driven negative by the comm term is
    // parked at zero and the equalization re-run without it — the deficit
    // lands on the remaining members instead of silently vanishing (the old
    // per-member clamp inflated the pool total by whatever it cut off).
    std::vector<std::size_t> active(pool.begin(), pool.end());
    for (auto j : pool) w[j] = 0.0;
    while (!active.empty()) {
        double psum = 0.0;
        for (auto j : active) psum += nodes[j].power();
        DYNMPI_CHECK(psum > 0.0, "no processing power in balancing pool");
        const double budget =
            work + comm_cpu * static_cast<double>(active.size());
        std::vector<std::size_t> keep;
        keep.reserve(active.size());
        bool dropped = false;
        for (auto j : active) {
            double wj = nodes[j].power() / psum * budget - comm_cpu;
            if (wj < 0.0) {
                w[j] = 0.0;
                dropped = true;
            } else {
                w[j] = wj;
                keep.push_back(j);
            }
        }
        if (!dropped) return;
        active = std::move(keep);
    }
    // Everyone was parked (work and comm term both ~0): nothing to assign.
}

std::vector<double> naive_shares(const std::vector<NodePower>& nodes) {
    DYNMPI_REQUIRE(!nodes.empty(), "empty node set");
    double p = total_power(nodes);
    std::vector<double> s;
    s.reserve(nodes.size());
    for (const auto& n : nodes) s.push_back(n.power() / p);
    return s;
}

std::vector<double> successive_shares(const BalanceInput& input,
                                      int max_rounds, double tol) {
    const auto& nodes = input.nodes;
    DYNMPI_REQUIRE(!nodes.empty(), "empty node set");
    const double total =
        std::accumulate(input.row_costs.begin(), input.row_costs.end(), 0.0);
    const double c = input.comm_cpu_per_node;

    if (nodes.size() == 1) return {1.0};
    if (total <= 0.0) {
        return std::vector<double>(nodes.size(), 1.0 / nodes.size());
    }

    std::vector<std::size_t> loaded, unloaded;
    for (std::size_t j = 0; j < nodes.size(); ++j)
        (nodes[j].loaded() ? loaded : unloaded).push_back(j);
    // Degenerate cases reduce to one pool balanced by the comm-aware closed
    // form below.
    if (loaded.empty() || unloaded.empty()) {
        loaded.clear();
        unloaded.clear();
        for (std::size_t j = 0; j < nodes.size(); ++j) unloaded.push_back(j);
    }

    // Comm-aware proportional assignment within a pool: equalize
    // (w_j + C)/p_j given a pool work total, conserving the pool total.
    auto pool_assign = [&](const std::vector<std::size_t>& pool, double work,
                           std::vector<double>& w) {
        assign_pool_work(nodes, pool, work, c, w);
    };

    std::vector<double> w(nodes.size(), 0.0);
    pool_assign(unloaded.empty() ? loaded : unloaded, total, w);
    if (loaded.empty()) {
        // One pool: done.
        double s = std::accumulate(w.begin(), w.end(), 0.0);
        for (auto& x : w) x = s > 0 ? x / s : 1.0 / w.size();
        return w;
    }

    // Representative unloaded node: the strongest one (they are usually
    // homogeneous).
    std::size_t rep = unloaded[0];
    for (auto j : unloaded)
        if (nodes[j].power() > nodes[rep].power()) rep = j;

    // Initialize loaded nodes at their naive share.
    double psum_all = total_power(nodes);
    for (auto j : loaded) w[j] = nodes[j].power() / psum_all * total;

    std::vector<double> prev_unloaded(nodes.size(), 0.0);
    int rounds_used = 0;
    for (int round = 0; round < max_rounds; ++round) {
        ++rounds_used;
        // Balance the unloaded pool with the remainder.
        double loaded_work = 0.0;
        for (auto j : loaded) loaded_work += w[j];
        pool_assign(unloaded, std::max(0.0, total - loaded_work), w);

        // Pair each loaded node against the representative unloaded node.
        for (auto j : loaded) {
            double w2 = w[j] + w[rep];
            double x = two_node_split(w2, c, nodes[j].power(),
                                      nodes[rep].power());
            w[j] = x * w2;
        }

        // Convergence: little change to the unloaded assignment.
        double delta = 0.0;
        for (auto j : unloaded)
            delta = std::max(delta, std::fabs(w[j] - prev_unloaded[j]));
        for (auto j : unloaded) prev_unloaded[j] = w[j];
        if (delta < tol * total) break;
    }

    // Final pass so the pools are mutually consistent, then normalize.
    double loaded_work = 0.0;
    for (auto j : loaded) loaded_work += w[j];
    pool_assign(unloaded, std::max(0.0, total - loaded_work), w);

    double s = std::accumulate(w.begin(), w.end(), 0.0);
    DYNMPI_CHECK(s > 0.0, "degenerate share vector");
    for (auto& x : w) x /= s;

    // Convergence telemetry: every calling rank records identically, so the
    // histogram aggregates (ranks x calls) samples of the same values.
    if (support::metrics().enabled()) {
        support::metrics().counter("balancer.calls").add(1);
        support::metrics().histogram("balancer.rounds")
            .record(static_cast<double>(rounds_used));
    }
    return w;
}

std::vector<int> blocks_from_shares(const std::vector<double>& row_costs,
                                    const std::vector<double>& shares,
                                    int min_rows) {
    DYNMPI_REQUIRE(!shares.empty(), "empty share vector");
    DYNMPI_REQUIRE(min_rows >= 0, "negative min_rows");
    const int nrows = static_cast<int>(row_costs.size());
    const int parties = static_cast<int>(shares.size());
    DYNMPI_REQUIRE(nrows >= parties * min_rows,
                   "not enough rows to satisfy min_rows");

    double total = std::accumulate(row_costs.begin(), row_costs.end(), 0.0);
    std::vector<int> counts(static_cast<std::size_t>(parties), 0);
    if (total <= 0.0) {
        // No cost information: fall back to share-proportional row counts,
        // floored at min_rows — a near-zero share must still receive its
        // minimum assignment, exactly as the prefix walk below guarantees.
        int assigned = 0;
        for (int j = 0; j < parties; ++j) {
            int c = std::max(
                min_rows,
                static_cast<int>(std::floor(
                    shares[static_cast<std::size_t>(j)] * nrows)));
            counts[static_cast<std::size_t>(j)] = c;
            assigned += c;
        }
        // Flooring can overshoot; shave from parties above the floor
        // (feasible because nrows >= parties * min_rows).
        for (int j = 0; assigned > nrows; j = (j + 1) % parties) {
            if (counts[static_cast<std::size_t>(j)] > min_rows) {
                --counts[static_cast<std::size_t>(j)];
                --assigned;
            }
        }
        for (int j = 0; assigned < nrows; j = (j + 1) % parties) {
            ++counts[static_cast<std::size_t>(j)];
            ++assigned;
        }
    } else {
        // Walk the cost prefix, cutting at each node's cumulative target.
        double cum_target = 0.0, cum_cost = 0.0;
        int row = 0;
        for (int j = 0; j < parties; ++j) {
            cum_target += shares[static_cast<std::size_t>(j)] * total;
            int start = row;
            // Remaining parties must be able to take min_rows each.
            int reserve = (parties - 1 - j) * min_rows;
            while (row < nrows - reserve) {
                double next = cum_cost + row_costs[static_cast<std::size_t>(row)];
                // Cut before this row if adding it overshoots the target by
                // more than half the row (nearest-boundary rounding) — but
                // always take min_rows.
                if (row - start >= min_rows &&
                    next > cum_target + row_costs[static_cast<std::size_t>(row)] / 2.0)
                    break;
                cum_cost = next;
                ++row;
            }
            counts[static_cast<std::size_t>(j)] = row - start;
        }
        // Any residue goes to the last party.
        counts[static_cast<std::size_t>(parties - 1)] += nrows - row;
    }
    return counts;
}

std::vector<int> apply_row_caps(std::vector<int> counts,
                                const std::vector<int>& caps) {
    DYNMPI_REQUIRE(counts.size() == caps.size(), "counts/caps size mismatch");
    auto capped = [&](std::size_t j) {
        return caps[j] > 0 && counts[j] >= caps[j];
    };
    int total = std::accumulate(counts.begin(), counts.end(), 0);
    // Iteratively clamp and respill; converges because the capped set only
    // grows.
    for (std::size_t round = 0; round < counts.size() + 1; ++round) {
        long long overflow = 0;
        long long headroom_weight = 0;
        for (std::size_t j = 0; j < counts.size(); ++j) {
            if (caps[j] > 0 && counts[j] > caps[j]) {
                overflow += counts[j] - caps[j];
                counts[j] = caps[j];
            }
        }
        if (overflow == 0) break;
        for (std::size_t j = 0; j < counts.size(); ++j)
            if (!capped(j)) headroom_weight += counts[j] + 1;
        DYNMPI_REQUIRE(headroom_weight > 0,
                       "memory caps cannot hold the row space");
        // Proportional spill; remainder round-robins over uncapped nodes.
        long long spilled = 0;
        for (std::size_t j = 0; j < counts.size(); ++j) {
            if (capped(j)) continue;
            long long add = overflow * (counts[j] + 1) / headroom_weight;
            if (caps[j] > 0)
                add = std::min<long long>(add, caps[j] - counts[j]);
            counts[j] += static_cast<int>(add);
            spilled += add;
        }
        long long left = overflow - spilled;
        std::size_t stuck = 0;
        for (std::size_t j = 0; left > 0; j = (j + 1) % counts.size()) {
            if (capped(j)) {
                DYNMPI_REQUIRE(++stuck <= counts.size(),
                               "memory caps cannot hold the row space");
                continue;
            }
            stuck = 0;
            ++counts[j];
            --left;
        }
    }
    DYNMPI_CHECK(std::accumulate(counts.begin(), counts.end(), 0) == total,
                 "row caps changed the total row count");
    for (std::size_t j = 0; j < counts.size(); ++j)
        DYNMPI_CHECK(caps[j] <= 0 || counts[j] <= caps[j],
                     "row cap violated after spill");
    return counts;
}

double predict_cycle_time(const BalanceInput& input,
                          const std::vector<int>& counts,
                          double comm_wire_s) {
    DYNMPI_REQUIRE(counts.size() == input.nodes.size(),
                   "counts/nodes size mismatch");
    const int nrows = static_cast<int>(input.row_costs.size());
    int row = 0;
    double worst = 0.0;
    for (std::size_t j = 0; j < counts.size(); ++j) {
        double work = 0.0;
        for (int k = 0; k < counts[j]; ++k) {
            DYNMPI_REQUIRE(row < nrows, "counts exceed row space");
            work += input.row_costs[static_cast<std::size_t>(row++)];
        }
        double comm = counts[j] > 0 ? input.comm_cpu_per_node : 0.0;
        worst = std::max(worst, (work + comm) / input.nodes[j].power());
    }
    DYNMPI_REQUIRE(row == nrows, "counts do not cover row space");
    return worst + comm_wire_s;
}

RemovalDecision evaluate_removal(const BalanceInput& input,
                                 double measured_max_cycle_s,
                                 double comm_cpu_unloaded_s,
                                 double comm_wire_unloaded_s) {
    RemovalDecision d;
    d.measured_loaded_s = measured_max_cycle_s;
    for (std::size_t j = 0; j < input.nodes.size(); ++j)
        if (!input.nodes[j].loaded())
            d.unloaded_members.push_back(static_cast<int>(j));
    // Nothing to drop, or everything is loaded: keep the configuration.
    if (d.unloaded_members.size() == input.nodes.size() ||
        d.unloaded_members.empty())
        return d;

    // Predicted time of the unloaded-only configuration — predictable with
    // high accuracy because no loaded node participates (paper §4.4).
    BalanceInput sub;
    sub.row_costs = input.row_costs;
    sub.comm_cpu_per_node = comm_cpu_unloaded_s;
    for (int j : d.unloaded_members)
        sub.nodes.push_back(input.nodes[static_cast<std::size_t>(j)]);
    auto shares = successive_shares(sub);
    auto counts = blocks_from_shares(sub.row_costs, shares);
    d.predicted_unloaded_s =
        predict_cycle_time(sub, counts, comm_wire_unloaded_s);
    d.drop = d.predicted_unloaded_s < measured_max_cycle_s;
    return d;
}

}  // namespace dynmpi
