#include "dynmpi/drsd.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dynmpi {

RowSet rows_touched(const Drsd& d, const RowSet& iters, int global_rows) {
    DYNMPI_REQUIRE(d.a != 0, "DRSD coefficient must be non-zero");
    RowSet out;
    for (const auto& iv : iters.intervals()) {
        if (d.a == 1) {
            // Fast path: the common unit-stride reference.
            out.add(std::clamp(iv.lo + d.b, 0, global_rows),
                    std::clamp(iv.hi + d.b, 0, global_rows));
        } else {
            for (int i = iv.lo; i < iv.hi; ++i) {
                int row = d.a * i + d.b;
                if (row >= 0 && row < global_rows) out.add(row, row + 1);
            }
        }
    }
    return out;
}

RowSet rows_needed(const std::vector<Drsd>& descriptors, const RowSet& iters,
                   int global_rows, const AccessMode* only_mode) {
    RowSet out;
    for (const auto& d : descriptors) {
        if (only_mode && d.mode != *only_mode) continue;
        out.add(rows_touched(d, iters, global_rows));
    }
    return out;
}

}  // namespace dynmpi
