// Dense matrices under the 2-D projection allocation scheme (paper §4.1.1,
// Figure 3).
//
// An n-dimensional array is projected onto two dimensions: the distributed
// first dimension, and *extended rows* holding the product of the remaining
// dimensions.  Each extended row is its own contiguous allocation, and the
// top level is a per-row pointer table.  Redistribution therefore:
//   - ships whole extended rows in single messages,
//   - reuses surviving rows by pointer (no copy), and
//   - allocates/frees only the rows that actually change hands.
//
// ContiguousDenseArray is the baseline the paper argues against: one flat
// allocation spanning the local block, where any change of extent reallocates
// and copies everything.  It exists for the ablation bench.
#pragma once

#include <unordered_map>

#include "dynmpi/dist_array.hpp"
#include "support/error.hpp"

namespace dynmpi {

class DenseArray final : public DistArray {
public:
    /// `row_elems` elements of `elem_bytes` each per extended row.
    DenseArray(std::string name, int global_rows, int row_elems,
               std::size_t elem_bytes);

    int row_elems() const { return row_elems_; }
    std::size_t elem_bytes() const { return elem_bytes_; }
    std::size_t row_bytes() const {
        return static_cast<std::size_t>(row_elems_) * elem_bytes_;
    }

    /// Raw storage of a held row.
    std::byte* row_data(int row);
    const std::byte* row_data(int row) const;

    /// Typed element access: element `j` of extended row `row`.
    template <typename T>
    T& at(int row, int j) {
        DYNMPI_REQUIRE(sizeof(T) == elem_bytes_, "element type mismatch");
        DYNMPI_REQUIRE(j >= 0 && j < row_elems_, "column out of range");
        return reinterpret_cast<T*>(row_data(row))[j];
    }
    template <typename T>
    const T& at(int row, int j) const {
        DYNMPI_REQUIRE(sizeof(T) == elem_bytes_, "element type mismatch");
        DYNMPI_REQUIRE(j >= 0 && j < row_elems_, "column out of range");
        return reinterpret_cast<const T*>(row_data(row))[j];
    }

    // ---- DistArray ----
    std::vector<std::byte> pack_rows(const RowSet& rows) const override;
    void unpack_rows(const std::vector<std::byte>& data) override;
    void drop_rows(const RowSet& rows) override;
    void ensure_rows(const RowSet& rows) override;
    std::size_t nominal_row_bytes() const override { return row_bytes(); }
    std::size_t local_bytes() const override {
        return static_cast<std::size_t>(held_.count()) * row_bytes();
    }

private:
    int row_elems_;
    std::size_t elem_bytes_;
    // Top-level "pointer vector": row id → extended row storage.  Accessed
    // strictly by key (find/try_emplace/erase); every iteration that feeds
    // pack_rows or replica blobs walks a sorted RowSet instead.
    std::unordered_map<int, std::vector<std::byte>> // dynmpi-lint: ok(unordered-lookup)
        rows_;
};

/// Baseline allocator: the local block lives in one contiguous buffer.
/// Changing the held extent reallocates the whole buffer and copies the
/// surviving data (the shaded cells of Figure 3).
class ContiguousDenseArray final : public DistArray {
public:
    ContiguousDenseArray(std::string name, int global_rows, int row_elems,
                         std::size_t elem_bytes);

    std::size_t row_bytes() const {
        return static_cast<std::size_t>(row_elems_) * elem_bytes_;
    }

    std::byte* row_data(int row);
    const std::byte* row_data(int row) const;

    template <typename T>
    T& at(int row, int j) {
        return reinterpret_cast<T*>(row_data(row))[j];
    }

    std::vector<std::byte> pack_rows(const RowSet& rows) const override;
    void unpack_rows(const std::vector<std::byte>& data) override;
    void drop_rows(const RowSet& rows) override;
    void ensure_rows(const RowSet& rows) override;
    std::size_t nominal_row_bytes() const override { return row_bytes(); }
    std::size_t local_bytes() const override { return buffer_.size(); }

private:
    /// Re-extent the buffer to cover [lo, hi), copying surviving rows.
    void reextent(int lo, int hi);

    int row_elems_;
    std::size_t elem_bytes_;
    int base_ = 0; ///< first row covered by buffer_
    int extent_ = 0;
    std::vector<std::byte> buffer_;
};

}  // namespace dynmpi
