// Communication cost model and its micro-benchmark calibration (paper §4.3).
//
// The paper's key observation: relative-power distributions are suboptimal
// because communication itself consumes CPU.  To quantify that, Dyn-MPI runs
// micro-benchmarks at initialization — here a ping-pong sweep over two
// message sizes fits the latency/bandwidth pair, and repeated sends measured
// with /proc give the CPU cost per message and per byte.  The fitted model
// feeds the successive-balancing algorithm and the node-removal predictor.
#pragma once

#include <cstddef>

namespace dynmpi {

/// Fitted communication cost parameters.
struct CommCosts {
    double latency_s = 1e-4;
    double bandwidth_Bps = 12.5e6;
    double cpu_per_msg_s = 5e-5;
    double cpu_per_byte_s = 2e-9;

    /// Wall time for one message of `bytes` across one link, excluding CPU.
    double wire_time(std::size_t bytes) const {
        return latency_s + static_cast<double>(bytes) / bandwidth_Bps;
    }
    /// CPU seconds one host spends sending or receiving such a message.
    double cpu_cost(std::size_t bytes) const {
        return cpu_per_msg_s + cpu_per_byte_s * static_cast<double>(bytes);
    }
};

/// Communication shape of a phase, used to predict per-cycle costs.
enum class CommPattern {
    None,            ///< embarrassingly parallel
    NearestNeighbor, ///< one boundary exchange with each neighbor
    AllGather,       ///< every node contributes to / receives a global vector
};

struct PhaseComm {
    CommPattern pattern = CommPattern::NearestNeighbor;
    std::size_t bytes_per_message = 0; ///< e.g. one ghost row
};

/// Predicted CPU seconds per phase cycle a node spends communicating.
double comm_cpu_per_cycle(const CommCosts& c, const PhaseComm& p,
                          int active_nodes);

/// Predicted wall seconds per phase cycle of pure wire time on the critical
/// path (crude; used for the removal predictor's communication term).
double comm_wire_per_cycle(const CommCosts& c, const PhaseComm& p,
                           int active_nodes);

}  // namespace dynmpi

// Calibration needs the message layer; kept in a separate header section so
// pure model users don't pay for it.
namespace dynmpi::msg {
class Rank;
class Group;
}  // namespace dynmpi::msg

namespace dynmpi {

/// Run the calibration micro-benchmarks on ranks 0/1 of `group` and agree on
/// the fitted costs everywhere (collective over `group`).
CommCosts calibrate_comm_costs(msg::Rank& rank, const msg::Group& group);

}  // namespace dynmpi
