#include "dynmpi/redistributor.hpp"

#include <algorithm>

#include "mpisim/rank.hpp"
#include "mpisim/tags.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"

namespace dynmpi {

RowSet owned_rows(const msg::Group& active, const Distribution& dist,
                  int abs_rank) {
    int rel = active.index_of(abs_rank);
    if (rel < 0) return {};
    return dist.iters_of(rel);
}

RowSet needed_rows(const msg::Group& active, const Distribution& dist,
                   int abs_rank, const std::vector<Drsd>& accesses,
                   int global_rows) {
    int rel = active.index_of(abs_rank);
    if (rel < 0) return {};
    RowSet iters = dist.iters_of(rel);
    RowSet need = iters.clip(0, global_rows);
    need.add(rows_needed(accesses, iters, global_rows));
    return need;
}

RowSet transfer_rows(const RedistContext& ctx,
                     const std::vector<Drsd>& accesses, int src_abs,
                     int dst_abs) {
    DYNMPI_REQUIRE(ctx.old_active && ctx.old_dist && ctx.new_active &&
                       ctx.new_dist,
                   "incomplete redistribution context");
    if (src_abs == dst_abs) return {};
    RowSet src_owned = owned_rows(*ctx.old_active, *ctx.old_dist, src_abs);
    if (src_owned.empty()) return {};
    RowSet dst_need = needed_rows(*ctx.new_active, *ctx.new_dist, dst_abs,
                                  accesses, ctx.global_rows);
    RowSet dst_old_owned =
        owned_rows(*ctx.old_active, *ctx.old_dist, dst_abs);
    return src_owned.intersect(dst_need.subtract(dst_old_owned));
}

namespace {

std::uint64_t redist_tag(std::uint64_t seq, std::size_t array_idx, int src,
                         int dst) {
    std::uint64_t h = hash_combine(seq, array_idx);
    h = hash_combine(h, static_cast<std::uint64_t>(src));
    h = hash_combine(h, static_cast<std::uint64_t>(dst));
    return msg::make_tag(msg::TagSpace::Runtime, h);
}

}  // namespace

RedistStats execute_redistribution(msg::Rank& rank, const RedistContext& ctx,
                                   std::vector<ArrayInfo>& arrays,
                                   std::uint64_t redist_seq) {
    RedistStats stats;
    const int me = rank.id();
    const bool observed =
        support::trace().enabled() || support::metrics().enabled();
    const double t_start = observed ? rank.hrtime() : 0.0;

    // Union of participants, in ascending absolute-rank order for
    // deterministic traversal.
    std::vector<int> parties;
    for (int r = 0; r < rank.size(); ++r)
        if (ctx.old_active->contains(r) || ctx.new_active->contains(r))
            parties.push_back(r);

    // Phase 1: pack and send everything (eager, buffered — no deadlock).
    for (std::size_t k = 0; k < arrays.size(); ++k) {
        RedistStats::ArrayTransfer at;
        at.array = arrays[k].array->name();
        for (int dst : parties) {
            RowSet rows = transfer_rows(ctx, arrays[k].accesses, me, dst);
            if (rows.empty()) continue;
            auto payload = arrays[k].array->pack_rows(rows);
            at.rows_moved += static_cast<std::uint64_t>(rows.count());
            at.bytes += payload.size();
            ++at.messages;
            rank.send_wire(dst, redist_tag(redist_seq, k, me, dst),
                           payload.data(), payload.size());
        }
        stats.rows_moved += at.rows_moved;
        stats.bytes += at.bytes;
        stats.messages += at.messages;
        stats.per_array.push_back(std::move(at));
    }
    const double t_packed = observed ? rank.hrtime() : 0.0;

    // Phase 2: receive and unpack the symmetric plan.
    for (std::size_t k = 0; k < arrays.size(); ++k) {
        for (int src : parties) {
            RowSet rows = transfer_rows(ctx, arrays[k].accesses, src, me);
            if (rows.empty()) continue;
            auto payload =
                rank.recv_wire(src, redist_tag(redist_seq, k, src, me));
            arrays[k].array->unpack_rows(payload);
        }
    }
    const double t_unpacked = observed ? rank.hrtime() : 0.0;

    // Phase 2.5: redistribution is a synchronization point — no node may
    // resume computing until every transfer has landed, otherwise the drain
    // leaks into the next cycle's measurements.
    if (parties.size() > 1 &&
        std::find(parties.begin(), parties.end(), me) != parties.end())
        msg::barrier(rank, msg::Group(parties));
    const double t_synced = observed ? rank.hrtime() : 0.0;

    // Phase 3: drop what is no longer needed, allocate anything still
    // missing (e.g. ghost slots the application fills via its own halo
    // exchange), and verify coverage.
    for (auto& info : arrays) {
        RowSet need = needed_rows(*ctx.new_active, *ctx.new_dist, me,
                                  info.accesses, ctx.global_rows);
        info.array->retain_only(need);
        info.array->ensure_rows(need);
        DYNMPI_CHECK(info.array->held() == need,
                     "redistribution left " + info.array->name() +
                         " with wrong row coverage");
    }

    if (observed) {
        const double t_end = rank.hrtime();
        stats.pack_s = t_packed - t_start;
        stats.unpack_s = t_unpacked - t_packed;
        stats.sync_s = t_synced - t_unpacked;
        stats.cleanup_s = t_end - t_synced;
        if (support::metrics().enabled()) {
            auto& mx = support::metrics();
            mx.counter("redist.rows_moved").add(stats.rows_moved);
            mx.counter("redist.bytes").add(stats.bytes);
            mx.counter("redist.messages").add(stats.messages);
            mx.histogram("redist.pack_s").record(stats.pack_s);
            mx.histogram("redist.unpack_s").record(stats.unpack_s);
            mx.histogram("redist.sync_s").record(stats.sync_s);
        }
        if (support::trace().enabled()) {
            using support::targ;
            auto& tr = support::trace();
            tr.span(t_start, t_packed, me, "redist.pack",
                    {targ("seq", redist_seq), targ("rows", stats.rows_moved),
                     targ("bytes", stats.bytes),
                     targ("messages", stats.messages)});
            tr.span(t_packed, t_unpacked, me, "redist.unpack",
                    {targ("seq", redist_seq)});
            tr.span(t_unpacked, t_synced, me, "redist.sync",
                    {targ("seq", redist_seq)});
            tr.span(t_synced, t_end, me, "redist.cleanup",
                    {targ("seq", redist_seq)});
        }
    }
    return stats;
}

}  // namespace dynmpi
