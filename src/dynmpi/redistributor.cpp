#include "dynmpi/redistributor.hpp"

#include <algorithm>

#include "mpisim/rank.hpp"
#include "mpisim/tags.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"

namespace dynmpi {

RowSet owned_rows(const msg::Group& active, const Distribution& dist,
                  int abs_rank) {
    int rel = active.index_of(abs_rank);
    if (rel < 0) return {};
    return dist.iters_of(rel);
}

RowSet needed_rows(const msg::Group& active, const Distribution& dist,
                   int abs_rank, const std::vector<Drsd>& accesses,
                   int global_rows) {
    int rel = active.index_of(abs_rank);
    if (rel < 0) return {};
    RowSet iters = dist.iters_of(rel);
    RowSet need = iters.clip(0, global_rows);
    need.add(rows_needed(accesses, iters, global_rows));
    return need;
}

RowSet transfer_rows(const RedistContext& ctx,
                     const std::vector<Drsd>& accesses, int src_abs,
                     int dst_abs) {
    DYNMPI_REQUIRE(ctx.old_active && ctx.old_dist && ctx.new_active &&
                       ctx.new_dist,
                   "incomplete redistribution context");
    if (src_abs == dst_abs) return {};
    RowSet src_owned = owned_rows(*ctx.old_active, *ctx.old_dist, src_abs);
    if (src_owned.empty()) return {};
    RowSet dst_need = needed_rows(*ctx.new_active, *ctx.new_dist, dst_abs,
                                  accesses, ctx.global_rows);
    RowSet dst_old_owned =
        owned_rows(*ctx.old_active, *ctx.old_dist, dst_abs);
    return src_owned.intersect(dst_need.subtract(dst_old_owned));
}

namespace {

/// need ∪= rows the DRSDs touch over `iters`, clipped to [0, rows) —
/// the ghost half of needed_rows, but accumulated straight into `need`
/// with no temporary RowSet per descriptor for unit-stride references.
void add_ghost_rows(RowSet& need, const std::vector<Drsd>& accesses,
                    const RowSet& iters, int rows) {
    for (const Drsd& d : accesses) {
        if (d.a == 1) {
            for (const RowInterval& iv : iters.intervals())
                need.add(std::clamp(iv.lo + d.b, 0, rows),
                         std::clamp(iv.hi + d.b, 0, rows));
        } else {
            need.add(rows_touched(d, iters, rows));
        }
    }
}

}  // namespace

RedistPlan build_redist_plan(const RedistContext& ctx,
                             const std::vector<ArrayInfo>& arrays, int me) {
    DYNMPI_REQUIRE(ctx.old_active && ctx.old_dist && ctx.new_active &&
                       ctx.new_dist,
                   "incomplete redistribution context");
    RedistPlan plan;
    plan.parties = ctx.old_active->members();
    plan.parties.insert(plan.parties.end(), ctx.new_active->members().begin(),
                        ctx.new_active->members().end());
    std::sort(plan.parties.begin(), plan.parties.end());
    plan.parties.erase(std::unique(plan.parties.begin(), plan.parties.end()),
                       plan.parties.end());
    const std::size_t np = plan.parties.size();

    // Per-party geometry is array-independent: old ownership plus the new
    // distribution's iteration set and its row-space clip, each built once
    // instead of once per array.
    std::vector<RowSet> old_owned(np);
    std::vector<RowSet> new_iters(np);
    std::vector<RowSet> new_base(np);
    std::size_t me_idx = np;  // np == "not a party"
    for (std::size_t i = 0; i < np; ++i) {
        old_owned[i] = owned_rows(*ctx.old_active, *ctx.old_dist,
                                  plan.parties[i]);
        int rel = ctx.new_active->index_of(plan.parties[i]);
        if (rel >= 0) {
            new_iters[i] = ctx.new_dist->iters_of(rel);
            new_base[i] = new_iters[i].clip(0, ctx.global_rows);
        }
        if (plan.parties[i] == me) me_idx = i;
    }
    const RowSet no_rows;
    const RowSet& my_old = me_idx < np ? old_owned[me_idx] : no_rows;

    plan.per_array.resize(arrays.size());
    for (std::size_t k = 0; k < arrays.size(); ++k) {
        RedistPlan::ArrayPlan& ap = plan.per_array[k];
        ap.send_to.resize(np);
        ap.recv_from.resize(np);
        const std::vector<Drsd>& acc = arrays[k].accesses;
        if (me_idx < np) {
            ap.my_needed = new_base[me_idx];
            add_ghost_rows(ap.my_needed, acc, new_iters[me_idx],
                           ctx.global_rows);
        }
        RowSet my_incoming = ap.my_needed;
        my_incoming.subtract_with(my_old);
        const bool receiving = !my_incoming.empty();
        for (std::size_t i = 0; i < np; ++i) {
            if (i == me_idx) continue;
            if (receiving) {
                RowSet recv = old_owned[i];
                recv.intersect_with(my_incoming);
                ap.recv_from[i] = std::move(recv);
            }
            if (my_old.empty()) continue;  // nothing to send from here
            // The peer's needed set is built exactly once per
            // (array, party) and consumed in place for the send side.
            RowSet send = new_base[i];
            add_ghost_rows(send, acc, new_iters[i], ctx.global_rows);
            send.subtract_with(old_owned[i]);
            send.intersect_with(my_old);
            ap.send_to[i] = std::move(send);
        }
    }
    return plan;
}

namespace {

std::uint64_t redist_tag(std::uint64_t seq, std::size_t array_idx, int src,
                         int dst) {
    std::uint64_t h = hash_combine(seq, array_idx);
    h = hash_combine(h, static_cast<std::uint64_t>(src));
    h = hash_combine(h, static_cast<std::uint64_t>(dst));
    return msg::make_tag(msg::TagSpace::Runtime, h);
}

}  // namespace

RedistStats execute_redistribution(msg::Rank& rank, const RedistContext& ctx,
                                   std::vector<ArrayInfo>& arrays,
                                   std::uint64_t redist_seq) {
    RedistStats stats;
    const int me = rank.id();
    const bool observed =
        support::trace().enabled() || support::metrics().enabled();
    const double t_start = observed ? rank.hrtime() : 0.0;

    // Phase 0: derive the complete schedule once.  Every later phase walks
    // plan.parties (ascending absolute-rank order), so message ordering is
    // deterministic and identical on every rank.
    const RedistPlan plan = build_redist_plan(ctx, arrays, me);
    const std::size_t np = plan.parties.size();
    const double t_planned = observed ? rank.hrtime() : 0.0;

    // Phase 1: pack and send everything (eager, buffered — no deadlock).
    for (std::size_t k = 0; k < arrays.size(); ++k) {
        RedistStats::ArrayTransfer at;
        at.array = arrays[k].array->name();
        for (std::size_t i = 0; i < np; ++i) {
            const RowSet& rows = plan.per_array[k].send_to[i];
            if (rows.empty()) continue;
            const int dst = plan.parties[i];
            auto payload = arrays[k].array->pack_rows(rows);
            at.rows_moved += static_cast<std::uint64_t>(rows.count());
            at.bytes += payload.size();
            ++at.messages;
            rank.send_wire(dst, redist_tag(redist_seq, k, me, dst),
                           payload.data(), payload.size());
        }
        stats.rows_moved += at.rows_moved;
        stats.bytes += at.bytes;
        stats.messages += at.messages;
        stats.per_array.push_back(std::move(at));
    }
    const double t_packed = observed ? rank.hrtime() : 0.0;

    // Phase 2: receive and unpack the symmetric half of the plan.
    for (std::size_t k = 0; k < arrays.size(); ++k) {
        for (std::size_t i = 0; i < np; ++i) {
            if (plan.per_array[k].recv_from[i].empty()) continue;
            const int src = plan.parties[i];
            auto payload =
                rank.recv_wire(src, redist_tag(redist_seq, k, src, me));
            arrays[k].array->unpack_rows(payload);
        }
    }
    const double t_unpacked = observed ? rank.hrtime() : 0.0;

    // Phase 2.5: redistribution is a synchronization point — no node may
    // resume computing until every transfer has landed, otherwise the drain
    // leaks into the next cycle's measurements.
    if (np > 1 && std::find(plan.parties.begin(), plan.parties.end(), me) !=
                      plan.parties.end())
        msg::barrier(rank, msg::Group(plan.parties));
    const double t_synced = observed ? rank.hrtime() : 0.0;

    // Phase 3: drop what is no longer needed, allocate anything still
    // missing (e.g. ghost slots the application fills via its own halo
    // exchange), and verify coverage.
    for (std::size_t k = 0; k < arrays.size(); ++k) {
        const RowSet& need = plan.per_array[k].my_needed;
        arrays[k].array->retain_only(need);
        arrays[k].array->ensure_rows(need);
        DYNMPI_CHECK(arrays[k].array->held() == need,
                     "redistribution left " + arrays[k].array->name() +
                         " with wrong row coverage");
    }

    if (observed) {
        const double t_end = rank.hrtime();
        stats.plan_s = t_planned - t_start;
        stats.pack_s = t_packed - t_planned;
        stats.unpack_s = t_unpacked - t_packed;
        stats.sync_s = t_synced - t_unpacked;
        stats.cleanup_s = t_end - t_synced;
        if (support::metrics().enabled()) {
            auto& mx = support::metrics();
            mx.counter("redist.rows_moved").add(stats.rows_moved);
            mx.counter("redist.bytes").add(stats.bytes);
            mx.counter("redist.messages").add(stats.messages);
            mx.histogram("redist.plan_s").record(stats.plan_s);
            mx.histogram("redist.pack_s").record(stats.pack_s);
            mx.histogram("redist.unpack_s").record(stats.unpack_s);
            mx.histogram("redist.sync_s").record(stats.sync_s);
        }
        if (support::trace().enabled()) {
            using support::targ;
            auto& tr = support::trace();
            tr.span(t_start, t_planned, me, "redist.plan",
                    {targ("seq", redist_seq)});
            tr.span(t_planned, t_packed, me, "redist.pack",
                    {targ("seq", redist_seq), targ("rows", stats.rows_moved),
                     targ("bytes", stats.bytes),
                     targ("messages", stats.messages)});
            tr.span(t_packed, t_unpacked, me, "redist.unpack",
                    {targ("seq", redist_seq)});
            tr.span(t_unpacked, t_synced, me, "redist.sync",
                    {targ("seq", redist_seq)});
            tr.span(t_synced, t_end, me, "redist.cleanup",
                    {targ("seq", redist_seq)});
        }
    }
    return stats;
}

}  // namespace dynmpi
