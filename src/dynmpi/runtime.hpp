// The Dyn-MPI runtime (paper §4): the public API an application uses.
//
// Lifecycle:
//   Runtime rt(rank, N);
//   rt.register_dense / register_sparse          — §4.1 allocation
//   rt.init_phase, rt.add_array_access           — phases + DRSDs (§2.2)
//   rt.commit_setup()                            — calibration µ-benchmarks,
//                                                  initial distribution
//   loop over phase cycles:
//     rt.begin_cycle();
//     if (rt.participating())
//        ... compute on rt.start_iter()/end_iter(), exchange halos with
//        rt.send_rel / rt.recv_rel, charge work via rt.run_phase(...) ...
//     rt.end_cycle();                            — monitor, adapt (§4.2–4.4)
//
// end_cycle() drives a three-mode state machine executed identically on all
// ranks (every decision is a pure function of world-collectively exchanged
// data, so the ranks never disagree):
//
//   Monitor   — cheap per-cycle check: has any node's dmpi_ps load changed?
//   Grace     — 5 cycles of per-iteration measurement (§4.2), then a new
//               distribution via successive balancing (§4.3) and a live
//               redistribution (§4.4).
//   PostGrace — 10 cycles observing the new distribution; if the predicted
//               all-unloaded configuration beats the measurement, loaded
//               nodes are dropped — physically (removed from the active set
//               and the relative-rank space) or logically (kept with a
//               minimum assignment), per options.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dynmpi/balancer.hpp"
#include "dynmpi/comm_model.hpp"
#include "dynmpi/dense_array.hpp"
#include "dynmpi/distribution.hpp"
#include "dynmpi/redistributor.hpp"
#include "dynmpi/replica.hpp"
#include "dynmpi/sparse_matrix.hpp"
#include "dynmpi/timing.hpp"
#include "mpisim/collectives.hpp"

namespace dynmpi {

enum class DropMode { Physical, Logical };
enum class BalanceScheme { SuccessiveBalancing, RelativePower };

struct RuntimeOptions {
    bool adapt = true; ///< false: behave like plain MPI (the No-Adapt baseline)
    /// Initial distribution shape (paper §2.1: DMPI_BLOCK / DMPI_CYCLIC).
    /// Adaptation always produces variable blocks; a cyclic program that
    /// adapts is redistributed from its cyclic layout on the first change.
    Distribution::Kind initial_dist = Distribution::Kind::Block;
    int cyclic_block_size = 1;
    int grace_cycles = 5;       ///< paper default (§4.2)
    int post_grace_cycles = 10; ///< paper default (§4.4)
    bool enable_removal = true;
    /// Drop loaded nodes at the post-grace decision point regardless of the
    /// §4.4 predictor (benches measure both configurations this way).
    bool force_drop_loaded = false;
    DropMode drop_mode = DropMode::Physical;
    BalanceScheme scheme = BalanceScheme::SuccessiveBalancing;
    bool calibrate = true; ///< run comm µ-benchmarks at commit_setup
    CommCosts comm_costs;  ///< used directly when calibrate == false
    TimingConfig timing;
    int max_redistributions = -1;   ///< cap on adaptations; -1 = unlimited
                                    ///< (Figure 5's "Redist Once" arm uses 1)
    double load_change_eps = 0.5;   ///< dmpi_ps delta that triggers adaptation
    double min_count_change = 0.1;  ///< skip redistribution unless some block
                                    ///< changes by this fraction of an
                                    ///< average block
    int logical_min_rows = 1; ///< rows kept on logically dropped nodes
    /// Memory-aware balancing (the AppLeS-style paging avoidance the paper
    /// cites): cap each node's block so registered arrays fit its physical
    /// memory.  Nodes over their memory page regardless (paging_slowdown x
    /// compute), so turning this off makes the cost visible.
    bool memory_aware = true;
    double paging_slowdown = 4.0;
    // ---- runtime hardening (fault tolerance; see docs/FAULTS.md) ----
    /// Load reports older than this fall back to the last-known value.  The
    /// effective window is max(this, 2 x the dmpi_ps period), so slow
    /// daemons are not misread as faulty ones.
    double report_staleness_s = 3.0;
    /// Consecutive stale/bad reports before a node is quarantined (logically
    /// dropped from the candidate set).
    int quarantine_bad_reports = 3;
    /// Consecutive clean reports before a quarantined node may be readmitted.
    int readmit_clean_cycles = 8;
    // ---- crash resilience: diskless buddy replication (docs/FAULTS.md) ----
    /// Shadow each node's owned rows of every registered array onto its
    /// replication buddy (the successor in the active ring) so a crashed
    /// node's block is restored with real contents instead of zero-fill.
    bool replicate = false;
    /// Minimum seconds between incremental replica refreshes (dirty-row
    /// deltas piggybacked on the monitoring cycle).  0 refreshes every
    /// cycle.  Positive values must be at least the dmpi_ps monitoring
    /// period — refreshes ride the monitoring protocol and cannot run more
    /// often than it.
    double replica_refresh_s = 0.0;
};

/// What happened in one phase cycle (for benches and tests).
struct CycleRecord {
    int cycle = 0;
    double start_s = 0.0;
    double wall_s = 0.0;     ///< this rank's begin→end wall time
    double max_wall_s = 0.0; ///< active-set max (own wall when not adapting)
    int mode = 0;            ///< 0 monitor / 1 grace / 2 post-grace
    bool redistributed = false;
};

/// A structured record of one adaptation decision (for reports and tests).
struct AdaptationEvent {
    enum class Kind {
        LoadChange,   ///< monitor detected a dmpi_ps delta; grace begins
        Redistributed,///< a new distribution was applied
        Skipped,      ///< grace ended but the change was immaterial
        Dropped,      ///< loaded node(s) physically removed
        LogicalDrop,  ///< loaded node(s) reduced to the minimum assignment
        Readded,      ///< this node rejoined the active set
        NodeCrash,    ///< a node crashed; its rows were recovered
        Quarantine,   ///< a node's reports went bad; excluded from balancing
        Readmit,      ///< a quarantined node's reports recovered
        Rejoin,       ///< a revived (restarted) node was readmitted
    };
    Kind kind = Kind::LoadChange;
    int cycle = 0;
    double time_s = 0.0;
    std::string detail;
};

/// Outcome of one crashed node's row restoration (tests and the chaos
/// invariant "no zero-filled rows while the buddy was alive" read these).
struct RestoreRecord {
    int node = -1;          ///< the crashed owner
    int buddy = -1;         ///< its replication buddy (old-ring successor)
    bool buddy_alive = false;
    bool refreshed = false; ///< a replica refresh had completed beforehand
    int restored = 0;       ///< rows restored with real contents
    int lost = 0;           ///< rows zero-filled and handed to the app
};

struct RuntimeStats {
    int cycles = 0;
    int redistributions = 0;
    int physical_drops = 0;
    int logical_drops = 0;
    int readds = 0;
    int crash_repairs = 0;      ///< crashed nodes removed with row recovery
    int rejoins = 0;            ///< revived nodes readmitted to the active set
    int restored_rows = 0;      ///< crash-adopted rows restored from replicas
    int quarantines = 0;        ///< nodes quarantined for bad reports
    int quarantine_readmits = 0;
    int stale_fallbacks = 0;    ///< stale-report observations (leader only)
    double redist_wall_s = 0.0; ///< total time spent inside redistributions
    std::uint64_t replica_bytes = 0; ///< replica payload shipped by this rank
    std::vector<RestoreRecord> restores;
    std::vector<CycleRecord> history;
    std::vector<AdaptationEvent> events;
    RedistStats transfer;
};

class Runtime {
public:
    /// `global_rows` is the size of the distributed dimension shared by all
    /// registered arrays (and the iteration space of phases).
    Runtime(msg::Rank& rank, int global_rows, RuntimeOptions opts = {});

    Runtime(const Runtime&) = delete;
    Runtime& operator=(const Runtime&) = delete;

    // ---- setup (before commit_setup) ----

    DenseArray& register_dense(const std::string& name, int row_elems,
                               std::size_t elem_bytes);
    SparseMatrix& register_sparse(const std::string& name, int global_cols);

    /// Declare a phase over iterations [lo, hi) with the given communication
    /// shape; returns the phase id.
    int init_phase(int lo, int hi, PhaseComm comm);

    /// Attach a DRSD to a registered array (paper's DMPI_add_array_access).
    void add_array_access(const std::string& array, AccessMode mode,
                          int phase, int a = 1, int b = 0);

    /// Collective: calibrate the comm model, agree on node speeds, set the
    /// initial (even block) distribution and allocate rows.
    void commit_setup();

    // ---- per-cycle ----

    void begin_cycle();
    void end_cycle();

    /// Manual REDISTRIBUTE (the related-work annotation the paper contrasts
    /// itself against — here the burden really is on the programmer):
    /// collectively apply an explicit block assignment over the current
    /// active set.  Must be called between cycles by every world rank.
    void redistribute_manual(const std::vector<int>& counts);

    bool participating() const;
    int rel_rank() const;
    int num_active() const { return active_.size(); }
    /// Absolute rank of an active relative rank (for messaging).
    int abs_of_rel(int rel) const { return active_.member(rel); }

    /// Inclusive iteration bounds of this node for a phase (paper-style);
    /// start > end when the node holds nothing.
    int start_iter(int phase = 0) const;
    int end_iter(int phase = 0) const;
    RowSet my_iters(int phase = 0) const;

    /// Charge this cycle's compute for a phase and (during grace periods)
    /// record per-iteration measurements.  `row_costs` must align with
    /// my_iters(phase).to_vector().
    void run_phase(int phase, const std::vector<double>& row_costs);

    // ---- relative-rank messaging ----

    void send_rel(int rel_dst, int tag, const void* data, std::size_t bytes);
    std::size_t recv_rel(int rel_src, int tag, void* data,
                         std::size_t capacity);

    /// Global reduction with removed-node semantics (§4.4): active nodes
    /// compute the reduction; removed nodes skip the send-in but receive the
    /// result (send-out).  Must be called by every world rank.
    double allreduce_active(double value, msg::OpSum op);
    double allreduce_active(double value, msg::OpMax op);

    // ---- failure recovery ----

    /// Rows this node adopted through crash recovery since the last call
    /// that could NOT be restored and were zero-filled.  Without
    /// replication (options().replicate == false) that is every adopted
    /// row — the runtime is checkpointless and a dead node's in-flight row
    /// contents are lost by design.  With replication on, restoration from
    /// the buddy's copies normally leaves this empty; a non-empty result is
    /// the double-crash diagnostic (owner and buddy both died within one
    /// refresh interval) and the application must re-initialize those rows.
    RowSet take_recovered_rows();

    // ---- introspection ----

    const Distribution& distribution() const { return dist_; }
    const msg::Group& active_group() const { return active_; }
    const RuntimeStats& stats() const { return stats_; }
    const CommCosts& comm_costs() const { return comm_costs_; }
    DenseArray& dense(const std::string& name);
    SparseMatrix& sparse(const std::string& name);
    msg::Rank& rank() { return rank_; }
    int global_rows() const { return global_rows_; }
    const RuntimeOptions& options() const { return opts_; }
    /// Last grace period's assembled global cost vector (for tests).
    const std::vector<double>& last_row_costs() const { return row_costs_; }

private:
    enum class Mode { Monitor, Grace, PostGrace };

    struct Phase {
        int lo = 0, hi = 0;
        PhaseComm comm;
        IterationTimer timer;
        bool measured_this_cycle = false;
    };

    ArrayInfo& info(const std::string& name);
    void record_event(AdaptationEvent::Kind kind, std::string detail);
    /// Emit the redist.apply trace span (per-array breakdown) and redist
    /// metrics for a redistribution that ran over [t0, t1].
    void record_redist_observability(const RedistStats& ts, double t0,
                                     double t1, int active_before);
    const std::vector<Drsd>& accesses_of(const std::string& name) const;

    double my_load() const;       ///< dmpi_ps average competing
    double node_speed() const;

    // ---- failure recovery internals ----

    /// Salt for protocol groups: changes whenever a crash or an explicit
    /// revocation starts a new recovery epoch, so retried rounds can never
    /// match messages from abandoned ones.  0 (hash-neutral) until the
    /// first fault.
    msg::Group protocol_group() const;

    /// Whether node w's dmpi_ps report is older than the staleness window.
    bool report_stale(int w) const;

    /// Leader-only, once per cycle: update per-node bad/clean report
    /// streaks and decide whether quarantine state wants an adaptation.
    void leader_scan_reports();

    /// Drop crashed members from the active set, left-merging their row
    /// blocks into surviving predecessors (zero data movement).  Without
    /// replication, adopted rows are recorded in recovered_rows_; with it,
    /// restore jobs are queued for perform_pending_restores.  Returns true
    /// if anything changed.
    bool repair_active_set();

    // ---- replication + rejoin internals ----

    /// Ship this node's rows of every array to its ring successor and
    /// absorb the predecessor's.  `wholesale` sends full ownership (used
    /// around redistributions, `salt` = the redistribution sequence);
    /// otherwise only dirty rows go out (`salt` = the cycle number).
    /// Re-entrant across recovery retries: per-salt resume counters skip
    /// completed sends/receives so replayed attempts stay matched.
    void replica_refresh(bool wholesale, std::uint64_t salt);

    /// Drain queued restore jobs: buddies ship their copies of dead nodes'
    /// rows to the adopters, which unpack them in place.  Rows the buddy
    /// never saw (or whose buddy also died) are zero-filled and reported
    /// through take_recovered_rows.  Safe to retry after a failure.
    void perform_pending_restores();

    /// Leader only: hand a freshly restarted (revived) node the state it
    /// needs to rejoin as a removed follower of the status channel.
    void leader_send_bootstraps();

    /// Reborn-rank side of commit_setup: skip the setup collectives and
    /// wait for the leader's bootstrap instead.
    void bootstrap_rejoin();

    /// Monitoring dispatch with failure recovery: retries the cycle's
    /// control protocol on an epoch-salted group until it completes without
    /// a peer failure or revocation.
    void run_monitoring(CycleRecord& rec, double wall);

    // ---- monitoring internals (all control-plane traffic) ----

    /// One consistent view of every node's dmpi_ps average: relative rank 0
    /// reads all daemons (single reader → no divergence) and broadcasts
    /// within the given protocol group, together with quarantine flags.
    /// Stale and crashed nodes fall back to their last-known load.
    std::vector<double> read_world_loads(const msg::Group& pg);

    /// Outcome of a grace period, computed identically on all active nodes.
    struct GraceDecision {
        bool material = false;
        msg::Group new_active;
        std::vector<int> counts;
        std::vector<double> loads;
    };
    GraceDecision compute_grace_decision(const std::vector<double>& loads,
                                         const msg::Group& pg);

    /// Per-cycle status messages from relative rank 0 to every removed node
    /// (steady heartbeat, or a re-add instruction carrying full state).
    void send_statuses(const msg::Group& active_before,
                       const GraceDecision* decision);
    void active_cycle_monitor(CycleRecord& rec, double wall);
    void removed_cycle_follow();

    /// Per-candidate row caps from node memories (0 entries = unlimited).
    std::vector<int> row_caps_for(const std::vector<int>& members) const;
    /// Paging factor for this node right now (1.0 when data fits).
    double paging_factor() const;

    void enter_grace();
    void finish_post_grace(const std::vector<double>& world_loads);
    void apply_distribution(const msg::Group& new_active,
                            const Distribution& new_dist);
    double comm_cpu_for(int active_nodes) const;
    double comm_wire_for(int active_nodes) const;

    msg::Rank& rank_;
    int global_rows_;
    RuntimeOptions opts_;
    bool committed_ = false;

    msg::Group world_;
    msg::Group active_;
    Distribution dist_;
    std::vector<ArrayInfo> arrays_;
    std::vector<Phase> phases_;
    std::vector<double> speeds_;   ///< per world rank
    std::vector<double> memories_; ///< per world rank, bytes (0 = unlimited)

    CommCosts comm_costs_;
    Mode mode_ = Mode::Monitor;
    std::vector<double> baseline_loads_; ///< loads at last decision point
    int grace_count_ = 0;
    int post_count_ = 0;
    std::vector<double> post_cycle_max_;
    std::vector<double> row_costs_; ///< latest global per-row cost estimates

    double cycle_start_ = 0.0;
    bool in_cycle_ = false;
    std::uint64_t redist_seq_ = 0;
    std::uint64_t sendout_seq_ = 0;

    // ---- hardening state ----
    RowSet recovered_rows_;        ///< crash-adopted rows awaiting the app
    std::vector<int> bad_streak_;  ///< per world rank (leader maintained)
    std::vector<int> clean_streak_;
    std::vector<char> quarantined_; ///< per world rank, bcast with loads
    std::vector<char> joinable_;    ///< per world rank, bcast with loads
    bool quarantine_due_ = false;   ///< leader: transitions want a grace
    bool statuses_sent_this_cycle_ = false;

    // ---- replication + rejoin state ----
    std::unique_ptr<ReplicaStore> replicas_;
    double last_refresh_s_ = -1.0;  ///< leader: time of last refresh go
    bool refresh_decided_this_cycle_ = false; ///< leader: go/no-go is sticky
    double refresh_go_cycle_ = 0.0;
    int refreshes_done_ = 0;        ///< completed refreshes on this rank
    std::uint64_t replica_xfer_key_ = ~0ULL; ///< resume key (cycle or seq)
    int replica_arrays_sent_ = 0;   ///< per-key retry resume points
    int replica_arrays_recvd_ = 0;
    bool replica_skip_cycle_ = false; ///< membership changed mid-cycle
    /// One queued restoration of a dead node's block from its buddy.
    struct PendingRestore {
        int dead = -1;
        int buddy = -1;   ///< old-ring successor of `dead`
        int adopter = -1; ///< the left-merge owner of `dead`'s rows
        int gen = 0;      ///< dead node's generation (tag salt)
        RowSet rows;
        int arrays_done = 0; ///< resume point across retries
        RowSet missing;      ///< rows absent from any array's restore
    };
    std::vector<PendingRestore> pending_restores_;
    std::vector<int> bootstrapped_gen_; ///< leader: generation bootstrapped
    std::vector<int> bootstrap_cycle_;  ///< leader: cycle it was sent
    std::vector<int> seen_gen_; ///< per world rank: generation last active
    bool reborn_ = false; ///< this runtime started via revive + bootstrap

    /// Record Kind::Rejoin for every member of `now` whose node generation
    /// advanced since it was last active (i.e. it came back via revive).
    void record_rejoins(const msg::Group& now);

    RuntimeStats stats_;
};

}  // namespace dynmpi
