// Iteration/row distributions (paper §2.1).
//
// Dyn-MPI distributes the first dimension of registered arrays.  Supported
// shapes are the paper's two: *variable block* (a contiguous, possibly
// unequal range per active node) and *cyclic* (iterations dealt modulo the
// active-node count).  A Distribution maps the global iteration space
// [lo, hi) onto `parties` relative ranks — the active nodes, in group order.
#pragma once

#include <vector>

#include "dynmpi/row_set.hpp"

namespace dynmpi {

class Distribution {
public:
    enum class Kind { Block, Cyclic };

    Distribution() = default;

    /// Variable block: counts[j] iterations go to relative rank j, in order.
    /// sum(counts) must equal hi - lo.
    static Distribution block(int lo, int hi, std::vector<int> counts);

    /// Equal block split of [lo, hi) over `parties` ranks (remainder spread
    /// over the first ranks).
    static Distribution even_block(int lo, int hi, int parties);

    /// Cyclic with the given block size (1 = classic cyclic).
    static Distribution cyclic(int lo, int hi, int parties,
                               int block_size = 1);

    Kind kind() const { return kind_; }
    int lo() const { return lo_; }
    int hi() const { return hi_; }
    int parties() const { return parties_; }
    int total_iters() const { return hi_ - lo_; }

    /// Relative rank owning iteration i.
    int owner_of(int iter) const;

    /// Iterations assigned to relative rank j.
    RowSet iters_of(int rel) const;

    /// Number of iterations assigned to relative rank j.
    int count_of(int rel) const;

    /// Block only: contiguous range of relative rank j.
    RowInterval block_range(int rel) const;

    /// Per-party iteration counts.
    std::vector<int> counts() const;

    bool operator==(const Distribution&) const = default;

private:
    Kind kind_ = Kind::Block;
    int lo_ = 0;
    int hi_ = 0;
    int parties_ = 0;
    int block_size_ = 1;         ///< cyclic only
    std::vector<int> counts_;    ///< block only
    std::vector<int> starts_;    ///< block only: prefix sums (size parties+1)
};

}  // namespace dynmpi
