#include "dynmpi/dense_array.hpp"

#include <cstring>

namespace dynmpi {

DenseArray::DenseArray(std::string name, int global_rows, int row_elems,
                       std::size_t elem_bytes)
    : DistArray(std::move(name), global_rows),
      row_elems_(row_elems),
      elem_bytes_(elem_bytes) {
    DYNMPI_REQUIRE(row_elems_ > 0, "extended row needs elements");
    DYNMPI_REQUIRE(elem_bytes_ > 0, "element size must be positive");
}

std::byte* DenseArray::row_data(int row) {
    auto it = rows_.find(row);
    DYNMPI_REQUIRE(it != rows_.end(), "access to non-held row of " + name_);
    mark_row_dirty(row);
    return it->second.data();
}

const std::byte* DenseArray::row_data(int row) const {
    auto it = rows_.find(row);
    DYNMPI_REQUIRE(it != rows_.end(), "access to non-held row of " + name_);
    return it->second.data();
}

std::vector<std::byte> DenseArray::pack_rows(const RowSet& rows) const {
    // Exact-size reserve: every row contributes a fixed 12-byte header plus
    // row_bytes() of payload, so the write pass never reallocates.
    std::vector<std::byte> out;
    out.reserve(4 + static_cast<std::size_t>(rows.count()) *
                        (12 + row_bytes()));
    put_u32(out, static_cast<std::uint32_t>(rows.count()));
    for (const RowInterval& iv : rows.intervals()) {
        for (int r = iv.lo; r < iv.hi; ++r) {
            const std::byte* data = row_data(r);
            put_u32(out, static_cast<std::uint32_t>(r));
            put_u64(out, row_bytes());
            out.insert(out.end(), data, data + row_bytes());
        }
    }
    stats_.bytes_packed += out.size();
    return out;
}

void DenseArray::unpack_rows(const std::vector<std::byte>& data) {
    std::size_t pos = 0;
    std::uint32_t nrows = get_u32(data, pos);
    for (std::uint32_t k = 0; k < nrows; ++k) {
        int row = static_cast<int>(get_u32(data, pos));
        DYNMPI_REQUIRE(row >= 0 && row < global_rows_,
                       "unpacked row id out of range for " + name_);
        std::uint64_t nbytes = get_u64(data, pos);
        DYNMPI_REQUIRE(nbytes == row_bytes(), "dense row size mismatch");
        DYNMPI_REQUIRE(pos + nbytes <= data.size(), "truncated dense row");
        auto [it, inserted] = rows_.try_emplace(row);
        if (inserted) {
            it->second.resize(row_bytes());
            ++stats_.rows_allocated;
        }
        std::memcpy(it->second.data(), data.data() + pos, nbytes);
        pos += nbytes;
        held_.add(row, row + 1);
        mark_row_dirty(row);
    }
    stats_.bytes_unpacked += data.size();
}

void DenseArray::drop_rows(const RowSet& rows) {
    for (int r : rows.to_vector()) {
        if (rows_.erase(r) > 0) ++stats_.rows_freed;
    }
    held_ = held_.subtract(rows);
}

void DenseArray::ensure_rows(const RowSet& rows) {
    for (int r : rows.to_vector()) {
        DYNMPI_REQUIRE(r >= 0 && r < global_rows_, "row out of range");
        auto [it, inserted] = rows_.try_emplace(r);
        if (inserted) {
            it->second.assign(row_bytes(), std::byte{0});
            ++stats_.rows_allocated;
            mark_row_dirty(r);
        }
    }
    held_.add(rows);
}

// ---------------------------------------------------------------------------
// ContiguousDenseArray
// ---------------------------------------------------------------------------

ContiguousDenseArray::ContiguousDenseArray(std::string name, int global_rows,
                                           int row_elems,
                                           std::size_t elem_bytes)
    : DistArray(std::move(name), global_rows),
      row_elems_(row_elems),
      elem_bytes_(elem_bytes) {
    DYNMPI_REQUIRE(row_elems_ > 0, "extended row needs elements");
    DYNMPI_REQUIRE(elem_bytes_ > 0, "element size must be positive");
}

std::byte* ContiguousDenseArray::row_data(int row) {
    DYNMPI_REQUIRE(held_.contains(row), "access to non-held row of " + name_);
    mark_row_dirty(row);
    return buffer_.data() + static_cast<std::size_t>(row - base_) * row_bytes();
}

const std::byte* ContiguousDenseArray::row_data(int row) const {
    DYNMPI_REQUIRE(held_.contains(row), "access to non-held row of " + name_);
    return buffer_.data() + static_cast<std::size_t>(row - base_) * row_bytes();
}

void ContiguousDenseArray::reextent(int lo, int hi) {
    if (lo == base_ && hi == base_ + extent_) return;
    std::vector<std::byte> next(static_cast<std::size_t>(hi - lo) *
                                    row_bytes(),
                                std::byte{0});
    // Copy surviving rows into their (shifted) positions — this is the cost
    // the projection scheme avoids.
    int keep_lo = std::max(lo, base_);
    int keep_hi = std::min(hi, base_ + extent_);
    if (keep_lo < keep_hi) {
        std::size_t bytes =
            static_cast<std::size_t>(keep_hi - keep_lo) * row_bytes();
        std::memcpy(next.data() +
                        static_cast<std::size_t>(keep_lo - lo) * row_bytes(),
                    buffer_.data() +
                        static_cast<std::size_t>(keep_lo - base_) * row_bytes(),
                    bytes);
        stats_.bytes_copied += bytes;
    }
    int grown = std::max(0, (hi - lo) - extent_);
    stats_.rows_allocated += static_cast<std::uint64_t>(grown);
    int shrunk = std::max(0, extent_ - (hi - lo));
    stats_.rows_freed += static_cast<std::uint64_t>(shrunk);
    ++stats_.reallocations;
    buffer_ = std::move(next);
    base_ = lo;
    extent_ = hi - lo;
}

std::vector<std::byte> ContiguousDenseArray::pack_rows(
    const RowSet& rows) const {
    // Exact-size reserve plus one held-check per interval: held_ intervals
    // are coalesced, so a fully-held request interval lies inside a single
    // held interval.  Rows then stream straight out of the contiguous
    // buffer with no per-row map or containment probes.
    std::vector<std::byte> out;
    out.reserve(4 + static_cast<std::size_t>(rows.count()) *
                        (12 + row_bytes()));
    put_u32(out, static_cast<std::uint32_t>(rows.count()));
    for (const RowInterval& iv : rows.intervals()) {
        bool covered = false;
        for (const RowInterval& h : held_.intervals())
            if (h.lo <= iv.lo && iv.hi <= h.hi) {
                covered = true;
                break;
            }
        DYNMPI_REQUIRE(covered, "access to non-held row of " + name_);
        const std::byte* data =
            buffer_.data() +
            static_cast<std::size_t>(iv.lo - base_) * row_bytes();
        for (int r = iv.lo; r < iv.hi; ++r, data += row_bytes()) {
            put_u32(out, static_cast<std::uint32_t>(r));
            put_u64(out, row_bytes());
            out.insert(out.end(), data, data + row_bytes());
        }
    }
    stats_.bytes_packed += out.size();
    return out;
}

void ContiguousDenseArray::unpack_rows(const std::vector<std::byte>& data) {
    std::size_t pos = 0;
    std::uint32_t nrows = get_u32(data, pos);
    // First pass: find the new extent.
    RowSet incoming;
    std::size_t scan = pos;
    for (std::uint32_t k = 0; k < nrows; ++k) {
        int row = static_cast<int>(get_u32(data, scan));
        DYNMPI_REQUIRE(row >= 0 && row < global_rows_,
                       "unpacked row id out of range for " + name_);
        std::uint64_t nbytes = get_u64(data, scan);
        scan += nbytes;
        incoming.add(row, row + 1);
    }
    if (nrows > 0) {
        int lo = extent_ == 0 ? incoming.first() : std::min(base_, incoming.first());
        int hi = extent_ == 0 ? incoming.last() + 1
                              : std::max(base_ + extent_, incoming.last() + 1);
        reextent(lo, hi);
    }
    for (std::uint32_t k = 0; k < nrows; ++k) {
        int row = static_cast<int>(get_u32(data, pos));
        std::uint64_t nbytes = get_u64(data, pos);
        DYNMPI_REQUIRE(nbytes == row_bytes(), "dense row size mismatch");
        held_.add(row, row + 1);
        mark_row_dirty(row);
        std::memcpy(buffer_.data() +
                        static_cast<std::size_t>(row - base_) * row_bytes(),
                    data.data() + pos, nbytes);
        pos += nbytes;
    }
    stats_.bytes_unpacked += data.size();
}

void ContiguousDenseArray::drop_rows(const RowSet& rows) {
    held_ = held_.subtract(rows);
    if (held_.empty()) {
        reextent(0, 0);
        return;
    }
    // Shrink the buffer to the held span (copies survivors).
    reextent(held_.first(), held_.last() + 1);
}

void ContiguousDenseArray::ensure_rows(const RowSet& rows) {
    if (rows.empty()) return;
    RowSet target = held_.unite(rows);
    mark_rows_dirty(rows.subtract(held_));
    reextent(target.first(), target.last() + 1);
    held_ = target;
}

}  // namespace dynmpi
