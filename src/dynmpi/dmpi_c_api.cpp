#include "dynmpi/dmpi_c_api.hpp"

#include "support/error.hpp"

namespace dynmpi::capi {

namespace {
thread_local std::unique_ptr<Runtime> g_runtime;
}

void DMPI_init(msg::Rank& rank, int global_rows, RuntimeOptions opts) {
    DYNMPI_REQUIRE(g_runtime == nullptr,
                   "DMPI_init called twice on this rank");
    g_runtime = std::make_unique<Runtime>(rank, global_rows, std::move(opts));
}

void DMPI_finalize() { g_runtime.reset(); }

Runtime& DMPI_runtime() {
    DYNMPI_REQUIRE(g_runtime != nullptr, "DMPI_init has not been called");
    return *g_runtime;
}

DenseArray& DMPI_register_dense_array(const char* name, int row_elems,
                                      std::size_t elem_bytes) {
    return DMPI_runtime().register_dense(name, row_elems, elem_bytes);
}

SparseMatrix& DMPI_register_sparse_array(const char* name, int global_cols) {
    return DMPI_runtime().register_sparse(name, global_cols);
}

int DMPI_init_phase(int lo, int hi, CommPattern pattern,
                    std::size_t bytes_per_message) {
    return DMPI_runtime().init_phase(lo, hi,
                                     PhaseComm{pattern, bytes_per_message});
}

void DMPI_add_array_access(const char* name, AccessMode mode, int phase,
                           int a, int b) {
    DMPI_runtime().add_array_access(name, mode, phase, a, b);
}

void DMPI_commit() { DMPI_runtime().commit_setup(); }

void DMPI_begin_cycle() { DMPI_runtime().begin_cycle(); }
void DMPI_end_cycle() { DMPI_runtime().end_cycle(); }

void DMPI_run_phase(int phase, const std::vector<double>& row_costs) {
    DMPI_runtime().run_phase(phase, row_costs);
}

bool DMPI_participating() { return DMPI_runtime().participating(); }
int DMPI_get_start_iter(int phase) { return DMPI_runtime().start_iter(phase); }
int DMPI_get_end_iter(int phase) { return DMPI_runtime().end_iter(phase); }
int DMPI_get_rel_rank() { return DMPI_runtime().rel_rank(); }
int DMPI_get_num_active() { return DMPI_runtime().num_active(); }

void DMPI_Send(int rel_dst, int tag, const void* data, std::size_t bytes) {
    DMPI_runtime().send_rel(rel_dst, tag, data, bytes);
}

std::size_t DMPI_Recv(int rel_src, int tag, void* data,
                      std::size_t capacity) {
    return DMPI_runtime().recv_rel(rel_src, tag, data, capacity);
}

double DMPI_Allreduce_sum(double value) {
    return DMPI_runtime().allreduce_active(value, msg::OpSum{});
}

double DMPI_Allreduce_max(double value) {
    return DMPI_runtime().allreduce_active(value, msg::OpMax{});
}

double DMPI_Wtime() { return DMPI_runtime().rank().hrtime(); }

}  // namespace dynmpi::capi
