// Unloaded iteration-time estimation during the grace period (paper §4.2).
//
// When a load change is detected, Dyn-MPI lets the application run for a
// grace period (default 5 phase cycles) while it measures per-iteration
// times.  Two mechanisms are available:
//
//  - /proc CPU time: immune to competing processes but quantized to the
//    10 ms jiffy, so it is only used when iterations are long enough;
//  - gethrtime wall time: fine-grained but inflated by competing processes
//    and by context-switch spikes; dividing by the dmpi_ps load and taking
//    the minimum across the grace period's cycles filters the spikes.
//
// The estimator produces per-row *unloaded reference-CPU seconds* — the
// inputs the balancer needs even when the computation itself is unbalanced
// (e.g. particle simulation).
#pragma once

#include <vector>

namespace dynmpi {

struct TimingConfig {
    double jiffy_s = 0.010;          ///< /proc granularity
    double proc_threshold_s = 0.010; ///< use /proc when mean row time >= this
    int grace_cycles = 5;            ///< cycles measured per grace period
};

class IterationTimer {
public:
    enum class Method { Proc, Hrtime };

    explicit IterationTimer(TimingConfig cfg = {});

    /// Begin a grace period measuring `num_rows` rows.
    void start(int num_rows);

    /// Record one phase cycle's measurements for this node's rows.
    /// `wall` and `cpu` come from the compute batch; `avg_competing` is the
    /// dmpi_ps reading for the cycle; `speed` the node's relative speed.
    void record_cycle(const std::vector<double>& wall,
                      const std::vector<double>& cpu, double avg_competing,
                      double speed);

    int cycles_recorded() const { return cycles_; }
    bool complete() const { return cycles_ >= cfg_.grace_cycles; }

    /// Which mechanism the estimates would use right now.
    Method chosen_method() const;

    /// Per-row unloaded cost estimates (reference-CPU seconds).
    std::vector<double> estimates() const;

    const TimingConfig& config() const { return cfg_; }

private:
    /// Apply jiffy quantization to a sequence of per-row CPU times the way a
    /// /proc reader would observe them (cumulative counter, floor to jiffy).
    std::vector<double> quantize_proc(const std::vector<double>& cpu) const;

    TimingConfig cfg_;
    int num_rows_ = 0;
    int cycles_ = 0;
    std::vector<double> hrtime_min_;  ///< min unloaded estimate per row
    std::vector<double> proc_sum_;    ///< sum of quantized /proc readings
    double speed_ = 1.0;
};

}  // namespace dynmpi
