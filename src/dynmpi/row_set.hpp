// Sorted interval sets over row indices.
//
// Ownership, DRSD expansion, and redistribution planning all manipulate sets
// of row indices.  Block distributions produce one interval per node; cyclic
// distributions and DRSD unions produce many — RowSet keeps them normalized
// (sorted, disjoint, coalesced) and provides the set algebra the
// redistribution planner is built on.
#pragma once

#include <cstdint>
#include <vector>

namespace dynmpi {

/// Half-open interval of row indices [lo, hi).
struct RowInterval {
    int lo = 0;
    int hi = 0;
    int size() const { return hi - lo; }
    bool empty() const { return hi <= lo; }
    bool operator==(const RowInterval&) const = default;
};

class RowSet {
public:
    RowSet() = default;
    /// Single-interval set [lo, hi).
    RowSet(int lo, int hi);

    static RowSet single(int row) { return RowSet(row, row + 1); }

    void add(int lo, int hi);
    void add(const RowSet& other);

    RowSet intersect(const RowSet& other) const;
    RowSet subtract(const RowSet& other) const;
    RowSet unite(const RowSet& other) const;

    /// In-place variants for hot paths (redistribution planning): no
    /// temporary RowSet is allocated for the result.
    void intersect_with(const RowSet& other);
    void subtract_with(const RowSet& other);

    bool contains(int row) const;
    bool empty() const { return intervals_.empty(); }

    /// Total number of rows in the set.
    int count() const;

    /// Normalized intervals, sorted and disjoint.
    const std::vector<RowInterval>& intervals() const { return intervals_; }

    /// Materialize every row index in ascending order.
    std::vector<int> to_vector() const;

    /// Smallest / largest row; set must be non-empty.
    int first() const;
    int last() const;

    /// Clip to [lo, hi).
    RowSet clip(int lo, int hi) const { return intersect(RowSet(lo, hi)); }

    bool operator==(const RowSet&) const = default;

private:
    void normalize();
    std::vector<RowInterval> intervals_;
};

}  // namespace dynmpi
