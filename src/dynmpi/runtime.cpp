#include "dynmpi/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "mpisim/rank.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"
#include "support/rng.hpp"

namespace dynmpi {

Runtime::Runtime(msg::Rank& rank, int global_rows, RuntimeOptions opts)
    : rank_(rank),
      global_rows_(global_rows),
      opts_(std::move(opts)),
      world_(msg::Group::world(rank)),
      active_(world_) {
    DYNMPI_REQUIRE(global_rows_ > 0, "need at least one row");
    DYNMPI_REQUIRE(opts_.grace_cycles > 0 && opts_.post_grace_cycles > 0,
                   "grace periods must be positive");
    DYNMPI_REQUIRE(opts_.report_staleness_s > 0.0,
                   "staleness window must be positive");
    DYNMPI_REQUIRE(opts_.quarantine_bad_reports > 0 &&
                       opts_.readmit_clean_cycles > 0,
                   "quarantine thresholds must be positive");
    if (opts_.replicate && opts_.replica_refresh_s > 0.0) {
        double period = sim::to_seconds(rank_.ps_daemon().period());
        DYNMPI_REQUIRE(
            opts_.replica_refresh_s >= period,
            "replica_refresh_s (" + std::to_string(opts_.replica_refresh_s) +
                "s) is shorter than the dmpi_ps monitoring period (" +
                std::to_string(period) +
                "s): replica refreshes piggyback on the monitoring cycle "
                "and cannot run more often than it");
    }
    opts_.timing.grace_cycles = opts_.grace_cycles;
    bad_streak_.assign(static_cast<std::size_t>(world_.size()), 0);
    clean_streak_.assign(static_cast<std::size_t>(world_.size()), 0);
    quarantined_.assign(static_cast<std::size_t>(world_.size()), 0);
    joinable_.assign(static_cast<std::size_t>(world_.size()), 1);
    bootstrapped_gen_.assign(static_cast<std::size_t>(world_.size()), 0);
    bootstrap_cycle_.assign(static_cast<std::size_t>(world_.size()), -1);
    seen_gen_.assign(static_cast<std::size_t>(world_.size()), 0);
    dist_ = opts_.initial_dist == Distribution::Kind::Block
                ? Distribution::even_block(0, global_rows_, world_.size())
                : Distribution::cyclic(0, global_rows_, world_.size(),
                                       opts_.cyclic_block_size);
}

// ---------------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------------

namespace {
std::string counts_string(const std::vector<int>& counts) {
    std::string s;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i) s += '/';
        s += std::to_string(counts[i]);
    }
    return s;
}

using support::targ;

/// Trace event name for an adaptation decision (docs/OBSERVABILITY.md).
const char* adaptation_trace_name(AdaptationEvent::Kind k) {
    switch (k) {
    case AdaptationEvent::Kind::LoadChange: return "runtime.load_change";
    case AdaptationEvent::Kind::Redistributed: return "runtime.redistributed";
    case AdaptationEvent::Kind::Skipped: return "runtime.skipped";
    case AdaptationEvent::Kind::Dropped: return "runtime.dropped";
    case AdaptationEvent::Kind::LogicalDrop: return "runtime.logical_drop";
    case AdaptationEvent::Kind::Readded: return "runtime.readded";
    case AdaptationEvent::Kind::NodeCrash: return "runtime.node_crash";
    case AdaptationEvent::Kind::Quarantine: return "runtime.quarantine";
    case AdaptationEvent::Kind::Readmit: return "runtime.readmit";
    case AdaptationEvent::Kind::Rejoin: return "runtime.rejoin";
    }
    return "runtime.event"; // dynmpi-lint: ok(trace-name) unreachable
}

/// Metric counter name for an adaptation decision (rank 0 records once per
/// run-level decision).
const char* adaptation_counter_name(AdaptationEvent::Kind k) {
    switch (k) {
    case AdaptationEvent::Kind::LoadChange: return "runtime.load_changes";
    case AdaptationEvent::Kind::Redistributed:
        return "runtime.redistributions";
    case AdaptationEvent::Kind::Skipped: return "runtime.skips";
    case AdaptationEvent::Kind::Dropped: return "runtime.drops.physical";
    case AdaptationEvent::Kind::LogicalDrop: return "runtime.drops.logical";
    case AdaptationEvent::Kind::Readded: return "runtime.readds";
    case AdaptationEvent::Kind::NodeCrash: return "runtime.crashes";
    case AdaptationEvent::Kind::Quarantine: return "runtime.quarantines";
    case AdaptationEvent::Kind::Readmit: return "runtime.readmits";
    case AdaptationEvent::Kind::Rejoin: return "runtime.rejoins";
    }
    return "runtime.events"; // dynmpi-lint: ok(trace-name) unreachable
}

const char* mode_name(int mode) {
    switch (mode) {
    case 0: return "monitor";
    case 1: return "grace";
    case 2: return "post_grace";
    }
    return "?";
}
}  // namespace

void Runtime::record_event(AdaptationEvent::Kind kind, std::string detail) {
    AdaptationEvent e;
    e.kind = kind;
    e.cycle = stats_.cycles;
    e.time_s = rank_.hrtime();
    if (support::trace().enabled())
        support::trace().instant(e.time_s, rank_.id(),
                                 adaptation_trace_name(kind),
                                 {targ("cycle", e.cycle),
                                  targ("detail", detail)});
    if (support::metrics().enabled() && rank_.id() == 0)
        support::metrics().counter(adaptation_counter_name(kind)).add(1);
    e.detail = std::move(detail);
    stats_.events.push_back(std::move(e));
}

void Runtime::record_redist_observability(const RedistStats& ts, double t0,
                                          double t1, int active_before) {
    if (support::trace().enabled()) {
        std::vector<support::TraceArg> args{
            targ("cycle", stats_.cycles),
            targ("active_before", active_before),
            targ("active_after", active_.size()),
            targ("rows", ts.rows_moved),
            targ("bytes", ts.bytes),
            targ("messages", ts.messages)};
        for (const auto& a : ts.per_array) {
            args.push_back(targ("rows." + a.array, a.rows_moved));
            args.push_back(targ("bytes." + a.array, a.bytes));
        }
        support::trace().span(t0, t1, rank_.id(), "redist.apply",
                              std::move(args));
    }
    if (support::metrics().enabled()) {
        support::metrics().histogram("redist.wall_s").record(t1 - t0);
        support::metrics().gauge("runtime.active_nodes")
            .set(static_cast<double>(active_.size()));
    }
}

ArrayInfo& Runtime::info(const std::string& name) {
    for (auto& a : arrays_)
        if (a.array->name() == name) return a;
    throw Error("unknown Dyn-MPI array: " + name);
}

DenseArray& Runtime::register_dense(const std::string& name, int row_elems,
                                    std::size_t elem_bytes) {
    DYNMPI_REQUIRE(!committed_, "registration after commit_setup");
    ArrayInfo ai;
    ai.array = std::make_unique<DenseArray>(name, global_rows_, row_elems,
                                            elem_bytes);
    arrays_.push_back(std::move(ai));
    return static_cast<DenseArray&>(*arrays_.back().array);
}

SparseMatrix& Runtime::register_sparse(const std::string& name,
                                       int global_cols) {
    DYNMPI_REQUIRE(!committed_, "registration after commit_setup");
    ArrayInfo ai;
    ai.array =
        std::make_unique<SparseMatrix>(name, global_rows_, global_cols);
    arrays_.push_back(std::move(ai));
    return static_cast<SparseMatrix&>(*arrays_.back().array);
}

int Runtime::init_phase(int lo, int hi, PhaseComm comm) {
    DYNMPI_REQUIRE(!committed_, "init_phase after commit_setup");
    DYNMPI_REQUIRE(lo >= 0 && hi <= global_rows_ && lo < hi,
                   "phase bounds outside the iteration space");
    Phase p;
    p.lo = lo;
    p.hi = hi;
    p.comm = comm;
    p.timer = IterationTimer(opts_.timing);
    phases_.push_back(std::move(p));
    return static_cast<int>(phases_.size()) - 1;
}

void Runtime::add_array_access(const std::string& array, AccessMode mode,
                               int phase, int a, int b) {
    DYNMPI_REQUIRE(!committed_, "add_array_access after commit_setup");
    DYNMPI_REQUIRE(phase >= 0 && phase < static_cast<int>(phases_.size()),
                   "unknown phase");
    info(array).accesses.push_back(Drsd{array, mode, phase, a, b});
}

void Runtime::commit_setup() {
    DYNMPI_REQUIRE(!committed_, "commit_setup called twice");
    DYNMPI_REQUIRE(!phases_.empty(), "define at least one phase");

    replicas_ = std::make_unique<ReplicaStore>(arrays_.size());
    if (rank_.node().generation() > 0) {
        // This process was restarted after its node revived: the rest of
        // the world is mid-run, so the setup collectives below are long
        // gone.  Rejoin through the leader's bootstrap instead.
        bootstrap_rejoin();
        return;
    }

    comm_costs_ = opts_.calibrate ? calibrate_comm_costs(rank_, world_)
                                  : opts_.comm_costs;
    speeds_ = msg::allgather_scalar(rank_, world_, node_speed());
    memories_ = msg::allgather_scalar(
        rank_, world_, static_cast<double>(rank_.node().memory_bytes()));
    // The baseline is the load the *current distribution* was computed for.
    // The initial even-block split assumes dedicated nodes, so any load that
    // already exists at startup must register as a change on cycle one.
    baseline_loads_.assign(static_cast<std::size_t>(world_.size()), 0.0);

    // Allocate this node's initial rows (zero-filled; the app initializes).
    for (auto& ai : arrays_) {
        RowSet need = needed_rows(active_, dist_, rank_.id(), ai.accesses,
                                  global_rows_);
        ai.array->ensure_rows(need);
    }
    row_costs_.assign(static_cast<std::size_t>(global_rows_), 0.0);
    committed_ = true;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

bool Runtime::participating() const {
    return active_.contains(rank_.id());
}

int Runtime::rel_rank() const {
    int rel = active_.index_of(rank_.id());
    DYNMPI_REQUIRE(rel >= 0, "rel_rank on a removed node");
    return rel;
}

RowSet Runtime::my_iters(int phase) const {
    DYNMPI_REQUIRE(phase >= 0 && phase < static_cast<int>(phases_.size()),
                   "unknown phase");
    if (!participating()) return {};
    const Phase& p = phases_[static_cast<std::size_t>(phase)];
    return dist_.iters_of(rel_rank()).clip(p.lo, p.hi);
}

int Runtime::start_iter(int phase) const {
    RowSet it = my_iters(phase);
    return it.empty() ? 0 : it.first();
}

int Runtime::end_iter(int phase) const {
    RowSet it = my_iters(phase);
    return it.empty() ? -1 : it.last();
}

DenseArray& Runtime::dense(const std::string& name) {
    auto* p = dynamic_cast<DenseArray*>(info(name).array.get());
    DYNMPI_REQUIRE(p != nullptr, name + " is not a dense array");
    return *p;
}

SparseMatrix& Runtime::sparse(const std::string& name) {
    auto* p = dynamic_cast<SparseMatrix*>(info(name).array.get());
    DYNMPI_REQUIRE(p != nullptr, name + " is not a sparse matrix");
    return *p;
}

double Runtime::my_load() const {
    return rank_.ps_daemon().avg_competing();
}

double Runtime::node_speed() const {
    return rank_.node().cpu().params().speed;
}

// ---------------------------------------------------------------------------
// Failure recovery
// ---------------------------------------------------------------------------

msg::Group Runtime::protocol_group() const {
    return msg::Group(active_.members(), rank_.machine().revoke_epoch());
}

namespace {
/// Bootstrap for a restarted rank, unique per (node, incarnation).
std::uint64_t bootstrap_tag(int node, int generation) {
    return msg::make_tag(
        msg::TagSpace::Runtime,
        hash_combine(0xB0075ULL,
                     hash_combine(static_cast<std::uint64_t>(node),
                                  static_cast<std::uint64_t>(generation))));
}

/// Replica traffic: refresh deltas (salted by cycle) and wholesale rewrites
/// (salted by redistribution sequence) share the shape; `wholesale`
/// separates the two tag families.
std::uint64_t replica_tag(bool wholesale, std::uint64_t salt,
                          std::size_t array_idx) {
    std::uint64_t base = wholesale ? 0x4EBCA7AULL : 0x4EBF2E5ULL;
    return msg::make_tag(
        msg::TagSpace::Runtime,
        hash_combine(base, hash_combine(salt, array_idx)));
}

/// Restore of a dead node's rows, unique per (node, incarnation, array):
/// deliberately NOT epoch-salted, so an adopter's retried receive still
/// matches the blob the buddy already shipped in an abandoned round.
std::uint64_t restore_tag(int dead, int generation, std::size_t array_idx) {
    return msg::make_tag(
        msg::TagSpace::Runtime,
        hash_combine(0x2E5702EULL,
                     hash_combine(static_cast<std::uint64_t>(dead),
                                  hash_combine(
                                      static_cast<std::uint64_t>(generation),
                                      array_idx))));
}

void put_f64(std::vector<std::byte>& out, double d) {
    std::uint64_t b;
    std::memcpy(&b, &d, sizeof b);
    DistArray::put_u64(out, b);
}

double get_f64(const std::vector<std::byte>& in, std::size_t& pos) {
    std::uint64_t b = DistArray::get_u64(in, pos);
    double d;
    std::memcpy(&d, &b, sizeof d);
    return d;
}
}  // namespace

void Runtime::leader_send_bootstraps() {
    auto& cluster = rank_.machine().cluster();
    for (int w : world_.members()) {
        auto wi = static_cast<std::size_t>(w);
        if (active_.contains(w) || cluster.node_crashed(w)) continue;
        int gen = cluster.node_generation(w);
        if (gen == 0 || bootstrapped_gen_[wi] == gen) continue;
        // A revived node is waiting in bootstrap_rejoin.  Hand it the state
        // a removed follower needs, telling it to pick up the status channel
        // from the NEXT cycle (this cycle's send-outs are already in
        // flight).  A leader elected after a crash re-sends — its tracking
        // is stale — and the duplicate is simply never matched.
        bootstrapped_gen_[wi] = gen;
        bootstrap_cycle_[wi] = stats_.cycles;
        std::vector<std::byte> blob;
        DistArray::put_u64(blob,
                           static_cast<std::uint64_t>(stats_.cycles + 1));
        DistArray::put_u64(blob, redist_seq_);
        DistArray::put_u64(blob, sendout_seq_);
        DistArray::put_u64(blob, static_cast<std::uint64_t>(active_.size()));
        for (int m : active_.members())
            DistArray::put_u64(blob, static_cast<std::uint64_t>(m));
        for (int m : world_.members()) {
            auto mi = static_cast<std::size_t>(m);
            put_f64(blob, baseline_loads_[mi]);
            put_f64(blob, speeds_[mi]);
            put_f64(blob, memories_[mi]);
            DistArray::put_u64(blob, quarantined_[mi] != 0 ? 1 : 0);
        }
        put_f64(blob, comm_costs_.latency_s);
        put_f64(blob, comm_costs_.bandwidth_Bps);
        put_f64(blob, comm_costs_.cpu_per_msg_s);
        put_f64(blob, comm_costs_.cpu_per_byte_s);
        auto seqs = rank_.export_group_seqs();
        DistArray::put_u64(blob, seqs.size());
        for (const auto& [hash, seq] : seqs) {
            DistArray::put_u64(blob, hash);
            DistArray::put_u64(blob, seq);
        }
        rank_.send_wire(w, bootstrap_tag(w, gen), blob.data(), blob.size());
    }
}

void Runtime::bootstrap_rejoin() {
    reborn_ = true;
    msg::Rank::ControlScope control(rank_);
    std::uint64_t tag = bootstrap_tag(rank_.id(), rank_.node().generation());
    std::vector<std::byte> blob;
    for (;;) {
        try {
            rank_.sync_revocations();
            blob = rank_.recv_wire(msg::kAnySource, tag);
            break;
        } catch (const msg::EpochRevoked&) {
        } catch (const msg::PeerFailure&) {
        }
    }
    std::size_t pos = 0;
    stats_.cycles = static_cast<int>(DistArray::get_u64(blob, pos));
    redist_seq_ = DistArray::get_u64(blob, pos);
    sendout_seq_ = DistArray::get_u64(blob, pos);
    int nactive = static_cast<int>(DistArray::get_u64(blob, pos));
    std::vector<int> members;
    for (int i = 0; i < nactive; ++i)
        members.push_back(static_cast<int>(DistArray::get_u64(blob, pos)));
    active_ = msg::Group(std::move(members));
    DYNMPI_CHECK(!active_.contains(rank_.id()),
                 "bootstrap lists the restarted rank as active");
    const auto W = static_cast<std::size_t>(world_.size());
    baseline_loads_.assign(W, 0.0);
    speeds_.assign(W, 1.0);
    memories_.assign(W, 0.0);
    for (std::size_t m = 0; m < W; ++m) {
        baseline_loads_[m] = get_f64(blob, pos);
        speeds_[m] = get_f64(blob, pos);
        memories_[m] = get_f64(blob, pos);
        quarantined_[m] = DistArray::get_u64(blob, pos) != 0 ? 1 : 0;
    }
    comm_costs_.latency_s = get_f64(blob, pos);
    comm_costs_.bandwidth_Bps = get_f64(blob, pos);
    comm_costs_.cpu_per_msg_s = get_f64(blob, pos);
    comm_costs_.cpu_per_byte_s = get_f64(blob, pos);
    // The leader's collective counters, so this rank's next collective on
    // any shared group lines up with the survivors'.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> seqs(
        DistArray::get_u64(blob, pos));
    for (auto& [hash, seq] : seqs) {
        hash = DistArray::get_u64(blob, pos);
        seq = DistArray::get_u64(blob, pos);
    }
    rank_.import_group_seqs(seqs);
    row_costs_.assign(static_cast<std::size_t>(global_rows_), 0.0);
    committed_ = true;
}

void Runtime::record_rejoins(const msg::Group& now) {
    auto& cluster = rank_.machine().cluster();
    for (int w : now.members()) {
        auto wi = static_cast<std::size_t>(w);
        int gen = cluster.node_generation(w);
        if (gen > seen_gen_[wi]) {
            seen_gen_[wi] = gen;
            if (gen > 0) {
                ++stats_.rejoins;
                record_event(AdaptationEvent::Kind::Rejoin,
                             "node " + std::to_string(w) +
                                 " readmitted after restart");
            }
        }
    }
}

// dynmpi-lint: repair-critical
RowSet Runtime::take_recovered_rows() {
    RowSet r = std::move(recovered_rows_);
    recovered_rows_ = RowSet{};
    return r;
}

bool Runtime::report_stale(int w) const {
    const sim::PsDaemon& d = rank_.machine().cluster().daemon(w);
    if (d.last_sample_time() < 0) return false; // no completed window yet
    double age = rank_.hrtime() - sim::to_seconds(d.last_sample_time());
    double window = std::max(opts_.report_staleness_s,
                             2.0 * sim::to_seconds(d.period()));
    return age > window;
}

void Runtime::leader_scan_reports() {
    quarantine_due_ = false;
    auto& cluster = rank_.machine().cluster();
    for (int w : world_.members()) {
        auto wi = static_cast<std::size_t>(w);
        if (cluster.node_crashed(w)) continue;
        if (report_stale(w)) {
            clean_streak_[wi] = 0;
            ++bad_streak_[wi];
            ++stats_.stale_fallbacks;
            if (support::trace().enabled()) {
                double age = rank_.hrtime() -
                             sim::to_seconds(
                                 cluster.daemon(w).last_sample_time());
                support::trace().instant(rank_.hrtime(), rank_.id(),
                                         "runtime.stale_report",
                                         {targ("cycle", stats_.cycles),
                                          targ("node", w),
                                          targ("age_s", age)});
            }
        } else {
            bad_streak_[wi] = 0;
            ++clean_streak_[wi];
        }
        bool q = quarantined_[wi] != 0;
        if (!q && bad_streak_[wi] >= opts_.quarantine_bad_reports)
            quarantine_due_ = true;
        if (q && clean_streak_[wi] >= opts_.readmit_clean_cycles)
            quarantine_due_ = true;
    }
}

// Membership repair must stay local and total: every surviving rank derives
// the identical left-merge from cluster state alone, with no messaging that
// could throw mid-repair.  The linter (EXC002) enforces this.
// dynmpi-lint: repair-critical
bool Runtime::repair_active_set() {
    auto& cluster = rank_.machine().cluster();
    std::vector<int> dead, survivors;
    for (int m : active_.members())
        (cluster.node_crashed(m) ? dead : survivors).push_back(m);
    if (dead.empty()) return false;
    DYNMPI_REQUIRE(!survivors.empty(), "every active node crashed");

    if (!participating()) {
        // Removed nodes only track membership; they own no rows.
        active_ = msg::Group(std::move(survivors));
        return true;
    }

    // Checkpointless row recovery: each dead member's block is left-merged
    // into its nearest surviving predecessor (the first survivor absorbs any
    // dead prefix).  No data moves between survivors; adopted rows start
    // zero-filled.  With replication on, a restore job per dead node is
    // queued so the adopter refills them from the buddy's copies; without
    // it they go to the application via take_recovered_rows().
    std::vector<int> old_counts = dist_.counts();
    std::vector<int> new_counts;
    int carry = 0;
    for (int j = 0; j < active_.size(); ++j) {
        int c = old_counts[static_cast<std::size_t>(j)];
        if (cluster.node_crashed(active_.member(j))) {
            if (!new_counts.empty())
                new_counts.back() += c;
            else
                carry += c;
        } else {
            new_counts.push_back(c + carry);
            carry = 0;
        }
    }

    if (opts_.replicate) {
        // Queue one restore per dead member before the old ring is torn
        // down: buddy = its old-ring successor (holder of its replicas),
        // adopter = the left-merge owner of its block.  Every surviving
        // rank derives the identical list.
        const int n = active_.size();
        for (int j = 0; j < n; ++j) {
            int d = active_.member(j);
            if (!cluster.node_crashed(d)) continue;
            RowSet rows = dist_.iters_of(j);
            if (rows.empty()) continue;
            PendingRestore pr;
            pr.dead = d;
            pr.buddy = active_.member((j + 1) % n);
            pr.adopter = -1;
            for (int k = j - 1; k >= 0 && pr.adopter < 0; --k)
                if (!cluster.node_crashed(active_.member(k)))
                    pr.adopter = active_.member(k);
            if (pr.adopter < 0) pr.adopter = survivors.front();
            pr.gen = cluster.node_generation(d);
            pr.rows = std::move(rows);
            pending_restores_.push_back(std::move(pr));
        }
    }

    msg::Group new_active(survivors);
    Distribution new_dist = Distribution::block(0, global_rows_, new_counts);
    RowSet adopted =
        owned_rows(new_active, new_dist, rank_.id())
            .subtract(owned_rows(active_, dist_, rank_.id()));

    active_ = new_active;
    dist_ = new_dist;
    for (auto& ai : arrays_) {
        RowSet need = needed_rows(active_, dist_, rank_.id(), ai.accesses,
                                  global_rows_);
        ai.array->ensure_rows(need);
    }
    if (opts_.replicate) {
        // The ring changed under us: our successor may be new, so the next
        // refresh must re-ship everything we own, and any half-finished
        // refresh this cycle is abandoned (tags would no longer line up).
        RowSet owned = dist_.iters_of(active_.index_of(rank_.id()));
        for (auto& ai : arrays_) ai.array->mark_rows_dirty(owned);
        replica_skip_cycle_ = true;
    } else {
        recovered_rows_ = recovered_rows_.unite(adopted);
    }
    stats_.crash_repairs += static_cast<int>(dead.size());
    for (int d : dead)
        record_event(AdaptationEvent::Kind::NodeCrash,
                     "node " + std::to_string(d) + " removed");
    if (support::trace().enabled())
        for (int d : dead)
            support::trace().instant(rank_.hrtime(), rank_.id(),
                                     "runtime.crash_repair",
                                     {targ("cycle", stats_.cycles),
                                      targ("node", d),
                                      targ("rows_adopted", adopted.count())});
    return true;
}

void Runtime::replica_refresh(bool wholesale, std::uint64_t salt) {
    const int n = active_.size();
    if (n < 2 || arrays_.empty()) return; // no buddy to shadow onto
    if (!active_.contains(rank_.id())) {
        // Just removed for load: the new ring refreshes among its own
        // members.  Stale replicas die here; readd rebuilds them wholesale.
        replicas_->clear();
        return;
    }
    const int rel = rel_rank();
    const int succ = active_.member((rel + 1) % n);
    const int pred = active_.member((rel - 1 + n) % n);
    // Replica payload is application data: full CPU + wire cost even when
    // the refresh rides the (control-plane) monitoring cycle.
    msg::Rank::ControlScope data_plane(rank_, /*enable=*/false);
    // Resume counters make retried recovery attempts replay-safe: completed
    // sends are never duplicated and completed receives never re-posted.
    const std::uint64_t key =
        hash_combine(wholesale ? 0x4EBCA7AULL : 0x4EBF2E5ULL, salt);
    if (replica_xfer_key_ != key) {
        replica_xfer_key_ = key;
        replica_arrays_sent_ = 0;
        replica_arrays_recvd_ = 0;
    }
    const RowSet owned = dist_.iters_of(rel);
    double t0 = rank_.hrtime();
    std::uint64_t bytes_out = 0;
    int rows_out = 0;
    while (replica_arrays_sent_ < static_cast<int>(arrays_.size())) {
        auto i = static_cast<std::size_t>(replica_arrays_sent_);
        DistArray& a = *arrays_[i].array;
        RowSet rows = wholesale ? owned : a.dirty_rows(owned);
        std::vector<std::byte> blob = a.pack_rows(rows);
        rank_.send_wire(succ, replica_tag(wholesale, salt, i), blob.data(),
                        blob.size());
        a.clear_dirty(rows);
        bytes_out += blob.size();
        rows_out += rows.count();
        ++replica_arrays_sent_;
    }
    stats_.replica_bytes += bytes_out;
    if (support::metrics().enabled() && bytes_out > 0)
        support::metrics().counter("runtime.replica_bytes")
            .add(static_cast<std::int64_t>(bytes_out));
    while (replica_arrays_recvd_ < static_cast<int>(arrays_.size())) {
        auto i = static_cast<std::size_t>(replica_arrays_recvd_);
        auto blob = rank_.recv_wire(pred, replica_tag(wholesale, salt, i));
        RowSet stored = replicas_->store_blob(i, blob);
        if (wholesale) replicas_->retain_only(i, stored);
        ++replica_arrays_recvd_;
    }
    ++refreshes_done_;
    if (support::trace().enabled())
        support::trace().span(t0, rank_.hrtime(), rank_.id(),
                              "runtime.replica_refresh",
                              {targ("cycle", stats_.cycles),
                               targ("wholesale", wholesale),
                               targ("rows", rows_out),
                               targ("bytes",
                                    static_cast<std::int64_t>(bytes_out))});
}

void Runtime::perform_pending_restores() {
    if (pending_restores_.empty()) return;
    auto& cluster = rank_.machine().cluster();
    const int me = rank_.id();
    msg::Rank::ControlScope data_plane(rank_, /*enable=*/false);
    auto it = pending_restores_.begin();
    while (it != pending_restores_.end()) {
        PendingRestore& pr = *it;
        const bool is_buddy = pr.buddy == me;
        const bool is_adopter = pr.adopter == me;
        if (!is_buddy && !is_adopter) {
            it = pending_restores_.erase(it);
            continue;
        }
        const bool buddy_alive = !cluster.node_crashed(pr.buddy);
        if (is_buddy && !is_adopter && buddy_alive) {
            // Ship my copies of the dead node's rows to the adopter, one
            // blob per array.  Tags are unique per (node, incarnation), so
            // the adopter's retried receives match these exact packets.
            while (pr.arrays_done < static_cast<int>(arrays_.size())) {
                auto i = static_cast<std::size_t>(pr.arrays_done);
                auto blob = replicas_->extract(i, pr.rows);
                rank_.send_wire(pr.adopter, restore_tag(pr.dead, pr.gen, i),
                                blob.data(), blob.size());
                ++pr.arrays_done;
            }
        } else if (is_adopter) {
            RowSet restored_all = pr.rows;
            while (pr.arrays_done < static_cast<int>(arrays_.size())) {
                auto i = static_cast<std::size_t>(pr.arrays_done);
                if (!buddy_alive && !is_buddy) {
                    // Double crash inside one refresh interval: the copies
                    // died with the buddy.  Every remaining row is lost.
                    pr.missing = pr.rows;
                    break;
                }
                std::vector<std::byte> blob =
                    is_buddy ? replicas_->extract(i, pr.rows)
                             : rank_.recv_wire(pr.buddy,
                                               restore_tag(pr.dead, pr.gen,
                                                           i));
                RowSet got = ReplicaStore::rows_in_blob(blob);
                arrays_[i].array->unpack_rows(blob);
                pr.missing = pr.missing.unite(pr.rows.subtract(got));
                ++pr.arrays_done;
            }
            restored_all = pr.rows.subtract(pr.missing);
            // Restored rows are fresh content the NEW owner's buddy has
            // never seen — they must ride the next refresh.
            for (auto& ai : arrays_) ai.array->mark_rows_dirty(pr.rows);
            recovered_rows_ = recovered_rows_.unite(pr.missing);
            stats_.restored_rows += restored_all.count();
            RestoreRecord rr;
            rr.node = pr.dead;
            rr.buddy = pr.buddy;
            rr.buddy_alive = buddy_alive || is_buddy;
            rr.refreshed = refreshes_done_ > 0;
            rr.restored = restored_all.count();
            rr.lost = pr.missing.count();
            stats_.restores.push_back(rr);
            if (support::metrics().enabled() && rr.restored > 0)
                support::metrics().counter("runtime.restored_rows")
                    .add(rr.restored);
            if (support::trace().enabled())
                support::trace().instant(
                    rank_.hrtime(), rank_.id(), "runtime.replica_restore",
                    {targ("cycle", stats_.cycles), targ("node", pr.dead),
                     targ("buddy", pr.buddy),
                     targ("restored", rr.restored), targ("lost", rr.lost)});
        }
        it = pending_restores_.erase(it);
    }
}

void Runtime::run_monitoring(CycleRecord& rec, double wall) {
    // Snapshot the mode-progress state so a retried attempt replays the
    // cycle's protocol from the same starting point.
    const auto snap_mode = mode_;
    const auto snap_grace = grace_count_;
    const auto snap_post = post_count_;
    const auto snap_post_max = post_cycle_max_;
    const auto snap_redist = redist_seq_;
    bool repaired = false;
    for (int attempt = 0;; ++attempt) {
        DYNMPI_CHECK(attempt <= 2 * world_.size() + 4,
                     "failure recovery did not converge");
        rank_.sync_revocations();
        repaired = repair_active_set() || repaired;
        if (repaired && mode_ == Mode::Grace && participating()) {
            // A crash repair changed row ownership mid-grace: measurements
            // taken against the old distribution no longer align with
            // my_iters, so restart the grace window for the new ownership.
            // (Re-applied after every retry's snapshot restore so all
            // attempts — and all surviving ranks — see the same state.)
            grace_count_ = 0;
            for (std::size_t ph = 0; ph < phases_.size(); ++ph)
                phases_[ph].timer.start(
                    my_iters(static_cast<int>(ph)).count());
        }
        try {
            if (participating()) {
                perform_pending_restores();
                active_cycle_monitor(rec, wall);
            } else {
                removed_cycle_follow();
            }
            return;
        } catch (const msg::PeerFailure&) {
            // A peer died mid-round: revoke so every rank stranded in the
            // abandoned round wakes up, then retry on the new epoch.
            rank_.revoke_control();
        } catch (const msg::EpochRevoked&) {
            // Someone else started a new epoch; just retry on it.
        }
        mode_ = snap_mode;
        grace_count_ = snap_grace;
        post_count_ = snap_post;
        post_cycle_max_ = snap_post_max;
        redist_seq_ = snap_redist;
    }
}

std::vector<int> Runtime::row_caps_for(const std::vector<int>& members) const {
    std::vector<int> caps(members.size(), 0);
    if (!opts_.memory_aware) return caps;
    std::size_t per_row = 0;
    for (const auto& ai : arrays_) per_row += ai.array->nominal_row_bytes();
    if (per_row == 0) return caps;
    for (std::size_t j = 0; j < members.size(); ++j) {
        double mem = memories_[static_cast<std::size_t>(members[j])];
        if (mem > 0)
            caps[j] = static_cast<int>(mem / static_cast<double>(per_row));
    }
    return caps;
}

double Runtime::paging_factor() const {
    double mem = memories_.empty()
                     ? 0.0
                     : memories_[static_cast<std::size_t>(rank_.id())];
    if (mem <= 0) return 1.0;
    std::size_t used = 0;
    for (const auto& ai : arrays_) used += ai.array->local_bytes();
    return static_cast<double>(used) > mem ? opts_.paging_slowdown : 1.0;
}

double Runtime::comm_cpu_for(int active_nodes) const {
    double total = 0.0;
    for (const auto& p : phases_)
        total += comm_cpu_per_cycle(comm_costs_, p.comm, active_nodes);
    return total;
}

double Runtime::comm_wire_for(int active_nodes) const {
    double total = 0.0;
    for (const auto& p : phases_)
        total += comm_wire_per_cycle(comm_costs_, p.comm, active_nodes);
    return total;
}

// ---------------------------------------------------------------------------
// Messaging helpers
// ---------------------------------------------------------------------------

void Runtime::send_rel(int rel_dst, int tag, const void* data,
                       std::size_t bytes) {
    rank_.send(active_.member(rel_dst), tag, data, bytes);
}

std::size_t Runtime::recv_rel(int rel_src, int tag, void* data,
                              std::size_t capacity) {
    return rank_.recv(active_.member(rel_src), tag, data, capacity);
}

namespace {
template <typename Op>
double allreduce_sendout(msg::Rank& rank, const msg::Group& world,
                         const msg::Group& active, double value, Op op,
                         std::uint64_t seq) {
    std::uint64_t tag = msg::make_tag(msg::TagSpace::Runtime,
                                      hash_combine(0x5e4d007ULL, seq));
    if (active.contains(rank.id())) {
        double r = msg::allreduce_scalar(rank, active, value, op);
        if (active.index_of(rank.id()) == 0) {
            for (int w : world.members())
                if (!active.contains(w))
                    rank.send_wire(w, tag, &r, sizeof r);
        }
        return r;
    }
    auto bytes = rank.recv_wire(active.member(0), tag);
    DYNMPI_CHECK(bytes.size() == sizeof(double), "bad send-out payload");
    double r;
    std::memcpy(&r, bytes.data(), sizeof r);
    return r;
}
}  // namespace

double Runtime::allreduce_active(double value, msg::OpSum op) {
    rank_.sync_revocations();
    return allreduce_sendout(rank_, world_, active_, value, op,
                             sendout_seq_++);
}

double Runtime::allreduce_active(double value, msg::OpMax op) {
    rank_.sync_revocations();
    return allreduce_sendout(rank_, world_, active_, value, op,
                             sendout_seq_++);
}

std::vector<double> Runtime::read_world_loads(const msg::Group& pg) {
    // Relative rank 0 is the single reader of the daemon mesh (a consistent
    // snapshot); the view — loads plus quarantine flags — is broadcast
    // within the protocol group.
    std::vector<double> blob;
    if (rel_rank() == 0) {
        auto& cluster = rank_.machine().cluster();
        blob.reserve(3 * static_cast<std::size_t>(world_.size()));
        for (int w : world_.members()) {
            auto wi = static_cast<std::size_t>(w);
            // Crashed or stale-reporting nodes fall back to the last load
            // the current distribution was computed for.
            if (cluster.node_crashed(w) || report_stale(w))
                blob.push_back(baseline_loads_[wi]);
            else
                blob.push_back(cluster.daemon(w).avg_competing());
        }
        // Apply quarantine transitions at the decision point, so every rank
        // that acts on this snapshot also learns the resulting flags.
        for (int w : world_.members()) {
            auto wi = static_cast<std::size_t>(w);
            if (cluster.node_crashed(w)) continue;
            if (quarantined_[wi] == 0 &&
                bad_streak_[wi] >= opts_.quarantine_bad_reports) {
                quarantined_[wi] = 1;
                ++stats_.quarantines;
                record_event(AdaptationEvent::Kind::Quarantine,
                             "node " + std::to_string(w) + " after " +
                                 std::to_string(bad_streak_[wi]) +
                                 " bad reports");
            } else if (quarantined_[wi] != 0 &&
                       clean_streak_[wi] >= opts_.readmit_clean_cycles) {
                quarantined_[wi] = 0;
                ++stats_.quarantine_readmits;
                record_event(AdaptationEvent::Kind::Readmit,
                             "node " + std::to_string(w) + " after " +
                                 std::to_string(clean_streak_[wi]) +
                                 " clean reports");
            }
        }
        for (int w : world_.members())
            blob.push_back(
                quarantined_[static_cast<std::size_t>(w)] != 0 ? 1.0 : 0.0);
        // Joinability: who may be (re)admitted to the active set.  Crashed
        // nodes are out; restarted nodes (generation > 0) only become
        // joinable once this leader has bootstrapped their new incarnation
        // and at least one cycle has passed since (the reborn skips its
        // bootstrap cycle).  A node already in the active set is joinable by
        // definition — a freshly promoted leader has no bootstrap record for
        // nodes readmitted under its predecessor.
        for (int w : world_.members()) {
            auto wi = static_cast<std::size_t>(w);
            bool ok = !cluster.node_crashed(w) &&
                      (active_.contains(w) ||
                       cluster.node_generation(w) == 0 ||
                       (bootstrapped_gen_[wi] == cluster.node_generation(w) &&
                        stats_.cycles > bootstrap_cycle_[wi]));
            blob.push_back(ok ? 1.0 : 0.0);
        }
    }
    msg::bcast(rank_, pg, 0, blob);
    DYNMPI_CHECK(static_cast<int>(blob.size()) == 3 * world_.size(),
                 "bad load snapshot");
    for (int w = 0; w < world_.size(); ++w) {
        quarantined_[static_cast<std::size_t>(w)] =
            blob[static_cast<std::size_t>(world_.size() + w)] != 0.0 ? 1 : 0;
        joinable_[static_cast<std::size_t>(w)] =
            blob[static_cast<std::size_t>(2 * world_.size() + w)] != 0.0 ? 1
                                                                         : 0;
    }
    return std::vector<double>(blob.begin(), blob.begin() + world_.size());
}

// ---------------------------------------------------------------------------
// Per-cycle driver
// ---------------------------------------------------------------------------

void Runtime::redistribute_manual(const std::vector<int>& counts) {
    DYNMPI_REQUIRE(committed_, "redistribute_manual before commit_setup");
    DYNMPI_REQUIRE(!in_cycle_, "redistribute_manual inside a cycle");
    if (participating()) {
        DYNMPI_REQUIRE(static_cast<int>(counts.size()) == active_.size(),
                       "counts must cover the active set");
        apply_distribution(active_,
                           Distribution::block(0, global_rows_, counts));
        record_event(AdaptationEvent::Kind::Redistributed,
                     "manual: blocks " + counts_string(counts));
    }
}

void Runtime::begin_cycle() {
    DYNMPI_REQUIRE(committed_, "begin_cycle before commit_setup");
    DYNMPI_REQUIRE(!in_cycle_, "begin_cycle without end_cycle");
    in_cycle_ = true;
    cycle_start_ = rank_.hrtime();
    for (auto& p : phases_) p.measured_this_cycle = false;
}

void Runtime::run_phase(int phase, const std::vector<double>& row_costs) {
    DYNMPI_REQUIRE(in_cycle_, "run_phase outside a cycle");
    DYNMPI_REQUIRE(participating(), "run_phase on a removed node");
    DYNMPI_REQUIRE(phase >= 0 && phase < static_cast<int>(phases_.size()),
                   "unknown phase");
    Phase& p = phases_[static_cast<std::size_t>(phase)];
    RowSet iters = my_iters(phase);
    DYNMPI_REQUIRE(static_cast<int>(row_costs.size()) == iters.count(),
                   "row_costs must align with my_iters");

    double paging = paging_factor();
    msg::RowTimings t;
    if (paging > 1.0) {
        // Thrashing: every row costs paging_slowdown x its CPU time.  The
        // grace-period measurements see the inflation, so even without
        // memory-aware caps the balancer is pushed away from this node.
        std::vector<double> inflated(row_costs);
        for (double& c : inflated) c *= paging;
        t = rank_.compute_rows(inflated);
    } else {
        t = rank_.compute_rows(row_costs);
    }
    if (mode_ == Mode::Grace && !p.measured_this_cycle) {
        p.timer.record_cycle(t.wall, t.cpu, my_load(), node_speed());
        p.measured_this_cycle = true;
    }

    // Loaded nodes arrive at the phase's synchronization point late by the
    // scheduler's timeslice residue (see CpuParams::straggle_s).
    double straggle = rank_.node().cpu().sync_straggle();
    if (straggle > 0.0) rank_.sleep(straggle);
}

void Runtime::enter_grace() {
    mode_ = Mode::Grace;
    grace_count_ = 0;
    for (std::size_t ph = 0; ph < phases_.size(); ++ph)
        phases_[ph].timer.start(my_iters(static_cast<int>(ph)).count());
    if (support::trace().enabled())
        support::trace().instant(rank_.hrtime(), rank_.id(),
                                 "runtime.grace_enter",
                                 {targ("cycle", stats_.cycles),
                                  targ("grace_cycles", opts_.grace_cycles)});
}

void Runtime::apply_distribution(const msg::Group& new_active,
                                 const Distribution& new_dist) {
    // Redistribution moves application data: full CPU + wire cost even when
    // invoked from the (control-plane) monitoring path.
    msg::Rank::ControlScope data_plane(rank_, /*enable=*/false);
    double t0 = rank_.hrtime();
    const int active_before = active_.size();
    RedistContext ctx{global_rows_, &active_, &dist_, &new_active, &new_dist};
    RedistStats ts = execute_redistribution(rank_, ctx, arrays_, redist_seq_++);
    stats_.transfer.messages += ts.messages;
    stats_.transfer.bytes += ts.bytes;
    stats_.transfer.rows_moved += ts.rows_moved;
    active_ = new_active;
    dist_ = new_dist;
    ++stats_.redistributions;
    // Ownership just moved wholesale, so the incremental deltas are void:
    // rewrite every buddy's replica set against the new ring (§4.1 whole-row
    // shipping, one hop further).
    if (opts_.replicate) replica_refresh(/*wholesale=*/true, redist_seq_);
    double t1 = rank_.hrtime();
    stats_.redist_wall_s += t1 - t0;
    record_redist_observability(ts, t0, t1, active_before);
}

Runtime::GraceDecision Runtime::compute_grace_decision(
    const std::vector<double>& world_loads, const msg::Group& pg) {
    // Assemble my per-row unloaded cost estimates across phases, aligned to
    // my owned rows in ascending order.
    RowSet owned = participating() ? dist_.iters_of(rel_rank()) : RowSet{};
    std::vector<int> owned_rows_vec = owned.to_vector();
    // row id → slot; written once, read via at() — never iterated.
    std::unordered_map<int, std::size_t> pos; // dynmpi-lint: ok(unordered-lookup)
    for (std::size_t i = 0; i < owned_rows_vec.size(); ++i)
        pos[owned_rows_vec[i]] = i;
    std::vector<double> mine(owned_rows_vec.size(), 0.0);
    for (std::size_t ph = 0; ph < phases_.size(); ++ph) {
        Phase& p = phases_[ph];
        RowSet iters = my_iters(static_cast<int>(ph));
        if (iters.empty() || p.timer.cycles_recorded() == 0) continue;
        std::vector<double> est = p.timer.estimates();
        std::vector<int> rows = iters.to_vector();
        DYNMPI_CHECK(est.size() == rows.size(), "estimate alignment");
        for (std::size_t i = 0; i < rows.size(); ++i)
            mine[pos.at(rows[i])] += est[i];
    }

    // Active-group exchange: every active rank assembles the identical
    // global cost vector (removed nodes own no rows and are synced through
    // the status channel).
    auto per_rank_costs = msg::allgather(rank_, pg, mine);
    row_costs_.assign(static_cast<std::size_t>(global_rows_), 0.0);
    for (int a = 0; a < active_.size(); ++a) {
        RowSet rows = owned_rows(active_, dist_, active_.member(a));
        auto vec = rows.to_vector();
        const auto& costs = per_rank_costs[static_cast<std::size_t>(a)];
        DYNMPI_CHECK(costs.size() == vec.size(),
                     "cost vector does not match ownership");
        for (std::size_t i = 0; i < vec.size(); ++i)
            row_costs_[static_cast<std::size_t>(vec[i])] = costs[i];
    }

    // Candidate set: currently active nodes plus any unloaded node that can
    // be added back (paper: nodes return when conditions change).  The
    // leader-computed joinable flags cover crashes and restarted-but-not-
    // yet-bootstrapped incarnations; quarantined nodes sit out until
    // readmitted.
    std::vector<int> candidates;
    for (int w : world_.members()) {
        auto wi = static_cast<std::size_t>(w);
        if (joinable_[wi] == 0 || quarantined_[wi] != 0) continue;
        if (active_.contains(w) ||
            world_loads[wi] <= opts_.load_change_eps)
            candidates.push_back(w);
    }
    // Degenerate case: every candidate is quarantined.  Keep the current
    // survivors rather than dissolving the computation.
    if (candidates.empty()) candidates = active_.members();
    msg::Group new_active(candidates);

    BalanceInput in;
    in.row_costs = row_costs_;
    for (int w : candidates)
        in.nodes.push_back(NodePower{speeds_[static_cast<std::size_t>(w)],
                                     world_loads[static_cast<std::size_t>(w)]});
    in.comm_cpu_per_node = comm_cpu_for(new_active.size());

    std::vector<double> shares = opts_.scheme == BalanceScheme::RelativePower
                                     ? naive_shares(in.nodes)
                                     : successive_shares(in);
    std::vector<int> counts =
        blocks_from_shares(row_costs_, shares, /*min_rows=*/1);
    counts = apply_row_caps(std::move(counts), row_caps_for(candidates));
    Distribution new_dist = Distribution::block(0, global_rows_, counts);

    (void)new_dist;

    // Skip the redistribution if nothing materially changes — the threshold
    // scales with the average block so it means the same thing at every
    // machine size.
    bool material = new_active != active_;
    if (!material) {
        double threshold = opts_.min_count_change *
                           static_cast<double>(global_rows_) /
                           static_cast<double>(new_active.size());
        std::vector<int> old_counts = dist_.counts();
        for (std::size_t j = 0; j < counts.size(); ++j)
            if (std::abs(counts[j] - old_counts[j]) > threshold)
                material = true;
    }

    if (support::trace().enabled())
        support::trace().instant(
            rank_.hrtime(), rank_.id(), "balancer.decision",
            {targ("cycle", stats_.cycles),
             targ("scheme", opts_.scheme == BalanceScheme::RelativePower
                                ? "relative_power"
                                : "successive"),
             targ("candidates", new_active.size()),
             targ("material", material)});

    GraceDecision d;
    d.material = material;
    d.new_active = new_active;
    d.counts = std::move(counts);
    d.loads = world_loads;
    return d;
}

void Runtime::finish_post_grace(const std::vector<double>& world_loads) {
    double measured =
        std::accumulate(post_cycle_max_.begin(), post_cycle_max_.end(), 0.0) /
        static_cast<double>(post_cycle_max_.size());

    auto exit_post_grace = [&](bool dropped) {
        mode_ = Mode::Monitor;
        if (support::trace().enabled())
            support::trace().instant(rank_.hrtime(), rank_.id(),
                                     "runtime.post_grace_exit",
                                     {targ("cycle", stats_.cycles),
                                      targ("measured_s", measured),
                                      targ("dropped", dropped)});
    };

    bool any_loaded = false;
    for (int w : active_.members())
        if (world_loads[static_cast<std::size_t>(w)] > opts_.load_change_eps)
            any_loaded = true;

    if (opts_.enable_removal && any_loaded && active_.size() > 1) {
        BalanceInput in;
        in.row_costs = row_costs_;
        for (int w : active_.members())
            in.nodes.push_back(
                NodePower{speeds_[static_cast<std::size_t>(w)],
                          world_loads[static_cast<std::size_t>(w)]});
        in.comm_cpu_per_node = comm_cpu_for(active_.size());

        int unloaded = 0;
        for (const auto& n : in.nodes)
            if (!n.loaded()) ++unloaded;
        // With nothing unloaded to fall back on (or nothing loaded to shed),
        // there is no removal question to evaluate.
        if (unloaded == 0 || unloaded == static_cast<int>(in.nodes.size())) {
            exit_post_grace(false);
            return;
        }

        RemovalDecision d =
            evaluate_removal(in, measured, comm_cpu_for(unloaded),
                             comm_wire_for(unloaded));
        if (opts_.force_drop_loaded && !d.unloaded_members.empty() &&
            d.unloaded_members.size() < in.nodes.size())
            d.drop = true;
        // The §4.4 predictor's verdict, before any drop is executed.
        if (support::trace().enabled())
            support::trace().instant(
                rank_.hrtime(), rank_.id(), "runtime.removal_eval",
                {targ("cycle", stats_.cycles),
                 targ("predicted_unloaded_s", d.predicted_unloaded_s),
                 targ("measured_loaded_s", d.measured_loaded_s),
                 targ("unloaded_nodes",
                      static_cast<int>(d.unloaded_members.size())),
                 targ("drop", d.drop)});
        if (d.drop) {
            if (opts_.drop_mode == DropMode::Physical) {
                std::vector<int> keep;
                for (int j : d.unloaded_members)
                    keep.push_back(active_.member(j));
                msg::Group new_active(keep);
                BalanceInput sub;
                sub.row_costs = row_costs_;
                for (int j : d.unloaded_members)
                    sub.nodes.push_back(in.nodes[static_cast<std::size_t>(j)]);
                sub.comm_cpu_per_node = comm_cpu_for(new_active.size());
                auto shares = opts_.scheme == BalanceScheme::RelativePower
                                  ? naive_shares(sub.nodes)
                                  : successive_shares(sub);
                auto counts = blocks_from_shares(row_costs_, shares, 1);
                counts = apply_row_caps(std::move(counts),
                                        row_caps_for(new_active.members()));
                apply_distribution(
                    new_active, Distribution::block(0, global_rows_, counts));
                ++stats_.physical_drops;
                record_event(AdaptationEvent::Kind::Dropped,
                             "active now " +
                                 std::to_string(active_.size()) + " nodes");
            } else {
                // Logical drop: loaded nodes stay in the active set (static
                // relative ranks) but keep only a minimum assignment.
                std::vector<double> shares(in.nodes.size(), 0.0);
                BalanceInput sub;
                sub.row_costs = row_costs_;
                for (int j : d.unloaded_members)
                    sub.nodes.push_back(in.nodes[static_cast<std::size_t>(j)]);
                sub.comm_cpu_per_node = comm_cpu_for(active_.size());
                auto sub_shares = opts_.scheme == BalanceScheme::RelativePower
                                      ? naive_shares(sub.nodes)
                                      : successive_shares(sub);
                for (std::size_t k = 0; k < d.unloaded_members.size(); ++k)
                    shares[static_cast<std::size_t>(d.unloaded_members[k])] =
                        sub_shares[k];
                auto counts = blocks_from_shares(row_costs_, shares,
                                                 opts_.logical_min_rows);
                counts = apply_row_caps(std::move(counts),
                                        row_caps_for(active_.members()));
                apply_distribution(
                    active_, Distribution::block(0, global_rows_, counts));
                ++stats_.logical_drops;
                record_event(AdaptationEvent::Kind::LogicalDrop,
                             "blocks " + counts_string(counts));
            }
            // Note: baseline_loads_ deliberately stays at the loads the
            // current distribution was computed for — if the load profile
            // shifted during the post-grace window, the very next Monitor
            // cycle re-triggers adaptation.
            exit_post_grace(true);
            return;
        }
    }
    exit_post_grace(false);
}

namespace {
std::uint64_t status_tag(int cycle) {
    return msg::make_tag(msg::TagSpace::Runtime,
                         hash_combine(0x57A705ULL,
                                      static_cast<std::uint64_t>(cycle)));
}
constexpr double kStatusSteady = 0.0;
constexpr double kStatusReadd = 1.0;
}  // namespace

void Runtime::send_statuses(const msg::Group& active_before,
                            const GraceDecision* decision) {
    if (active_before.index_of(rank_.id()) != 0) return;
    // A retried recovery attempt must not re-send: the first copy was
    // already delivered (sends never block), and followers recv exactly one
    // status per cycle.
    if (statuses_sent_this_cycle_) return;
    statuses_sent_this_cycle_ = true;
    for (int w : world_.members()) {
        if (active_before.contains(w)) continue;
        if (rank_.machine().cluster().node_crashed(w)) continue;
        std::vector<double> msg;
        if (decision && decision->material && decision->new_active.contains(w)) {
            // Re-add instruction: full state so the returning node can join
            // the redistribution and the subsequent decisions.
            msg.push_back(kStatusReadd);
            msg.push_back(static_cast<double>(active_before.size()));
            for (int m : active_before.members())
                msg.push_back(static_cast<double>(m));
            for (int c : dist_.counts()) msg.push_back(static_cast<double>(c));
            msg.push_back(static_cast<double>(decision->new_active.size()));
            for (int m : decision->new_active.members())
                msg.push_back(static_cast<double>(m));
            for (int c : decision->counts)
                msg.push_back(static_cast<double>(c));
            msg.push_back(static_cast<double>(redist_seq_));
            for (double c : row_costs_) msg.push_back(c);
            for (double l : decision->loads) msg.push_back(l);
            for (int m : world_.members())
                msg.push_back(
                    quarantined_[static_cast<std::size_t>(m)] != 0 ? 1.0
                                                                   : 0.0);
        } else {
            msg.push_back(kStatusSteady);
            const msg::Group& now =
                decision && decision->material ? decision->new_active : active_;
            msg.push_back(static_cast<double>(now.size()));
            for (int m : now.members()) msg.push_back(static_cast<double>(m));
        }
        rank_.send_wire(w, status_tag(stats_.cycles), msg.data(),
                        msg.size() * sizeof(double));
    }
}

void Runtime::removed_cycle_follow() {
    auto bytes = rank_.recv_wire(active_.member(0), status_tag(stats_.cycles));
    DYNMPI_CHECK(bytes.size() % sizeof(double) == 0, "bad status payload");
    std::vector<double> v(bytes.size() / sizeof(double));
    std::memcpy(v.data(), bytes.data(), bytes.size());
    std::size_t pos = 0;
    auto next = [&] { return v.at(pos++); };
    auto next_int = [&] { return static_cast<int>(next()); };

    if (next() == kStatusSteady) {
        int n = next_int();
        std::vector<int> members;
        for (int i = 0; i < n; ++i) members.push_back(next_int());
        active_ = msg::Group(std::move(members));
        DYNMPI_CHECK(!active_.contains(rank_.id()),
                     "steady status while listed active");
        return;
    }

    // Re-add: reconstruct both endpoints of the redistribution and join it.
    int n_old = next_int();
    std::vector<int> old_members, old_counts;
    for (int i = 0; i < n_old; ++i) old_members.push_back(next_int());
    for (int i = 0; i < n_old; ++i) old_counts.push_back(next_int());
    int n_new = next_int();
    std::vector<int> new_members, new_counts;
    for (int i = 0; i < n_new; ++i) new_members.push_back(next_int());
    for (int i = 0; i < n_new; ++i) new_counts.push_back(next_int());
    redist_seq_ = static_cast<std::uint64_t>(next());
    row_costs_.assign(static_cast<std::size_t>(global_rows_), 0.0);
    for (int i = 0; i < global_rows_; ++i)
        row_costs_[static_cast<std::size_t>(i)] = next();
    baseline_loads_.assign(static_cast<std::size_t>(world_.size()), 0.0);
    for (int i = 0; i < world_.size(); ++i)
        baseline_loads_[static_cast<std::size_t>(i)] = next();
    for (int i = 0; i < world_.size(); ++i)
        quarantined_[static_cast<std::size_t>(i)] = next() != 0.0 ? 1 : 0;

    msg::Group old_active(std::move(old_members));
    Distribution old_dist =
        Distribution::block(0, global_rows_, std::move(old_counts));
    msg::Group new_active(std::move(new_members));
    Distribution new_dist =
        Distribution::block(0, global_rows_, std::move(new_counts));

    msg::Rank::ControlScope data_plane(rank_, /*enable=*/false);
    double t0 = rank_.hrtime();
    RedistContext ctx{global_rows_, &old_active, &old_dist, &new_active,
                      &new_dist};
    RedistStats ts = execute_redistribution(rank_, ctx, arrays_, redist_seq_++);
    stats_.transfer.messages += ts.messages;
    stats_.transfer.bytes += ts.bytes;
    stats_.transfer.rows_moved += ts.rows_moved;
    const int active_before = old_active.size();
    active_ = new_active;
    dist_ = new_dist;
    ++stats_.redistributions;
    ++stats_.readds;
    if (opts_.replicate) replica_refresh(/*wholesale=*/true, redist_seq_);
    double t1 = rank_.hrtime();
    stats_.redist_wall_s += t1 - t0;
    record_redist_observability(ts, t0, t1, active_before);
    record_event(AdaptationEvent::Kind::Readded,
                 "rejoined as one of " + std::to_string(active_.size()) +
                     " nodes");
    record_rejoins(active_);
    mode_ = Mode::PostGrace;
    post_count_ = 0;
    post_cycle_max_.clear();
    if (support::trace().enabled())
        support::trace().instant(rank_.hrtime(), rank_.id(),
                                 "runtime.post_grace_enter",
                                 {targ("cycle", stats_.cycles),
                                  targ("post_grace_cycles",
                                       opts_.post_grace_cycles)});
}

void Runtime::active_cycle_monitor(CycleRecord& rec, double wall) {
    const msg::Group active_before = active_;
    // Protocol rounds run on the epoch-salted group: after a crash or an
    // explicit revocation, retried rounds use fresh tags that can never
    // match packets from an abandoned round.
    const msg::Group pg = protocol_group();
    const int me = rank_.id();

    // Load-change detection: each active node contributes its own dmpi_ps
    // delta; relative rank 0 folds in the removed nodes' daemons so a
    // cleared load can trigger a re-add.
    double delta =
        std::fabs(my_load() - baseline_loads_[static_cast<std::size_t>(me)]);
    if (rel_rank() == 0) {
        leader_scan_reports();
        leader_send_bootstraps();
        auto& cluster = rank_.machine().cluster();
        for (int w : world_.members()) {
            auto wi = static_cast<std::size_t>(w);
            if (active_.contains(w)) continue;
            if (cluster.node_crashed(w)) continue;
            delta = std::max(
                delta,
                std::fabs(cluster.daemon(w).avg_competing() -
                          baseline_loads_[wi]));
            // A bootstrapped rejoiner waiting outside the active set forces
            // an adaptation round even on a quiet cluster, like a
            // quarantine transition: the candidate set changed.
            int gen = cluster.node_generation(w);
            if (gen > 0 && bootstrapped_gen_[wi] == gen &&
                stats_.cycles > bootstrap_cycle_[wi])
                delta = std::max(delta, opts_.load_change_eps + 1.0);
        }
        // A pending quarantine or readmit must force an adaptation round
        // even when no load moved: it changes the candidate set.
        if (quarantine_due_)
            delta = std::max(delta, opts_.load_change_eps + 1.0);
        // Replica-refresh go/no-go is the leader's call (time-gated), made
        // once per cycle so recovery retries replay the same decision.
        if (opts_.replicate && !refresh_decided_this_cycle_) {
            refresh_decided_this_cycle_ = true;
            double now = rank_.hrtime();
            bool due = opts_.replica_refresh_s <= 0.0 ||
                       last_refresh_s_ < 0.0 ||
                       now - last_refresh_s_ >= opts_.replica_refresh_s;
            refresh_go_cycle_ = due ? 1.0 : 0.0;
            if (due) last_refresh_s_ = now;
        }
    }
    std::vector<double> agg{delta, wall,
                            rel_rank() == 0 ? refresh_go_cycle_ : 0.0};
    agg = msg::allreduce(rank_, pg, std::move(agg), msg::OpMax{});
    rec.max_wall_s = agg[1];
    bool load_changed = agg[0] > opts_.load_change_eps;
    if (opts_.replicate && agg[2] > 0.0 && !replica_skip_cycle_)
        replica_refresh(/*wholesale=*/false,
                        static_cast<std::uint64_t>(stats_.cycles));

    int redist_before = stats_.redistributions;
    bool may_adapt = opts_.max_redistributions < 0 ||
                     stats_.redistributions < opts_.max_redistributions;
    GraceDecision decision;
    const GraceDecision* decision_ptr = nullptr;

    switch (mode_) {
    case Mode::Monitor:
        if (load_changed && may_adapt) {
            record_event(AdaptationEvent::Kind::LoadChange,
                         "max dmpi_ps delta " + fmt(agg[0], 2));
            enter_grace();
        }
        break;
    case Mode::Grace:
        ++grace_count_;
        if (grace_count_ >= opts_.grace_cycles) {
            std::vector<double> loads = read_world_loads(pg);
            decision = compute_grace_decision(loads, pg);
            decision_ptr = &decision;
            if (decision.new_active.size() > active_.size())
                stats_.readds += decision.new_active.size() - active_.size();
            // Returning nodes must learn about the redistribution before it
            // starts, so statuses go out first.
            send_statuses(active_before, decision_ptr);
            if (decision.material) {
                apply_distribution(
                    decision.new_active,
                    Distribution::block(0, global_rows_, decision.counts));
                record_event(AdaptationEvent::Kind::Redistributed,
                             "blocks " + counts_string(decision.counts));
                record_rejoins(active_);
                mode_ = Mode::PostGrace;
                post_count_ = 0;
                post_cycle_max_.clear();
                if (support::trace().enabled())
                    support::trace().instant(
                        rank_.hrtime(), rank_.id(),
                        "runtime.post_grace_enter",
                        {targ("cycle", stats_.cycles),
                         targ("post_grace_cycles",
                              opts_.post_grace_cycles)});
            } else {
                record_event(AdaptationEvent::Kind::Skipped,
                             "change below threshold");
                mode_ = Mode::Monitor;
            }
            baseline_loads_ = loads;
        }
        break;
    case Mode::PostGrace:
        post_cycle_max_.push_back(agg[1]);
        ++post_count_;
        if (post_count_ >= opts_.post_grace_cycles)
            finish_post_grace(read_world_loads(pg));
        break;
    }
    if (!decision_ptr) send_statuses(active_before, nullptr);
    rec.redistributed = stats_.redistributions != redist_before;
}

void Runtime::end_cycle() {
    DYNMPI_REQUIRE(in_cycle_, "end_cycle without begin_cycle");
    in_cycle_ = false;
    double wall = rank_.hrtime() - cycle_start_;

    CycleRecord rec;
    rec.cycle = stats_.cycles;
    rec.start_s = cycle_start_;
    rec.wall_s = wall;
    rec.max_wall_s = wall;
    rec.mode = static_cast<int>(mode_);

    if (opts_.adapt) {
        // Everything below is daemon-band coordination, not app traffic.
        msg::Rank::ControlScope control(rank_);
        int redist_before = stats_.redistributions;
        statuses_sent_this_cycle_ = false;
        refresh_decided_this_cycle_ = false;
        refresh_go_cycle_ = 0.0;
        replica_skip_cycle_ = false;
        run_monitoring(rec, wall);
        rec.redistributed = stats_.redistributions != redist_before;
    }

    // Observability (guarded: this is the per-cycle hot path).
    if (support::trace().enabled())
        support::trace().span(cycle_start_, rank_.hrtime(), rank_.id(),
                              "runtime.cycle",
                              {targ("cycle", rec.cycle),
                               targ("mode", mode_name(rec.mode)),
                               targ("redistributed", rec.redistributed)});
    if (support::metrics().enabled() && rank_.id() == 0) {
        support::metrics().counter("runtime.cycles").add(1);
        support::metrics().histogram("runtime.cycle_wall_s")
            .record(rec.max_wall_s);
    }

    stats_.history.push_back(rec);
    ++stats_.cycles;
}

}  // namespace dynmpi
