#include "dynmpi/row_set.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dynmpi {

RowSet::RowSet(int lo, int hi) {
    DYNMPI_REQUIRE(lo <= hi, "interval must have lo <= hi");
    if (lo < hi) intervals_.push_back({lo, hi});
}

void RowSet::normalize() {
    if (intervals_.empty()) return;
    std::sort(intervals_.begin(), intervals_.end(),
              [](const RowInterval& a, const RowInterval& b) {
                  return a.lo < b.lo;
              });
    std::vector<RowInterval> merged;
    for (const auto& iv : intervals_) {
        if (iv.empty()) continue;
        if (!merged.empty() && iv.lo <= merged.back().hi)
            merged.back().hi = std::max(merged.back().hi, iv.hi);
        else
            merged.push_back(iv);
    }
    intervals_ = std::move(merged);
}

void RowSet::add(int lo, int hi) {
    DYNMPI_REQUIRE(lo <= hi, "interval must have lo <= hi");
    if (lo == hi) return;
    intervals_.push_back({lo, hi});
    normalize();
}

void RowSet::add(const RowSet& other) {
    intervals_.insert(intervals_.end(), other.intervals_.begin(),
                      other.intervals_.end());
    normalize();
}

RowSet RowSet::unite(const RowSet& other) const {
    RowSet r = *this;
    r.add(other);
    return r;
}

RowSet RowSet::intersect(const RowSet& other) const {
    RowSet out;
    std::size_t i = 0, j = 0;
    while (i < intervals_.size() && j < other.intervals_.size()) {
        const RowInterval& a = intervals_[i];
        const RowInterval& b = other.intervals_[j];
        int lo = std::max(a.lo, b.lo);
        int hi = std::min(a.hi, b.hi);
        if (lo < hi) out.intervals_.push_back({lo, hi});
        if (a.hi < b.hi)
            ++i;
        else
            ++j;
    }
    return out; // already sorted & disjoint
}

RowSet RowSet::subtract(const RowSet& other) const {
    RowSet out;
    for (const auto& a : intervals_) {
        int cur = a.lo;
        for (const auto& b : other.intervals_) {
            if (b.hi <= cur) continue;
            if (b.lo >= a.hi) break;
            if (b.lo > cur) out.intervals_.push_back({cur, b.lo});
            cur = std::max(cur, b.hi);
            if (cur >= a.hi) break;
        }
        if (cur < a.hi) out.intervals_.push_back({cur, a.hi});
    }
    return out; // construction preserves sorted, disjoint order
}

void RowSet::intersect_with(const RowSet& other) {
    if (intervals_.empty()) return;
    if (other.intervals_.empty()) {
        intervals_.clear();
        return;
    }
    if (other.intervals_.size() == 1) {
        // Clipping by a single interval never splits anything: trim and
        // compact in place, allocation-free.  This is the planner's hot
        // shape — block distributions are one interval per party.
        const RowInterval b = other.intervals_.front();
        std::size_t w = 0;
        for (const RowInterval& a : intervals_) {
            RowInterval c{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
            if (!c.empty()) intervals_[w++] = c;
        }
        intervals_.resize(w);
        return;
    }
    *this = intersect(other);
}

void RowSet::subtract_with(const RowSet& other) {
    if (intervals_.empty() || other.intervals_.empty()) return;
    if (other.intervals_.size() > 1) {
        *this = subtract(other);
        return;
    }
    // A single subtrahend splits at most one interval in two; every other
    // interval shrinks or vanishes, so the result compacts in place.
    const RowInterval b = other.intervals_.front();
    const std::size_t n = intervals_.size();
    std::size_t w = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const RowInterval a = intervals_[i];
        const RowInterval left{a.lo, std::min(a.hi, b.lo)};
        const RowInterval right{std::max(a.lo, b.hi), a.hi};
        if (!left.empty() && !right.empty() && w == i) {
            // The one possible two-piece split with no compaction slack yet:
            // grow by one slot; the tail is already in its final place.
            intervals_[i] = right;
            intervals_.insert(
                intervals_.begin() + static_cast<std::ptrdiff_t>(i), left);
            return;
        }
        if (!left.empty()) intervals_[w++] = left;
        if (!right.empty()) intervals_[w++] = right;
    }
    intervals_.resize(w);
}

bool RowSet::contains(int row) const {
    for (const auto& iv : intervals_) {
        if (row < iv.lo) return false;
        if (row < iv.hi) return true;
    }
    return false;
}

int RowSet::count() const {
    int n = 0;
    for (const auto& iv : intervals_) n += iv.size();
    return n;
}

std::vector<int> RowSet::to_vector() const {
    std::vector<int> v;
    v.reserve(static_cast<std::size_t>(count()));
    for (const auto& iv : intervals_)
        for (int r = iv.lo; r < iv.hi; ++r) v.push_back(r);
    return v;
}

int RowSet::first() const {
    DYNMPI_REQUIRE(!empty(), "first() on empty RowSet");
    return intervals_.front().lo;
}

int RowSet::last() const {
    DYNMPI_REQUIRE(!empty(), "last() on empty RowSet");
    return intervals_.back().hi - 1;
}

}  // namespace dynmpi
