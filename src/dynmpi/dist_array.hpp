// Base interface for redistributable arrays (paper §4.1).
//
// Dyn-MPI can only redistribute data it allocated, so every redistributable
// array is registered with the runtime and implements this interface: rows
// can be packed into a flat message, unpacked on arrival, dropped, or
// allocated fresh.  Dense and sparse arrays share the interface — the
// near-uniform allocation scheme is one of the paper's contributions.
//
// Pack wire format (shared by all implementations):
//   u32 nrows, then per row: u32 row_id, u64 payload_bytes, payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dynmpi/row_set.hpp"

namespace dynmpi {

class DistArray {
public:
    struct Stats {
        std::uint64_t rows_allocated = 0;
        std::uint64_t rows_freed = 0;
        std::uint64_t bytes_packed = 0;
        std::uint64_t bytes_unpacked = 0;
        std::uint64_t bytes_copied = 0; ///< data moved by (re)allocation
        std::uint64_t reallocations = 0;
    };

    DistArray(std::string name, int global_rows);
    virtual ~DistArray() = default;

    const std::string& name() const { return name_; }
    int global_rows() const { return global_rows_; }

    /// Rows currently stored on this node.
    const RowSet& held() const { return held_; }
    bool has_row(int row) const { return held_.contains(row); }

    /// Serialize the given (held) rows for transfer.
    virtual std::vector<std::byte> pack_rows(const RowSet& rows) const = 0;

    /// Deserialize rows produced by pack_rows (possibly from another node);
    /// the rows become held, replacing any local copies.
    virtual void unpack_rows(const std::vector<std::byte>& data) = 0;

    /// Release storage for the given rows.
    virtual void drop_rows(const RowSet& rows) = 0;

    /// Allocate (zero/empty) storage for any of `rows` not yet held.
    virtual void ensure_rows(const RowSet& rows) = 0;

    /// Keep only `keep`; everything else is dropped.
    void retain_only(const RowSet& keep);

    // ---- dirty-row tracking (replication support) ----
    //
    // Every mutation path (writable row access, unpack, fresh allocation)
    // marks the touched rows dirty; the replication layer reads the dirty
    // set to ship incremental deltas and clears it once a refresh lands.

    void mark_row_dirty(int row) {
        if (row >= 0 && row < global_rows_) dirty_[static_cast<std::size_t>(row)] = 1;
    }
    void mark_rows_dirty(const RowSet& rows);

    /// Rows within `scope` modified since the last clear_dirty.
    RowSet dirty_rows(const RowSet& scope) const;
    void clear_dirty(const RowSet& rows);

    /// Expected storage per row (dense: exact; sparse: current average) —
    /// the basis for memory-aware balancing.
    virtual std::size_t nominal_row_bytes() const = 0;

    /// Actual bytes of application data held locally right now.
    virtual std::size_t local_bytes() const = 0;

    const Stats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

    // ---- pack-format helpers (implementations + the replica store) ----
    static void put_u32(std::vector<std::byte>& out, std::uint32_t v);
    static void put_u64(std::vector<std::byte>& out, std::uint64_t v);
    static std::uint32_t get_u32(const std::vector<std::byte>& in,
                                 std::size_t& pos);
    static std::uint64_t get_u64(const std::vector<std::byte>& in,
                                 std::size_t& pos);

protected:
    std::string name_;
    int global_rows_;
    RowSet held_;
    std::vector<char> dirty_; ///< per-row modified-since-refresh flags
    mutable Stats stats_;
};

}  // namespace dynmpi
