// Data-distribution selection (paper §4.3) and the node-removal predictor
// (paper §4.4).
//
// Given per-row unloaded costs (from IterationTimer) and per-node load
// (from dmpi_ps), two schemes compute each node's share of work:
//
//  - naive relative power [CRAUL]: share ∝ speed/(1+load).  Ignores the CPU
//    spent communicating, so loaded nodes end up over-assigned.
//  - successive balancing: pairwise loaded/unloaded splits that include a
//    per-cycle communication CPU term, iterated in rounds until the
//    assignment to unloaded nodes stabilizes.
//
// Shares are then materialized as a variable-block distribution by walking
// the per-row cost prefix (blocks_from_shares), which handles unbalanced
// computations such as particle simulation for free.
#pragma once

#include <cstddef>
#include <vector>

#include "dynmpi/comm_model.hpp"

namespace dynmpi {

/// A node's processing capability as the runtime sees it.
struct NodePower {
    double speed = 1.0;         ///< static relative CPU speed
    double avg_competing = 0.0; ///< dmpi_ps load average
    double share() const { return 1.0 / (1.0 + avg_competing); }
    double power() const { return speed * share(); }
    bool loaded(double eps = 0.25) const { return avg_competing > eps; }
};

struct BalanceInput {
    std::vector<double> row_costs; ///< unloaded ref-seconds per global row
    std::vector<NodePower> nodes;  ///< candidate active set, in group order
    double comm_cpu_per_node = 0.0; ///< CPU sec/cycle each node spends on comm
};

/// Work fractions under naive relative power (sums to 1).
std::vector<double> naive_shares(const std::vector<NodePower>& nodes);

/// Work fractions under successive balancing (sums to 1).
/// `tol` is the per-round relative change below which iteration stops.
std::vector<double> successive_shares(const BalanceInput& input,
                                      int max_rounds = 32,
                                      double tol = 1e-3);

/// Comm-aware proportional assignment within one pool: equalize
/// (w_j + comm_cpu)/power_j across `pool` subject to w_j >= 0 and
/// sum over the pool == max(0, work).  A weak node whose equalized target
/// would be negative is excluded (it gets 0) and its deficit is
/// redistributed over the remaining pool members, so no work is silently
/// dropped.  Entries of `w` outside `pool` are left untouched.
void assign_pool_work(const std::vector<NodePower>& nodes,
                      const std::vector<std::size_t>& pool, double work,
                      double comm_cpu, std::vector<double>& w);

/// Turn shares into contiguous per-node row counts by walking the cost
/// prefix.  Every node receives at least `min_rows` rows (used by logical
/// dropping, which keeps a minimum assignment on deloaded nodes).
std::vector<int> blocks_from_shares(const std::vector<double>& row_costs,
                                    const std::vector<double>& shares,
                                    int min_rows = 0);

/// Memory-aware clamp (the AppLeS-style paging avoidance the paper cites):
/// cap each node's count at caps[j] (<= 0 means unlimited) and hand the
/// overflow to nodes with headroom, proportionally to their counts.  The
/// caps must admit the total row count.
std::vector<int> apply_row_caps(std::vector<int> counts,
                                const std::vector<int>& caps);

/// Predicted wall seconds per phase cycle for a given block assignment:
/// max over nodes of (compute + comm CPU, time-shared) plus wire time.
double predict_cycle_time(const BalanceInput& input,
                          const std::vector<int>& counts,
                          double comm_wire_s = 0.0);

/// Node-removal evaluation (paper §4.4): compare the measured loaded
/// configuration against the *predicted* configuration using only unloaded
/// nodes.
struct RemovalDecision {
    bool drop = false;
    double predicted_unloaded_s = 0.0;
    double measured_loaded_s = 0.0;
    std::vector<int> unloaded_members; ///< indices into input.nodes
};

/// `measured_max_cycle_s` is the post-redistribution grace-period average of
/// the slowest node.  `comm_wire_unloaded_s` is the wire term for the
/// smaller configuration.
RemovalDecision evaluate_removal(const BalanceInput& input,
                                 double measured_max_cycle_s,
                                 double comm_cpu_unloaded_s,
                                 double comm_wire_unloaded_s);

}  // namespace dynmpi
