// Deferred Regular Section Descriptors (paper §2.2).
//
// A DRSD records, symbolically, which rows of a registered array a loop
// iteration touches: row = a*i + b for iteration i, with the iteration
// bounds deferred to run time.  Expanding a node's DRSDs over its assigned
// iteration set yields exactly the rows that node must hold — the input to
// both ownership computation and redistribution message scheduling
// (paper §4.4).
#pragma once

#include <string>
#include <vector>

#include "dynmpi/row_set.hpp"

namespace dynmpi {

enum class AccessMode { Read, Write };

/// One array reference in a parallel loop: array[a*i + b] for iteration i.
struct Drsd {
    std::string array;
    AccessMode mode = AccessMode::Read;
    int phase = 0;
    int a = 1; ///< iteration coefficient
    int b = 0; ///< offset (b = ±1 expresses nearest-neighbor ghost reads)
};

/// Rows touched by `d` when executing the iterations in `iters`.
/// Requires a != 0; results are clipped to [0, global_rows).
RowSet rows_touched(const Drsd& d, const RowSet& iters, int global_rows);

/// Union of rows touched by all descriptors (optionally restricted to one
/// access mode; pass nullptr for "any").
RowSet rows_needed(const std::vector<Drsd>& descriptors, const RowSet& iters,
                   int global_rows, const AccessMode* only_mode = nullptr);

}  // namespace dynmpi
