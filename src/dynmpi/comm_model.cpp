#include "dynmpi/comm_model.hpp"

#include <algorithm>
#include <vector>

#include "mpisim/collectives.hpp"
#include "mpisim/rank.hpp"
#include "support/error.hpp"

namespace dynmpi {

double comm_cpu_per_cycle(const CommCosts& c, const PhaseComm& p,
                          int active_nodes) {
    DYNMPI_REQUIRE(active_nodes > 0, "need at least one active node");
    if (active_nodes == 1) return 0.0;
    switch (p.pattern) {
    case CommPattern::None:
        return 0.0;
    case CommPattern::NearestNeighbor:
        // Two neighbors, send + receive each: 4 message handlings per cycle
        // for interior nodes.
        return 4.0 * c.cpu_cost(p.bytes_per_message);
    case CommPattern::AllGather:
        // Tree-based: ~2*log2(n) message handlings of the full vector.
        {
            double logn = 1.0;
            for (int k = 1; k < active_nodes; k *= 2) logn += 1.0;
            return 2.0 * logn * c.cpu_cost(p.bytes_per_message);
        }
    }
    return 0.0;
}

double comm_wire_per_cycle(const CommCosts& c, const PhaseComm& p,
                           int active_nodes) {
    if (active_nodes == 1) return 0.0;
    switch (p.pattern) {
    case CommPattern::None:
        return 0.0;
    case CommPattern::NearestNeighbor:
        // One boundary exchange sits on the critical path; the rest overlaps
        // with computation.  A deliberately conservative (low) estimate: the
        // removal predictor must not talk itself out of beneficial drops by
        // overcharging the smaller configuration.
        return c.wire_time(p.bytes_per_message);
    case CommPattern::AllGather: {
        double logn = 1.0;
        for (int k = 1; k < active_nodes; k *= 2) logn += 1.0;
        return logn * c.wire_time(p.bytes_per_message);
    }
    }
    return 0.0;
}

namespace {

constexpr int kPingPongReps = 20;
constexpr std::size_t kSmallMsg = 64;
constexpr std::size_t kLargeMsg = 32 * 1024;
constexpr int kCpuReps = 400; ///< sends per size for /proc-visible CPU cost

/// Round-trip wall time per message of `bytes`, averaged over reps.
double pingpong(msg::Rank& rank, int peer, int base_tag, std::size_t bytes,
                bool initiator) {
    std::vector<std::byte> buf(bytes, std::byte{0});
    double t0 = rank.hrtime();
    for (int i = 0; i < kPingPongReps; ++i) {
        if (initiator) {
            rank.send(peer, base_tag + i, buf.data(), buf.size());
            rank.recv(peer, base_tag + i, buf.data(), buf.size());
        } else {
            rank.recv(peer, base_tag + i, buf.data(), buf.size());
            rank.send(peer, base_tag + i, buf.data(), buf.size());
        }
    }
    return (rank.hrtime() - t0) / (2.0 * kPingPongReps);
}

/// CPU seconds per send of `bytes`, measured with /proc around a burst.
double cpu_per_send(msg::Rank& rank, int peer, int tag, std::size_t bytes) {
    std::vector<std::byte> buf(bytes, std::byte{0});
    double c0 = rank.proc_cpu_time();
    for (int i = 0; i < kCpuReps; ++i)
        rank.send(peer, tag, buf.data(), buf.size());
    double used = rank.proc_cpu_time() - c0;
    return used / kCpuReps;
}

void drain(msg::Rank& rank, int peer, int tag, std::size_t bytes, int count) {
    std::vector<std::byte> buf(bytes);
    for (int i = 0; i < count; ++i)
        rank.recv(peer, tag, buf.data(), buf.size());
}

}  // namespace

CommCosts calibrate_comm_costs(msg::Rank& rank, const msg::Group& group) {
    DYNMPI_REQUIRE(group.contains(rank.id()), "calibration by non-member");
    CommCosts fitted;
    const int rel = group.index_of(rank.id());

    if (group.size() >= 2 && rel < 2) {
        const int peer = group.member(rel == 0 ? 1 : 0);
        const bool initiator = rel == 0;
        // One-way time model: t(b) = latency + b/bandwidth + 2*cpu(b).
        // We fold CPU into the wire fit first, then measure CPU separately
        // and unfold it.
        double t_small = pingpong(rank, peer, 1000, kSmallMsg, initiator);
        double t_large = pingpong(rank, peer, 2000, kLargeMsg, initiator);

        double cpu_small, cpu_large;
        if (initiator) {
            cpu_small = cpu_per_send(rank, peer, 3000, kSmallMsg);
            cpu_large = cpu_per_send(rank, peer, 3001, kLargeMsg);
        } else {
            drain(rank, peer, 3000, kSmallMsg, kCpuReps);
            drain(rank, peer, 3001, kLargeMsg, kCpuReps);
            cpu_small = cpu_large = 0.0;
        }

        if (initiator) {
            fitted.cpu_per_byte_s =
                std::max(0.0, (cpu_large - cpu_small) /
                                  static_cast<double>(kLargeMsg - kSmallMsg));
            fitted.cpu_per_msg_s = std::max(
                0.0, cpu_small - fitted.cpu_per_byte_s * kSmallMsg);

            double per_byte =
                (t_large - t_small) / static_cast<double>(kLargeMsg - kSmallMsg);
            // Remove the CPU-per-byte contribution (sender + receiver) from
            // the apparent per-byte time to recover wire bandwidth.
            double wire_per_byte =
                std::max(1e-12, per_byte - 2.0 * fitted.cpu_per_byte_s);
            fitted.bandwidth_Bps = 1.0 / wire_per_byte;
            fitted.latency_s = std::max(
                1e-9, t_small - kSmallMsg * per_byte -
                          2.0 * fitted.cpu_per_msg_s);
        }
    }

    // Rank 0 announces its fit to the whole group.
    std::vector<double> packed{fitted.latency_s, fitted.bandwidth_Bps,
                               fitted.cpu_per_msg_s, fitted.cpu_per_byte_s};
    msg::bcast(rank, group, 0, packed);
    DYNMPI_CHECK(packed.size() == 4, "bad calibration broadcast");
    return CommCosts{packed[0], packed[1], packed[2], packed[3]};
}

}  // namespace dynmpi
