#include "dynmpi/dist_array.hpp"

#include <cstring>

#include "support/error.hpp"

namespace dynmpi {

DistArray::DistArray(std::string name, int global_rows)
    : name_(std::move(name)), global_rows_(global_rows) {
    DYNMPI_REQUIRE(global_rows_ > 0, "array needs at least one row");
    DYNMPI_REQUIRE(!name_.empty(), "array needs a name");
    dirty_.assign(static_cast<std::size_t>(global_rows_), 0);
}

void DistArray::retain_only(const RowSet& keep) {
    drop_rows(held_.subtract(keep));
}

void DistArray::mark_rows_dirty(const RowSet& rows) {
    for (const RowInterval& iv : rows.intervals())
        for (int r = iv.lo; r < iv.hi; ++r) mark_row_dirty(r);
}

RowSet DistArray::dirty_rows(const RowSet& scope) const {
    RowSet out;
    for (const RowInterval& iv : scope.intervals()) {
        int run = -1;
        for (int r = iv.lo; r < iv.hi; ++r) {
            if (dirty_[static_cast<std::size_t>(r)]) {
                if (run < 0) run = r;
            } else if (run >= 0) {
                out.add(run, r);
                run = -1;
            }
        }
        if (run >= 0) out.add(run, iv.hi);
    }
    return out;
}

void DistArray::clear_dirty(const RowSet& rows) {
    for (const RowInterval& iv : rows.intervals())
        for (int r = iv.lo; r < iv.hi; ++r)
            dirty_[static_cast<std::size_t>(r)] = 0;
}

void DistArray::put_u32(std::vector<std::byte>& out, std::uint32_t v) {
    std::byte b[4];
    std::memcpy(b, &v, 4);
    out.insert(out.end(), b, b + 4);
}

void DistArray::put_u64(std::vector<std::byte>& out, std::uint64_t v) {
    std::byte b[8];
    std::memcpy(b, &v, 8);
    out.insert(out.end(), b, b + 8);
}

std::uint32_t DistArray::get_u32(const std::vector<std::byte>& in,
                                 std::size_t& pos) {
    DYNMPI_REQUIRE(pos + 4 <= in.size(), "truncated pack buffer (u32)");
    std::uint32_t v;
    std::memcpy(&v, in.data() + pos, 4);
    pos += 4;
    return v;
}

std::uint64_t DistArray::get_u64(const std::vector<std::byte>& in,
                                 std::size_t& pos) {
    DYNMPI_REQUIRE(pos + 8 <= in.size(), "truncated pack buffer (u64)");
    std::uint64_t v;
    std::memcpy(&v, in.data() + pos, 8);
    pos += 8;
    return v;
}

}  // namespace dynmpi
