#include "dynmpi/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"

namespace dynmpi {

std::string summarize(const RuntimeStats& stats) {
    std::ostringstream os;
    os << stats.cycles << " cycles, " << stats.redistributions
       << " redistribution(s)";
    if (stats.physical_drops > 0)
        os << ", " << stats.physical_drops << " physical drop(s)";
    if (stats.logical_drops > 0)
        os << ", " << stats.logical_drops << " logical drop(s)";
    if (stats.readds > 0) os << ", " << stats.readds << " re-add(s)";
    os << "; " << fmt(stats.redist_wall_s, 3) << "s redistributing ("
       << stats.transfer.rows_moved << " rows, " << stats.transfer.bytes
       << " bytes in " << stats.transfer.messages << " messages)";
    double total = 0;
    for (const auto& r : stats.history) total += r.wall_s;
    if (total > 0)
        os << "; redistribution overhead "
           << pct(stats.redist_wall_s / (total + stats.redist_wall_s));
    return os.str();
}

std::string render_timeline(const RuntimeStats& stats, int bucket,
                            int width) {
    DYNMPI_REQUIRE(bucket > 0 && width > 0, "bad timeline geometry");
    if (stats.history.empty()) return "(no cycles)\n";

    struct Bucket {
        double sum = 0;
        int n = 0;
        bool redist = false;
        bool grace = false;
        bool post = false;
    };
    std::vector<Bucket> buckets((stats.history.size() +
                                 static_cast<std::size_t>(bucket) - 1) /
                                static_cast<std::size_t>(bucket));
    for (const auto& r : stats.history) {
        Bucket& b = buckets[static_cast<std::size_t>(r.cycle / bucket)];
        b.sum += r.wall_s;
        b.n += 1;
        b.redist |= r.redistributed;
        b.grace |= r.mode == 1;
        b.post |= r.mode == 2;
    }
    double max_mean = 0;
    for (const auto& b : buckets)
        if (b.n > 0) max_mean = std::max(max_mean, b.sum / b.n);
    if (max_mean <= 0) max_mean = 1;

    std::ostringstream os;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const Bucket& b = buckets[i];
        double mean = b.n > 0 ? b.sum / b.n : 0;
        int bars = static_cast<int>(mean / max_mean * width + 0.5);
        os << "cyc " << std::setw(5) << static_cast<int>(i) * bucket << " |";
        for (int k = 0; k < bars; ++k) os << '#';
        os << ' ' << fmt(mean * 1e3, 1) << "ms";
        if (b.redist) os << "  R";
        else if (b.grace) os << "  g";
        else if (b.post) os << "  p";
        os << '\n';
    }
    return os.str();
}

std::vector<double> period_sums(const RuntimeStats& stats,
                                const std::vector<int>& boundaries) {
    for (std::size_t i = 1; i < boundaries.size(); ++i)
        DYNMPI_REQUIRE(boundaries[i] > boundaries[i - 1],
                       "boundaries must ascend");
    std::vector<double> sums(boundaries.size() + 1, 0.0);
    for (const auto& r : stats.history) {
        std::size_t k = 0;
        while (k < boundaries.size() && r.cycle >= boundaries[k]) ++k;
        sums[k] += r.wall_s;
    }
    return sums;
}

std::string render_events(const RuntimeStats& stats) {
    auto name = [](AdaptationEvent::Kind k) {
        switch (k) {
        case AdaptationEvent::Kind::LoadChange: return "load-change ";
        case AdaptationEvent::Kind::Redistributed: return "redistributed";
        case AdaptationEvent::Kind::Skipped: return "skipped      ";
        case AdaptationEvent::Kind::Dropped: return "dropped      ";
        case AdaptationEvent::Kind::LogicalDrop: return "logical-drop ";
        case AdaptationEvent::Kind::Readded: return "re-added     ";
        }
        return "?";
    };
    if (stats.events.empty()) return "(no adaptation events)\n";
    std::ostringstream os;
    for (const auto& e : stats.events)
        os << "t=" << fmt(e.time_s, 2) << "s  cyc " << std::setw(4) << e.cycle
           << "  " << name(e.kind) << "  " << e.detail << '\n';
    return os.str();
}

std::string history_csv(const RuntimeStats& stats) {
    CsvWriter w;
    w.row({"cycle", "start_s", "wall_s", "max_wall_s", "mode",
           "redistributed"});
    for (const auto& r : stats.history)
        w.row({std::to_string(r.cycle), fmt(r.start_s, 6), fmt(r.wall_s, 6),
               fmt(r.max_wall_s, 6), std::to_string(r.mode),
               r.redistributed ? "1" : "0"});
    return w.str();
}

double settled_cycle_time(const RuntimeStats& stats, int n) {
    DYNMPI_REQUIRE(n > 0, "need a positive window");
    DYNMPI_REQUIRE(static_cast<int>(stats.history.size()) >= n,
                   "history shorter than the window");
    double s = 0;
    for (std::size_t i = stats.history.size() - static_cast<std::size_t>(n);
         i < stats.history.size(); ++i)
        s += stats.history[i].max_wall_s;
    return s / n;
}

}  // namespace dynmpi
