// A small MPI-1 compatibility surface over the simulated message layer.
//
// The paper's starting point (Figure 1) is an ordinary MPI program; the
// translation story of §2.3 maps such programs onto Dyn-MPI.  This shim lets
// the "before" programs be written verbatim — MPI_Init/Comm_rank/Send/Recv/
// collectives — against the simulator, so tests can run the original and the
// translated program side by side.
//
// Scope: the dozen-or-so calls real codes use (the standard's own
// observation).  One communicator (MPI_COMM_WORLD), three datatypes, three
// reduction ops, blocking + nonblocking p2p, the common collectives.
// Everything returns MPI_SUCCESS or throws dynmpi::Error on misuse.
#pragma once

#include <cstddef>

#include "mpisim/rank.hpp"
#include "mpisim/request.hpp"

namespace dynmpi::mpi {

using MPI_Comm = int;
inline constexpr MPI_Comm MPI_COMM_WORLD = 91;

using MPI_Datatype = int;
inline constexpr MPI_Datatype MPI_DOUBLE = 1;
inline constexpr MPI_Datatype MPI_INT = 2;
inline constexpr MPI_Datatype MPI_BYTE = 3;
inline constexpr MPI_Datatype MPI_LONG = 4;

using MPI_Op = int;
inline constexpr MPI_Op MPI_SUM = 1;
inline constexpr MPI_Op MPI_MIN = 2;
inline constexpr MPI_Op MPI_MAX = 3;

inline constexpr int MPI_ANY_SOURCE = msg::kAnySource;
inline constexpr int MPI_ANY_TAG = -1;
inline constexpr int MPI_SUCCESS = 0;

struct MPI_Status {
    int MPI_SOURCE = -1;
    int MPI_TAG = -1;
    int bytes = 0;
};
inline MPI_Status* const MPI_STATUS_IGNORE = nullptr;

struct MPI_Request {
    msg::Request inner;
};

/// Size in bytes of one element of a datatype.
std::size_t mpi_type_size(MPI_Datatype t);

/// Bind this rank-thread to the compat layer.  (The real signature takes
/// argc/argv; the simulator needs the Rank.)
int MPI_Init(msg::Rank& rank);
int MPI_Finalize();

int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_size(MPI_Comm comm, int* size);

int MPI_Send(const void* buf, int count, MPI_Datatype type, int dest,
             int tag, MPI_Comm comm);
int MPI_Recv(void* buf, int count, MPI_Datatype type, int source, int tag,
             MPI_Comm comm, MPI_Status* status);
int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 int dest, int sendtag, void* recvbuf, int recvcount,
                 MPI_Datatype recvtype, int source, int recvtag,
                 MPI_Comm comm, MPI_Status* status);

int MPI_Isend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm, MPI_Request* request);
int MPI_Irecv(void* buf, int count, MPI_Datatype type, int source, int tag,
              MPI_Comm comm, MPI_Request* request);
int MPI_Wait(MPI_Request* request, MPI_Status* status);
int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses);

int MPI_Barrier(MPI_Comm comm);
int MPI_Bcast(void* buf, int count, MPI_Datatype type, int root,
              MPI_Comm comm);
int MPI_Reduce(const void* sendbuf, void* recvbuf, int count,
               MPI_Datatype type, MPI_Op op, int root, MPI_Comm comm);
int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count,
                  MPI_Datatype type, MPI_Op op, MPI_Comm comm);
int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                  void* recvbuf, int recvcount, MPI_Datatype recvtype,
                  MPI_Comm comm);
int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
               void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm);
int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                void* recvbuf, int recvcount, MPI_Datatype recvtype,
                int root, MPI_Comm comm);
int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 MPI_Comm comm);
int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag,
               MPI_Status* status);
int MPI_Get_count(const MPI_Status* status, MPI_Datatype type, int* count);

double MPI_Wtime();

/// The bound rank (for tests and mixed-mode code).
msg::Rank& mpi_rank();

}  // namespace dynmpi::mpi
