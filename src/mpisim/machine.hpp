// SPMD machine: runs one rank thread per simulated node under the engine.
//
// Concurrency model (SimGrid-style conservative co-simulation): rank code
// runs on real std::threads, but exactly one logical thread of control is
// active at any instant — either the engine (processing events on the caller
// thread) or a single rank.  A mutex-protected "baton" is handed off:
//
//   engine event "resume rank r"  →  rank r runs user code  →  rank blocks
//   (compute / recv / sleep)      →  baton returns to the engine.
//
// Everything the simulation touches is therefore data-race-free by
// construction, and runs are fully deterministic.
//
// Misbehaving programs are diagnosed rather than hung: if the event queue
// drains while ranks are still blocked, the machine aborts them and throws a
// deadlock Error naming the stuck ranks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mpisim/tags.hpp"
#include "sim/cluster.hpp"
#include "sim/network.hpp"

namespace dynmpi::msg {

class Rank;

/// Thrown inside rank code when the machine tears a blocked rank down
/// (deadlock recovery or a sibling rank's failure).  User code should not
/// catch it.
class MachineAborted : public std::exception {
public:
    const char* what() const noexcept override {
        return "simulation machine aborted";
    }
};

/// Thrown inside rank code when its *own* node crashes: the rank unwinds and
/// its thread exits quietly, matching a process that simply stops existing.
/// User code should not catch it.
class NodeCrashed : public std::exception {
public:
    const char* what() const noexcept override { return "node crashed"; }
};

/// Thrown from a receive that targets (or is woken by the crash of) a failed
/// peer — ULFM-style local error semantics.  Recovery code catches this,
/// revokes in-flight control-plane traffic, and retries on an epoch-salted
/// protocol group.
class PeerFailure : public std::exception {
public:
    explicit PeerFailure(int peer) : peer_(peer) {}
    int peer() const { return peer_; }
    const char* what() const noexcept override { return "peer rank failed"; }

private:
    int peer_ = -1;
};

/// Thrown from non-user-tag receives posted (or pending) across a control
/// revocation — the signal that a failure-recovery epoch has started and the
/// current protocol round must be abandoned and retried.
class EpochRevoked : public std::exception {
public:
    const char* what() const noexcept override {
        return "control epoch revoked";
    }
};

class Machine {
public:
    explicit Machine(sim::ClusterConfig config);
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    sim::Cluster& cluster() { return cluster_; }
    int num_ranks() const { return cluster_.size(); }

    /// Run `fn` as an SPMD program, one instance per rank, to completion.
    /// Blocks the calling thread; rethrows the first rank failure; throws
    /// Error on deadlock.  One-shot: a Machine runs one program.
    void run(std::function<void(Rank&)> fn);

    /// Total virtual time consumed by the program (valid after run()).
    double elapsed_seconds() const { return elapsed_; }

    /// Delivered-traffic accounting, split by tag namespace (user traffic vs
    /// collectives vs Dyn-MPI runtime) and data vs control plane.
    struct TrafficStats {
        std::uint64_t messages[3] = {0, 0, 0}; ///< indexed by TagSpace
        std::uint64_t bytes[3] = {0, 0, 0};
        std::uint64_t control_messages = 0;
        std::uint64_t control_bytes = 0;

        std::uint64_t total_messages() const {
            return messages[0] + messages[1] + messages[2];
        }
        std::uint64_t total_bytes() const {
            return bytes[0] + bytes[1] + bytes[2];
        }
    };
    const TrafficStats& traffic() const { return traffic_; }

    /// Count of control revocations so far (bumped by node crashes and by
    /// Rank::revoke_control).  Failure-recovery protocols salt their groups
    /// with this so abandoned rounds can never be confused with retries.
    std::uint64_t revoke_epoch() const { return revoke_epoch_; }

private:
    friend class Rank;

    enum class RankPhase { Idle, Running, Blocked, Done };

    struct RankState {
        std::thread thread;
        std::condition_variable cv;
        RankPhase phase = RankPhase::Idle;
        std::exception_ptr error;

        // Mailbox of delivered-but-unmatched packets.
        std::deque<sim::Packet> mailbox;

        // Pending blocking receive, if any.
        bool recv_waiting = false;
        int recv_src = kAnySource;
        std::int64_t recv_space = -1; ///< required TagSpace, or -1 for any
        std::uint64_t recv_tag = 0;
        bool recv_any_tag = false;
        sim::Packet recv_result;

        // Failure-delivery flags, set by the engine before a forced resume.
        bool peer_failed = false; ///< woken because recv_src crashed
        int failed_peer = -1;
        bool revoked = false; ///< woken by revoke_control_recvs
        std::uint64_t seen_revoke = 0; ///< last revocation epoch observed
    };

    // ---- engine-side ----
    void export_observability();       ///< push traffic/engine stats to the
                                       ///< metrics registry + trace sink
    void resume_rank(int r);           ///< hand the baton to rank r, wait for it back
    /// Incarnation-guarded resume for deferred wakes (sleep timers, delayed
    /// deliveries): dropped if the rank was revived since the wake was
    /// scheduled, so a dead incarnation's timers cannot fire into the new one.
    void resume_rank_inc(int r, std::uint64_t inc);
    std::uint64_t incarnation(int r) const {
        return incarnation_[static_cast<std::size_t>(r)];
    }
    void on_delivery(sim::Packet&& p); ///< network upcall (engine context)
    void on_node_crash(int node);      ///< cluster crash handler
    void on_node_revive(int node);     ///< cluster revive handler: restart the
                                       ///< rank with a fresh incarnation
    void spawn_rank_thread(int r);     ///< start rank r's thread running program_
    void abort_blocked_ranks();

    // ---- rank-side ----
    void yield_from_rank(int r); ///< give the baton back and wait to be resumed
    RankState& state(int r);

    /// Start a new control revocation epoch: every rank blocked in a
    /// collective- or runtime-tag receive is woken with EpochRevoked so
    /// recovery protocols can restart on an epoch-salted group.  Called from
    /// rank context (the caller holds the baton) by Rank::revoke_control.
    void revoke_control_recvs();

    sim::Cluster cluster_;
    std::vector<std::unique_ptr<RankState>> ranks_;
    std::function<void(Rank&)> program_; ///< kept for rank restarts (revive)
    std::vector<std::uint64_t> incarnation_; ///< bumped per rank revival

    std::mutex mu_;
    std::condition_variable engine_cv_;
    int active_rank_ = -1; ///< -1 while the engine holds the baton
    bool aborting_ = false;
    bool started_ = false;
    double elapsed_ = 0.0;
    TrafficStats traffic_;
    std::uint64_t revoke_epoch_ = 0;
};

}  // namespace dynmpi::msg
