// Tag-space management for the message layer.
//
// User code sees plain integer tags.  Internally, tags are namespaced 64-bit
// values so that user traffic, collective traffic, and Dyn-MPI runtime
// traffic can never collide.
#pragma once

#include <cstdint>

namespace dynmpi::msg {

/// Wildcards accepted by Rank::recv.
inline constexpr int kAnySource = -1;
inline constexpr std::int64_t kAnyTag = -1;

enum class TagSpace : std::uint64_t {
    User = 0,
    Collective = 1,
    Runtime = 2, ///< Dyn-MPI internal traffic (redistribution, control)
};

/// Compose a full 64-bit wire tag: 2 bits of namespace, 62 bits of value.
constexpr std::uint64_t make_tag(TagSpace space, std::uint64_t value) {
    return (static_cast<std::uint64_t>(space) << 62) | (value & ((1ULL << 62) - 1));
}

constexpr TagSpace tag_space(std::uint64_t wire_tag) {
    return static_cast<TagSpace>(wire_tag >> 62);
}

constexpr std::uint64_t tag_value(std::uint64_t wire_tag) {
    return wire_tag & ((1ULL << 62) - 1);
}

}  // namespace dynmpi::msg
