#include "mpisim/mpi_compat.hpp"

#include <cstring>

#include "mpisim/collectives.hpp"
#include "support/error.hpp"

namespace dynmpi::mpi {

namespace {
thread_local msg::Rank* g_rank = nullptr;

msg::Rank& bound() {
    DYNMPI_REQUIRE(g_rank != nullptr, "MPI_Init has not been called");
    return *g_rank;
}

void check_comm(MPI_Comm comm) {
    DYNMPI_REQUIRE(comm == MPI_COMM_WORLD,
                   "only MPI_COMM_WORLD is supported");
}

/// Element-wise allreduce dispatched on the runtime datatype.
template <typename T, typename OpT>
void allreduce_as(const void* sendbuf, void* recvbuf, int count, OpT op) {
    std::vector<T> v(static_cast<std::size_t>(count));
    std::memcpy(v.data(), sendbuf, v.size() * sizeof(T));
    v = msg::allreduce(bound(), msg::Group::world(bound()), std::move(v), op);
    std::memcpy(recvbuf, v.data(), v.size() * sizeof(T));
}

template <typename OpT>
int allreduce_dispatch(const void* sendbuf, void* recvbuf, int count,
                       MPI_Datatype type, OpT op) {
    switch (type) {
    case MPI_DOUBLE:
        allreduce_as<double>(sendbuf, recvbuf, count, op);
        return MPI_SUCCESS;
    case MPI_INT:
        allreduce_as<int>(sendbuf, recvbuf, count, op);
        return MPI_SUCCESS;
    case MPI_LONG:
        allreduce_as<long>(sendbuf, recvbuf, count, op);
        return MPI_SUCCESS;
    }
    throw Error("unsupported datatype for reduction");
}

}  // namespace

std::size_t mpi_type_size(MPI_Datatype t) {
    switch (t) {
    case MPI_DOUBLE: return sizeof(double);
    case MPI_INT: return sizeof(int);
    case MPI_BYTE: return 1;
    case MPI_LONG: return sizeof(long);
    }
    throw Error("unknown MPI datatype");
}

int MPI_Init(msg::Rank& rank) {
    DYNMPI_REQUIRE(g_rank == nullptr, "MPI_Init called twice");
    g_rank = &rank;
    return MPI_SUCCESS;
}

int MPI_Finalize() {
    g_rank = nullptr;
    return MPI_SUCCESS;
}

msg::Rank& mpi_rank() { return bound(); }

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
    check_comm(comm);
    *rank = bound().id();
    return MPI_SUCCESS;
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
    check_comm(comm);
    *size = bound().size();
    return MPI_SUCCESS;
}

int MPI_Send(const void* buf, int count, MPI_Datatype type, int dest,
             int tag, MPI_Comm comm) {
    check_comm(comm);
    bound().send(dest, tag, buf,
                 static_cast<std::size_t>(count) * mpi_type_size(type));
    return MPI_SUCCESS;
}

int MPI_Recv(void* buf, int count, MPI_Datatype type, int source, int tag,
             MPI_Comm comm, MPI_Status* status) {
    check_comm(comm);
    int src = -1, got_tag = -1;
    std::size_t n = bound().recv(
        source, tag, buf,
        static_cast<std::size_t>(count) * mpi_type_size(type), &src,
        &got_tag);
    if (status) {
        status->MPI_SOURCE = src;
        status->MPI_TAG = got_tag;
        status->bytes = static_cast<int>(n);
    }
    return MPI_SUCCESS;
}

int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 int dest, int sendtag, void* recvbuf, int recvcount,
                 MPI_Datatype recvtype, int source, int recvtag,
                 MPI_Comm comm, MPI_Status* status) {
    check_comm(comm);
    MPI_Send(sendbuf, sendcount, sendtype, dest, sendtag, comm);
    return MPI_Recv(recvbuf, recvcount, recvtype, source, recvtag, comm,
                    status);
}

int MPI_Isend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm, MPI_Request* request) {
    check_comm(comm);
    request->inner =
        bound().isend(dest, tag, buf,
                      static_cast<std::size_t>(count) * mpi_type_size(type));
    return MPI_SUCCESS;
}

int MPI_Irecv(void* buf, int count, MPI_Datatype type, int source, int tag,
              MPI_Comm comm, MPI_Request* request) {
    check_comm(comm);
    request->inner =
        bound().irecv(source, tag, buf,
                      static_cast<std::size_t>(count) * mpi_type_size(type));
    return MPI_SUCCESS;
}

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
    std::size_t n = bound().wait(request->inner);
    if (status) {
        status->MPI_SOURCE = request->inner.source();
        status->bytes = static_cast<int>(n);
    }
    return MPI_SUCCESS;
}

int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses) {
    for (int i = 0; i < count; ++i)
        MPI_Wait(&requests[i], statuses ? &statuses[i] : nullptr);
    return MPI_SUCCESS;
}

int MPI_Barrier(MPI_Comm comm) {
    check_comm(comm);
    msg::barrier(bound(), msg::Group::world(bound()));
    return MPI_SUCCESS;
}

int MPI_Bcast(void* buf, int count, MPI_Datatype type, int root,
              MPI_Comm comm) {
    check_comm(comm);
    std::size_t bytes = static_cast<std::size_t>(count) * mpi_type_size(type);
    std::vector<std::byte> v(bytes);
    std::memcpy(v.data(), buf, bytes);
    msg::bcast(bound(), msg::Group::world(bound()), root, v);
    DYNMPI_REQUIRE(v.size() == bytes, "bcast size mismatch");
    std::memcpy(buf, v.data(), bytes);
    return MPI_SUCCESS;
}

int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count,
                  MPI_Datatype type, MPI_Op op, MPI_Comm comm) {
    check_comm(comm);
    switch (op) {
    case MPI_SUM:
        return allreduce_dispatch(sendbuf, recvbuf, count, type,
                                  msg::OpSum{});
    case MPI_MIN:
        return allreduce_dispatch(sendbuf, recvbuf, count, type,
                                  msg::OpMin{});
    case MPI_MAX:
        return allreduce_dispatch(sendbuf, recvbuf, count, type,
                                  msg::OpMax{});
    }
    throw Error("unsupported MPI_Op");
}

int MPI_Reduce(const void* sendbuf, void* recvbuf, int count,
               MPI_Datatype type, MPI_Op op, int root, MPI_Comm comm) {
    // Built on allreduce for simplicity; non-roots discard.
    std::vector<std::byte> tmp(static_cast<std::size_t>(count) *
                               mpi_type_size(type));
    int rc = MPI_Allreduce(sendbuf, tmp.data(), count, type, op, comm);
    int me;
    MPI_Comm_rank(comm, &me);
    if (me == root) std::memcpy(recvbuf, tmp.data(), tmp.size());
    return rc;
}

int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                  void* recvbuf, int recvcount, MPI_Datatype recvtype,
                  MPI_Comm comm) {
    check_comm(comm);
    DYNMPI_REQUIRE(sendcount == recvcount && sendtype == recvtype,
                   "MPI_Allgather requires matching send/recv signatures");
    std::size_t bytes =
        static_cast<std::size_t>(sendcount) * mpi_type_size(sendtype);
    std::vector<std::byte> mine(bytes);
    std::memcpy(mine.data(), sendbuf, bytes);
    auto all = msg::allgather(bound(), msg::Group::world(bound()), mine);
    auto* out = static_cast<std::byte*>(recvbuf);
    for (std::size_t r = 0; r < all.size(); ++r) {
        DYNMPI_REQUIRE(all[r].size() == bytes, "allgather size mismatch");
        std::memcpy(out + r * bytes, all[r].data(), bytes);
    }
    return MPI_SUCCESS;
}

int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
               void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm) {
    check_comm(comm);
    DYNMPI_REQUIRE(sendcount == recvcount && sendtype == recvtype,
                   "MPI_Gather requires matching send/recv signatures");
    std::size_t bytes =
        static_cast<std::size_t>(sendcount) * mpi_type_size(sendtype);
    std::vector<std::byte> mine(bytes);
    std::memcpy(mine.data(), sendbuf, bytes);
    auto all = msg::gather(bound(), msg::Group::world(bound()), root, mine);
    int me;
    MPI_Comm_rank(comm, &me);
    if (me == root) {
        auto* out = static_cast<std::byte*>(recvbuf);
        for (std::size_t r = 0; r < all.size(); ++r) {
            DYNMPI_REQUIRE(all[r].size() == bytes, "gather size mismatch");
            std::memcpy(out + r * bytes, all[r].data(), bytes);
        }
    }
    return MPI_SUCCESS;
}

int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                void* recvbuf, int recvcount, MPI_Datatype recvtype,
                int root, MPI_Comm comm) {
    check_comm(comm);
    DYNMPI_REQUIRE(sendcount == recvcount && sendtype == recvtype,
                   "MPI_Scatter requires matching send/recv signatures");
    std::size_t bytes =
        static_cast<std::size_t>(sendcount) * mpi_type_size(sendtype);
    int me, n;
    MPI_Comm_rank(comm, &me);
    MPI_Comm_size(comm, &n);
    std::vector<std::vector<std::byte>> chunks;
    if (me == root) {
        const auto* in = static_cast<const std::byte*>(sendbuf);
        for (int r = 0; r < n; ++r)
            chunks.emplace_back(in + static_cast<std::size_t>(r) * bytes,
                                in + static_cast<std::size_t>(r + 1) * bytes);
    }
    auto mine =
        msg::scatter(bound(), msg::Group::world(bound()), root, chunks);
    DYNMPI_REQUIRE(mine.size() == bytes, "scatter size mismatch");
    std::memcpy(recvbuf, mine.data(), bytes);
    return MPI_SUCCESS;
}

int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 MPI_Comm comm) {
    check_comm(comm);
    DYNMPI_REQUIRE(sendcount == recvcount && sendtype == recvtype,
                   "MPI_Alltoall requires matching send/recv signatures");
    std::size_t bytes =
        static_cast<std::size_t>(sendcount) * mpi_type_size(sendtype);
    int n;
    MPI_Comm_size(comm, &n);
    const auto* in = static_cast<const std::byte*>(sendbuf);
    std::vector<std::vector<std::byte>> outgoing;
    for (int r = 0; r < n; ++r)
        outgoing.emplace_back(in + static_cast<std::size_t>(r) * bytes,
                              in + static_cast<std::size_t>(r + 1) * bytes);
    auto incoming =
        msg::alltoall(bound(), msg::Group::world(bound()), outgoing);
    auto* out = static_cast<std::byte*>(recvbuf);
    for (std::size_t r = 0; r < incoming.size(); ++r) {
        DYNMPI_REQUIRE(incoming[r].size() == bytes, "alltoall size mismatch");
        std::memcpy(out + r * bytes, incoming[r].data(), bytes);
    }
    return MPI_SUCCESS;
}

int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag,
               MPI_Status* status) {
    check_comm(comm);
    bool present = bound().probe(source, tag);
    *flag = present ? 1 : 0;
    if (present && status) {
        status->MPI_SOURCE = source;
        status->MPI_TAG = tag;
    }
    return MPI_SUCCESS;
}

int MPI_Get_count(const MPI_Status* status, MPI_Datatype type, int* count) {
    DYNMPI_REQUIRE(status != nullptr, "MPI_Get_count needs a status");
    *count = static_cast<int>(static_cast<std::size_t>(status->bytes) /
                              mpi_type_size(type));
    return MPI_SUCCESS;
}

double MPI_Wtime() { return bound().hrtime(); }

}  // namespace dynmpi::mpi
