#include "mpisim/rank.hpp"

#include <cmath>
#include <numeric>

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace dynmpi::msg {

double Rank::hrtime() const {
    return sim::to_seconds(machine_.cluster().engine().now());
}

double Rank::exact_cpu_time() const {
    return machine_.cluster().node(id_).cpu().app_cpu_seconds();
}

double Rank::proc_cpu_time() const {
    const sim::Cpu& cpu = machine_.cluster().node(id_).cpu();
    double jiffy = cpu.params().jiffy_s;
    return std::floor(cpu.app_cpu_seconds() / jiffy) * jiffy;
}

void Rank::compute(double ref_sec) {
    DYNMPI_REQUIRE(ref_sec >= 0.0, "negative compute cost");
    if (ref_sec == 0.0) return;
    // Capture the machine, not the Rank: if this node crashes mid-batch the
    // Rank object unwinds with its thread, but the stored callback may
    // outlive it (resume_rank tolerates the stale wake).
    Machine* m = &machine_;
    const int r = id_;
    node().cpu().start_batch(ref_sec, [m, r] { m->resume_rank(r); });
    machine_.yield_from_rank(id_);
}

RowTimings Rank::compute_rows(const std::vector<double>& row_ref_sec) {
    sim::Cpu& cpu = node().cpu();
    sim::SimTime t0 = machine_.cluster().engine().now();
    std::uint64_t batch_seed = cpu.batches_run() + 1;
    double total =
        std::accumulate(row_ref_sec.begin(), row_ref_sec.end(), 0.0);
    compute(total);
    auto rt = cpu.reconstruct_rows(row_ref_sec, t0, batch_seed);
    return RowTimings{std::move(rt.wall), std::move(rt.cpu)};
}

void Rank::sleep(double sec) {
    DYNMPI_REQUIRE(sec >= 0.0, "negative sleep");
    // Same as compute: the wake event must not dangle if this node crashes
    // before it fires — and must not fire into a revived incarnation either.
    Machine* m = &machine_;
    const int r = id_;
    const std::uint64_t inc = machine_.incarnation(r);
    machine_.cluster().engine().after(
        sim::from_seconds(sec), [m, r, inc] { m->resume_rank_inc(r, inc); });
    machine_.yield_from_rank(id_);
}

void Rank::charge_recv_cost(std::size_t bytes) {
    if (control_mode_) return; // daemon-band traffic is not app CPU
    compute(net_params().cpu_cost(bytes));
}

void Rank::send_wire(int dst, std::uint64_t wire_tag, const void* data,
                     std::size_t bytes) {
    DYNMPI_REQUIRE(dst >= 0 && dst < size(), "send to invalid rank");
    // CPU component of communication: packetization + copy, shared with any
    // competing processes on this node.  Control-plane traffic is daemon
    // work, not application work.
    if (!control_mode_) compute(net_params().cpu_cost(bytes));
    const int retries = std::max(0, net_params().send_retries);
    for (int attempt = 0; ; ++attempt) {
        sim::Packet p;
        p.src = id_;
        p.dst = dst;
        p.tag = wire_tag;
        p.control = control_mode_;
        p.payload.resize(bytes);
        if (bytes > 0)
            std::memcpy(p.payload.data(), data, bytes);
        if (machine_.cluster().network().transmit(std::move(p))) return;
        // Transient send failure: bounded retry with exponential backoff.
        // Retried packets are byte-identical, so a duplicate that does get
        // through is matched (or orphaned) exactly like the original.
        if (attempt >= retries) return; // give up; peer sees a lost message
        if (support::trace().enabled()) {
            using support::targ;
            support::trace().instant(hrtime(), id_, "net.send_retry",
                                     {targ("src", id_), targ("dst", dst),
                                      targ("attempt", attempt + 1)});
        }
        if (support::metrics().enabled())
            support::metrics().counter("net.send_retries").add(1);
        sleep(net_params().send_backoff_s * static_cast<double>(1 << attempt));
    }
}

void Rank::send(int dst, int tag, const void* data, std::size_t bytes) {
    DYNMPI_REQUIRE(tag >= 0, "user tags must be non-negative");
    send_wire(dst, wire_tag(tag), data, bytes);
}

namespace {
bool packet_matches(const sim::Packet& p, int src, std::uint64_t tag,
                    bool any_tag) {
    bool src_ok = src == kAnySource || src == p.src;
    bool tag_ok = any_tag ? tag_space(p.tag) == tag_space(tag) : p.tag == tag;
    return src_ok && tag_ok;
}
}  // namespace

sim::Packet Rank::recv_packet(int src, std::uint64_t tag, bool any_tag) {
    DYNMPI_REQUIRE(src == kAnySource || (src >= 0 && src < size()),
                   "recv from invalid rank");
    auto& rs = machine_.state(id_);
    if (tag_space(tag) != TagSpace::User &&
        rs.seen_revoke < machine_.revoke_epoch()) {
        // A revocation epoch started since this rank last checked: abandon
        // the protocol round before entering a doomed control-plane recv.
        rs.seen_revoke = machine_.revoke_epoch();
        throw EpochRevoked{};
    }
    for (auto it = rs.mailbox.begin(); it != rs.mailbox.end(); ++it) {
        if (packet_matches(*it, src, tag, any_tag)) {
            sim::Packet p = std::move(*it);
            rs.mailbox.erase(it);
            return p;
        }
    }
    if (src != kAnySource && machine_.cluster().node_crashed(src))
        throw PeerFailure{src}; // would block forever: fail locally instead
    rs.recv_waiting = true;
    rs.recv_src = src;
    rs.recv_tag = tag;
    rs.recv_any_tag = any_tag;
    rs.recv_space = static_cast<std::int64_t>(tag_space(tag));
    machine_.yield_from_rank(id_);
    if (rs.revoked) {
        rs.revoked = false;
        rs.seen_revoke = machine_.revoke_epoch();
        throw EpochRevoked{};
    }
    if (rs.peer_failed) {
        rs.peer_failed = false;
        int peer = rs.failed_peer;
        rs.failed_peer = -1;
        throw PeerFailure{peer};
    }
    DYNMPI_CHECK(!rs.recv_waiting, "woke from recv without a message");
    return std::move(rs.recv_result);
}

std::size_t Rank::recv(int src, int tag, void* data, std::size_t capacity,
                       int* out_src, int* out_tag) {
    bool any_tag = tag == kAnyTag;
    std::uint64_t wt = any_tag ? make_tag(TagSpace::User, 0)
                               : wire_tag(tag);
    sim::Packet p = recv_packet(src, wt, any_tag);
    DYNMPI_REQUIRE(p.payload.size() <= capacity,
                   "recv buffer too small for message");
    charge_recv_cost(p.payload.size());
    if (!p.payload.empty())
        std::memcpy(data, p.payload.data(), p.payload.size());
    if (out_src) *out_src = p.src;
    if (out_tag) *out_tag = static_cast<int>(tag_value(p.tag));
    return p.payload.size();
}

void Rank::sendrecv(int dst, int send_tag, const void* send_data,
                    std::size_t send_bytes, int src, int recv_tag,
                    void* recv_data, std::size_t recv_capacity) {
    send(dst, send_tag, send_data, send_bytes);
    recv(src, recv_tag, recv_data, recv_capacity);
}

bool Rank::probe(int src, int tag) const {
    const auto& rs = machine_.state(id_);
    bool any_tag = tag == kAnyTag;
    std::uint64_t wt = any_tag ? make_tag(TagSpace::User, 0) : wire_tag(tag);
    for (const auto& p : rs.mailbox)
        if (packet_matches(p, src, wt, any_tag)) return true;
    return false;
}

Request Rank::isend(int dst, int tag, const void* data, std::size_t bytes) {
    send(dst, tag, data, bytes);
    Request r;
    r.kind_ = Request::Kind::Send;
    r.peer_ = dst;
    r.complete_ = true;
    return r;
}

Request Rank::irecv(int src, int tag, void* data, std::size_t capacity) {
    DYNMPI_REQUIRE(src == kAnySource || (src >= 0 && src < size()),
                   "irecv from invalid rank");
    Request r;
    r.kind_ = Request::Kind::Recv;
    r.peer_ = src;
    r.any_tag_ = tag == kAnyTag;
    r.wire_tag_ = r.any_tag_ ? make_tag(TagSpace::User, 0) : wire_tag(tag);
    r.buffer_ = data;
    r.capacity_ = capacity;
    return r;
}

std::size_t Rank::wait(Request& req) {
    DYNMPI_REQUIRE(req.valid(), "wait on null request");
    if (req.complete_) return req.received_;
    DYNMPI_CHECK(req.kind_ == Request::Kind::Recv,
                 "incomplete non-receive request");
    sim::Packet p = recv_packet(req.peer_, req.wire_tag_, req.any_tag_);
    DYNMPI_REQUIRE(p.payload.size() <= req.capacity_,
                   "irecv buffer too small for message");
    charge_recv_cost(p.payload.size());
    if (!p.payload.empty())
        std::memcpy(req.buffer_, p.payload.data(), p.payload.size());
    req.received_ = p.payload.size();
    req.actual_src_ = p.src;
    req.complete_ = true;
    return req.received_;
}

bool Rank::test(Request& req) {
    DYNMPI_REQUIRE(req.valid(), "test on null request");
    if (req.complete_) return true;
    // A buffered match can be consumed without blocking.
    const auto& rs = machine_.state(id_);
    for (const auto& p : rs.mailbox) {
        bool src_ok = req.peer_ == kAnySource || req.peer_ == p.src;
        bool tag_ok = req.any_tag_
                          ? tag_space(p.tag) == tag_space(req.wire_tag_)
                          : p.tag == req.wire_tag_;
        if (src_ok && tag_ok) {
            wait(req); // completes immediately from the mailbox
            return true;
        }
    }
    return false;
}

void Rank::waitall(std::vector<Request>& reqs) {
    for (auto& r : reqs) wait(r);
}

std::vector<std::byte> Rank::recv_wire(int src, std::uint64_t wire_tag) {
    sim::Packet p = recv_packet(src, wire_tag, false);
    charge_recv_cost(p.payload.size());
    return std::move(p.payload);
}

void Rank::sync_revocations() {
    machine_.state(id_).seen_revoke = machine_.revoke_epoch();
}

void Rank::revoke_control() {
    machine_.revoke_control_recvs();
    sync_revocations();
}

}  // namespace dynmpi::msg
