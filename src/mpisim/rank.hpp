// Per-rank API surface seen by SPMD programs.
//
// A Rank wraps "this process on this node": virtual compute, point-to-point
// messaging, clocks, and access to the node's load sensors.  Blocking calls
// hand the baton back to the engine; the rank resumes when its wake event
// fires.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "mpisim/machine.hpp"
#include "mpisim/request.hpp"
#include "mpisim/tags.hpp"
#include "sim/ps_daemon.hpp"

namespace dynmpi::msg {

/// Per-row measured timings from a compute batch (see Cpu::reconstruct_rows).
struct RowTimings {
    std::vector<double> wall; ///< gethrtime-style, with scheduling jitter
    std::vector<double> cpu;  ///< /proc-style, exact (reader quantizes)
};

class Rank {
public:
    Rank(Machine& machine, int id) : machine_(machine), id_(id) {}

    int id() const { return id_; }
    int size() const { return machine_.num_ranks(); }
    Machine& machine() { return machine_; }
    sim::Node& node() { return machine_.cluster().node(id_); }
    sim::PsDaemon& ps_daemon() { return machine_.cluster().daemon(id_); }
    const sim::NetParams& net_params() const {
        return machine_.cluster().network().params();
    }

    // ---- clocks (paper §4.2) ----

    /// gethrtime equivalent: virtual wall-clock seconds.
    double hrtime() const;

    /// /proc equivalent: this process's CPU seconds, quantized to the jiffy.
    double proc_cpu_time() const;

    /// Exact (un-quantized) CPU seconds — for tests only, not available to a
    /// real program.
    double exact_cpu_time() const;

    // ---- compute ----

    /// Burn `ref_sec` reference-CPU seconds of work (blocking).
    void compute(double ref_sec);

    /// Burn a batch of per-row work and return measured per-row timings.
    RowTimings compute_rows(const std::vector<double>& row_ref_sec);

    /// Block for `sec` of virtual wall time without using the CPU.
    void sleep(double sec);

    // ---- point-to-point ----

    /// Blocking eager send of `bytes` to rank `dst`.  Returns once the local
    /// CPU work (packetization/copy) is done and the message is queued on the
    /// NIC; delivery completes asynchronously.
    void send(int dst, int tag, const void* data, std::size_t bytes);

    /// Blocking receive matching (src, tag); wildcards kAnySource/kAnyTag.
    /// Returns actual byte count; throws if the buffer is too small.
    std::size_t recv(int src, int tag, void* data, std::size_t capacity,
                     int* out_src = nullptr, int* out_tag = nullptr);

    /// Convenience typed send/recv for trivially copyable values.
    template <typename T>
    void send_value(int dst, int tag, const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        send(dst, tag, &v, sizeof(T));
    }
    template <typename T>
    T recv_value(int src, int tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        T v{};
        recv(src, tag, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void send_vector(int dst, int tag, const std::vector<T>& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        send(dst, tag, v.data(), v.size() * sizeof(T));
    }
    template <typename T>
    std::vector<T> recv_vector(int src, int tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        sim::Packet p = recv_packet(src, wire_tag(tag), false);
        charge_recv_cost(p.payload.size());
        std::vector<T> v(p.payload.size() / sizeof(T));
        std::memcpy(v.data(), p.payload.data(), p.payload.size());
        return v;
    }

    /// Exchange with two peers in one call (halo exchange helper).
    void sendrecv(int dst, int send_tag, const void* send_data,
                  std::size_t send_bytes, int src, int recv_tag,
                  void* recv_data, std::size_t recv_capacity);

    // ---- nonblocking operations (see request.hpp) ----

    /// Nonblocking send: the local CPU cost is charged now; the returned
    /// request is already complete (eager buffered protocol).
    Request isend(int dst, int tag, const void* data, std::size_t bytes);

    /// Post a receive intent; satisfied at wait()/test() time.
    Request irecv(int src, int tag, void* data, std::size_t capacity);

    /// Block until the request completes; returns bytes received (0 for
    /// sends).
    std::size_t wait(Request& req);

    /// Complete the request if possible without blocking.
    bool test(Request& req);

    /// Wait for every request in the span.
    void waitall(std::vector<Request>& reqs);

    /// True if a matching message is already buffered (non-blocking probe).
    bool probe(int src, int tag) const;

    // ---- internal-tagged traffic (collectives / Dyn-MPI runtime) ----

    void send_wire(int dst, std::uint64_t wire_tag, const void* data,
                   std::size_t bytes);
    std::vector<std::byte> recv_wire(int src, std::uint64_t wire_tag);

    // ---- control plane (daemon-band traffic) ----
    // While a ControlScope is alive, wire-level sends/recvs on this rank are
    // marked control: no CPU charge, no NIC serialization (they model the
    // dmpi_ps daemons' out-of-band gossip, not application messages).
    class ControlScope {
    public:
        /// enable=false re-enters the data plane inside a control scope
        /// (e.g. a redistribution triggered from the monitoring path still
        /// ships application data at full cost).
        explicit ControlScope(Rank& rank, bool enable = true) : rank_(rank) {
            prev_ = rank_.control_mode_;
            rank_.control_mode_ = enable;
        }
        ~ControlScope() { rank_.control_mode_ = prev_; }
        ControlScope(const ControlScope&) = delete;
        ControlScope& operator=(const ControlScope&) = delete;

    private:
        Rank& rank_;
        bool prev_;
    };
    bool in_control_scope() const { return control_mode_; }

    // ---- failure handling ----

    /// Acknowledge all control revocations issued so far, so the *next*
    /// control-plane receive does not throw EpochRevoked for epochs this
    /// rank has already reacted to.  Recovery loops call this before each
    /// retry attempt.
    void sync_revocations();

    /// Start a new control revocation epoch: wake every rank blocked in a
    /// collective-/runtime-tag receive with EpochRevoked.  The caller is
    /// implicitly synced to the new epoch.
    void revoke_control();

    // ---- per-group collective sequence counters (see collectives.hpp) ----
    // Counters are keyed by group hash so that ranks outside a group (e.g.
    // nodes removed from the active set) do not fall out of step.
    std::uint64_t next_group_seq(std::uint64_t group_hash) {
        return group_seq_[group_hash]++;
    }

    /// Snapshot of every group counter, sorted by hash (deterministic).  A
    /// rejoin bootstrap ships the leader's snapshot so a freshly restarted
    /// rank re-enters collectives in step with the survivors.
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    export_group_seqs() const {
        return {group_seq_.begin(), group_seq_.end()};
    }
    void import_group_seqs(
        const std::vector<std::pair<std::uint64_t, std::uint64_t>>& v) {
        for (const auto& [hash, seq] : v) group_seq_[hash] = seq;
    }

private:
    friend class Machine;

    static std::uint64_t wire_tag(int user_tag) {
        return make_tag(TagSpace::User, static_cast<std::uint64_t>(user_tag));
    }

    /// Core blocking receive on the wire-tag level.
    sim::Packet recv_packet(int src, std::uint64_t tag, bool any_tag);
    void charge_recv_cost(std::size_t bytes);

    Machine& machine_;
    int id_;
    bool control_mode_ = false;
    // Ordered so export_group_seqs() — the rejoin-bootstrap payload — walks
    // counters in hash order without a sort.
    std::map<std::uint64_t, std::uint64_t> group_seq_;
};

}  // namespace dynmpi::msg
