// Collective operations over rank groups.
//
// Every collective operates on a Group — an ordered subset of absolute rank
// ids.  A member's position in the group is its *relative rank*, the notion
// Dyn-MPI programs use so that physically removed nodes disappear from the
// numbering (paper §2.2).  All members of a group must execute the same
// sequence of collectives on that group; per-group sequence counters keep
// wire tags aligned even when a rank simultaneously belongs to other groups.
//
// Algorithms are the classic binomial-tree (bcast, reduce) and linear-gather
// variants; with an eager, buffered message layer they are deadlock-free for
// any group size, including singletons.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mpisim/rank.hpp"
#include "mpisim/tags.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace dynmpi::msg {

/// An ordered set of absolute rank ids taking part in collectives.
class Group {
public:
    Group() = default;
    /// `salt` perturbs the group hash (and therefore every collective tag
    /// drawn from it) without changing membership — failure recovery uses a
    /// crash-epoch salt so retried protocol rounds cannot match stragglers
    /// from an abandoned round.  salt 0 leaves the hash unchanged.
    explicit Group(std::vector<int> members, std::uint64_t salt = 0)
        : members_(std::move(members)) {
        DYNMPI_REQUIRE(!members_.empty(), "group must be non-empty");
        std::uint64_t h = splitmix64(members_.size());
        for (int m : members_)
            h = hash_combine(h, static_cast<std::uint64_t>(m));
        if (salt != 0) h = hash_combine(h, splitmix64(salt));
        hash_ = h;
    }

    /// The full machine as one group.
    static Group world(const Rank& rank) {
        std::vector<int> m(static_cast<std::size_t>(rank.size()));
        for (int i = 0; i < rank.size(); ++i) m[static_cast<std::size_t>(i)] = i;
        return Group(std::move(m));
    }

    int size() const { return static_cast<int>(members_.size()); }
    int member(int rel) const {
        DYNMPI_REQUIRE(rel >= 0 && rel < size(), "relative rank out of range");
        return members_[static_cast<std::size_t>(rel)];
    }
    /// Relative rank of an absolute rank, or -1 if not a member.  Backed by
    /// a lazily built member→relative-rank index so the redistribution
    /// planner's per-party probes are not linear scans (std::map: the index
    /// is never iterated, but determinism must not hinge on that).
    int index_of(int rank) const {
        if (index_.empty()) {
            if (members_.empty()) return -1;
            for (int i = 0; i < size(); ++i)
                index_.emplace(members_[static_cast<std::size_t>(i)], i);
        }
        auto it = index_.find(rank);
        return it == index_.end() ? -1 : it->second;
    }
    bool contains(int rank) const { return index_of(rank) >= 0; }
    const std::vector<int>& members() const { return members_; }
    std::uint64_t hash() const { return hash_; }

    bool operator==(const Group& o) const { return members_ == o.members_; }

private:
    std::vector<int> members_;
    std::uint64_t hash_ = 0;
    mutable std::map<int, int> index_; ///< built on first index_of/contains
};

namespace detail {

inline std::uint64_t coll_tag(const Group& g, std::uint64_t seq) {
    return make_tag(TagSpace::Collective, hash_combine(g.hash(), seq));
}

template <typename T>
std::vector<T> bytes_to_vector(std::vector<std::byte>&& raw) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> v(raw.size() / sizeof(T));
    if (!raw.empty()) std::memcpy(v.data(), raw.data(), raw.size());
    return v;
}

}  // namespace detail

/// Reduction functors for allreduce/reduce.
struct OpSum {
    template <typename T>
    T operator()(const T& a, const T& b) const { return a + b; }
};
struct OpMin {
    template <typename T>
    T operator()(const T& a, const T& b) const { return a < b ? a : b; }
};
struct OpMax {
    template <typename T>
    T operator()(const T& a, const T& b) const { return a < b ? b : a; }
};

/// Broadcast `data` from the member with relative rank `root` to all members
/// (binomial tree).  Non-roots receive into (and resize) `data`.
template <typename T>
void bcast(Rank& rank, const Group& g, int root, std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int n = g.size();
    const int rel = g.index_of(rank.id());
    DYNMPI_REQUIRE(rel >= 0, "bcast by non-member");
    DYNMPI_REQUIRE(root >= 0 && root < n, "bcast root out of range");
    std::uint64_t tag = detail::coll_tag(g, rank.next_group_seq(g.hash()));
    if (n == 1) return;

    const int vrank = (rel - root + n) % n;
    int mask = 1;
    while (mask < n) {
        if (vrank & mask) {
            int parent = g.member(((vrank - mask) + root) % n);
            data = detail::bytes_to_vector<T>(rank.recv_wire(parent, tag));
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (vrank + mask < n) {
            int child = g.member((vrank + mask + root) % n);
            rank.send_wire(child, tag, data.data(), data.size() * sizeof(T));
        }
        mask >>= 1;
    }
}

/// Reduce element-wise into the root's copy (binomial tree, commutative op).
/// Returns the reduced vector on the root; other members get their partial.
template <typename T, typename Op>
std::vector<T> reduce(Rank& rank, const Group& g, int root, std::vector<T> data,
                      Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int n = g.size();
    const int rel = g.index_of(rank.id());
    DYNMPI_REQUIRE(rel >= 0, "reduce by non-member");
    std::uint64_t tag = detail::coll_tag(g, rank.next_group_seq(g.hash()));
    if (n == 1) return data;

    const int vrank = (rel - root + n) % n;
    int mask = 1;
    while (mask < n) {
        if ((vrank & mask) == 0) {
            int src_v = vrank | mask;
            if (src_v < n) {
                int src = g.member((src_v + root) % n);
                auto part = detail::bytes_to_vector<T>(rank.recv_wire(src, tag));
                DYNMPI_CHECK(part.size() == data.size(),
                             "reduce length mismatch");
                for (std::size_t i = 0; i < data.size(); ++i)
                    data[i] = op(data[i], part[i]);
            }
        } else {
            int dst = g.member(((vrank & ~mask) + root) % n);
            rank.send_wire(dst, tag, data.data(), data.size() * sizeof(T));
            break;
        }
        mask <<= 1;
    }
    return data;
}

/// Element-wise allreduce: reduce to member 0, then broadcast.
template <typename T, typename Op>
std::vector<T> allreduce(Rank& rank, const Group& g, std::vector<T> data,
                         Op op) {
    data = reduce(rank, g, 0, std::move(data), op);
    bcast(rank, g, 0, data);
    return data;
}

/// Scalar convenience allreduce.
template <typename T, typename Op>
T allreduce_scalar(Rank& rank, const Group& g, T value, Op op) {
    std::vector<T> v{value};
    v = allreduce(rank, g, std::move(v), op);
    return v[0];
}

/// Barrier: an empty allreduce.
inline void barrier(Rank& rank, const Group& g) {
    allreduce_scalar<int>(rank, g, 0, OpSum{});
}

/// Gather each member's (possibly differently sized) vector at the root.
/// Returns per-member vectors in relative-rank order at the root; empty
/// elsewhere.
template <typename T>
std::vector<std::vector<T>> gather(Rank& rank, const Group& g, int root,
                                   const std::vector<T>& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int n = g.size();
    const int rel = g.index_of(rank.id());
    DYNMPI_REQUIRE(rel >= 0, "gather by non-member");
    std::uint64_t tag = detail::coll_tag(g, rank.next_group_seq(g.hash()));

    std::vector<std::vector<T>> out;
    if (rel == root) {
        out.resize(static_cast<std::size_t>(n));
        out[static_cast<std::size_t>(rel)] = mine;
        for (int r = 0; r < n; ++r) {
            if (r == root) continue;
            out[static_cast<std::size_t>(r)] =
                detail::bytes_to_vector<T>(rank.recv_wire(g.member(r), tag));
        }
    } else {
        rank.send_wire(g.member(root), tag, mine.data(),
                       mine.size() * sizeof(T));
    }
    return out;
}

/// Allgather: every member ends with every member's vector.
/// Implemented as gather at member 0 plus a broadcast of the flattened data
/// and lengths.
template <typename T>
std::vector<std::vector<T>> allgather(Rank& rank, const Group& g,
                                      const std::vector<T>& mine) {
    auto rooted = gather(rank, g, 0, mine);

    std::vector<std::uint64_t> lengths;
    std::vector<T> flat;
    if (g.index_of(rank.id()) == 0) {
        for (auto& v : rooted) {
            lengths.push_back(v.size());
            flat.insert(flat.end(), v.begin(), v.end());
        }
    }
    bcast(rank, g, 0, lengths);
    bcast(rank, g, 0, flat);

    std::vector<std::vector<T>> out;
    out.reserve(lengths.size());
    std::size_t pos = 0;
    for (std::uint64_t len : lengths) {
        out.emplace_back(flat.begin() + static_cast<std::ptrdiff_t>(pos),
                         flat.begin() + static_cast<std::ptrdiff_t>(pos + len));
        pos += len;
    }
    return out;
}

/// Scalar allgather convenience: returns one value per member, in relative
/// rank order.
template <typename T>
std::vector<T> allgather_scalar(Rank& rank, const Group& g, T value) {
    auto vecs = allgather(rank, g, std::vector<T>{value});
    std::vector<T> out;
    out.reserve(vecs.size());
    for (auto& v : vecs) {
        DYNMPI_CHECK(v.size() == 1, "scalar allgather length mismatch");
        out.push_back(v[0]);
    }
    return out;
}

/// Scatter: the root distributes chunks[j] to relative rank j; every member
/// returns its own chunk.
template <typename T>
std::vector<T> scatter(Rank& rank, const Group& g, int root,
                       const std::vector<std::vector<T>>& chunks) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int n = g.size();
    const int rel = g.index_of(rank.id());
    DYNMPI_REQUIRE(rel >= 0, "scatter by non-member");
    std::uint64_t tag = detail::coll_tag(g, rank.next_group_seq(g.hash()));
    if (rel == root) {
        DYNMPI_REQUIRE(static_cast<int>(chunks.size()) == n,
                       "scatter needs one chunk per member");
        for (int r = 0; r < n; ++r) {
            if (r == root) continue;
            rank.send_wire(g.member(r), tag, chunks[(std::size_t)r].data(),
                           chunks[(std::size_t)r].size() * sizeof(T));
        }
        return chunks[static_cast<std::size_t>(root)];
    }
    return detail::bytes_to_vector<T>(rank.recv_wire(g.member(root), tag));
}

/// Inclusive prefix reduction: member j returns op(v_0, ..., v_j),
/// element-wise (linear chain — prefix order matters, op need not commute).
template <typename T, typename Op>
std::vector<T> scan(Rank& rank, const Group& g, std::vector<T> data, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int n = g.size();
    const int rel = g.index_of(rank.id());
    DYNMPI_REQUIRE(rel >= 0, "scan by non-member");
    std::uint64_t tag = detail::coll_tag(g, rank.next_group_seq(g.hash()));
    if (rel > 0) {
        auto prefix =
            detail::bytes_to_vector<T>(rank.recv_wire(g.member(rel - 1), tag));
        DYNMPI_CHECK(prefix.size() == data.size(), "scan length mismatch");
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] = op(prefix[i], data[i]);
    }
    if (rel < n - 1)
        rank.send_wire(g.member(rel + 1), tag, data.data(),
                       data.size() * sizeof(T));
    return data;
}

/// Ring shift: every member sends its vector `distance` positions up the
/// relative ring and receives from `distance` below.
template <typename T>
std::vector<T> ring_shift(Rank& rank, const Group& g,
                          const std::vector<T>& mine, int distance = 1) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int n = g.size();
    const int rel = g.index_of(rank.id());
    DYNMPI_REQUIRE(rel >= 0, "ring_shift by non-member");
    std::uint64_t tag = detail::coll_tag(g, rank.next_group_seq(g.hash()));
    int dst = ((rel + distance) % n + n) % n;
    int src = ((rel - distance) % n + n) % n;
    rank.send_wire(g.member(dst), tag, mine.data(), mine.size() * sizeof(T));
    return detail::bytes_to_vector<T>(rank.recv_wire(g.member(src), tag));
}

/// All-to-all of per-destination vectors.  outgoing[j] goes to relative rank
/// j; returns incoming[i] from relative rank i.
template <typename T>
std::vector<std::vector<T>> alltoall(Rank& rank, const Group& g,
                                     const std::vector<std::vector<T>>& outgoing) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int n = g.size();
    const int rel = g.index_of(rank.id());
    DYNMPI_REQUIRE(rel >= 0, "alltoall by non-member");
    DYNMPI_REQUIRE(static_cast<int>(outgoing.size()) == n,
                   "alltoall needs one outgoing vector per member");
    std::uint64_t tag = detail::coll_tag(g, rank.next_group_seq(g.hash()));

    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(n));
    incoming[static_cast<std::size_t>(rel)] =
        outgoing[static_cast<std::size_t>(rel)];
    // Shifted schedule spreads NIC load; eager buffering makes it safe.
    for (int s = 1; s < n; ++s) {
        int dst_rel = (rel + s) % n;
        const auto& out = outgoing[static_cast<std::size_t>(dst_rel)];
        rank.send_wire(g.member(dst_rel), tag, out.data(),
                       out.size() * sizeof(T));
    }
    for (int s = 1; s < n; ++s) {
        int src_rel = (rel - s + n) % n;
        incoming[static_cast<std::size_t>(src_rel)] =
            detail::bytes_to_vector<T>(rank.recv_wire(g.member(src_rel), tag));
    }
    return incoming;
}

}  // namespace dynmpi::msg
