// Nonblocking point-to-point operations (MPI_Isend/Irecv/Wait/Test style).
//
// The message layer is eager and buffered, so an isend completes as soon as
// the local CPU work is charged, and an irecv is a recorded intent that is
// satisfied from the mailbox at wait/test time.  Requests exist for
// source-compatibility with MPI-structured programs (post-all-receives,
// compute, wait) and for overlap tests.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dynmpi::msg {

class Rank;

class Request {
public:
    Request() = default;

    bool valid() const { return kind_ != Kind::Null; }
    bool completed() const { return complete_; }

    /// Bytes delivered (valid for completed receives).
    std::size_t byte_count() const { return received_; }
    /// Actual source rank (valid for completed receives).
    int source() const { return actual_src_; }

private:
    friend class Rank;

    enum class Kind { Null, Send, Recv };

    Kind kind_ = Kind::Null;
    int peer_ = -1;
    std::uint64_t wire_tag_ = 0;
    bool any_tag_ = false;
    void* buffer_ = nullptr;
    std::size_t capacity_ = 0;
    bool complete_ = false;
    std::size_t received_ = 0;
    int actual_src_ = -1;
};

}  // namespace dynmpi::msg
