#include "mpisim/machine.hpp"

#include <sstream>

#include "mpisim/rank.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace dynmpi::msg {

Machine::Machine(sim::ClusterConfig config) : cluster_(std::move(config)) {
    cluster_.network().set_delivery_handler(
        [this](sim::Packet&& p) { on_delivery(std::move(p)); });
    cluster_.set_crash_handler([this](int node) { on_node_crash(node); });
    cluster_.set_revive_handler([this](int node) { on_node_revive(node); });
}

Machine::~Machine() {
    // If run() threw (or was never called), make sure no rank thread is left
    // parked on its condition variable.
    {
        std::unique_lock<std::mutex> lock(mu_);
        aborting_ = true;
        for (auto& rs : ranks_)
            if (rs) rs->cv.notify_all();
    }
    for (auto& rs : ranks_)
        if (rs && rs->thread.joinable()) rs->thread.join();
}

Machine::RankState& Machine::state(int r) {
    DYNMPI_CHECK(r >= 0 && r < static_cast<int>(ranks_.size()), "bad rank");
    return *ranks_[static_cast<std::size_t>(r)];
}

void Machine::run(std::function<void(Rank&)> fn) {
    DYNMPI_REQUIRE(!started_, "a Machine runs exactly one program");
    started_ = true;
    program_ = std::move(fn); // kept beyond this frame: revived ranks rerun it

    const int n = num_ranks();
    ranks_.reserve(static_cast<std::size_t>(n));
    incarnation_.assign(static_cast<std::size_t>(n), 0);
    for (int r = 0; r < n; ++r)
        ranks_.push_back(std::make_unique<RankState>());

    for (int r = 0; r < n; ++r) {
        spawn_rank_thread(r);
        // Kick every rank off at t=0.
        cluster_.engine().at(0, [this, r] { resume_rank(r); });
    }

    // Engine loop: drain events; resume events hand the baton to ranks.
    // Weak background events (daemons, load bursts) never keep the loop
    // alive on their own.
    sim::Engine& eng = cluster_.engine();
    eng.run();

    // Strong events drained.  Any rank not Done is deadlocked (blocked with
    // no wake event) — tear them down and report.
    std::vector<int> stuck;
    for (int r = 0; r < n; ++r)
        if (state(r).phase != RankPhase::Done) stuck.push_back(r);
    if (!stuck.empty()) abort_blocked_ranks();

    for (auto& rs : ranks_)
        if (rs->thread.joinable()) rs->thread.join();

    elapsed_ = sim::to_seconds(eng.now());
    export_observability();

    for (auto& rs : ranks_)
        if (rs->error) std::rethrow_exception(rs->error);

    if (!stuck.empty()) {
        std::ostringstream os;
        os << "deadlock: event queue drained with blocked ranks:";
        for (int r : stuck) os << ' ' << r;
        if (cluster_.crashed_count() > 0) {
            os << " (crashed nodes:";
            for (int i = 0; i < cluster_.size(); ++i)
                if (cluster_.node_crashed(i)) os << ' ' << i;
            os << " — a fault landed outside the recoverable window; see"
                  " docs/FAULTS.md)";
        }
        throw Error(os.str());
    }
}

void Machine::export_observability() {
    // One shot per run, after the clock stops: delivered-traffic totals by
    // tag space plus the engine's event-queue stats.  Counters accumulate
    // across Machines in one process (bench sweeps); gauges are last-run.
    sim::Engine& eng = cluster_.engine();
    if (support::metrics().enabled()) {
        auto& mx = support::metrics();
        static const char* const kSpace[3] = {"user", "collective",
                                              "runtime"};
        for (std::size_t s = 0; s < 3; ++s) {
            mx.counter(std::string("machine.messages.") + kSpace[s])
                .add(traffic_.messages[s]);
            mx.counter(std::string("machine.bytes.") + kSpace[s])
                .add(traffic_.bytes[s]);
        }
        mx.counter("machine.messages.control").add(traffic_.control_messages);
        mx.counter("machine.bytes.control").add(traffic_.control_bytes);
        mx.counter("machine.runs").add(1);
        mx.gauge("machine.elapsed_s").set(elapsed_);
        mx.counter("sim.events_fired").add(eng.events_fired());
        mx.gauge("sim.peak_pending_events")
            .set(static_cast<double>(eng.peak_pending_events()));
        mx.gauge("sim.pending_events")
            .set(static_cast<double>(eng.pending_events()));
    }
    if (support::trace().enabled()) {
        using support::targ;
        support::trace().instant(
            elapsed_, /*rank=*/-1, "machine.run_end",
            {targ("elapsed_s", elapsed_),
             targ("messages", traffic_.total_messages()),
             targ("bytes", traffic_.total_bytes()),
             targ("control_messages", traffic_.control_messages),
             targ("events_fired", eng.events_fired()),
             targ("peak_pending_events",
                  static_cast<std::uint64_t>(eng.peak_pending_events()))});
    }
}

void Machine::spawn_rank_thread(int r) {
    RankState& rs = state(r);
    rs.thread = std::thread([this, r] {
        Rank rank(*this, r);
        // Wait for the first resume.
        {
            std::unique_lock<std::mutex> lock(mu_);
            state(r).cv.wait(lock, [&] {
                return active_rank_ == r || aborting_;
            });
            if (aborting_ && active_rank_ != r) {
                state(r).phase = RankPhase::Done;
                engine_cv_.notify_all();
                return;
            }
            state(r).phase = RankPhase::Running;
        }
        try {
            program_(rank);
        } catch (const MachineAborted&) {
            // torn down deliberately; not an error of its own
        } catch (const NodeCrashed&) {
            // this rank's node died; the process just stops existing
        } catch (...) {
            state(r).error = std::current_exception();
        }
        std::unique_lock<std::mutex> lock(mu_);
        state(r).phase = RankPhase::Done;
        active_rank_ = -1;
        engine_cv_.notify_all();
    });
}

void Machine::on_node_revive(int node) {
    // Engine context: no rank holds the baton.  The dead incarnation's thread
    // unwound via NodeCrashed when its crash wake fired (strictly before this
    // event), so it is Done; reap it and start a fresh incarnation that
    // reruns the program from the top.
    if (!started_) return;
    RankState* old = ranks_[static_cast<std::size_t>(node)].get();
    {
        std::unique_lock<std::mutex> lock(mu_);
        DYNMPI_CHECK(old->phase == RankPhase::Done,
                     "revive of a rank that has not unwound");
    }
    if (old->thread.joinable()) old->thread.join();
    if (old->error) {
        // A real error (not NodeCrashed) must not be silently discarded by
        // the state swap; keep the old state so run() rethrows it.
        return;
    }
    // Packets addressed to the dead incarnation died with it: fresh state,
    // fresh mailbox.  Deferred wakes from the old incarnation are dropped by
    // the incarnation guard.
    ++incarnation_[static_cast<std::size_t>(node)];
    ranks_[static_cast<std::size_t>(node)] = std::make_unique<RankState>();
    spawn_rank_thread(node);
    resume_rank(node);
}

void Machine::resume_rank_inc(int r, std::uint64_t inc) {
    if (inc != incarnation_[static_cast<std::size_t>(r)]) return;
    resume_rank(r);
}

void Machine::resume_rank(int r) {
    std::unique_lock<std::mutex> lock(mu_);
    RankState& rs = state(r);
    DYNMPI_CHECK(active_rank_ == -1, "resume while another rank is active");
    if (rs.phase == RankPhase::Done && cluster_.node_crashed(r)) {
        // A stale wake (batch completion, matched recv) aimed at a rank
        // whose node has since crashed and unwound.  Nothing to resume.
        return;
    }
    DYNMPI_CHECK(rs.phase != RankPhase::Done, "resume of finished rank");
    active_rank_ = r;
    rs.phase = RankPhase::Running;
    rs.cv.notify_all();
    engine_cv_.wait(lock, [&] { return active_rank_ == -1; });
}

void Machine::yield_from_rank(int r) {
    {
        std::unique_lock<std::mutex> lock(mu_);
        RankState& rs = state(r);
        rs.phase = RankPhase::Blocked;
        active_rank_ = -1;
        engine_cv_.notify_all();
        rs.cv.wait(lock, [&] { return active_rank_ == r || aborting_; });
        if (aborting_ && active_rank_ != r) throw MachineAborted{};
        rs.phase = RankPhase::Running;
    }
    // The single crash delivery point: a crash can only land while this rank
    // holds no baton (engine context), so checking on every wake-up is both
    // sufficient and race-free.
    if (cluster_.node_crashed(r)) throw NodeCrashed{};
}

void Machine::abort_blocked_ranks() {
    std::unique_lock<std::mutex> lock(mu_);
    aborting_ = true;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
        RankState& rs = *ranks_[r];
        if (rs.phase == RankPhase::Done) continue;
        rs.cv.notify_all();
        // Each aborted rank throws MachineAborted, unwinds, and marks Done.
        engine_cv_.wait(lock, [&] { return rs.phase == RankPhase::Done; });
    }
}

void Machine::on_node_crash(int node) {
    // Engine context: no rank holds the baton, so rank states are quiescent.
    if (ranks_.empty()) return; // cluster faults without a running program
    sim::Engine& eng = cluster_.engine();
    // Every crash starts a new revocation epoch: survivors stranded in a
    // protocol round that still counts the dead node must abandon it, even
    // when their current recv targets a live peer.
    ++revoke_epoch_;
    for (int r = 0; r < static_cast<int>(ranks_.size()); ++r) {
        RankState& rs = state(r);
        if (rs.phase != RankPhase::Blocked) continue;
        if (r == node) {
            // Wake the dying rank so it can unwind via NodeCrashed — whether
            // it was blocked in a recv, a compute, or a sleep.
            rs.recv_waiting = false;
            eng.at(eng.now(), [this, r] { resume_rank(r); });
        } else if (rs.recv_waiting &&
                   rs.recv_space !=
                       static_cast<std::int64_t>(TagSpace::User)) {
            // Control-plane recv: revoke so the recovery loop retries on an
            // epoch-salted group.
            rs.recv_waiting = false;
            rs.revoked = true;
            eng.at(eng.now(), [this, r] { resume_rank(r); });
        } else if (rs.recv_waiting && rs.recv_src == node) {
            // A survivor waiting specifically on the dead node gets a local
            // failure notification instead of hanging forever.
            rs.recv_waiting = false;
            rs.peer_failed = true;
            rs.failed_peer = node;
            eng.at(eng.now(), [this, r] { resume_rank(r); });
        }
    }
}

void Machine::revoke_control_recvs() {
    // Rank context: the caller holds the baton, every other rank is parked.
    ++revoke_epoch_;
    sim::Engine& eng = cluster_.engine();
    for (int r = 0; r < static_cast<int>(ranks_.size()); ++r) {
        RankState& rs = state(r);
        if (rs.phase != RankPhase::Blocked || !rs.recv_waiting) continue;
        if (rs.recv_space == static_cast<std::int64_t>(TagSpace::User))
            continue; // user-plane traffic is never revoked
        rs.recv_waiting = false;
        rs.revoked = true;
        eng.at(eng.now(), [this, r] { resume_rank(r); });
    }
}

void Machine::on_delivery(sim::Packet&& p) {
    const int dst = p.dst;
    if (p.control) {
        ++traffic_.control_messages;
        traffic_.control_bytes += p.payload.size();
    } else {
        auto space = static_cast<std::size_t>(tag_space(p.tag));
        DYNMPI_CHECK(space < 3, "unknown tag space");
        ++traffic_.messages[space];
        traffic_.bytes[space] += p.payload.size();
    }
    RankState& rs = state(dst);
    if (rs.recv_waiting) {
        bool src_ok = rs.recv_src == kAnySource || rs.recv_src == p.src;
        bool tag_ok =
            rs.recv_any_tag
                ? (rs.recv_space < 0 ||
                   static_cast<std::int64_t>(tag_space(p.tag)) ==
                       rs.recv_space)
                : p.tag == rs.recv_tag;
        if (src_ok && tag_ok) {
            rs.recv_waiting = false;
            rs.recv_result = std::move(p);
            // A blocked process that becomes runnable on a loaded node waits
            // for the scheduler (wake-up latency).
            double delay = cluster_.node(dst).cpu().next_wake_delay();
            if (delay > 0.0) {
                std::uint64_t inc = incarnation(dst);
                cluster_.engine().after(
                    sim::from_seconds(delay),
                    [this, dst, inc] { resume_rank_inc(dst, inc); });
            } else {
                resume_rank(dst);
            }
            return;
        }
    }
    rs.mailbox.push_back(std::move(p));
}

}  // namespace dynmpi::msg
