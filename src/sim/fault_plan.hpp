// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan is a list of timed fault specifications — node crashes,
// permanent slowdowns, load-report pathologies (dropped, frozen, delayed
// dmpi_ps samples), cluster-wide latency spikes, and transient send
// failures.  Plans parse from a small line-based script format (see
// docs/FAULTS.md) so benches and the quickstart can replay hostile
// histories from a file.
//
// A FaultInjector arms a plan against a Cluster: every fault becomes a
// weak engine event at its virtual injection time, so fault runs are as
// deterministic as fault-free ones — identical seed + identical script
// gives a byte-identical trace.
#pragma once

#include <string>
#include <vector>

#include "sim/cluster.hpp"

namespace dynmpi::sim {

enum class FaultKind {
    Crash,        ///< node halts: CPU, daemon, NIC all stop (until revived)
    Slowdown,     ///< node's CPU speed multiplied by `value`
    ReportDrop,   ///< dmpi_ps samples silently discarded
    ReportFreeze, ///< dmpi_ps serves a stale value with fresh timestamps
    ReportDelay,  ///< dmpi_ps samples arrive `value` seconds late
    NetDelay,     ///< cluster-wide extra one-way latency of `value` seconds
    SendLoss,     ///< next `count` data-plane sends from `node` fail
    Revive,       ///< bring a crashed node back: CPU, daemon, NIC restart
};

const char* fault_kind_name(FaultKind kind);

struct FaultSpec {
    FaultKind kind = FaultKind::Crash;
    double t = 0.0;          ///< injection time, virtual seconds
    int node = -1;           ///< target node (-1 = cluster-wide, NetDelay)
    double duration_s = 0.0; ///< window length; <= 0 means "forever"
    double value = 0.0;      ///< slow factor / delay seconds / extra latency
    int count = 0;           ///< SendLoss: number of doomed sends

    bool operator==(const FaultSpec&) const = default;
};

class FaultPlan {
public:
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    /// Parse the line-based script format; throws Error on malformed input.
    static FaultPlan parse(const std::string& text);

    /// Read and parse a script file; throws Error if unreadable.
    static FaultPlan load(const std::string& path);

    /// Render back to the script format (parse/to_string round-trips).
    std::string to_string() const;

    /// Throws Error if any fault targets a node outside [0, num_nodes) or
    /// carries nonsensical parameters for its kind.
    void validate(int num_nodes) const;
};

/// Arms a FaultPlan against a cluster.  Construction schedules every fault;
/// the injector must outlive the engine run (Cluster::install_faults keeps
/// it alive).  Each injection (and each window expiry) emits a trace event
/// ("fault.inject" / "fault.clear") and bumps the "fault.injected" counter.
class FaultInjector {
public:
    FaultInjector(Cluster& cluster, FaultPlan plan);

    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    const FaultPlan& plan() const { return plan_; }
    int injected() const { return injected_; }

private:
    void inject(const FaultSpec& f);
    void clear(const FaultSpec& f);
    void note(const char* event, const FaultSpec& f);

    Cluster& cluster_;
    FaultPlan plan_;
    int injected_ = 0;
    std::vector<double> saved_speeds_; ///< pre-slowdown speeds, per node
};

}  // namespace dynmpi::sim
