#include "sim/event_queue.hpp"

#include "support/error.hpp"

namespace dynmpi::sim {

EventId EventQueue::schedule(SimTime t, std::function<void()> fn, bool weak) {
    DYNMPI_REQUIRE(t >= 0, "event time must be non-negative");
    EventId id = next_id_++;
    heap_.push(Entry{t, id, std::move(fn)});
    if (!weak) strong_ids_.insert(id);
    return id;
}

void EventQueue::cancel(EventId id) {
    if (id != 0 && id < next_id_) {
        cancelled_.insert(id);
        strong_ids_.erase(id);
    }
}

void EventQueue::drop_cancelled_head() const {
    while (!heap_.empty()) {
        auto it = cancelled_.find(heap_.top().id);
        if (it == cancelled_.end()) return;
        cancelled_.erase(it);
        heap_.pop();
    }
}

bool EventQueue::empty() const {
    drop_cancelled_head();
    return heap_.empty();
}

SimTime EventQueue::next_time() const {
    drop_cancelled_head();
    DYNMPI_REQUIRE(!heap_.empty(), "next_time on empty queue");
    return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
    drop_cancelled_head();
    DYNMPI_REQUIRE(!heap_.empty(), "pop on empty queue");
    // priority_queue::top() is const; the entry is about to be popped, so
    // moving the callback out is safe.
    Entry& top = const_cast<Entry&>(heap_.top());
    Fired f{top.time, std::move(top.fn)};
    strong_ids_.erase(top.id);
    heap_.pop();
    return f;
}

}  // namespace dynmpi::sim
