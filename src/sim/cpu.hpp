// Processor-sharing CPU model with round-robin measurement jitter.
//
// The node's application process runs *batches* of work.  A batch costs
// `ref_sec` seconds on a reference-speed, unloaded CPU.  While `n` competing
// compute-bound processes are runnable, the app progresses at share
// 1/(1+n) of the CPU, so elapsed wall time for work w is w*(1+n)/speed.
// Load changes mid-batch recompute the completion time (fluid PS model).
//
// Measurement artifacts are modelled separately from true progress:
//  - gethrtime-style per-row wall times carry deterministic pseudo-random
//    jitter of up to `quantum_s * n` (a context switch landing inside the
//    row), which is what makes short-iteration timing unreliable (paper §4.2
//    and Figure 7);
//  - /proc-style CPU times are exact here and quantized to the 10 ms jiffy by
//    the reader (dynmpi/timing).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace dynmpi::sim {

struct CpuParams {
    double speed = 1.0;       ///< relative to the reference node
    double quantum_s = 0.030; ///< scheduler quantum, bounds timing jitter
    double jiffy_s = 0.010;   ///< /proc accounting granularity
    double jitter_frac = 1.0; ///< scale factor for measurement jitter
    /// Scheduler wake-up latency: when a blocked process becomes runnable on
    /// a node with competing processes, it waits up to wake_delay_s per
    /// competitor before running (the waker does not preempt instantly).
    double wake_delay_s = 5e-4;
    /// Per-sync-point *straggle*: timeslice granularity means a loaded
    /// node's actual CPU share over one parallel phase deviates from the
    /// fluid 1/(1+n); the node arrives at each synchronization point up to
    /// straggle_s per competitor late.  Because this penalty is constant-ish
    /// per sync while cycle times shrink with the machine size, loaded nodes
    /// grow relatively more expensive at scale — the mechanism behind the
    /// paper's node removal results (Figure 6).  Scaled by jitter_frac (the
    /// master OS-noise switch); charged by the runtime at phase boundaries.
    double straggle_s = 1.0e-3;
};

class Cpu {
public:
    Cpu(Engine& engine, int node_id, CpuParams params, std::uint64_t seed);

    Cpu(const Cpu&) = delete;
    Cpu& operator=(const Cpu&) = delete;

    // ---- load ----

    /// Set the number of runnable compute-bound competitors.
    void set_runnable_competitors(int n);
    int runnable_competitors() const { return competitors_; }

    /// Change the CPU's relative speed mid-run (fault injection: permanent
    /// or windowed slowdowns).  Progress is folded at the old speed first;
    /// an active batch has its completion rescheduled.
    void set_speed(double speed);

    /// App's instantaneous CPU share if it were computing now.
    double share() const { return 1.0 / (1.0 + competitors_); }

    // ---- app work ----

    /// Begin a batch costing `ref_sec` reference-CPU seconds; `on_done` fires
    /// at the virtual time the batch completes.  One batch at a time.
    void start_batch(double ref_sec, std::function<void()> on_done);

    bool busy() const { return busy_; }

    /// Abandon any active batch without firing its completion callback (the
    /// node crashed: the process ceases to exist, so nobody may be resumed).
    void halt();

    /// Exact accumulated CPU seconds consumed by the app process.
    double app_cpu_seconds() const;

    /// Notified with `true` when the app starts computing and `false` when it
    /// stops (used to keep the process table and load integral current).
    void set_app_running_cb(std::function<void(bool)> cb);

    /// Scheduling delay before a just-woken blocked process runs (0 when the
    /// node is unloaded).  Deterministic per call via an internal counter.
    double next_wake_delay();

    /// Residual scheduling delay a loaded node pays at a synchronization
    /// point: u * straggle_s per competitor (see CpuParams::straggle_s).
    double sync_straggle();

    // ---- per-row measurement reconstruction ----

    struct RowTimes {
        std::vector<double> wall; ///< measured wall time per row (with jitter)
        std::vector<double> cpu;  ///< exact CPU seconds per row
    };

    /// Reconstruct measured per-row times for a batch of rows that started
    /// executing at virtual time `t0`.  `row_ref_sec[i]` is row i's cost in
    /// reference-CPU seconds.  `batch_seed` decorrelates jitter across
    /// batches.  The reconstruction walks the recorded load timeline, so it
    /// is consistent with the true batch elapsed time.
    RowTimes reconstruct_rows(const std::vector<double>& row_ref_sec,
                              SimTime t0, std::uint64_t batch_seed) const;

    const CpuParams& params() const { return params_; }

    std::uint64_t batches_run() const { return batch_seq_; }

private:
    struct Segment {
        SimTime start;
        int competitors;
    };

    /// Account progress of the active batch up to engine.now().
    void advance_progress();
    void schedule_completion();
    void finish_batch();

    /// Measurement jitter for a work item of `cpu_sec`: a preemption lands
    /// inside the item with probability cpu_sec/quantum; when it does, the
    /// item's wall time absorbs up to competitors*quantum of competing
    /// execution.  Most short items therefore measure clean — the property
    /// that makes the paper's min-over-grace-period filter effective.
    double jitter_for(int competitors, std::uint64_t salt,
                      double cpu_sec) const;

    Engine& engine_;
    int node_id_;
    CpuParams params_;
    std::uint64_t seed_;

    int competitors_ = 0;
    std::vector<Segment> timeline_{{0, 0}};

    bool busy_ = false;
    double remaining_cpu_ = 0.0; ///< cpu-seconds at this node's speed
    SimTime last_update_ = 0;
    double app_cpu_ = 0.0;
    double batch_jitter_ = 0.0; ///< extra wall time appended to this batch
    EventId completion_event_ = 0;
    std::function<void()> on_done_;
    std::function<void(bool)> app_running_cb_;
    std::uint64_t batch_seq_ = 0;
    std::uint64_t wake_seq_ = 0;
    std::uint64_t straggle_seq_ = 0;
};

}  // namespace dynmpi::sim
