// Load-sensing daemons.
//
// PsDaemon models the paper's dmpi_ps: a per-node daemon that wakes every
// second and reports how many processes are competing for the CPU.  Unlike
// vmstat-based sensing it (a) always includes the monitored application and
// (b) integrates over the whole window rather than sampling an instant, so a
// competing process that happens to be blocked at the sampling instant is
// still accounted for in proportion to its actual demand.
//
// VmstatSampler is the unreliable baseline the paper rejects: an
// instantaneous count of runnable processes, which misses processes that
// have voluntarily relinquished the CPU (e.g. blocked at a receive).
#pragma once

#include <deque>
#include <vector>

#include "sim/engine.hpp"
#include "sim/node.hpp"

namespace dynmpi::sim {

class PsDaemon {
public:
    struct Sample {
        SimTime time = 0;
        double avg_competing = 0.0; ///< time-weighted over the last period
    };

    /// Starts ticking immediately; first sample lands one period in.
    PsDaemon(Engine& engine, Node& node, SimTime period = kNsPerSec);

    PsDaemon(const PsDaemon&) = delete;
    PsDaemon& operator=(const PsDaemon&) = delete;

    /// Time-weighted average number of competing runnable processes over the
    /// most recent completed window (0 before the first sample).
    double avg_competing() const;

    /// Integer load as dmpi_ps reports it: competing processes rounded to the
    /// nearest integer, plus one for the monitored application itself.
    int reported_load() const;

    /// Fraction of this node's CPU the application can expect:
    /// 1 / (1 + avg_competing).
    double reported_share() const;

    SimTime last_sample_time() const;
    const std::vector<Sample>& history() const { return history_; }

    /// Average competing load over the last `window_s` seconds of completed
    /// samples (0 when nothing has been sampled yet).
    double avg_over(double window_s) const;

    SimTime period() const { return period_; }

    // ---- fault hooks ----

    /// Silently discard new samples (the daemon still ticks, so it recovers
    /// cleanly when the fault window closes).
    void set_dropping(bool dropping) { dropping_ = dropping; }

    /// Serve a value captured at enable time with *fresh* timestamps — the
    /// pathology a pure staleness check cannot see.
    void set_frozen(bool frozen);

    /// New samples become visible `delay_s` seconds late, keeping their
    /// original timestamps (so staleness checks see an aging report).
    /// 0 disables and flushes nothing early — pending samples still land.
    void set_report_delay(double delay_s);

    /// Restart the tick loop after a node revival.  The integral baseline is
    /// resynced so the first post-revival sample covers only its own window,
    /// not the whole dead interval.
    void restart();

private:
    void tick();

    Engine& engine_;
    Node& node_;
    SimTime period_;
    double prev_integral_ = 0.0;
    std::vector<Sample> history_;

    bool dropping_ = false;
    bool frozen_ = false;
    double frozen_value_ = 0.0;
    double delay_s_ = 0.0;
    std::deque<Sample> pending_; ///< delayed samples not yet visible
};

/// vmstat-style instantaneous sampler (baseline for the §4.2 comparison).
class VmstatSampler {
public:
    explicit VmstatSampler(Node& node) : node_(node) {}

    /// Count of processes in Running/Ready state *right now*, excluding the
    /// monitored application (it does not show as runnable while blocked at
    /// a receive — exactly the failure mode the paper describes).
    int sample_runnable() const;

private:
    Node& node_;
};

}  // namespace dynmpi::sim
