#include "sim/cluster.hpp"

#include "sim/fault_plan.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace dynmpi::sim {

Cluster::~Cluster() = default;

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
    DYNMPI_REQUIRE(config_.num_nodes > 0, "cluster needs at least one node");
    DYNMPI_REQUIRE(config_.speeds.empty() ||
                       static_cast<int>(config_.speeds.size()) ==
                           config_.num_nodes,
                   "speeds must be empty or have one entry per node");
    network_ = std::make_unique<Network>(engine_, config_.net,
                                         config_.num_nodes);
    DYNMPI_REQUIRE(config_.memories.empty() ||
                       static_cast<int>(config_.memories.size()) ==
                           config_.num_nodes,
                   "memories must be empty or have one entry per node");
    for (int i = 0; i < config_.num_nodes; ++i) {
        CpuParams cp = config_.cpu;
        if (!config_.speeds.empty())
            cp.speed = config_.speeds[static_cast<std::size_t>(i)];
        std::uint64_t mem =
            config_.memories.empty()
                ? config_.node_memory_bytes
                : config_.memories[static_cast<std::size_t>(i)];
        nodes_.push_back(std::make_unique<Node>(
            engine_, i, cp,
            hash_combine(config_.seed, static_cast<std::uint64_t>(i)), mem));
        daemons_.push_back(std::make_unique<PsDaemon>(engine_, *nodes_.back(),
                                                      config_.ps_period));
    }
}

Node& Cluster::node(int i) {
    DYNMPI_REQUIRE(i >= 0 && i < size(), "node index out of range");
    return *nodes_[static_cast<std::size_t>(i)];
}

PsDaemon& Cluster::daemon(int i) {
    DYNMPI_REQUIRE(i >= 0 && i < size(), "daemon index out of range");
    return *daemons_[static_cast<std::size_t>(i)];
}

int Cluster::spawn_competing(int node_id, BurstSpec spec) {
    return node(node_id).spawn_competing("competing", spec);
}

void Cluster::kill_competing(int node_id, int pid) {
    node(node_id).kill_competing(pid);
}

void Cluster::add_load_interval(int node_id, double t_start, double t_end,
                                int count, BurstSpec spec) {
    DYNMPI_REQUIRE(t_start >= 0.0, "negative start time");
    DYNMPI_REQUIRE(count > 0, "count must be positive");
    DYNMPI_REQUIRE(t_end < 0.0 || t_end > t_start,
                   "interval must end after it starts");
    for (int c = 0; c < count; ++c) {
        engine_.at(
            from_seconds(t_start),
            [this, node_id, t_end, spec] {
                int pid = spawn_competing(node_id, spec);
                if (t_end >= 0.0)
                    engine_.at(
                        from_seconds(t_end),
                        [this, node_id, pid] { kill_competing(node_id, pid); },
                        /*weak=*/true);
            },
            /*weak=*/true);
    }
}

void Cluster::add_parallel_app(const std::vector<int>& nodes, double t_start,
                               double t_end, double period_s, double duty) {
    DYNMPI_REQUIRE(!nodes.empty(), "parallel app needs nodes");
    DYNMPI_REQUIRE(period_s > 0.0 && duty > 0.0 && duty <= 1.0,
                   "bad parallel-app phase shape");
    // One lockstep bursty process per node: spawned at the same instant with
    // the same spec, their toggle chains stay synchronized — the signature
    // of a parallel application's compute/communicate phases.
    for (int node_id : nodes)
        add_load_interval(node_id, t_start, t_end, 1,
                          BurstSpec{period_s, duty});
}

void Cluster::at(double t, std::function<void()> fn) {
    engine_.at(from_seconds(t), std::move(fn), /*weak=*/true);
}

void Cluster::crash_node(int node_id) {
    Node& n = node(node_id);
    if (n.crashed()) return;
    n.crash();
    network_->mark_crashed(node_id);
    if (crash_handler_) crash_handler_(node_id);
}

bool Cluster::node_crashed(int node_id) const {
    DYNMPI_REQUIRE(node_id >= 0 && node_id < size(),
                   "node index out of range");
    return nodes_[static_cast<std::size_t>(node_id)]->crashed();
}

int Cluster::crashed_count() const {
    int n = 0;
    for (const auto& node : nodes_)
        if (node->crashed()) ++n;
    return n;
}

void Cluster::revive_node(int node_id) {
    Node& n = node(node_id);
    if (!n.crashed()) return;
    n.revive();
    network_->mark_alive(node_id);
    daemon(node_id).restart();
    if (revive_handler_) revive_handler_(node_id);
}

int Cluster::node_generation(int node_id) const {
    DYNMPI_REQUIRE(node_id >= 0 && node_id < size(),
                   "node index out of range");
    return nodes_[static_cast<std::size_t>(node_id)]->generation();
}

void Cluster::set_crash_handler(std::function<void(int)> handler) {
    crash_handler_ = std::move(handler);
}

void Cluster::set_revive_handler(std::function<void(int)> handler) {
    revive_handler_ = std::move(handler);
}

void Cluster::install_faults(const FaultPlan& plan) {
    DYNMPI_REQUIRE(injector_ == nullptr, "fault plan already installed");
    injector_ = std::make_unique<FaultInjector>(*this, plan);
}

}  // namespace dynmpi::sim
