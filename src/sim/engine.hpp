// Discrete-event engine: virtual clock + event queue.
//
// The engine is single-threaded from its own point of view: events run on the
// thread that calls run*(), and everything the events touch is owned by that
// logical thread of control (the SPMD machine hands a "baton" between the
// engine and rank threads; see mpisim/machine.hpp).
#pragma once

#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace dynmpi::sim {

class Engine {
public:
    /// Current virtual time.
    SimTime now() const { return now_; }

    /// Schedule `fn` at absolute virtual time `t` (>= now).  Weak events are
    /// background activity that never justifies keeping the simulation alive
    /// on its own (daemon ticks, load-burst toggles).
    EventId at(SimTime t, std::function<void()> fn, bool weak = false);

    /// Schedule `fn` after a delay from now.
    EventId after(SimTime delay, std::function<void()> fn, bool weak = false);

    void cancel(EventId id) { queue_.cancel(id); }

    /// Run events until no *strong* events remain (weak background events may
    /// still be pending).
    void run();

    /// True while at least one strong event is pending.
    bool has_strong() const { return queue_.strong_count() > 0; }

    /// Run events with time <= t, then set the clock to t.
    void run_until(SimTime t);

    /// Process a single event if one exists; returns false when idle.
    bool step();

    bool idle() const { return queue_.empty(); }
    std::size_t pending_events() const { return queue_.size(); }
    std::uint64_t events_fired() const { return fired_; }
    /// High-water mark of the pending-event count (queue pressure).
    std::size_t peak_pending_events() const { return peak_pending_; }

private:
    EventQueue queue_;
    SimTime now_ = 0;
    std::uint64_t fired_ = 0;
    std::size_t peak_pending_ = 0;
};

}  // namespace dynmpi::sim
