// The simulated non-dedicated cluster: engine + nodes + network + daemons.
//
// A Cluster bundles everything below the message layer and provides the
// load-scripting hooks benches use to introduce and retire competing
// processes at virtual times ("a competing process is started on node k at
// the 10th iteration" in the paper becomes either a timed interval or an
// app-triggered spawn).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/ps_daemon.hpp"

namespace dynmpi::sim {

class FaultPlan;
class FaultInjector;

struct ClusterConfig {
    int num_nodes = 4;
    std::vector<double> speeds; ///< per-node relative speed; empty → all 1.0
    CpuParams cpu;              ///< template for every node (speed overridden)
    NetParams net;
    std::uint64_t seed = 42;
    SimTime ps_period = kNsPerSec; ///< dmpi_ps sampling period
    /// Physical memory per node for application data; 0 = unlimited.
    /// Exceeding it models paging (the AppLeS-style constraint the
    /// memory-aware balancer avoids).
    std::uint64_t node_memory_bytes = 0;
    std::vector<std::uint64_t> memories; ///< per-node override; empty → uniform
};

class Cluster {
public:
    explicit Cluster(ClusterConfig config);
    ~Cluster();

    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    Engine& engine() { return engine_; }
    Network& network() { return *network_; }
    int size() const { return static_cast<int>(nodes_.size()); }
    Node& node(int i);
    PsDaemon& daemon(int i);
    const ClusterConfig& config() const { return config_; }

    // ---- load scripting ----

    /// Spawn a competing process right now; returns its pid.
    int spawn_competing(int node, BurstSpec spec = {});

    void kill_competing(int node, int pid);

    /// Schedule `count` competing processes on `node` for the virtual-time
    /// interval [t_start, t_end) (t_end < 0 means "forever").
    void add_load_interval(int node, double t_start, double t_end,
                           int count = 1, BurstSpec spec = {});

    /// A competing *parallel* application (the paper's future-work case):
    /// one process per listed node, all alternating compute/communicate in
    /// lockstep with the given period and compute fraction.  Instantaneous
    /// samplers see them flapping between all-runnable and all-blocked;
    /// the windowed dmpi_ps average prices them at `duty`.
    void add_parallel_app(const std::vector<int>& nodes, double t_start,
                          double t_end, double period_s, double duty);

    /// Run an arbitrary callback at a virtual time (bench scripting).
    void at(double t, std::function<void()> fn);

    // ---- faults ----

    /// Permanently halt a node: fold its load integral, stop its daemon,
    /// and make the network discard its traffic.  Idempotent.  Fires the
    /// crash handler (if any) so the message layer can wake blocked ranks.
    void crash_node(int node);
    bool node_crashed(int node) const;
    int crashed_count() const;

    /// Bring a crashed node back: clear the crashed flags, restart its
    /// daemon, and fire the revive handler so the message layer can restart
    /// the node's rank.  No-op on a live node.
    void revive_node(int node);
    /// How many times `node` has been revived (0 = original incarnation).
    int node_generation(int node) const;

    /// Installed by the message layer; invoked from engine context once per
    /// crash, after the node and network are already marked dead.
    void set_crash_handler(std::function<void(int)> handler);

    /// Installed by the message layer; invoked from engine context once per
    /// revival, after the node, network, and daemon are serving again.
    void set_revive_handler(std::function<void(int)> handler);

    /// Arm a fault plan against this cluster (validates the plan and
    /// schedules every fault).  The injector lives as long as the cluster.
    void install_faults(const FaultPlan& plan);
    const FaultInjector* faults() const { return injector_.get(); }

private:
    ClusterConfig config_;
    Engine engine_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::unique_ptr<Network> network_;
    std::vector<std::unique_ptr<PsDaemon>> daemons_;
    std::function<void(int)> crash_handler_;
    std::function<void(int)> revive_handler_;
    std::unique_ptr<FaultInjector> injector_;
};

}  // namespace dynmpi::sim
