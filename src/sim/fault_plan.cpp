#include "sim/fault_plan.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace dynmpi::sim {

const char* fault_kind_name(FaultKind kind) {
    switch (kind) {
    case FaultKind::Crash: return "crash";
    case FaultKind::Slowdown: return "slow";
    case FaultKind::ReportDrop: return "drop-reports";
    case FaultKind::ReportFreeze: return "freeze-reports";
    case FaultKind::ReportDelay: return "delay-reports";
    case FaultKind::NetDelay: return "net-delay";
    case FaultKind::SendLoss: return "lose-sends";
    case FaultKind::Revive: return "revive";
    }
    return "?";
}

namespace {

bool kind_from_name(const std::string& name, FaultKind& out) {
    for (FaultKind k :
         {FaultKind::Crash, FaultKind::Slowdown, FaultKind::ReportDrop,
          FaultKind::ReportFreeze, FaultKind::ReportDelay, FaultKind::NetDelay,
          FaultKind::SendLoss, FaultKind::Revive}) {
        if (name == fault_kind_name(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

double parse_number(const std::string& token, int lineno) {
    std::size_t used = 0;
    double v = 0.0;
    try {
        v = std::stod(token, &used);
    } catch (const std::exception&) {
        used = 0;
    }
    if (used != token.size())
        throw Error("fault script line " + std::to_string(lineno) +
                    ": bad number '" + token + "'");
    return v;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
    FaultPlan plan;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream tokens(line);
        std::string word;
        if (!(tokens >> word)) continue; // blank or comment-only line

        FaultSpec f;
        if (!kind_from_name(word, f.kind))
            throw Error("fault script line " + std::to_string(lineno) +
                        ": unknown fault kind '" + word + "'");
        bool have_t = false;
        while (tokens >> word) {
            auto eq = word.find('=');
            if (eq == std::string::npos || eq == 0 || eq + 1 == word.size())
                throw Error("fault script line " + std::to_string(lineno) +
                            ": expected key=value, got '" + word + "'");
            std::string key = word.substr(0, eq);
            double v = parse_number(word.substr(eq + 1), lineno);
            if (key == "t") {
                f.t = v;
                have_t = true;
            } else if (key == "node") {
                f.node = static_cast<int>(v);
            } else if (key == "dur") {
                f.duration_s = v;
            } else if (key == "count") {
                f.count = static_cast<int>(v);
            } else if (key == "factor" || key == "delay" || key == "extra") {
                f.value = v;
            } else {
                throw Error("fault script line " + std::to_string(lineno) +
                            ": unknown key '" + key + "'");
            }
        }
        if (!have_t)
            throw Error("fault script line " + std::to_string(lineno) +
                        ": every fault needs t=<seconds>");
        plan.faults.push_back(f);
    }
    return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read fault script: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str());
}

std::string FaultPlan::to_string() const {
    std::ostringstream out;
    for (const FaultSpec& f : faults) {
        out << fault_kind_name(f.kind);
        if (f.node >= 0) out << " node=" << f.node;
        out << " t=" << f.t;
        if (f.duration_s > 0.0) out << " dur=" << f.duration_s;
        switch (f.kind) {
        case FaultKind::Slowdown: out << " factor=" << f.value; break;
        case FaultKind::ReportDelay: out << " delay=" << f.value; break;
        case FaultKind::NetDelay: out << " extra=" << f.value; break;
        case FaultKind::SendLoss: out << " count=" << f.count; break;
        default: break;
        }
        out << '\n';
    }
    return out.str();
}

void FaultPlan::validate(int num_nodes) const {
    for (const FaultSpec& f : faults) {
        const std::string where =
            std::string(fault_kind_name(f.kind)) + " at t=" +
            std::to_string(f.t);
        if (f.t < 0.0) throw Error("fault before t=0: " + where);
        bool needs_node = f.kind != FaultKind::NetDelay;
        if (needs_node && (f.node < 0 || f.node >= num_nodes))
            throw Error("fault targets node outside the cluster: " + where);
        if (f.kind == FaultKind::Slowdown && f.value <= 0.0)
            throw Error("slowdown factor must be positive: " + where);
        if (f.kind == FaultKind::ReportDelay && f.value <= 0.0)
            throw Error("report delay must be positive: " + where);
        if (f.kind == FaultKind::NetDelay && f.value <= 0.0)
            throw Error("extra latency must be positive: " + where);
        if (f.kind == FaultKind::SendLoss && f.count <= 0)
            throw Error("send-loss count must be positive: " + where);
        if (f.kind == FaultKind::Revive) {
            // A revive must resurrect a node that a strictly earlier crash
            // took down and that no earlier revive already restored.
            int down = 0;
            for (const FaultSpec& g : faults) {
                if (g.node != f.node || g.t >= f.t) continue;
                if (g.kind == FaultKind::Crash) ++down;
                if (g.kind == FaultKind::Revive) --down;
            }
            if (down <= 0)
                throw Error("revive without an earlier crash of the same "
                            "node (or double revive): " + where);
        }
    }
}

FaultInjector::FaultInjector(Cluster& cluster, FaultPlan plan)
    : cluster_(cluster), plan_(std::move(plan)) {
    plan_.validate(cluster_.size());
    saved_speeds_.assign(static_cast<std::size_t>(cluster_.size()), 0.0);
    for (const FaultSpec& f : plan_.faults) {
        cluster_.engine().at(
            from_seconds(f.t), [this, f] { inject(f); }, /*weak=*/true);
        bool window = f.duration_s > 0.0 && f.kind != FaultKind::Crash &&
                      f.kind != FaultKind::SendLoss &&
                      f.kind != FaultKind::Revive;
        if (window)
            cluster_.engine().at(
                from_seconds(f.t + f.duration_s), [this, f] { clear(f); },
                /*weak=*/true);
    }
}

void FaultInjector::note(const char* event, const FaultSpec& f) {
    if (support::trace().enabled()) {
        using support::targ;
        support::trace().instant(
            to_seconds(cluster_.engine().now()), /*rank=*/-1, event,
            {targ("kind", fault_kind_name(f.kind)), targ("node", f.node)});
    }
    // The literal is an event-name comparator, not a metric emission.
    const bool injected =
        std::string(event) == "fault.inject"; // dynmpi-lint: ok(trace-name)
    if (support::metrics().enabled() && injected) {
        support::metrics().counter("fault.injected").add(1);
        support::metrics()
            .counter(std::string("fault.injected.") + fault_kind_name(f.kind))
            .add(1);
    }
}

void FaultInjector::inject(const FaultSpec& f) {
    ++injected_;
    note("fault.inject", f);
    switch (f.kind) {
    case FaultKind::Crash:
        cluster_.crash_node(f.node);
        break;
    case FaultKind::Slowdown: {
        Cpu& cpu = cluster_.node(f.node).cpu();
        saved_speeds_[static_cast<std::size_t>(f.node)] = cpu.params().speed;
        cpu.set_speed(cpu.params().speed * f.value);
        break;
    }
    case FaultKind::ReportDrop:
        cluster_.daemon(f.node).set_dropping(true);
        break;
    case FaultKind::ReportFreeze:
        cluster_.daemon(f.node).set_frozen(true);
        break;
    case FaultKind::ReportDelay:
        cluster_.daemon(f.node).set_report_delay(f.value);
        break;
    case FaultKind::NetDelay:
        cluster_.network().set_extra_latency(f.value);
        break;
    case FaultKind::SendLoss:
        cluster_.network().add_send_failures(f.node, f.count);
        break;
    case FaultKind::Revive:
        cluster_.revive_node(f.node);
        break;
    }
}

void FaultInjector::clear(const FaultSpec& f) {
    note("fault.clear", f);
    switch (f.kind) {
    case FaultKind::Slowdown:
        cluster_.node(f.node).cpu().set_speed(
            saved_speeds_[static_cast<std::size_t>(f.node)]);
        break;
    case FaultKind::ReportDrop:
        cluster_.daemon(f.node).set_dropping(false);
        break;
    case FaultKind::ReportFreeze:
        cluster_.daemon(f.node).set_frozen(false);
        break;
    case FaultKind::ReportDelay:
        cluster_.daemon(f.node).set_report_delay(0.0);
        break;
    case FaultKind::NetDelay:
        cluster_.network().set_extra_latency(0.0);
        break;
    default:
        break;
    }
}

}  // namespace dynmpi::sim
