#include "sim/load_trace.hpp"

#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace dynmpi::sim {

namespace {

[[noreturn]] void bad_line(const std::string& line, const char* why) {
    throw Error(std::string("load trace: ") + why + " in line: \"" + line +
                "\"");
}

std::vector<std::string> tokens_of(const std::string& s) {
    std::istringstream is(s);
    std::vector<std::string> out;
    std::string t;
    while (is >> t) out.push_back(t);
    return out;
}

}  // namespace

std::vector<LoadDirective> parse_load_trace(const std::string& text) {
    std::vector<LoadDirective> out;
    std::istringstream lines(text);
    std::string raw;
    while (std::getline(lines, raw)) {
        std::string line = raw.substr(0, raw.find('#'));
        auto toks = tokens_of(line);
        if (toks.empty()) continue;
        if (toks[0] != "node" || toks.size() < 3)
            bad_line(raw, "expected 'node <id>: <start> ...'");

        LoadDirective d;
        std::string id = toks[1];
        if (id.empty() || id.back() != ':')
            bad_line(raw, "missing ':' after node id");
        try {
            d.node = std::stoi(id.substr(0, id.size() - 1));
            d.start_s = std::stod(toks[2]);
        } catch (const std::exception&) {
            bad_line(raw, "bad node id or start time");
        }
        std::size_t next = 3;
        if (next < toks.size() && toks[next] != "inf" &&
            (std::isdigit(static_cast<unsigned char>(toks[next][0])) ||
             toks[next][0] == '.')) {
            try {
                d.end_s = std::stod(toks[next]);
            } catch (const std::exception&) {
                bad_line(raw, "bad end time");
            }
            ++next;
        } else if (next < toks.size() && toks[next] == "inf") {
            d.end_s = -1.0;
            ++next;
        }
        for (; next < toks.size(); ++next) {
            const std::string& t = toks[next];
            if (t.size() > 1 && t[0] == 'x') {
                try {
                    d.count = std::stoi(t.substr(1));
                } catch (const std::exception&) {
                    bad_line(raw, "bad count");
                }
            } else if (t.rfind("bursty(", 0) == 0 && t.back() == ')') {
                double period, duty;
                if (std::sscanf(t.c_str(), "bursty(%lf,%lf)", &period,
                                &duty) != 2)
                    bad_line(raw, "bad bursty(...) spec");
                d.burst.period_s = period;
                d.burst.duty = duty;
            } else {
                bad_line(raw, "unknown token");
            }
        }
        if (d.node < 0) bad_line(raw, "negative node id");
        if (d.start_s < 0) bad_line(raw, "negative start time");
        if (d.end_s >= 0 && d.end_s <= d.start_s)
            bad_line(raw, "end time must exceed start time");
        if (d.count <= 0) bad_line(raw, "count must be positive");
        out.push_back(d);
    }
    return out;
}

void apply_load_trace(Cluster& cluster,
                      const std::vector<LoadDirective>& trace) {
    for (const auto& d : trace)
        cluster.add_load_interval(d.node, d.start_s, d.end_s, d.count,
                                  d.burst);
}

void apply_load_trace(Cluster& cluster, const std::string& text) {
    apply_load_trace(cluster, parse_load_trace(text));
}

std::string format_load_trace(const std::vector<LoadDirective>& trace) {
    std::ostringstream os;
    for (const auto& d : trace) {
        os << "node " << d.node << ": " << d.start_s << ' ';
        if (d.end_s < 0)
            os << "inf";
        else
            os << d.end_s;
        if (d.count != 1) os << " x" << d.count;
        if (d.burst.period_s > 0)
            os << " bursty(" << d.burst.period_s << ',' << d.burst.duty
               << ')';
        os << '\n';
    }
    return os.str();
}

}  // namespace dynmpi::sim
