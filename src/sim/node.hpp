// A simulated cluster node: CPU, process table, and competing processes.
//
// Competing processes model other users of a non-dedicated node.  They are
// compute-bound (the paper uses infinite loops) and may optionally be
// *bursty*, alternating runnable and blocked phases — the workload that
// separates dmpi_ps-style time-averaged load sensing from vmstat-style
// instantaneous sampling.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/process_table.hpp"

namespace dynmpi::sim {

/// Duty cycle of a competing process.  period_s == 0 means always runnable.
struct BurstSpec {
    double period_s = 0.0;
    double duty = 1.0; ///< fraction of each period spent runnable
    bool operator==(const BurstSpec&) const = default;
};

class Node {
public:
    Node(Engine& engine, int id, CpuParams cpu_params, std::uint64_t seed,
         std::uint64_t memory_bytes = 0);

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    int id() const { return id_; }
    Cpu& cpu() { return cpu_; }
    const Cpu& cpu() const { return cpu_; }
    ProcessTable& procs() { return table_; }

    /// Pid of the (single) monitored application process on this node.
    int app_pid() const { return app_pid_; }

    // ---- failure ----

    /// Halt this node forever: the load integral is folded at the crash
    /// instant and the crashed flag raised.  The network, daemon, and
    /// message layer all consult crashed() to stop serving the node.
    void crash();
    bool crashed() const { return crashed_; }
    /// Virtual time of the crash (valid only when crashed()).
    SimTime crashed_at() const { return crashed_at_; }

    /// Bring a crashed node back: the crashed flag drops and the incarnation
    /// counter bumps.  The CPU is already clean idle (halt() cancelled any
    /// pending completion); the daemon and rank are restarted by the cluster.
    void revive();

    /// How many times this node has been revived (0 = original incarnation).
    int generation() const { return generation_; }

    /// Physical memory available for application data (0 = unlimited).
    std::uint64_t memory_bytes() const { return memory_bytes_; }

    // ---- competing processes ----

    /// Start a competing process; returns its pid.
    int spawn_competing(std::string name, BurstSpec spec = {});

    /// Terminate a competing process started with spawn_competing.
    void kill_competing(int pid);

    /// Number of competing processes currently runnable.
    int active_competing() const { return active_competing_; }

    /// Number of competing processes spawned and not yet killed.
    int competing_count() const { return static_cast<int>(burst_.size()); }

    /// ∫ active_competing dt from simulation start to now, in process-seconds
    /// (basis for windowed load averages).
    double competing_integral() const;

    /// `ps`-style snapshot with the app's CPU time filled in.
    std::vector<ProcessInfo> ps_snapshot() const;

private:
    struct CompetingState {
        BurstSpec spec;
        bool runnable = false;
        EventId toggle_event = 0;
    };

    void set_competing_runnable(int pid, bool runnable);
    void schedule_toggle(int pid);

    Engine& engine_;
    int id_;
    std::uint64_t seed_;
    std::uint64_t memory_bytes_;
    ProcessTable table_;
    Cpu cpu_;
    int app_pid_;
    int daemon_pid_;

    // Keyed lookups only (spawn/kill/toggle by pid); never iterated.
    std::unordered_map<int, CompetingState> burst_; // dynmpi-lint: ok(unordered-lookup)
    int active_competing_ = 0;
    bool crashed_ = false;
    SimTime crashed_at_ = 0;
    int generation_ = 0;

    mutable double integral_ = 0.0;
    mutable SimTime integral_last_ = 0;
};

}  // namespace dynmpi::sim
