#include "sim/node.hpp"

#include "support/error.hpp"

namespace dynmpi::sim {

Node::Node(Engine& engine, int id, CpuParams cpu_params, std::uint64_t seed,
           std::uint64_t memory_bytes)
    : engine_(engine),
      id_(id),
      seed_(seed),
      memory_bytes_(memory_bytes),
      cpu_(engine, id, cpu_params, seed),
      app_pid_(table_.add(ProcKind::App, "mpi_rank", ProcState::Blocked)),
      daemon_pid_(table_.add(ProcKind::Daemon, "dmpi_ps", ProcState::Blocked)) {
    cpu_.set_app_running_cb([this](bool running) {
        table_.set_state(app_pid_,
                         running ? ProcState::Running : ProcState::Blocked);
    });
}

void Node::crash() {
    if (crashed_) return;
    competing_integral(); // fold the load integral up to the crash instant
    cpu_.halt(); // a pending batch completion must never resume a dead rank
    crashed_ = true;
    crashed_at_ = engine_.now();
}

void Node::revive() {
    if (!crashed_) return;
    competing_integral(); // fold the dead interval before load accrues again
    crashed_ = false;
    ++generation_;
}

double Node::competing_integral() const {
    integral_ +=
        active_competing_ * to_seconds(engine_.now() - integral_last_);
    integral_last_ = engine_.now();
    return integral_;
}

void Node::set_competing_runnable(int pid, bool runnable) {
    auto it = burst_.find(pid);
    if (it == burst_.end()) return; // killed while a toggle was in flight
    if (it->second.runnable == runnable) return;
    competing_integral(); // fold the elapsed interval at the old level
    it->second.runnable = runnable;
    active_competing_ += runnable ? 1 : -1;
    table_.set_state(pid, runnable ? ProcState::Ready : ProcState::Blocked);
    cpu_.set_runnable_competitors(active_competing_);
}

void Node::schedule_toggle(int pid) {
    auto it = burst_.find(pid);
    DYNMPI_CHECK(it != burst_.end(), "toggle for unknown competing process");
    const BurstSpec& spec = it->second.spec;
    if (spec.period_s <= 0.0 || spec.duty >= 1.0) return; // constant load
    double span = it->second.runnable ? spec.period_s * spec.duty
                                      : spec.period_s * (1.0 - spec.duty);
    bool next_state = !it->second.runnable;
    it->second.toggle_event = engine_.after(
        from_seconds(span),
        [this, pid, next_state] {
            set_competing_runnable(pid, next_state);
            schedule_toggle(pid);
        },
        /*weak=*/true);
}

int Node::spawn_competing(std::string name, BurstSpec spec) {
    DYNMPI_REQUIRE(spec.duty > 0.0 && spec.duty <= 1.0,
                   "duty must be in (0, 1]");
    int pid = table_.add(ProcKind::Competing, std::move(name));
    burst_.emplace(pid, CompetingState{spec, false, 0});
    set_competing_runnable(pid, true);
    schedule_toggle(pid);
    return pid;
}

void Node::kill_competing(int pid) {
    auto it = burst_.find(pid);
    DYNMPI_REQUIRE(it != burst_.end(), "kill of unknown competing pid");
    if (it->second.toggle_event != 0) engine_.cancel(it->second.toggle_event);
    set_competing_runnable(pid, false);
    burst_.erase(pid);
    table_.remove(pid);
}

std::vector<ProcessInfo> Node::ps_snapshot() const {
    auto snap = table_.snapshot();
    for (auto& p : snap)
        if (p.pid == app_pid_) p.cpu_seconds = cpu_.app_cpu_seconds();
    return snap;
}

}  // namespace dynmpi::sim
