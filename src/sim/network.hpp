// Switched-Ethernet network model.
//
// Matches the paper's testbed (switched 100 Mb/s Ethernet): a message from
// src to dst is serialized through the sender's NIC (bytes/bandwidth, FIFO
// per node), crosses the switch with a fixed latency, and is handed to the
// destination's delivery handler.  The switch backplane is not a bottleneck.
//
// The *CPU* cost of communication (per-message overhead plus per-byte copy
// cost) is deliberately kept in NetParams but charged by the message layer
// through the node's Cpu — that CPU component is what makes naive
// relative-power distributions suboptimal (paper §4.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace dynmpi::sim {

struct NetParams {
    double latency_s = 1e-4;      ///< one-way wire+switch latency
    double bandwidth_Bps = 12.5e6; ///< 100 Mb/s
    double cpu_per_msg_s = 5e-5;  ///< sender/receiver CPU overhead per message
    double cpu_per_byte_s = 2e-9; ///< CPU copy cost per byte on each side
    double self_latency_s = 1e-6; ///< loopback delivery latency
    int send_retries = 4;         ///< bounded resend attempts on send failure
    double send_backoff_s = 1e-3; ///< base backoff, doubled per attempt

    /// CPU seconds a host spends handling one message of `bytes` bytes.
    double cpu_cost(std::size_t bytes) const {
        return cpu_per_msg_s + cpu_per_byte_s * static_cast<double>(bytes);
    }
};

/// A message in flight.  Tag semantics belong to the message layer.
struct Packet {
    int src = -1;
    int dst = -1;
    std::uint64_t tag = 0;
    /// Control-plane (daemon-band) traffic: skips NIC serialization and is
    /// not charged to the application CPU — the dmpi_ps daemons gossip load
    /// and coordination data out-of-band (paper §4.2).
    bool control = false;
    std::vector<std::byte> payload;
};

class Network {
public:
    Network(Engine& engine, NetParams params, int num_nodes);

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /// Install the upcall invoked (at delivery time) for every packet.
    void set_delivery_handler(std::function<void(Packet&&)> handler);

    /// Inject a packet at the sender's NIC at the current virtual time.
    /// Serialization and latency are applied; delivery fires later.
    /// Returns false iff the send failed transiently (an armed fault token
    /// was consumed) — the caller may retry.  Packets touching a crashed
    /// node are dropped silently but "succeed": a dead peer looks exactly
    /// like an unresponsive one to the sender.
    bool transmit(Packet&& p);

    // ---- fault hooks ----

    /// Mark a node as crashed: all future traffic to or from it (including
    /// packets already in flight toward it) is discarded.
    void mark_crashed(int node);
    bool crashed(int node) const {
        return crashed_[static_cast<std::size_t>(node)] != 0;
    }

    /// Restore service to a revived node (undoes mark_crashed).  Packets
    /// dropped while it was down stay dropped.
    void mark_alive(int node);

    /// Arm `count` transient failures: the next `count` data-plane sends
    /// from `node` return false from transmit().
    void add_send_failures(int node, int count);

    /// Cluster-wide extra one-way latency (0 restores normal service).
    void set_extra_latency(double seconds);
    double extra_latency() const { return extra_latency_; }

    const NetParams& params() const { return params_; }

    /// Pure model query: wall seconds for `bytes` to cross one link unloaded
    /// (serialization + latency), excluding host CPU costs.
    double wire_time(std::size_t bytes) const {
        return params_.latency_s +
               static_cast<double>(bytes) / params_.bandwidth_Bps;
    }

    std::uint64_t messages_sent() const { return messages_; }
    std::uint64_t bytes_sent() const { return bytes_; }
    std::uint64_t send_failures() const { return send_failures_; }
    std::uint64_t dropped_crashed() const { return dropped_crashed_; }

private:
    Engine& engine_;
    NetParams params_;
    std::vector<SimTime> nic_free_; ///< per-node earliest NIC availability
    std::function<void(Packet&&)> deliver_;
    std::uint64_t messages_ = 0;
    std::uint64_t bytes_ = 0;
    std::vector<char> crashed_;    ///< per-node crashed flag
    std::vector<int> fail_tokens_; ///< per-node armed transient send failures
    double extra_latency_ = 0.0;   ///< injected cluster-wide latency spike
    std::uint64_t send_failures_ = 0;
    std::uint64_t dropped_crashed_ = 0;
};

}  // namespace dynmpi::sim
