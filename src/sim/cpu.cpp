#include "sim/cpu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace dynmpi::sim {

namespace {
// Completion events are scheduled with ceil rounding so the batch never fires
// before its work is done; any sub-nanosecond residue is clamped at finish.
SimTime ceil_ns(double seconds) {
    return static_cast<SimTime>(std::ceil(seconds * 1e9));
}
}  // namespace

Cpu::Cpu(Engine& engine, int node_id, CpuParams params, std::uint64_t seed)
    : engine_(engine), node_id_(node_id), params_(params), seed_(seed) {
    DYNMPI_REQUIRE(params_.speed > 0.0, "cpu speed must be positive");
}

void Cpu::set_app_running_cb(std::function<void(bool)> cb) {
    app_running_cb_ = std::move(cb);
}

void Cpu::advance_progress() {
    if (!busy_) {
        last_update_ = engine_.now();
        return;
    }
    double wall = to_seconds(engine_.now() - last_update_);
    double consumed = std::min(wall * share(), remaining_cpu_);
    remaining_cpu_ -= consumed;
    app_cpu_ += consumed;
    last_update_ = engine_.now();
}

void Cpu::schedule_completion() {
    if (completion_event_ != 0) engine_.cancel(completion_event_);
    double wall_left = remaining_cpu_ / share() + batch_jitter_;
    completion_event_ =
        engine_.after(ceil_ns(wall_left), [this] { finish_batch(); });
}

void Cpu::set_runnable_competitors(int n) {
    DYNMPI_REQUIRE(n >= 0, "negative competitor count");
    if (n == competitors_) return;
    advance_progress();
    competitors_ = n;
    timeline_.push_back(Segment{engine_.now(), n});
    if (busy_) schedule_completion();
}

void Cpu::set_speed(double speed) {
    DYNMPI_REQUIRE(speed > 0.0, "cpu speed must be positive");
    if (speed == params_.speed) return;
    advance_progress();
    // remaining_cpu_ is denominated in cpu-seconds *at this node's speed*,
    // so the outstanding work rescales with the speed ratio.
    remaining_cpu_ *= params_.speed / speed;
    params_.speed = speed;
    if (busy_) schedule_completion();
}

double Cpu::jitter_for(int competitors, std::uint64_t salt,
                       double cpu_sec) const {
    if (competitors <= 0 || params_.jitter_frac <= 0.0 || cpu_sec <= 0.0)
        return 0.0;
    std::uint64_t h = hash_combine(
        hash_combine(seed_, static_cast<std::uint64_t>(node_id_)), salt);
    double u_hit = static_cast<double>(h >> 11) * 0x1.0p-53;
    double p_hit = std::min(1.0, cpu_sec / params_.quantum_s);
    if (u_hit >= p_hit) return 0.0; // no preemption landed in this item
    double u_mag =
        static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
    return params_.quantum_s * competitors * params_.jitter_frac * u_mag;
}

void Cpu::start_batch(double ref_sec, std::function<void()> on_done) {
    DYNMPI_REQUIRE(!busy_, "cpu already has an active batch");
    DYNMPI_REQUIRE(ref_sec >= 0.0, "negative work");
    ++batch_seq_;
    busy_ = true;
    remaining_cpu_ = ref_sec / params_.speed;
    last_update_ = engine_.now();
    // True batch progress follows the fluid processor-sharing model exactly;
    // the straggle model lives at the sync points (sync_straggle) and the
    // quantum-scale jitter only in *measurements* (reconstruct_rows).
    batch_jitter_ = 0.0;
    on_done_ = std::move(on_done);
    if (app_running_cb_) app_running_cb_(true);
    schedule_completion();
}

void Cpu::finish_batch() {
    DYNMPI_CHECK(busy_, "completion fired with no active batch");
    advance_progress();
    // ceil rounding plus fluid-model arithmetic leaves at most a few ns of
    // residue; fold it into the accounting and close the batch.
    app_cpu_ += remaining_cpu_;
    remaining_cpu_ = 0.0;
    busy_ = false;
    completion_event_ = 0;
    if (app_running_cb_) app_running_cb_(false);
    auto done = std::move(on_done_);
    on_done_ = nullptr;
    if (done) done();
}

void Cpu::halt() {
    if (!busy_) return;
    advance_progress();
    if (completion_event_ != 0) engine_.cancel(completion_event_);
    completion_event_ = 0;
    busy_ = false;
    remaining_cpu_ = 0.0;
    on_done_ = nullptr;
    if (app_running_cb_) app_running_cb_(false);
}

double Cpu::next_wake_delay() {
    ++wake_seq_;
    if (competitors_ <= 0 || params_.wake_delay_s <= 0.0 ||
        params_.jitter_frac <= 0.0)
        return 0.0;
    std::uint64_t h = hash_combine(
        hash_combine(seed_ ^ 0xAAuLL, static_cast<std::uint64_t>(node_id_)),
        wake_seq_);
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return params_.wake_delay_s * competitors_ * u;
}

double Cpu::sync_straggle() {
    ++straggle_seq_;
    if (competitors_ <= 0 || params_.straggle_s <= 0.0 ||
        params_.jitter_frac <= 0.0)
        return 0.0;
    std::uint64_t h = hash_combine(
        hash_combine(seed_ ^ 0x5757ULL, static_cast<std::uint64_t>(node_id_)),
        straggle_seq_);
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u * params_.straggle_s * competitors_ * params_.jitter_frac;
}

double Cpu::app_cpu_seconds() const {
    double extra = 0.0;
    if (busy_) {
        double wall = to_seconds(engine_.now() - last_update_);
        extra = std::min(wall * (1.0 / (1.0 + competitors_)), remaining_cpu_);
    }
    return app_cpu_ + extra;
}

Cpu::RowTimes Cpu::reconstruct_rows(const std::vector<double>& row_ref_sec,
                                    SimTime t0,
                                    std::uint64_t batch_seed) const {
    RowTimes out;
    out.wall.reserve(row_ref_sec.size());
    out.cpu.reserve(row_ref_sec.size());

    // Find the timeline segment containing t0.
    std::size_t seg = 0;
    while (seg + 1 < timeline_.size() && timeline_[seg + 1].start <= t0) ++seg;

    double t = to_seconds(t0);
    for (std::size_t r = 0; r < row_ref_sec.size(); ++r) {
        double cpu_need = row_ref_sec[r] / params_.speed;
        double cpu_left = cpu_need;
        double wall = 0.0;
        int jitter_competitors = timeline_[seg].competitors;
        while (cpu_left > 0.0) {
            int n = timeline_[seg].competitors;
            double rate = 1.0 / (1.0 + n);
            double seg_end = seg + 1 < timeline_.size()
                                 ? to_seconds(timeline_[seg + 1].start)
                                 : std::numeric_limits<double>::infinity();
            double wall_needed = cpu_left / rate;
            if (t + wall_needed <= seg_end) {
                wall += wall_needed;
                t += wall_needed;
                cpu_left = 0.0;
            } else {
                double span = seg_end - t;
                wall += span;
                cpu_left -= span * rate;
                t = seg_end;
                ++seg;
                DYNMPI_CHECK(seg < timeline_.size(),
                             "ran past cpu timeline during reconstruction");
            }
        }
        double noise = jitter_for(jitter_competitors,
                                  hash_combine(batch_seed, r + 1), cpu_need);
        out.wall.push_back(wall + noise);
        out.cpu.push_back(cpu_need);
    }
    return out;
}

}  // namespace dynmpi::sim
