#include "sim/engine.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dynmpi::sim {

EventId Engine::at(SimTime t, std::function<void()> fn, bool weak) {
    DYNMPI_REQUIRE(t >= now_, "cannot schedule an event in the past");
    return queue_.schedule(t, std::move(fn), weak);
}

EventId Engine::after(SimTime delay, std::function<void()> fn, bool weak) {
    DYNMPI_REQUIRE(delay >= 0, "negative delay");
    return queue_.schedule(now_ + delay, std::move(fn), weak);
}

bool Engine::step() {
    if (queue_.empty()) return false;
    peak_pending_ = std::max(peak_pending_, queue_.size());
    auto [time, fn] = queue_.pop();
    DYNMPI_CHECK(time >= now_, "event queue went backwards");
    now_ = time;
    ++fired_;
    fn();
    return true;
}

void Engine::run() {
    while (has_strong()) {
        bool fired = step();
        DYNMPI_CHECK(fired, "strong events pending but nothing fired");
    }
}

void Engine::run_until(SimTime t) {
    DYNMPI_REQUIRE(t >= now_, "run_until into the past");
    while (!queue_.empty() && queue_.next_time() <= t) step();
    now_ = t;
}

}  // namespace dynmpi::sim
