#include "sim/process_table.hpp"

namespace dynmpi::sim {

int ProcessTable::add(ProcKind kind, std::string name, ProcState initial) {
    ProcessInfo p;
    p.pid = static_cast<int>(procs_.size());
    p.kind = kind;
    p.state = initial;
    p.name = std::move(name);
    procs_.push_back(std::move(p));
    return procs_.back().pid;
}

ProcessInfo& ProcessTable::entry(int pid) {
    DYNMPI_REQUIRE(exists(pid), "unknown pid");
    return procs_[static_cast<std::size_t>(pid)];
}

const ProcessInfo& ProcessTable::entry(int pid) const {
    DYNMPI_REQUIRE(exists(pid), "unknown pid");
    return procs_[static_cast<std::size_t>(pid)];
}

bool ProcessTable::exists(int pid) const {
    return pid >= 0 && pid < static_cast<int>(procs_.size()) &&
           procs_[static_cast<std::size_t>(pid)].pid == pid;
}

void ProcessTable::remove(int pid) { entry(pid).pid = -1; }

const ProcessInfo& ProcessTable::info(int pid) const { return entry(pid); }

std::vector<ProcessInfo> ProcessTable::snapshot() const {
    std::vector<ProcessInfo> out;
    for (const auto& p : procs_)
        if (p.pid != -1) out.push_back(p);
    return out;
}

int ProcessTable::count_runnable() const {
    int n = 0;
    for (const auto& p : procs_)
        if (p.pid != -1 &&
            (p.state == ProcState::Running || p.state == ProcState::Ready))
            ++n;
    return n;
}

std::size_t ProcessTable::size() const {
    std::size_t n = 0;
    for (const auto& p : procs_)
        if (p.pid != -1) ++n;
    return n;
}

}  // namespace dynmpi::sim
