// Virtual time for the discrete-event simulator.
//
// The engine clock is an int64 count of nanoseconds since simulation start.
// Public APIs that deal in durations use double seconds for convenience and
// convert at the boundary.
#pragma once

#include <cstdint>

namespace dynmpi::sim {

/// Virtual time in nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNsPerSec = 1'000'000'000;

/// Convert double seconds to a SimTime duration (rounds to nearest ns).
constexpr SimTime from_seconds(double s) {
    return static_cast<SimTime>(s * static_cast<double>(kNsPerSec) + 0.5);
}

/// Convert a SimTime duration to double seconds.
constexpr double to_seconds(SimTime t) {
    return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

constexpr SimTime from_millis(double ms) { return from_seconds(ms * 1e-3); }
constexpr SimTime from_micros(double us) { return from_seconds(us * 1e-6); }

}  // namespace dynmpi::sim
