// Deterministic event queue.
//
// Events at equal timestamps fire in schedule order (sequence-number
// tie-breaking), so a simulation run is a pure function of its inputs.
// Cancellation is lazy: cancelled ids are skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace dynmpi::sim {

/// Identifier for a scheduled event, usable with cancel().
using EventId = std::uint64_t;

/// Priority queue of (time, seq, action) with stable ordering.
///
/// Events are *strong* by default.  Recurring background activity (daemon
/// ticks, load-burst toggles) is scheduled *weak*: weak events fire normally
/// while the simulation is moving, but a run loop may stop once only weak
/// events remain — otherwise self-rescheduling daemons would keep the clock
/// ticking forever.
class EventQueue {
public:
    /// Schedule `fn` to fire at absolute time `t`.  Returns an id.
    EventId schedule(SimTime t, std::function<void()> fn, bool weak = false);

    /// Number of live strong events.
    std::size_t strong_count() const { return strong_ids_.size(); }

    /// Cancel a previously scheduled event.  Cancelling an already-fired or
    /// unknown id is a no-op.
    void cancel(EventId id);

    /// True when no live events remain.
    bool empty() const;

    /// Time of the earliest live event.  Precondition: !empty().
    SimTime next_time() const;

    /// Pop and return the earliest live event.  Precondition: !empty().
    struct Fired {
        SimTime time;
        std::function<void()> fn;
    };
    Fired pop();

    std::size_t size() const { return heap_.size() - cancelled_.size(); }

private:
    struct Entry {
        SimTime time;
        EventId id;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.id > b.id;
        }
    };

    void drop_cancelled_head() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    // Membership tests and size() only; ordering comes from the heap.
    mutable std::unordered_set<EventId> cancelled_; // dynmpi-lint: ok(unordered-lookup)
    std::unordered_set<EventId> strong_ids_;        // dynmpi-lint: ok(unordered-lookup)
    EventId next_id_ = 1;
};

}  // namespace dynmpi::sim
