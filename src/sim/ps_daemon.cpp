#include "sim/ps_daemon.hpp"

#include <cmath>

#include "support/error.hpp"

namespace dynmpi::sim {

PsDaemon::PsDaemon(Engine& engine, Node& node, SimTime period)
    : engine_(engine), node_(node), period_(period) {
    DYNMPI_REQUIRE(period > 0, "daemon period must be positive");
    engine_.after(period_, [this] { tick(); }, /*weak=*/true);
}

void PsDaemon::set_frozen(bool frozen) {
    if (frozen && !frozen_) frozen_value_ = avg_competing();
    frozen_ = frozen;
}

void PsDaemon::set_report_delay(double delay_s) {
    DYNMPI_REQUIRE(delay_s >= 0.0, "report delay must be non-negative");
    delay_s_ = delay_s;
}

void PsDaemon::restart() {
    if (node_.crashed()) return;
    prev_integral_ = node_.competing_integral();
    engine_.after(period_, [this] { tick(); }, /*weak=*/true);
}

void PsDaemon::tick() {
    if (node_.crashed()) return; // daemon dies with its node: no reschedule
    double integral = node_.competing_integral();
    double avg = (integral - prev_integral_) / to_seconds(period_);
    prev_integral_ = integral;
    while (!pending_.empty() &&
           pending_.front().time + from_seconds(delay_s_) <= engine_.now()) {
        history_.push_back(pending_.front());
        pending_.pop_front();
    }
    if (!dropping_) {
        // Frozen daemons report the captured value *with a fresh timestamp*;
        // delayed samples keep their true timestamp so they age visibly.
        Sample s{engine_.now(), frozen_ ? frozen_value_ : avg};
        if (delay_s_ > 0.0)
            pending_.push_back(s);
        else
            history_.push_back(s);
    }
    engine_.after(period_, [this] { tick(); }, /*weak=*/true);
}

double PsDaemon::avg_competing() const {
    return history_.empty() ? 0.0 : history_.back().avg_competing;
}

int PsDaemon::reported_load() const {
    return 1 + static_cast<int>(std::lround(avg_competing()));
}

double PsDaemon::reported_share() const {
    return 1.0 / (1.0 + avg_competing());
}

SimTime PsDaemon::last_sample_time() const {
    return history_.empty() ? -1 : history_.back().time;
}

double PsDaemon::avg_over(double window_s) const {
    if (history_.empty()) return 0.0;
    SimTime cutoff = history_.back().time - from_seconds(window_s);
    double sum = 0.0;
    int n = 0;
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
        if (it->time <= cutoff) break;
        sum += it->avg_competing;
        ++n;
    }
    return n > 0 ? sum / n : history_.back().avg_competing;
}

int VmstatSampler::sample_runnable() const {
    int n = 0;
    for (const auto& p : node_.procs().snapshot())
        if (p.kind != ProcKind::App &&
            (p.state == ProcState::Running || p.state == ProcState::Ready))
            ++n;
    return n;
}

}  // namespace dynmpi::sim
