#include "sim/ps_daemon.hpp"

#include <cmath>

#include "support/error.hpp"

namespace dynmpi::sim {

PsDaemon::PsDaemon(Engine& engine, Node& node, SimTime period)
    : engine_(engine), node_(node), period_(period) {
    DYNMPI_REQUIRE(period > 0, "daemon period must be positive");
    engine_.after(period_, [this] { tick(); }, /*weak=*/true);
}

void PsDaemon::tick() {
    double integral = node_.competing_integral();
    double avg = (integral - prev_integral_) / to_seconds(period_);
    prev_integral_ = integral;
    history_.push_back(Sample{engine_.now(), avg});
    engine_.after(period_, [this] { tick(); }, /*weak=*/true);
}

double PsDaemon::avg_competing() const {
    return history_.empty() ? 0.0 : history_.back().avg_competing;
}

int PsDaemon::reported_load() const {
    return 1 + static_cast<int>(std::lround(avg_competing()));
}

double PsDaemon::reported_share() const {
    return 1.0 / (1.0 + avg_competing());
}

SimTime PsDaemon::last_sample_time() const {
    return history_.empty() ? -1 : history_.back().time;
}

double PsDaemon::avg_over(double window_s) const {
    if (history_.empty()) return 0.0;
    SimTime cutoff = history_.back().time - from_seconds(window_s);
    double sum = 0.0;
    int n = 0;
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
        if (it->time <= cutoff) break;
        sum += it->avg_competing;
        ++n;
    }
    return n > 0 ? sum / n : history_.back().avg_competing;
}

int VmstatSampler::sample_runnable() const {
    int n = 0;
    for (const auto& p : node_.procs().snapshot())
        if (p.kind != ProcKind::App &&
            (p.state == ProcState::Running || p.state == ProcState::Ready))
            ++n;
    return n;
}

}  // namespace dynmpi::sim
