// Per-node process table.
//
// Models just enough of a Unix process table for the load-sensing components:
// each process has a kind, a run state, and accumulated CPU time.  The
// dmpi_ps daemon and the vmstat-style sampler read snapshots of this table.
#pragma once

#include <string>
#include <vector>

#include "support/error.hpp"

namespace dynmpi::sim {

/// Scheduler state of a simulated process.
enum class ProcState { Running, Ready, Blocked };

/// What a simulated process is.
enum class ProcKind { App, Competing, Daemon };

struct ProcessInfo {
    int pid = -1;
    ProcKind kind = ProcKind::Competing;
    ProcState state = ProcState::Blocked;
    double cpu_seconds = 0.0;
    std::string name;
};

class ProcessTable {
public:
    /// Register a new process; returns its pid.
    int add(ProcKind kind, std::string name,
            ProcState initial = ProcState::Blocked);

    /// Remove a process.  Unknown pids are rejected.
    void remove(int pid);

    void set_state(int pid, ProcState s) { entry(pid).state = s; }
    void add_cpu(int pid, double sec) { entry(pid).cpu_seconds += sec; }

    bool exists(int pid) const;
    const ProcessInfo& info(int pid) const;

    /// `ps`-style snapshot of all live processes.
    std::vector<ProcessInfo> snapshot() const;

    /// Count of processes in Running or Ready state.
    int count_runnable() const;

    std::size_t size() const;

private:
    ProcessInfo& entry(int pid);
    const ProcessInfo& entry(int pid) const;

    // Indexed by pid; removed entries keep pid == -1 as a tombstone.
    std::vector<ProcessInfo> procs_;
};

}  // namespace dynmpi::sim
