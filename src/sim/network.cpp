#include "sim/network.hpp"

#include <algorithm>
#include <memory>

#include "support/error.hpp"

namespace dynmpi::sim {

Network::Network(Engine& engine, NetParams params, int num_nodes)
    : engine_(engine), params_(params) {
    DYNMPI_REQUIRE(num_nodes > 0, "network needs at least one node");
    DYNMPI_REQUIRE(params_.bandwidth_Bps > 0.0, "bandwidth must be positive");
    nic_free_.assign(static_cast<std::size_t>(num_nodes), 0);
    crashed_.assign(static_cast<std::size_t>(num_nodes), 0);
    fail_tokens_.assign(static_cast<std::size_t>(num_nodes), 0);
}

void Network::set_delivery_handler(std::function<void(Packet&&)> handler) {
    deliver_ = std::move(handler);
}

void Network::mark_crashed(int node) {
    DYNMPI_REQUIRE(node >= 0 && node < static_cast<int>(crashed_.size()),
                   "bad node in mark_crashed");
    crashed_[static_cast<std::size_t>(node)] = 1;
}

void Network::mark_alive(int node) {
    DYNMPI_REQUIRE(node >= 0 && node < static_cast<int>(crashed_.size()),
                   "bad node in mark_alive");
    crashed_[static_cast<std::size_t>(node)] = 0;
}

void Network::add_send_failures(int node, int count) {
    DYNMPI_REQUIRE(node >= 0 && node < static_cast<int>(fail_tokens_.size()),
                   "bad node in add_send_failures");
    DYNMPI_REQUIRE(count > 0, "send-failure count must be positive");
    fail_tokens_[static_cast<std::size_t>(node)] += count;
}

void Network::set_extra_latency(double seconds) {
    DYNMPI_REQUIRE(seconds >= 0.0, "extra latency must be non-negative");
    extra_latency_ = seconds;
}

bool Network::transmit(Packet&& p) {
    DYNMPI_REQUIRE(deliver_ != nullptr, "no delivery handler installed");
    DYNMPI_REQUIRE(p.src >= 0 && p.src < static_cast<int>(nic_free_.size()),
                   "bad source node");
    DYNMPI_REQUIRE(p.dst >= 0 && p.dst < static_cast<int>(nic_free_.size()),
                   "bad destination node");
    if (crashed(p.src) || crashed(p.dst)) {
        // A dead peer looks like an unresponsive one: the packet vanishes
        // but the send itself "succeeds" from the caller's viewpoint.
        ++dropped_crashed_;
        return true;
    }
    if (!p.control && fail_tokens_[static_cast<std::size_t>(p.src)] > 0) {
        --fail_tokens_[static_cast<std::size_t>(p.src)];
        ++send_failures_;
        return false;
    }
    ++messages_;
    bytes_ += p.payload.size();

    SimTime deliver_at;
    if (p.src == p.dst) {
        deliver_at = engine_.now() + from_seconds(params_.self_latency_s);
    } else if (p.control) {
        deliver_at = engine_.now() +
                     from_seconds(params_.latency_s + extra_latency_);
    } else {
        SimTime start = std::max(engine_.now(),
                                 nic_free_[static_cast<std::size_t>(p.src)]);
        SimTime xfer = from_seconds(static_cast<double>(p.payload.size()) /
                                    params_.bandwidth_Bps);
        nic_free_[static_cast<std::size_t>(p.src)] = start + xfer;
        deliver_at =
            start + xfer + from_seconds(params_.latency_s + extra_latency_);
    }

    auto boxed = std::make_shared<Packet>(std::move(p));
    engine_.at(deliver_at, [this, boxed] {
        // The destination may have crashed while the packet was in flight.
        if (crashed(boxed->dst)) {
            ++dropped_crashed_;
            return;
        }
        deliver_(std::move(*boxed));
    });
    return true;
}

}  // namespace dynmpi::sim
