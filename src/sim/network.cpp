#include "sim/network.hpp"

#include <algorithm>
#include <memory>

#include "support/error.hpp"

namespace dynmpi::sim {

Network::Network(Engine& engine, NetParams params, int num_nodes)
    : engine_(engine), params_(params) {
    DYNMPI_REQUIRE(num_nodes > 0, "network needs at least one node");
    DYNMPI_REQUIRE(params_.bandwidth_Bps > 0.0, "bandwidth must be positive");
    nic_free_.assign(static_cast<std::size_t>(num_nodes), 0);
}

void Network::set_delivery_handler(std::function<void(Packet&&)> handler) {
    deliver_ = std::move(handler);
}

void Network::transmit(Packet&& p) {
    DYNMPI_REQUIRE(deliver_ != nullptr, "no delivery handler installed");
    DYNMPI_REQUIRE(p.src >= 0 && p.src < static_cast<int>(nic_free_.size()),
                   "bad source node");
    DYNMPI_REQUIRE(p.dst >= 0 && p.dst < static_cast<int>(nic_free_.size()),
                   "bad destination node");
    ++messages_;
    bytes_ += p.payload.size();

    SimTime deliver_at;
    if (p.src == p.dst) {
        deliver_at = engine_.now() + from_seconds(params_.self_latency_s);
    } else if (p.control) {
        deliver_at = engine_.now() + from_seconds(params_.latency_s);
    } else {
        SimTime start = std::max(engine_.now(),
                                 nic_free_[static_cast<std::size_t>(p.src)]);
        SimTime xfer = from_seconds(static_cast<double>(p.payload.size()) /
                                    params_.bandwidth_Bps);
        nic_free_[static_cast<std::size_t>(p.src)] = start + xfer;
        deliver_at = start + xfer + from_seconds(params_.latency_s);
    }

    auto boxed = std::make_shared<Packet>(std::move(p));
    engine_.at(deliver_at, [this, boxed] { deliver_(std::move(*boxed)); });
}

}  // namespace dynmpi::sim
