// Textual load traces.
//
// Benches and examples script competing-process activity; a small trace
// language keeps those scripts data, not code, so experiments can be varied
// without recompiling (and load histories can be logged and replayed).
//
// Grammar (one directive per line, '#' comments):
//
//   node <id>: <start> [<end>|inf] [x<count>] [bursty(<period>,<duty>)]
//
// Examples:
//   # two steady competing processes on node 3 from t=1.0 forever
//   node 3: 1.0 inf x2
//   # a half-duty bursty process on node 0 between 2 and 8 seconds
//   node 0: 2.0 8.0 bursty(0.25,0.5)
#pragma once

#include <string>
#include <vector>

#include "sim/cluster.hpp"

namespace dynmpi::sim {

struct LoadDirective {
    int node = 0;
    double start_s = 0.0;
    double end_s = -1.0; ///< -1 = forever
    int count = 1;
    BurstSpec burst;

    bool operator==(const LoadDirective&) const = default;
};

/// Parse a trace; throws Error with the offending line on syntax problems.
std::vector<LoadDirective> parse_load_trace(const std::string& text);

/// Schedule every directive on the cluster.
void apply_load_trace(Cluster& cluster,
                      const std::vector<LoadDirective>& trace);

/// Convenience: parse + apply.
void apply_load_trace(Cluster& cluster, const std::string& text);

/// Render directives back to trace text (round-trips through the parser).
std::string format_load_trace(const std::vector<LoadDirective>& trace);

}  // namespace dynmpi::sim
