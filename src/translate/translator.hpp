// The MPI → Dyn-MPI translator (paper §2.3).
//
// Produces a TranslationPlan: the exact list of DMPI_* insertions a
// preprocessor would make.  Most entries are the mechanical one-to-one part
// (DMPI_init, registrations, phase inits, loop-bound substitution,
// participating guard, relative-rank rewrites); the `accesses` come from
// DRSD analysis of the loop references, deduplicated per (array, mode, a, b).
//
// The plan can be rendered as Figure-2 style source text (emit_source) or
// applied directly to a live Runtime (configure_runtime) so that generic
// executors can run the translated program.
#pragma once

#include "dynmpi/runtime.hpp"
#include "translate/program_ir.hpp"

namespace dynmpi::xlate {

/// One phase of the translated program.
struct PhasePlan {
    int lo = 0, hi = 0;
    PhaseComm comm;
    /// Deduplicated DRSD insertions (the "sophisticated" part of §2.3).
    std::vector<Drsd> accesses;
};

struct TranslationPlan {
    std::string program;
    int global_rows = 0;
    std::vector<ArrayDecl> registrations;
    std::vector<PhasePlan> phases;
};

/// Analyze the program and produce the insertion plan.
/// Communication-pattern inference: a full-range read means the phase
/// gathers a global vector (AllGather); otherwise non-zero offsets mean
/// nearest-neighbor ghost exchange; otherwise no communication.
TranslationPlan translate(const MpiProgram& program);

/// Render the plan as Dyn-MPI source text in the style of the paper's
/// Figure 2 (setup section plus the rewritten phase-cycle skeleton).
std::string emit_source(const TranslationPlan& plan);

/// Apply the plan to a Runtime (registrations, phases, accesses) and commit.
/// Returns one phase id per PhasePlan.
std::vector<int> configure_runtime(Runtime& rt, const TranslationPlan& plan);

/// Generic executor for a translated program: runs `cycles` phase cycles,
/// charging `sec_per_row` per iteration per phase and performing the
/// phase's inferred communication (ghost exchange or allgather) over the
/// registered arrays.  This is what makes the translation executable rather
/// than just printable.
struct TranslatedRunResult {
    RuntimeStats stats;
    std::vector<int> final_counts;
};
TranslatedRunResult run_translated(msg::Rank& rank, const MpiProgram& program,
                                   int cycles, double sec_per_row,
                                   RuntimeOptions options = {});

}  // namespace dynmpi::xlate
