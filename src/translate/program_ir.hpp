// Intermediate representation of an MPI SPMD program for translation to
// Dyn-MPI (paper §2.3).
//
// The paper splits the MPI→Dyn-MPI transformation into a mechanical part
// (one-to-one call insertion) and a sophisticated part (deriving one
// DMPI_add_array_access per array reference — the DRSDs).  This IR captures
// what a front end (the paper modified SUIF) would hand to the translator:
// the distributed arrays, the partitioned loops (phases) with their affine
// array references, and the communication each phase performs.
//
// References may be written in the *global* view (row = a*i + b for global
// iteration i) or the *local* view an already-distributed MPI program uses
// (row = local offset from the block start).  §2.3 notes that converting the
// local view back to the global view is the reverse of the Fortran D
// translation — `globalize` below implements it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dynmpi/comm_model.hpp"
#include "dynmpi/drsd.hpp"

namespace dynmpi::xlate {

/// A distributed array declaration in the source program.
struct ArrayDecl {
    std::string name;
    int row_elems = 1;           ///< product of the non-distributed dims
    std::size_t elem_bytes = 8;
    bool sparse = false;
    int sparse_cols = 0; ///< for sparse arrays
};

/// One array reference inside a partitioned loop.
struct ArrayRef {
    std::string array;
    AccessMode mode = AccessMode::Read;

    /// Affine reference row = a*i + b (global view), or a full-array read
    /// (e.g. the gathered vector in CG's q = A*p).
    bool full_range = false;
    int a = 1;
    int b = 0;

    bool operator==(const ArrayRef&) const = default;
};

/// A partitioned loop: computation over iterations [lo, hi) followed by the
/// communication the source program performs explicitly.
struct LoopNest {
    std::string index_var = "i";
    int lo = 0;
    int hi = 0;
    std::vector<ArrayRef> refs;
};

/// The whole program: iterative SPMD with a phase cycle around the loops.
struct MpiProgram {
    std::string name;
    int global_rows = 0;
    std::vector<ArrayDecl> arrays;
    std::vector<LoopNest> loops;
};

/// §2.3: convert a *local-view* reference (offset from the local block start
/// in a block-distributed MPI program) into the global-view affine form.
/// A reference `A[local_i + offset]` where `local_i` enumerates the local
/// block corresponds to the global reference row = i + offset.
ArrayRef globalize(const std::string& array, AccessMode mode,
                   int local_offset);

}  // namespace dynmpi::xlate
