// Deterministic pseudo-random utilities.
//
// All randomness in the simulator flows through these seeded generators so
// every test and bench run is bit-for-bit reproducible.  splitmix64 is used
// both as a stream generator and as a stateless hash (for, e.g., per-node
// quantum-jitter phases that must not depend on call order).
#pragma once

#include <cstdint>

namespace dynmpi {

/// One splitmix64 step: maps any 64-bit value to a well-mixed 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Combine two 64-bit values into one hash (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
    return splitmix64(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
}

/// Small, fast, seedable PRNG (splitmix64 stream).
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x1234abcdULL) : state_(seed) {}

    std::uint64_t next_u64() {
        state_ += 0x9e3779b97f4a7c15ULL;
        std::uint64_t x = state_;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    /// Uniform double in [0, 1).
    double next_double() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, n).  n must be > 0.
    std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        return lo + (hi - lo) * next_double();
    }

private:
    std::uint64_t state_;
};

}  // namespace dynmpi
