// Error-handling primitives shared by every dynmpi module.
//
// Simulation and runtime invariants are enforced with DYNMPI_CHECK /
// DYNMPI_REQUIRE.  A violated invariant throws dynmpi::Error carrying the
// failing expression and location; tests assert on these, and benches treat
// them as fatal.
#pragma once

#include <stdexcept>
#include <string>

namespace dynmpi {

/// Exception thrown on any violated precondition or internal invariant.
class Error : public std::runtime_error {
public:
    explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

namespace detail {
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& msg);
}  // namespace detail

}  // namespace dynmpi

/// Validate a caller-supplied argument; message may use stream-free text.
#define DYNMPI_REQUIRE(expr, msg)                                              \
    do {                                                                       \
        if (!(expr))                                                           \
            ::dynmpi::detail::fail("precondition", #expr, __FILE__, __LINE__,  \
                                   (msg));                                     \
    } while (0)

/// Validate an internal invariant.
#define DYNMPI_CHECK(expr, msg)                                                \
    do {                                                                       \
        if (!(expr))                                                           \
            ::dynmpi::detail::fail("invariant", #expr, __FILE__, __LINE__,     \
                                   (msg));                                     \
    } while (0)
