// Plain-text table rendering for bench harness output.
//
// Every figure-reproduction bench prints its rows through TextTable so the
// output is aligned and diffable; EXPERIMENTS.md quotes these tables.
#pragma once

#include <string>
#include <vector>

namespace dynmpi {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TextTable {
public:
    /// Set the header row (column titles).
    void header(std::vector<std::string> cols);

    /// Append one data row; its size should match the header's.
    void row(std::vector<std::string> cols);

    /// Render the table with a separator under the header.
    std::string render() const;

    std::size_t num_rows() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` digits after the decimal point.
std::string fmt(double v, int prec = 2);

/// Format a ratio as a percentage string, e.g. 0.167 -> "16.7%".
std::string pct(double ratio, int prec = 1);

}  // namespace dynmpi
