// Plain-text table and CSV rendering for bench/report output.
//
// Every figure-reproduction bench prints its rows through TextTable so the
// output is aligned and diffable; EXPERIMENTS.md quotes these tables.
// CsvWriter is the one CSV emitter shared by report.cpp's history export
// and the metrics registry, so quoting and formatting stay consistent.
#pragma once

#include <string>
#include <vector>

namespace dynmpi {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TextTable {
public:
    /// Set the header row (column titles).
    void header(std::vector<std::string> cols);

    /// Append one data row; its size should match the header's.
    void row(std::vector<std::string> cols);

    /// Render the table with a separator under the header.
    std::string render() const;

    std::size_t num_rows() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// RFC-4180-style CSV accumulation: cells containing commas, quotes, or
/// newlines are double-quoted with embedded quotes doubled; rows end in
/// '\n'.  Used by report.cpp (history_csv) and MetricsRegistry::csv().
class CsvWriter {
public:
    /// Append one row (the first row is conventionally the header).
    void row(const std::vector<std::string>& cells);

    const std::string& str() const { return out_; }

    /// Quote one cell per RFC 4180 (returned unchanged when no quoting is
    /// needed).
    static std::string escape(const std::string& cell);

private:
    std::string out_;
};

/// Format a double with `prec` digits after the decimal point.
std::string fmt(double v, int prec = 2);

/// Format a ratio as a percentage string, e.g. 0.167 -> "16.7%".
std::string pct(double ratio, int prec = 1);

}  // namespace dynmpi
