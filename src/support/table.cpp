#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dynmpi {

void TextTable::header(std::vector<std::string> cols) {
    header_ = std::move(cols);
}

void TextTable::row(std::vector<std::string> cols) {
    rows_.push_back(std::move(cols));
}

std::string TextTable::render() const {
    std::vector<std::size_t> widths(header_.size());
    auto widen = [&](const std::vector<std::string>& r) {
        if (r.size() > widths.size()) widths.resize(r.size());
        for (std::size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& r) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < r.size() ? r[i] : "";
            cell.resize(widths[i], ' ');
            os << cell << (i + 1 < widths.size() ? "  " : "");
        }
        os << '\n';
    };
    emit(header_);
    std::string rule;
    for (std::size_t i = 0; i < widths.size(); ++i) {
        rule.append(widths[i], '-');
        if (i + 1 < widths.size()) rule.append(2, ' ');
    }
    os << rule << '\n';
    for (const auto& r : rows_) emit(r);
    return os.str();
}

std::string CsvWriter::escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) out_ += ',';
        out_ += escape(cells[i]);
    }
    out_ += '\n';
}

std::string fmt(double v, int prec) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

std::string pct(double ratio, int prec) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", prec, ratio * 100.0);
    return buf;
}

}  // namespace dynmpi
