// Structured trace-event sink (the event half of the observability layer;
// docs/OBSERVABILITY.md documents the full schema).
//
// Call sites record typed events carrying *virtual* sim time and the
// emitting rank — never a wall clock — so two identical runs produce
// byte-identical traces.  Events land in a bounded ring buffer (oldest
// dropped first, with a drop counter) and export as
//
//   - JSONL: one JSON object per line, fixed key order, for tools and the
//     tools/check_trace.py schema validator;
//   - Chrome trace JSON: load in chrome://tracing or https://ui.perfetto.dev,
//     one track (tid) per rank.
//
// The sink is disabled by default and recording is a no-op while disabled;
// hot paths must guard argument construction with `trace().enabled()`.
// Defining DYNMPI_TRACE_OFF at compile time makes enabled() constant-false
// so the guard folds away entirely.
//
// Threading: rank threads are baton-serialized by msg::Machine (at most one
// runs at any instant), so the process-global sink sees a deterministic,
// race-free record order; a mutex still protects record() for safety.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace dynmpi::support {

/// One key/value argument of a trace event.  The value is pre-rendered to
/// text at record time; `quoted` says whether JSON export wraps it in quotes
/// (strings) or emits it raw (numbers / booleans).
struct TraceArg {
    std::string key;
    std::string value;
    bool quoted = false;
};

TraceArg targ(std::string key, const std::string& value);
TraceArg targ(std::string key, const char* value);
TraceArg targ(std::string key, double value);
TraceArg targ(std::string key, int value);
TraceArg targ(std::string key, std::int64_t value);
TraceArg targ(std::string key, std::uint64_t value);
TraceArg targ(std::string key, bool value);

/// One structured event.  `dur_s > 0` makes it a span (Chrome "X" complete
/// event starting at time_s); otherwise it is an instant.
struct TraceEvent {
    double time_s = 0.0; ///< virtual sim time (seconds), never wall clock
    int rank = -1;       ///< emitting rank; -1 = machine/engine scope
    std::string name;    ///< dotted event type, e.g. "runtime.grace_enter"
    double dur_s = 0.0;  ///< span length in sim seconds (0 = instant)
    std::vector<TraceArg> args;
};

class TraceSink {
public:
    static constexpr std::size_t kDefaultCapacity = 1u << 16;

    /// Start recording; clears previously buffered events.
    void enable(std::size_t capacity = kDefaultCapacity);
    void disable();

#ifdef DYNMPI_TRACE_OFF
    bool enabled() const { return false; }
#else
    bool enabled() const { return enabled_; }
#endif

    /// Append one event (no-op while disabled).  When the ring is full the
    /// oldest event is discarded and dropped() incremented.
    void record(TraceEvent ev);

    /// Convenience: record an instant event.
    void instant(double time_s, int rank, std::string name,
                 std::vector<TraceArg> args = {});

    /// Convenience: record a span covering [t0_s, t1_s].
    void span(double t0_s, double t1_s, int rank, std::string name,
              std::vector<TraceArg> args = {});

    void clear();
    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    std::uint64_t dropped() const { return dropped_; }

    /// Buffered events, stably sorted by sim time (record order breaks ties,
    /// which is itself deterministic under the machine's baton).
    std::vector<TraceEvent> sorted_events() const;

    /// JSONL export: one line per event, fixed key order
    /// {"t":..,"rank":..,"ev":"..","dur":..,"args":{..}} ("dur" only on
    /// spans).  Events are ordered by sim time.
    std::string jsonl() const;

    /// Chrome trace JSON ({"traceEvents":[...]}) for chrome://tracing;
    /// timestamps in microseconds, one tid per rank.
    std::string chrome_trace() const;

private:
    mutable std::mutex mu_;
    bool enabled_ = false;
    std::size_t capacity_ = kDefaultCapacity;
    std::deque<TraceEvent> events_;
    std::uint64_t dropped_ = 0;
};

/// The process-global sink every instrumentation point records into.
TraceSink& trace();

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

/// Render a double the way every exporter does ("%.9g": full precision,
/// no trailing-zero noise, deterministic).
std::string json_number(double v);

/// Write `contents` to `path`; returns false (and leaves no partial file
/// guarantees) on I/O failure.
bool write_text_file(const std::string& path, const std::string& contents);

}  // namespace dynmpi::support
