#include "support/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace dynmpi::support {

namespace {

std::string render_int(long long v) { return std::to_string(v); }

}  // namespace

TraceArg targ(std::string key, const std::string& value) {
    return TraceArg{std::move(key), value, /*quoted=*/true};
}

TraceArg targ(std::string key, const char* value) {
    return TraceArg{std::move(key), value, /*quoted=*/true};
}

TraceArg targ(std::string key, double value) {
    return TraceArg{std::move(key), json_number(value), /*quoted=*/false};
}

TraceArg targ(std::string key, int value) {
    return TraceArg{std::move(key), render_int(value), /*quoted=*/false};
}

TraceArg targ(std::string key, std::int64_t value) {
    return TraceArg{std::move(key), render_int(value), /*quoted=*/false};
}

TraceArg targ(std::string key, std::uint64_t value) {
    return TraceArg{std::move(key), std::to_string(value), /*quoted=*/false};
}

TraceArg targ(std::string key, bool value) {
    return TraceArg{std::move(key), value ? "true" : "false",
                    /*quoted=*/false};
}

std::string json_number(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void TraceSink::enable(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = true;
    capacity_ = capacity > 0 ? capacity : 1;
    events_.clear();
    dropped_ = 0;
}

void TraceSink::disable() {
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = false;
}

void TraceSink::record(TraceEvent ev) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= capacity_) {
        events_.pop_front();
        ++dropped_;
    }
    events_.push_back(std::move(ev));
}

void TraceSink::instant(double time_s, int rank, std::string name,
                        std::vector<TraceArg> args) {
    if (!enabled()) return;
    TraceEvent ev;
    ev.time_s = time_s;
    ev.rank = rank;
    ev.name = std::move(name);
    ev.args = std::move(args);
    record(std::move(ev));
}

void TraceSink::span(double t0_s, double t1_s, int rank, std::string name,
                     std::vector<TraceArg> args) {
    if (!enabled()) return;
    TraceEvent ev;
    ev.time_s = t0_s;
    ev.rank = rank;
    ev.name = std::move(name);
    ev.dur_s = t1_s > t0_s ? t1_s - t0_s : 0.0;
    ev.args = std::move(args);
    record(std::move(ev));
}

void TraceSink::clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    dropped_ = 0;
}

std::size_t TraceSink::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::vector<TraceEvent> TraceSink::sorted_events() const {
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        out.assign(events_.begin(), events_.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.time_s < b.time_s;
                     });
    return out;
}

namespace {

void append_args(std::string& out, const std::vector<TraceArg>& args) {
    out += '{';
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += json_escape(args[i].key);
        out += "\":";
        if (args[i].quoted) {
            out += '"';
            out += json_escape(args[i].value);
            out += '"';
        } else {
            out += args[i].value;
        }
    }
    out += '}';
}

}  // namespace

std::string TraceSink::jsonl() const {
    std::string out;
    for (const TraceEvent& ev : sorted_events()) {
        char head[96];
        std::snprintf(head, sizeof head, "{\"t\":%.9f,\"rank\":%d,\"ev\":\"",
                      ev.time_s, ev.rank);
        out += head;
        out += json_escape(ev.name);
        out += '"';
        if (ev.dur_s > 0.0) {
            char dur[48];
            std::snprintf(dur, sizeof dur, ",\"dur\":%.9f", ev.dur_s);
            out += dur;
        }
        out += ",\"args\":";
        append_args(out, ev.args);
        out += "}\n";
    }
    return out;
}

std::string TraceSink::chrome_trace() const {
    std::string out = "{\"traceEvents\":[\n";
    auto events = sorted_events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& ev = events[i];
        char head[160];
        if (ev.dur_s > 0.0) {
            std::snprintf(head, sizeof head,
                          "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                          "\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":",
                          json_escape(ev.name).c_str(), ev.time_s * 1e6,
                          ev.dur_s * 1e6, ev.rank);
        } else {
            std::snprintf(head, sizeof head,
                          "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                          "\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":",
                          json_escape(ev.name).c_str(), ev.time_s * 1e6,
                          ev.rank);
        }
        out += head;
        append_args(out, ev.args);
        out += '}';
        if (i + 1 < events.size()) out += ',';
        out += '\n';
    }
    out += "],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

TraceSink& trace() {
    static TraceSink sink;
    return sink;
}

bool write_text_file(const std::string& path, const std::string& contents) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
    return static_cast<bool>(f);
}

}  // namespace dynmpi::support
