// Metrics registry (the aggregate half of the observability layer;
// docs/OBSERVABILITY.md holds the catalog of instrument names).
//
// Three instrument kinds, all named by dotted strings:
//
//   Counter   — monotonically increasing integer (events, bytes, rows);
//   Gauge     — last-write-wins double (elapsed seconds, queue depths);
//   Histogram — recorded samples with min/max/mean and nearest-rank
//               percentiles (per-cycle walls, pack/unpack timings).
//
// The registry is process-global and disabled by default: instrumentation
// points guard with metrics().enabled() so a disabled registry costs one
// branch.  Tests and tools may use instruments directly regardless of the
// flag — enable() only gates the library's built-in instrumentation.
//
// Aggregation semantics on the simulated machine: every rank thread updates
// the same registry (baton-serialized, so deterministically).  Cluster-wide
// quantities (redistribution bytes, balancer rounds) therefore aggregate
// over all ranks; run-level quantities (cycle counts) are recorded by world
// rank 0 only.  snapshot_json()/csv() iterate names in sorted order, so two
// identical runs snapshot byte-identically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dynmpi::support {

class Counter {
public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

private:
    std::uint64_t value_ = 0;
};

class Gauge {
public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

private:
    double value_ = 0.0;
};

class Histogram {
public:
    void record(double v);

    std::size_t count() const { return samples_.size(); }
    double sum() const { return sum_; }
    double min() const;
    double max() const;
    double mean() const;

    /// Nearest-rank percentile, p in [0, 100]: the ceil(p/100 * n)-th
    /// smallest sample (p = 0 returns the minimum).  Requires count() > 0.
    double percentile(double p) const;

private:
    std::vector<double> samples_;
    double sum_ = 0.0;
};

class MetricsRegistry {
public:
    void enable() { enabled_ = true; }
    void disable() { enabled_ = false; }
    bool enabled() const { return enabled_; }

    /// Find-or-create by name.  References stay valid until reset().
    Counter& counter(const std::string& name) { return counters_[name]; }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    Histogram& histogram(const std::string& name) {
        return histograms_[name];
    }

    std::size_t size() const {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /// Drop every instrument (the enabled flag is unchanged).
    void reset();

    /// Deterministic JSON snapshot:
    ///   {"counters":{...},"gauges":{...},"histograms":{name:
    ///    {"count":..,"sum":..,"min":..,"max":..,"mean":..,
    ///     "p50":..,"p90":..,"p99":..}}}
    std::string snapshot_json() const;

    /// Deterministic CSV snapshot (shared CsvWriter quoting); columns:
    /// name,kind,value,count,sum,min,max,mean,p50,p90,p99 — unused cells
    /// empty.
    std::string csv() const;

private:
    bool enabled_ = false;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

/// The process-global registry every instrumentation point updates.
MetricsRegistry& metrics();

}  // namespace dynmpi::support
