#include "support/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace dynmpi::support {

void Histogram::record(double v) {
    samples_.push_back(v);
    sum_ += v;
}

double Histogram::min() const {
    DYNMPI_REQUIRE(!samples_.empty(), "min of an empty histogram");
    return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
    DYNMPI_REQUIRE(!samples_.empty(), "max of an empty histogram");
    return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::mean() const {
    DYNMPI_REQUIRE(!samples_.empty(), "mean of an empty histogram");
    return sum_ / static_cast<double>(samples_.size());
}

double Histogram::percentile(double p) const {
    DYNMPI_REQUIRE(!samples_.empty(), "percentile of an empty histogram");
    DYNMPI_REQUIRE(p >= 0.0 && p <= 100.0, "percentile outside [0, 100]");
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    // Nearest-rank: the ceil(p/100 * n)-th smallest (1-based); p = 0 maps
    // to the first.
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    if (rank == 0) rank = 1;
    return sorted[rank - 1];
}

void MetricsRegistry::reset() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

namespace {

const double kHistPercentiles[] = {50.0, 90.0, 99.0};
const char* const kHistPercentileKeys[] = {"p50", "p90", "p99"};

}  // namespace

std::string MetricsRegistry::snapshot_json() const {
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + json_escape(name) +
               "\": " + std::to_string(c.value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + json_escape(name) +
               "\": " + json_number(g.value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + json_escape(name) + "\": {\"count\": " +
               std::to_string(h.count());
        if (h.count() > 0) {
            out += ", \"sum\": " + json_number(h.sum());
            out += ", \"min\": " + json_number(h.min());
            out += ", \"max\": " + json_number(h.max());
            out += ", \"mean\": " + json_number(h.mean());
            for (std::size_t i = 0; i < 3; ++i)
                out += std::string(", \"") + kHistPercentileKeys[i] +
                       "\": " + json_number(h.percentile(kHistPercentiles[i]));
        }
        out += "}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

std::string MetricsRegistry::csv() const {
    CsvWriter w;
    w.row({"name", "kind", "value", "count", "sum", "min", "max", "mean",
           "p50", "p90", "p99"});
    for (const auto& [name, c] : counters_)
        w.row({name, "counter", std::to_string(c.value()), "", "", "", "",
               "", "", "", ""});
    for (const auto& [name, g] : gauges_)
        w.row({name, "gauge", json_number(g.value()), "", "", "", "", "",
               "", "", ""});
    for (const auto& [name, h] : histograms_) {
        if (h.count() == 0) {
            w.row({name, "histogram", "", "0", "", "", "", "", "", "", ""});
            continue;
        }
        w.row({name, "histogram", "", std::to_string(h.count()),
               json_number(h.sum()), json_number(h.min()),
               json_number(h.max()), json_number(h.mean()),
               json_number(h.percentile(50.0)),
               json_number(h.percentile(90.0)),
               json_number(h.percentile(99.0))});
    }
    return w.str();
}

MetricsRegistry& metrics() {
    static MetricsRegistry registry;
    return registry;
}

}  // namespace dynmpi::support
