#include "support/error.hpp"

#include <sstream>

namespace dynmpi::detail {

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& msg) {
    std::ostringstream os;
    os << "dynmpi " << kind << " failed: (" << expr << ") at " << file << ":"
       << line;
    if (!msg.empty()) os << " — " << msg;
    throw Error(os.str());
}

}  // namespace dynmpi::detail
