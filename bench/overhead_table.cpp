// Runtime overhead accounting (the paper's "the overall Dyn-MPI overhead is
// quite low" claim, quantified): what monitoring and redistribution cost in
// virtual time, as a function of machine size and rows moved.
#include "bench/bench_common.hpp"
#include "dynmpi/runtime.hpp"

namespace dynmpi::bench {
namespace {

/// Per-cycle monitoring overhead: identical compute with adapt on/off.
double monitoring_overhead_per_cycle(int nodes) {
    auto run = [&](bool adapt) {
        msg::Machine m(xeon_cluster(nodes));
        m.run([&](msg::Rank& r) {
            RuntimeOptions o;
            o.calibrate = false;
            o.adapt = adapt;
            Runtime rt(r, nodes * 8, o);
            rt.register_dense("A", 1, sizeof(double));
            int ph = rt.init_phase(0, nodes * 8,
                                   PhaseComm{CommPattern::None, 0});
            rt.add_array_access("A", AccessMode::Write, ph);
            rt.commit_setup();
            for (int c = 0; c < 200; ++c) {
                rt.begin_cycle();
                rt.run_phase(ph, std::vector<double>(8, 1e-3));
                rt.end_cycle();
            }
        });
        return m.elapsed_seconds();
    };
    return (run(true) - run(false)) / 200.0;
}

/// Virtual cost of one redistribution moving ~frac of a paper-scale array.
double redistribution_cost(int nodes, int rows, std::size_t row_bytes,
                           double frac) {
    msg::Machine m(xeon_cluster(nodes));
    double cost = 0;
    m.run([&](msg::Rank& r) {
        RuntimeOptions o;
        o.calibrate = false;
        o.adapt = false;
        Runtime rt(r, rows, o);
        rt.register_dense("A", static_cast<int>(row_bytes / sizeof(double)),
                          sizeof(double));
        int ph = rt.init_phase(0, rows, PhaseComm{CommPattern::None, 0});
        rt.add_array_access("A", AccessMode::Write, ph);
        rt.commit_setup();
        // Shift ~frac of the space from the first half to the second half.
        std::vector<int> counts(static_cast<std::size_t>(nodes), rows / nodes);
        int moved = static_cast<int>(rows * frac / 2);
        counts[0] -= moved;
        counts[static_cast<std::size_t>(nodes) - 1] += moved;
        rt.redistribute_manual(counts);
        if (r.id() == 0) cost = rt.stats().redist_wall_s;
    });
    return cost;
}

}  // namespace

int main_impl() {
    enable_metrics();
    std::printf("Runtime overhead accounting (virtual time)\n");

    section("per-cycle monitoring cost (adapt on vs off, no load)");
    TextTable t;
    t.header({"nodes", "overhead per cycle (us)"});
    double o4 = 0, o32 = 0;
    for (int nodes : {2, 4, 8, 16, 32}) {
        double o = monitoring_overhead_per_cycle(nodes);
        if (nodes == 4) o4 = o;
        if (nodes == 32) o32 = o;
        t.row({std::to_string(nodes), fmt(o * 1e6, 1)});
    }
    std::printf("%s", t.render().c_str());

    section("one redistribution, 2048 rows x 16 KB (paper-scale Jacobi)");
    TextTable rt_tab;
    rt_tab.header({"nodes", "fraction moved", "cost (s)"});
    double c_small = 0, c_big = 0;
    for (double frac : {0.05, 0.25, 0.5}) {
        double c = redistribution_cost(4, 2048, 16384, frac);
        if (frac == 0.05) c_small = c;
        if (frac == 0.5) c_big = c;
        rt_tab.row({"4", fmt(frac, 2), fmt(c, 3)});
    }
    std::printf("%s", rt_tab.render().c_str());

    section("SHAPE CHECKS (paper §5.1: 'overall Dyn-MPI overhead is quite "
            "low')");
    shape_check(o4 < 2e-3,
                "4-node monitoring costs under 2 ms per cycle (observed " +
                    fmt(o4 * 1e6, 0) + " us)");
    shape_check(o32 < 8e-3, "32-node monitoring stays in the ms range");
    shape_check(c_big > 3 * c_small,
                "redistribution cost scales with the data moved");
    shape_check(c_big < 3.0,
                "even a half-array move costs a few seconds at most "
                "(paper: ~1 s for the CG redistribution)");
    dump_metrics("overhead_table");
    return 0;
}

}  // namespace dynmpi::bench

int main() { return dynmpi::bench::main_impl(); }
