// Ablation: memory-aware balancing (AppLeS-style paging avoidance — the
// related-work capability the paper cites, implemented as an extension).
//
// One node has only enough physical memory for a fraction of an even block.
// Without memory awareness, the balancer assigns it a power-proportional
// block, the node pages (paging_slowdown x compute), and — interestingly —
// the grace-period measurements *see* the inflation and partially shift work
// away on the next adaptation.  With memory awareness, blocks are capped up
// front and no paging ever occurs.
#include "apps/jacobi.hpp"
#include "bench/bench_common.hpp"

namespace dynmpi::bench {
namespace {

struct Outcome {
    double elapsed;
    std::vector<int> counts;
    int redists;
};

Outcome run(bool memory_aware) {
    sim::ClusterConfig cc = xeon_cluster(4);
    // Node 2 fits only ~40 of the 256 rows (two arrays of 512 doubles/row).
    cc.memories = {0, 0, 40ull * 2 * 512 * sizeof(double), 0};
    msg::Machine m(cc);
    // A competing process elsewhere comes and goes: the second adaptation
    // (after it leaves) re-measures the rows on their new, unpaged owners,
    // so a memory-blind balancer hands node 2 a full block again — and pages.
    m.cluster().add_load_interval(0, 0.5, 12.0);

    apps::JacobiConfig cfg;
    cfg.rows = 256;
    cfg.cols_stored = 512;
    cfg.cols_math = 16;
    cfg.cycles = 300;
    cfg.sec_per_row = 2e-3;
    cfg.runtime.enable_removal = false;
    cfg.runtime.memory_aware = memory_aware;

    Outcome out{};
    m.run([&](msg::Rank& r) {
        auto res = apps::run_jacobi(r, cfg);
        if (r.id() == 0) {
            out.counts = res.final_counts;
            out.redists = res.stats.redistributions;
        }
    });
    out.elapsed = m.elapsed_seconds();
    return out;
}

}  // namespace

int main_impl() {
    enable_metrics();
    std::printf("Ablation — memory-aware balancing vs paging (Jacobi, 4 "
                "nodes; node 2 fits ~40 of 256 rows)\n");
    Outcome aware = run(true);
    Outcome blind = run(false);

    TextTable t;
    t.header({"policy", "elapsed(s)", "node2 rows", "redists"});
    t.row({"memory-aware", fmt(aware.elapsed, 1),
           std::to_string(aware.counts[2]), std::to_string(aware.redists)});
    t.row({"memory-blind", fmt(blind.elapsed, 1),
           std::to_string(blind.counts[2]), std::to_string(blind.redists)});
    std::printf("%s", t.render().c_str());

    section("SHAPE CHECKS (AppLeS-style constraint)");
    shape_check(aware.counts[2] <= 40,
                "memory-aware balancer never exceeds node 2's capacity");
    shape_check(aware.elapsed < blind.elapsed,
                "avoiding paging beats paging (" + fmt(aware.elapsed, 1) +
                    "s vs " + fmt(blind.elapsed, 1) + "s)");
    shape_check(blind.counts[2] > 40,
                "memory-blind balancing re-overloads the node once the "
                "measured costs look clean again");
    dump_metrics("ablation_memory");
    return 0;
}

}  // namespace dynmpi::bench

int main() { return dynmpi::bench::main_impl(); }
