// Shared harness pieces for the figure-reproduction benches.
//
// Every bench prints an aligned table followed by a SHAPE-CHECK section that
// states the qualitative property the paper reports and whether this run
// reproduced it.  Absolute times are virtual seconds on the simulated
// cluster, not the authors' testbed — the shapes are the deliverable.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "apps/app_common.hpp"
#include "support/metrics.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace dynmpi::bench {

/// Turn on the metrics registry for this bench process (call once at the top
/// of main_impl, before any Machine runs).
inline void enable_metrics() { support::metrics().enable(); }

/// Write the accumulated metrics snapshot to BENCH_<name>.json in the
/// working directory (see docs/OBSERVABILITY.md for the schema).
inline void dump_metrics(const std::string& name) {
    const std::string path = "BENCH_" + name + ".json";
    if (support::write_text_file(path, support::metrics().snapshot_json()))
        std::printf("\nmetrics: %s\n", path.c_str());
    else
        std::printf("\nmetrics: failed to write %s\n", path.c_str());
}

/// Paper testbed model: 550 MHz P-III Xeon + switched 100 Mb Ethernet.
inline sim::ClusterConfig xeon_cluster(int nodes, std::uint64_t seed = 42) {
    sim::ClusterConfig c;
    c.num_nodes = nodes;
    c.seed = seed;
    return c;
}

/// The §5.3 testbed: 360 MHz Ultra-Sparc 5 (slower CPUs, same network).
inline sim::ClusterConfig sparc_cluster(int nodes, std::uint64_t seed = 42) {
    sim::ClusterConfig c = xeon_cluster(nodes, seed);
    c.cpu.speed = 0.65;
    return c;
}

/// Hook: start `count` competing processes on `node` at application cycle
/// `at_cycle` (paper: "introduced on the 10th iteration"); optionally kill
/// them at `end_cycle` (-1 = never).
inline apps::CycleHook competing_at_cycle(msg::Machine& m, int node,
                                          int at_cycle, int count = 1,
                                          int end_cycle = -1) {
    auto pids = std::make_shared<std::vector<int>>();
    return [&m, node, at_cycle, count, end_cycle, pids](msg::Rank&,
                                                        int cycle) {
        if (cycle == at_cycle) {
            for (int i = 0; i < count; ++i)
                pids->push_back(m.cluster().spawn_competing(node));
        }
        if (cycle == end_cycle) {
            for (int pid : *pids) m.cluster().kill_competing(node, pid);
            pids->clear();
        }
    };
}

inline void shape_check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "DEVIATION", what.c_str());
}

inline void section(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace dynmpi::bench
