// Ablation for §4.2: dmpi_ps (ps-based, windowed) vs vmstat-style
// (instantaneous) load sensing.
//
// The paper rejects vmstat because processes that voluntarily relinquish
// the CPU (blocked at a receive) are not reported.  Two scenarios:
//   1. bursty competing processes — instantaneous samples flap between 0
//      and 1 while the windowed average tracks the true demand;
//   2. the monitored application itself blocked at a receive — vmstat sees
//      an idle node even though the app will need the CPU.
#include <cmath>

#include "bench/bench_common.hpp"
#include "sim/cluster.hpp"

namespace dynmpi::bench {
namespace {

struct SenseError {
    double rms_ps = 0.0;
    double rms_vmstat = 0.0;
};

SenseError bursty_scenario(double duty) {
    sim::ClusterConfig cc;
    cc.num_nodes = 1;
    cc.cpu.jitter_frac = 0.0;
    sim::Cluster c(cc);
    c.node(0).spawn_competing("bursty", sim::BurstSpec{0.37, duty});
    sim::VmstatSampler vm(c.node(0));

    double true_avg = duty; // long-run demand of the bursty process
    double se_ps = 0, se_vm = 0;
    int samples = 0;
    for (int s = 1; s <= 60; ++s) {
        c.engine().run_until(sim::from_seconds(static_cast<double>(s)));
        double ps = c.daemon(0).avg_competing();
        double vmstat = static_cast<double>(vm.sample_runnable());
        se_ps += (ps - true_avg) * (ps - true_avg);
        se_vm += (vmstat - true_avg) * (vmstat - true_avg);
        ++samples;
    }
    return {std::sqrt(se_ps / samples), std::sqrt(se_vm / samples)};
}

}  // namespace

int main_impl() {
    enable_metrics();
    std::printf("Ablation §4.2 — dmpi_ps vs vmstat-style load sensing\n");

    TextTable t;
    t.header({"bursty duty", "dmpi_ps RMS err", "vmstat RMS err"});
    std::vector<SenseError> errs;
    for (double duty : {0.25, 0.5, 0.75}) {
        SenseError e = bursty_scenario(duty);
        errs.push_back(e);
        t.row({fmt(duty, 2), fmt(e.rms_ps, 3), fmt(e.rms_vmstat, 3)});
    }
    std::printf("%s", t.render().c_str());

    // Scenario 2: app blocked at a receive.
    sim::ClusterConfig cc;
    cc.num_nodes = 1;
    sim::Cluster c(cc);
    c.engine().run_until(sim::from_seconds(3.0));
    sim::VmstatSampler vm(c.node(0));
    int vm_apps = vm.sample_runnable();
    int ps_load = c.daemon(0).reported_load();
    std::printf("\nblocked-at-receive app: vmstat reports %d runnable, "
                "dmpi_ps reports load %d (app auto-included)\n",
                vm_apps, ps_load);

    section("SHAPE CHECKS (paper §4.2)");
    bool ps_wins = true;
    for (const auto& e : errs)
        if (e.rms_ps >= e.rms_vmstat) ps_wins = false;
    shape_check(ps_wins,
                "windowed dmpi_ps tracks bursty demand better than "
                "instantaneous sampling at every duty cycle");
    shape_check(vm_apps == 0 && ps_load == 1,
                "vmstat misses the blocked application; dmpi_ps includes it");
    dump_metrics("ablation_load_sense");
    return 0;
}

}  // namespace dynmpi::bench

int main() { return dynmpi::bench::main_impl(); }
