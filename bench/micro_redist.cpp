// Micro-benchmarks for redistribution planning: the pure functions executed
// by every node at each adaptation (transfer-set computation must stay cheap
// because it is O(nodes^2 x arrays) per redistribution).
#include <benchmark/benchmark.h>

#include "dynmpi/redistributor.hpp"

namespace dynmpi {
namespace {

std::vector<Drsd> halo(const std::string& name) {
    return {
        Drsd{name, AccessMode::Write, 0, 1, 0},
        Drsd{name, AccessMode::Read, 0, 1, -1},
        Drsd{name, AccessMode::Read, 0, 1, +1},
    };
}

void BM_TransferPlan_FullPairGrid(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    const int rows = 4096;
    std::vector<int> members(static_cast<size_t>(nodes));
    for (int i = 0; i < nodes; ++i) members[(size_t)i] = i;
    msg::Group g(members);
    auto oldd = Distribution::even_block(0, rows, nodes);
    // Perturbed new distribution.
    std::vector<int> counts(static_cast<size_t>(nodes), rows / nodes);
    counts[0] -= rows / (4 * nodes);
    counts[(size_t)nodes - 1] += rows / (4 * nodes);
    auto newd = Distribution::block(0, rows, counts);
    RedistContext ctx{rows, &g, &oldd, &g, &newd};
    auto acc = halo("A");

    for (auto _ : state) {
        int total = 0;
        for (int s = 0; s < nodes; ++s)
            for (int d = 0; d < nodes; ++d)
                total += transfer_rows(ctx, acc, s, d).count();
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() * nodes * nodes);
}
BENCHMARK(BM_TransferPlan_FullPairGrid)->Arg(8)->Arg(32);

void BM_NeededRows_WithGhosts(benchmark::State& state) {
    const int rows = 16384;
    std::vector<int> members{0, 1, 2, 3, 4, 5, 6, 7};
    msg::Group g(members);
    auto d = Distribution::even_block(0, rows, 8);
    auto acc = halo("A");
    for (auto _ : state) {
        for (int w = 0; w < 8; ++w)
            benchmark::DoNotOptimize(needed_rows(g, d, w, acc, rows).count());
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_NeededRows_WithGhosts);

void BM_CyclicToBlockPlan(benchmark::State& state) {
    // The worst case for RowSet machinery: cyclic ownership makes every
    // transfer set highly fragmented.
    const int rows = 2048;
    std::vector<int> members{0, 1, 2, 3};
    msg::Group g(members);
    auto oldd = Distribution::cyclic(0, rows, 4);
    auto newd = Distribution::even_block(0, rows, 4);
    RedistContext ctx{rows, &g, &oldd, &g, &newd};
    std::vector<Drsd> acc{Drsd{"A", AccessMode::Write, 0, 1, 0}};
    for (auto _ : state) {
        int total = 0;
        for (int s = 0; s < 4; ++s)
            for (int d = 0; d < 4; ++d)
                total += transfer_rows(ctx, acc, s, d).count();
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_CyclicToBlockPlan);

// ---------------------------------------------------------------------------
// Plan-once vs. legacy pairwise schedule derivation.
//
// Both benchmarks compute one rank's complete redistribution schedule (send
// sets, receive sets, and the cleanup target) for a many-party, many-array
// adaptation.  Legacy mirrors the pre-plan executor: pairwise transfer_rows
// in both the send and receive phase plus a fresh needed_rows per array at
// cleanup — O(parties x arrays) set rebuilds per phase.  PlanOnce builds a
// RedistPlan, which materializes each (array, party) needed set exactly
// once.  tools/check_bench.py gates CI on the ratio of the two.
// ---------------------------------------------------------------------------

struct ScheduleFixture {
    std::vector<int> members;
    msg::Group g;
    Distribution oldd;
    Distribution newd;
    std::vector<ArrayInfo> arrays;
    RedistContext ctx;

    explicit ScheduleFixture(int nodes, int rows = 4096)
        : members(make_members(nodes)),
          g(members),
          oldd(Distribution::even_block(0, rows, nodes)),
          newd(perturbed(rows, nodes)),
          ctx{rows, &g, &oldd, &g, &newd} {
        for (const char* name : {"A", "B", "C", "D"}) {
            ArrayInfo ai;
            ai.accesses = halo(name);
            arrays.push_back(std::move(ai));
        }
    }

    static std::vector<int> make_members(int nodes) {
        std::vector<int> m(static_cast<size_t>(nodes));
        for (int i = 0; i < nodes; ++i) m[(size_t)i] = i;
        return m;
    }

    static Distribution perturbed(int rows, int nodes) {
        std::vector<int> counts(static_cast<size_t>(nodes), rows / nodes);
        counts[0] -= rows / (4 * nodes);
        counts[(size_t)nodes - 1] += rows / (4 * nodes);
        return Distribution::block(0, rows, counts);
    }
};

void BM_RedistSchedule_Legacy(benchmark::State& state) {
    ScheduleFixture f(static_cast<int>(state.range(0)));
    const int me = static_cast<int>(state.range(0)) / 2; // mid-grid rank
    for (auto _ : state) {
        int total = 0;
        for (const auto& ai : f.arrays)
            for (int dst : f.members)
                total += transfer_rows(f.ctx, ai.accesses, me, dst).count();
        for (const auto& ai : f.arrays)
            for (int src : f.members)
                total += transfer_rows(f.ctx, ai.accesses, src, me).count();
        for (const auto& ai : f.arrays)
            total += needed_rows(f.g, f.newd, me, ai.accesses,
                                 f.ctx.global_rows)
                         .count();
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(f.members.size()) *
                            static_cast<std::int64_t>(f.arrays.size()));
}
BENCHMARK(BM_RedistSchedule_Legacy)->Arg(16)->Arg(64);

void BM_RedistSchedule_PlanOnce(benchmark::State& state) {
    ScheduleFixture f(static_cast<int>(state.range(0)));
    const int me = static_cast<int>(state.range(0)) / 2;
    for (auto _ : state) {
        RedistPlan plan = build_redist_plan(f.ctx, f.arrays, me);
        int total = 0;
        for (const auto& ap : plan.per_array) {
            for (const auto& s : ap.send_to) total += s.count();
            for (const auto& r : ap.recv_from) total += r.count();
            total += ap.my_needed.count();
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(f.members.size()) *
                            static_cast<std::int64_t>(f.arrays.size()));
}
BENCHMARK(BM_RedistSchedule_PlanOnce)->Arg(16)->Arg(64);

}  // namespace
}  // namespace dynmpi

BENCHMARK_MAIN();
