// Micro-benchmarks for redistribution planning: the pure functions executed
// by every node at each adaptation (transfer-set computation must stay cheap
// because it is O(nodes^2 x arrays) per redistribution).
#include <benchmark/benchmark.h>

#include "dynmpi/redistributor.hpp"

namespace dynmpi {
namespace {

std::vector<Drsd> halo(const std::string& name) {
    return {
        Drsd{name, AccessMode::Write, 0, 1, 0},
        Drsd{name, AccessMode::Read, 0, 1, -1},
        Drsd{name, AccessMode::Read, 0, 1, +1},
    };
}

void BM_TransferPlan_FullPairGrid(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    const int rows = 4096;
    std::vector<int> members(static_cast<size_t>(nodes));
    for (int i = 0; i < nodes; ++i) members[(size_t)i] = i;
    msg::Group g(members);
    auto oldd = Distribution::even_block(0, rows, nodes);
    // Perturbed new distribution.
    std::vector<int> counts(static_cast<size_t>(nodes), rows / nodes);
    counts[0] -= rows / (4 * nodes);
    counts[(size_t)nodes - 1] += rows / (4 * nodes);
    auto newd = Distribution::block(0, rows, counts);
    RedistContext ctx{rows, &g, &oldd, &g, &newd};
    auto acc = halo("A");

    for (auto _ : state) {
        int total = 0;
        for (int s = 0; s < nodes; ++s)
            for (int d = 0; d < nodes; ++d)
                total += transfer_rows(ctx, acc, s, d).count();
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() * nodes * nodes);
}
BENCHMARK(BM_TransferPlan_FullPairGrid)->Arg(8)->Arg(32);

void BM_NeededRows_WithGhosts(benchmark::State& state) {
    const int rows = 16384;
    std::vector<int> members{0, 1, 2, 3, 4, 5, 6, 7};
    msg::Group g(members);
    auto d = Distribution::even_block(0, rows, 8);
    auto acc = halo("A");
    for (auto _ : state) {
        for (int w = 0; w < 8; ++w)
            benchmark::DoNotOptimize(needed_rows(g, d, w, acc, rows).count());
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_NeededRows_WithGhosts);

void BM_CyclicToBlockPlan(benchmark::State& state) {
    // The worst case for RowSet machinery: cyclic ownership makes every
    // transfer set highly fragmented.
    const int rows = 2048;
    std::vector<int> members{0, 1, 2, 3};
    msg::Group g(members);
    auto oldd = Distribution::cyclic(0, rows, 4);
    auto newd = Distribution::even_block(0, rows, 4);
    RedistContext ctx{rows, &g, &oldd, &g, &newd};
    std::vector<Drsd> acc{Drsd{"A", AccessMode::Write, 0, 1, 0}};
    for (auto _ : state) {
        int total = 0;
        for (int s = 0; s < 4; ++s)
            for (int d = 0; d < 4; ++d)
                total += transfer_rows(ctx, acc, s, d).count();
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_CyclicToBlockPlan);

}  // namespace
}  // namespace dynmpi

BENCHMARK_MAIN();
