// Figure 7 reproduction: grace-period length under unbalanced computation
// (particle simulation, 8 nodes, 256x256 grid).
//
// Iterations are far shorter than the 10 ms /proc jiffy, so gethrtime must
// be used, and context-switch jitter on the loaded node corrupts single
// samples.  With GP=1 the runtime trusts one noisy measurement per row;
// GP=5 (the Dyn-MPI default) takes the minimum across five cycles.
// Part = 10 / 50 sets the particle density in the top half of P0's rows.
//
// Paper shapes: GP=5 improves post-redistribution execution time by ~13%
// (Part=10) and ~16% (Part=50) over GP=1.
#include "apps/particle.hpp"
#include <cmath>
#include <algorithm>

#include "bench/bench_common.hpp"

namespace dynmpi::bench {
namespace {

double run_grace(int part, int gp, std::uint64_t seed) {
    sim::ClusterConfig cc = xeon_cluster(8, seed);
    cc.cpu.quantum_s = 0.010; // context-switch spikes ~ the jiffy
    cc.cpu.jitter_frac = 1.0;
    msg::Machine m(cc);

    apps::ParticleConfig cfg;
    cfg.rows = 256;
    cfg.cols = 256;
    cfg.cycles = 200;
    cfg.base_density = 1.0;
    cfg.boost_rows = 256 / 8 / 2; // top half of P0's rows
    cfg.boost_density = part;
    cfg.sec_per_particle = 5e-7; // every row well below 10 ms
    cfg.sec_per_row_base = 2e-5;
    cfg.runtime.grace_cycles = gp;
    cfg.runtime.enable_removal = false;
    cfg.runtime.max_redistributions = 1; // isolate the measurement effect
    cfg.on_cycle = competing_at_cycle(m, 0, 10); // CP joins heavy node 0

    double settled = 0.0;
    m.run([&](msg::Rank& r) {
        auto res = apps::run_particle(r, cfg);
        if (r.id() == 0) {
            const auto& h = res.stats.history;
            // Average post-redistribution cycle time.
            int first = 0;
            for (std::size_t i = 0; i < h.size(); ++i)
                if (h[i].redistributed) first = static_cast<int>(i) + 1;
            double s = 0.0;
            int n = 0;
            for (std::size_t i = static_cast<std::size_t>(first);
                 i < h.size(); ++i, ++n)
                s += h[i].max_wall_s;
            settled = n > 0 ? s / n : 0.0;
        }
    });
    return settled;
}

/// Median over a few seeds: jitter is the experimental variable, so one
/// unlucky draw should not decide the comparison.
double median_run(int part, int gp) {
    std::vector<double> xs;
    for (std::uint64_t seed : {11ull, 22ull, 33ull})
        xs.push_back(run_grace(part, gp, seed));
    std::sort(xs.begin(), xs.end());
    return xs[1];
}

}  // namespace

int main_impl() {
    enable_metrics();
    std::printf("Figure 7 — grace-period comparison (particle sim, 8 nodes, "
                "256x256 grid)\n");
    std::printf("Average post-redistribution phase-cycle time.\n");

    TextTable t;
    t.header({"Part", "GP=1 (ms)", "GP=5 (ms)", "GP=5 gain"});
    double gain10, gain50;
    {
        double g1 = median_run(10, 1), g5 = median_run(10, 5);
        gain10 = (g1 - g5) / g1;
        t.row({"10", fmt(g1 * 1e3, 2), fmt(g5 * 1e3, 2), pct(gain10)});
    }
    {
        double g1 = median_run(50, 1), g5 = median_run(50, 5);
        gain50 = (g1 - g5) / g1;
        t.row({"50", fmt(g1 * 1e3, 2), fmt(g5 * 1e3, 2), pct(gain50)});
    }
    std::printf("%s", t.render().c_str());

    section("SHAPE CHECKS (paper Figure 7)");
    shape_check(gain10 > -0.02,
                "GP=5 at least matches GP=1 at Part=10 (paper: 13% better; "
                "our low-imbalance magnitude is smaller); observed " +
                    pct(gain10));
    shape_check(gain50 > 0.04,
                "GP=5 clearly beats GP=1 at Part=50 (paper: 16%); observed " +
                    pct(gain50));
    shape_check(gain50 > gain10,
                "the benefit of the longer grace period grows with the "
                "computation imbalance");
    dump_metrics("fig7_grace_period");
    return 0;
}

}  // namespace dynmpi::bench

int main() { return dynmpi::bench::main_impl(); }
