// Figure 6 reproduction: node removal (Red-Black SOR, 1024x1024, Ultra-Sparc
// cluster profile, 8/16/32 nodes).
//
// One node carries 1, 2, or 3 competing processes.  Two policies are
// measured after adaptation settles:
//   balance — successive balancing across all nodes, loaded one included,
//   drop    — the loaded node physically removed.
// The reported metric is the average phase-cycle execution time after
// redistribution.
//
// Paper shapes: dropping is always worse on 8 nodes, moderately better on 16
// (2/7/8% for 1/2/3 CPs), significantly better on 32 (4/14/25%) — the
// benefit of removal grows as the computation/communication ratio falls.
#include "apps/sor.hpp"
#include "bench/bench_common.hpp"

namespace dynmpi::bench {
namespace {

double avg_settled_cycle(msg::Machine& m, const apps::SorConfig& cfg,
                         int measure_last) {
    double avg = 0.0;
    // Work around lambda capture of the config copy per run.
    apps::SorConfig local = cfg;
    m.run([&](msg::Rank& r) {
        auto res = apps::run_sor(r, local);
        if (r.id() == 0) {
            const auto& h = res.stats.history;
            int n = static_cast<int>(h.size());
            double s = 0.0;
            for (int i = n - measure_last; i < n; ++i)
                s += h[static_cast<std::size_t>(i)].max_wall_s;
            avg = s / measure_last;
        }
    });
    return avg;
}

double run_policy(int nodes, int cps, bool drop) {
    msg::Machine m(sparc_cluster(nodes));
    const int cp_node = nodes / 2;

    apps::SorConfig cfg;
    cfg.rows = 1024; // paper: 1024x1024
    cfg.cols_stored = 1024;
    cfg.cols_math = 16;
    cfg.cycles = 1000; // long enough for dmpi_ps detection at every scale
    cfg.sec_per_row = 3.0e-4; // 1024 cells at Ultra-Sparc throughput
    cfg.runtime.enable_removal = drop;
    cfg.runtime.force_drop_loaded = drop;
    cfg.runtime.max_redistributions = 2; // settle, then hold the policy
    cfg.on_cycle = competing_at_cycle(m, cp_node, 5, cps);
    return avg_settled_cycle(m, cfg, /*measure_last=*/250);
}

}  // namespace

int main_impl() {
    enable_metrics();
    std::printf("Figure 6 — node removal (SOR 1024x1024, Ultra-Sparc "
                "profile)\n");
    std::printf("Average phase-cycle time after redistribution; 'gain' is "
                "the improvement from dropping the loaded node.\n");

    struct Cell {
        double balance, drop;
    };
    std::vector<int> node_counts{8, 16, 32};
    std::vector<int> cp_counts{1, 2, 3};
    std::vector<std::vector<Cell>> grid(node_counts.size());

    TextTable t;
    t.header({"nodes", "CPs", "balance(ms)", "drop(ms)", "drop gain"});
    for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
        for (int cps : cp_counts) {
            Cell c{run_policy(node_counts[ni], cps, false),
                   run_policy(node_counts[ni], cps, true)};
            grid[ni].push_back(c);
            t.row({std::to_string(node_counts[ni]), std::to_string(cps),
                   fmt(c.balance * 1e3, 2), fmt(c.drop * 1e3, 2),
                   pct((c.balance - c.drop) / c.balance)});
        }
    }
    std::printf("%s", t.render().c_str());

    auto gain = [&](std::size_t ni, int cps) {
        const Cell& c = grid[ni][static_cast<std::size_t>(cps - 1)];
        return (c.balance - c.drop) / c.balance;
    };

    section("SHAPE CHECKS (paper Figure 6)");
    bool drop_loses_at_8 = true;
    for (int cps : cp_counts)
        if (gain(0, cps) > 0.01) drop_loses_at_8 = false;
    shape_check(drop_loses_at_8, "dropping is not beneficial on 8 nodes");
    shape_check(gain(2, 2) > 0.0 && gain(2, 3) > 0.05,
                "dropping wins on 32 nodes once load is heavy "
                "(paper: 4/14/25%; our magnitudes run smaller)");
    shape_check(gain(2, 3) > gain(1, 3),
                "benefit of removal grows with node count (16 -> 32)");
    shape_check(gain(1, 3) >= gain(0, 3),
                "benefit of removal grows with node count (8 -> 16)");
    shape_check(gain(2, 3) > gain(2, 1),
                "on 32 nodes, more CPs -> bigger removal benefit");
    dump_metrics("fig6_node_removal");
    return 0;
}

}  // namespace dynmpi::bench

int main() { return dynmpi::bench::main_impl(); }
