// Synthetic tuning runs (paper §5 mentions "a number of synthetic tests to
// tune our redistribution scheme", detailed in the companion TR [27]).
//
// Two model-validation sweeps, no simulator needed:
//  1. two-node split quality: for computation/communication ratios from 100:1
//     to 1:2 and loads 1..4 CPs, compare the successive-balancing share
//     against the brute-force optimum of the predicted-cycle-time model;
//  2. successive balancing convergence: rounds needed until the unloaded
//     assignment stabilizes, across node counts and load mixes.
#include <cmath>

#include "bench/bench_common.hpp"
#include "dynmpi/balancer.hpp"

namespace dynmpi::bench {
namespace {

/// Brute-force optimal first-node share for a 2-node (loaded, unloaded)
/// split under the predicted-cycle-time model.
double brute_force_share(const BalanceInput& in, int steps = 2000) {
    const int rows = static_cast<int>(in.row_costs.size());
    double best_t = 1e300;
    int best_rows = 0;
    for (int k = 0; k <= steps; ++k) {
        int r0 = static_cast<int>(
            std::lround(static_cast<double>(rows) * k / steps));
        std::vector<int> counts{r0, rows - r0};
        double t = predict_cycle_time(in, counts);
        if (t < best_t) {
            best_t = t;
            best_rows = r0;
        }
    }
    return static_cast<double>(best_rows) / rows;
}

}  // namespace

int main_impl() {
    enable_metrics();
    std::printf("Synthetic tuning runs (companion TR [27]): model-level "
                "validation of the distribution scheme\n");

    section("two-node split vs brute-force optimum");
    TextTable t;
    t.header({"comp:comm", "CPs", "successive", "optimal", "|err|"});
    double worst_err = 0.0;
    for (double ratio : {100.0, 10.0, 2.0, 0.5}) {
        for (int cps : {1, 2, 4}) {
            BalanceInput in;
            in.row_costs.assign(1000, 1e-4); // 100 ms of work
            in.comm_cpu_per_node = 0.1 / ratio;
            in.nodes = {NodePower{1.0, static_cast<double>(cps)},
                        NodePower{1.0, 0.0}};
            double s = successive_shares(in)[0];
            double opt = brute_force_share(in);
            double err = std::fabs(s - opt);
            worst_err = std::max(worst_err, err);
            char label[32];
            std::snprintf(label, sizeof label, "%.0f:1", ratio);
            t.row({label, std::to_string(cps), fmt(s, 4), fmt(opt, 4),
                   fmt(err, 4)});
        }
    }
    std::printf("%s", t.render().c_str());

    section("successive balancing convergence");
    TextTable c;
    c.header({"nodes", "loaded", "max share delta after round cap"});
    bool all_converged = true;
    for (int nodes : {4, 8, 16, 32}) {
        for (int loaded : {1, nodes / 4}) {
            BalanceInput in;
            in.row_costs.assign(2048, 1e-4);
            in.comm_cpu_per_node = 5e-4;
            for (int j = 0; j < nodes; ++j)
                in.nodes.push_back(
                    NodePower{1.0, j < loaded ? 2.0 : 0.0});
            auto a = successive_shares(in, /*max_rounds=*/32);
            auto b = successive_shares(in, /*max_rounds=*/64);
            double delta = 0;
            for (std::size_t j = 0; j < a.size(); ++j)
                delta = std::max(delta, std::fabs(a[j] - b[j]));
            if (delta > 1e-6) all_converged = false;
            c.row({std::to_string(nodes), std::to_string(loaded),
                   fmt(delta, 8)});
        }
    }
    std::printf("%s", c.render().c_str());

    section("SHAPE CHECKS (TR [27] tuning)");
    shape_check(worst_err < 0.02,
                "successive balancing is within 2% of the brute-force "
                "optimal split at every ratio/load (worst " +
                    fmt(worst_err, 4) + ")");
    shape_check(all_converged,
                "successive balancing converges well before the round cap "
                "at every machine size");
    dump_metrics("synthetic_tuning");
    return 0;
}

}  // namespace dynmpi::bench

int main() { return dynmpi::bench::main_impl(); }
