// Micro-benchmarks for the substrate hot paths: event queue, CPU model,
// row-set algebra, and sparse pack/unpack.
#include <benchmark/benchmark.h>

#include "dynmpi/row_set.hpp"
#include "dynmpi/sparse_matrix.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace dynmpi {
namespace {

void BM_EventQueue_ScheduleFire(benchmark::State& state) {
    const int batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Engine e;
        for (int i = 0; i < batch; ++i)
            e.at(i, [] {});
        e.run();
        benchmark::DoNotOptimize(e.events_fired());
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueue_ScheduleFire)->Arg(1000)->Arg(10000);

void BM_Cpu_BatchWithLoadChanges(benchmark::State& state) {
    for (auto _ : state) {
        sim::Engine e;
        sim::Cpu cpu(e, 0, sim::CpuParams{}, 1);
        cpu.start_batch(10.0, [] {});
        for (int i = 1; i <= 20; ++i)
            e.at(sim::from_seconds(0.1 * i),
                 [&cpu, i] { cpu.set_runnable_competitors(i % 3); });
        e.run();
        benchmark::DoNotOptimize(cpu.app_cpu_seconds());
    }
}
BENCHMARK(BM_Cpu_BatchWithLoadChanges);

void BM_Cpu_ReconstructRows(benchmark::State& state) {
    const int rows = static_cast<int>(state.range(0));
    sim::Engine e;
    sim::Cpu cpu(e, 0, sim::CpuParams{}, 1);
    cpu.set_runnable_competitors(1);
    std::vector<double> costs(static_cast<size_t>(rows), 1e-4);
    cpu.start_batch(rows * 1e-4, [] {});
    e.run();
    for (auto _ : state) {
        auto rt = cpu.reconstruct_rows(costs, 0, 7);
        benchmark::DoNotOptimize(rt.wall.data());
    }
    state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_Cpu_ReconstructRows)->Arg(256)->Arg(2048);

void BM_RowSet_Algebra(benchmark::State& state) {
    Rng rng(5);
    std::vector<RowSet> sets;
    for (int i = 0; i < 64; ++i) {
        RowSet s;
        for (int k = 0; k < 8; ++k) {
            int lo = static_cast<int>(rng.next_below(10000));
            s.add(lo, lo + static_cast<int>(rng.next_below(300)));
        }
        sets.push_back(std::move(s));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const RowSet& a = sets[i % sets.size()];
        const RowSet& b = sets[(i + 17) % sets.size()];
        benchmark::DoNotOptimize(a.intersect(b).count());
        benchmark::DoNotOptimize(a.subtract(b).count());
        benchmark::DoNotOptimize(a.unite(b).count());
        ++i;
    }
}
BENCHMARK(BM_RowSet_Algebra);

void BM_Sparse_PackUnpack(benchmark::State& state) {
    const int rows = static_cast<int>(state.range(0));
    SparseMatrix src("S", rows, 4096);
    src.ensure_rows(RowSet(0, rows));
    Rng rng(3);
    for (int r = 0; r < rows; ++r)
        for (int k = 0; k < 16; ++k)
            src.set(r, static_cast<int>(rng.next_below(4096)),
                    rng.next_double());
    SparseMatrix dst("D", rows, 4096);
    std::int64_t bytes = 0;
    for (auto _ : state) {
        auto packed = src.pack_rows(src.held());
        bytes += static_cast<std::int64_t>(packed.size());
        dst.unpack_rows(packed);
        benchmark::DoNotOptimize(dst.nnz());
    }
    state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_Sparse_PackUnpack)->Arg(64)->Arg(512);

void BM_Sparse_CursorTraversal(benchmark::State& state) {
    SparseMatrix m("S", 256, 1024);
    m.ensure_rows(RowSet(0, 256));
    Rng rng(9);
    for (int r = 0; r < 256; ++r)
        for (int k = 0; k < 12; ++k)
            m.set(r, static_cast<int>(rng.next_below(1024)),
                  rng.next_double());
    for (auto _ : state) {
        double sum = 0;
        for (auto c = m.cursor(); !c.at_end();) sum += c.next().value;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_Sparse_CursorTraversal);

}  // namespace
}  // namespace dynmpi

BENCHMARK_MAIN();
