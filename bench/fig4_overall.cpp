// Figure 4 reproduction: overall results for Jacobi, SOR, CG, and particle
// simulation on 2/4/8 nodes.
//
// Three versions per configuration, exactly as in the paper:
//   Dedicated — no competing process (normalization baseline),
//   No-Adapt  — a competing process appears on one node at iteration 10 and
//               the program never redistributes,
//   Dyn-MPI   — same load, full adaptation.
//
// Paper shapes: Dyn-MPI beats No-Adapt by up to ~3x (average improvement
// ~72%); Dyn-MPI's slowdown vs Dedicated averages ~29%; 4-node CG runs
// 37.5 s dedicated / 73.0 s no-adapt / 45.1 s Dyn-MPI with the loaded node
// at ~1/7 of the work; the particle version can even beat Dedicated because
// adaptation also fixes the particle imbalance.
#include "apps/cg.hpp"
#include "apps/jacobi.hpp"
#include "apps/particle.hpp"
#include "apps/sor.hpp"
#include "bench/bench_common.hpp"

namespace dynmpi::bench {
namespace {

enum class Version { Dedicated, NoAdapt, DynMpi };

const char* name_of(Version v) {
    switch (v) {
    case Version::Dedicated: return "dedicated";
    case Version::NoAdapt: return "no-adapt";
    case Version::DynMpi: return "dyn-mpi";
    }
    return "?";
}

struct RunOutcome {
    double elapsed = 0.0;
    std::vector<int> counts;
    int redistributions = 0;
};

template <typename Config, typename RunFn>
RunOutcome run_version(int nodes, Version v, Config cfg, RunFn run_fn,
                       int cp_node) {
    msg::Machine m(xeon_cluster(nodes));
    cfg.runtime.adapt = v == Version::DynMpi;
    if (v != Version::Dedicated)
        cfg.on_cycle = competing_at_cycle(m, cp_node, 10);
    RunOutcome out;
    m.run([&](msg::Rank& r) {
        auto res = run_fn(r, cfg);
        if (r.id() == 0) {
            out.counts = res.final_counts;
            out.redistributions = res.stats.redistributions;
        }
    });
    out.elapsed = m.elapsed_seconds();
    return out;
}

struct AppRow {
    std::string app;
    int nodes;
    RunOutcome ded, noadapt, dynmpi;
};

apps::JacobiConfig jacobi_cfg() {
    apps::JacobiConfig c;
    c.rows = 2048;      // paper: 2048x2048 doubles
    c.cols_stored = 2048;
    c.cols_math = 32;   // real arithmetic stripe
    c.cycles = 250;
    c.sec_per_row = 1.25e-4; // ~2048 cells at P-III throughput
    return c;
}

apps::SorConfig sor_cfg() {
    apps::SorConfig c;
    c.rows = 2048;
    c.cols_stored = 2048;
    c.cols_math = 32;
    c.cycles = 250;
    c.sec_per_row = 1.25e-4;
    return c;
}

apps::CgConfig cg_cfg() {
    apps::CgConfig c;
    c.n = 14000; // paper: 14000x14000
    c.cycles = 75;
    c.sec_per_nnz = 2.0e-5; // calibrated: ~37.5 s dedicated on 4 nodes
    return c;
}

apps::ParticleConfig particle_cfg(int nodes) {
    apps::ParticleConfig c;
    c.rows = 256; // paper: 256x256 cells
    c.cols = 256;
    c.cycles = 200;
    c.base_density = 1.0;
    c.boost_rows = 256 / nodes; // node 0's block starts with 2x particles
    c.boost_density = 2.0;
    c.sec_per_particle = 1e-5;
    return c;
}

}  // namespace

int main_impl() {
    enable_metrics();
    std::printf("Figure 4 — overall results (times normalized to the "
                "dedicated version; smaller is better)\n");

    std::vector<AppRow> rows;
    const std::vector<int> node_counts{2, 4, 8};

    for (int nodes : node_counts) {
        int cp_node = nodes / 2; // stencils/CG: CP lands mid-machine
        rows.push_back({"jacobi", nodes,
                        run_version(nodes, Version::Dedicated, jacobi_cfg(),
                                    apps::run_jacobi, cp_node),
                        run_version(nodes, Version::NoAdapt, jacobi_cfg(),
                                    apps::run_jacobi, cp_node),
                        run_version(nodes, Version::DynMpi, jacobi_cfg(),
                                    apps::run_jacobi, cp_node)});
        rows.push_back({"sor", nodes,
                        run_version(nodes, Version::Dedicated, sor_cfg(),
                                    apps::run_sor, cp_node),
                        run_version(nodes, Version::NoAdapt, sor_cfg(),
                                    apps::run_sor, cp_node),
                        run_version(nodes, Version::DynMpi, sor_cfg(),
                                    apps::run_sor, cp_node)});
        rows.push_back({"cg", nodes,
                        run_version(nodes, Version::Dedicated, cg_cfg(),
                                    apps::run_cg, cp_node),
                        run_version(nodes, Version::NoAdapt, cg_cfg(),
                                    apps::run_cg, cp_node),
                        run_version(nodes, Version::DynMpi, cg_cfg(),
                                    apps::run_cg, cp_node)});
        // Particle: the node with 2x particles (node 0) also gets the CP.
        rows.push_back({"particle", nodes,
                        run_version(nodes, Version::Dedicated,
                                    particle_cfg(nodes), apps::run_particle, 0),
                        run_version(nodes, Version::NoAdapt,
                                    particle_cfg(nodes), apps::run_particle, 0),
                        run_version(nodes, Version::DynMpi,
                                    particle_cfg(nodes), apps::run_particle,
                                    0)});
    }

    TextTable t;
    t.header({"app", "nodes", "dedicated(s)", "no-adapt", "dyn-mpi",
              "redists"});
    double sum_improve = 0.0, sum_slowdown = 0.0;
    double worst_ratio = 0.0;
    int n_rows = 0;
    for (const auto& r : rows) {
        double na = r.noadapt.elapsed / r.ded.elapsed;
        double dm = r.dynmpi.elapsed / r.ded.elapsed;
        t.row({r.app, std::to_string(r.nodes), fmt(r.ded.elapsed, 1),
               fmt(na, 2), fmt(dm, 2),
               std::to_string(r.dynmpi.redistributions)});
        sum_improve += (r.noadapt.elapsed - r.dynmpi.elapsed) /
                       r.dynmpi.elapsed;
        sum_slowdown += dm - 1.0;
        worst_ratio = std::max(worst_ratio,
                               r.noadapt.elapsed / r.dynmpi.elapsed);
        ++n_rows;
    }
    std::printf("%s", t.render().c_str());

    // The paper's 4-node CG narrative.
    const AppRow* cg4 = nullptr;
    const AppRow* part4 = nullptr;
    for (const auto& r : rows) {
        if (r.app == "cg" && r.nodes == 4) cg4 = &r;
        if (r.app == "particle" && r.nodes == 4) part4 = &r;
    }
    section("4-node CG detail (paper: 37.5 s / 73.0 s / 45.1 s)");
    std::printf("  dedicated %.1f s, no-adapt %.1f s, dyn-mpi %.1f s\n",
                cg4->ded.elapsed, cg4->noadapt.elapsed, cg4->dynmpi.elapsed);
    std::printf("  dyn-mpi block counts:");
    for (int c : cg4->dynmpi.counts) std::printf(" %d", c);
    std::printf("  (paper: loaded node at ~1/7 = %d of %d rows)\n",
                14000 / 7, 14000);

    section("SHAPE CHECKS (paper Figure 4)");
    shape_check(worst_ratio > 1.5,
                "dyn-mpi improves on no-adapt by a large factor somewhere "
                "(paper: up to ~3x); observed max " + fmt(worst_ratio, 2) +
                    "x");
    shape_check(sum_improve / n_rows > 0.25,
                "average improvement over no-adapt is substantial (paper: "
                "72%); observed " + pct(sum_improve / n_rows));
    shape_check(sum_slowdown / n_rows < 0.6,
                "average slowdown vs dedicated stays moderate (paper: 29%); "
                "observed " + pct(sum_slowdown / n_rows));
    shape_check(cg4->noadapt.elapsed > 1.6 * cg4->ded.elapsed,
                "4-node CG no-adapt nearly doubles (paper: +95%)");
    shape_check(cg4->dynmpi.elapsed < 1.45 * cg4->ded.elapsed,
                "4-node CG dyn-mpi increase stays small (paper: +20%)");
    if (!cg4->dynmpi.counts.empty()) {
        int loaded_rows = cg4->dynmpi.counts[2]; // CP node = 4/2 = 2
        shape_check(loaded_rows < 14000 / 4 && loaded_rows > 14000 / 14,
                    "CG loaded node holds roughly 1/7 of rows (got " +
                        std::to_string(loaded_rows) + ")");
    }
    shape_check(part4->dynmpi.elapsed < part4->noadapt.elapsed,
                "particle: adaptation beats no-adapt despite imbalance");
    dump_metrics("fig4_overall");
    return 0;
}

}  // namespace dynmpi::bench

int main() { return dynmpi::bench::main_impl(); }
