// Ablation for §4.3: successive balancing vs the naive relative-power
// distribution [CRAUL].
//
// The paper's observation: relative power ignores the CPU component of
// communication, so it over-assigns loaded nodes.  We sweep the
// computation/communication ratio on a 4-node Jacobi and report the settled
// post-redistribution cycle time under both schemes.  Successive balancing
// should match naive when communication is negligible and win increasingly
// as the ratio falls.
#include <cmath>

#include "apps/jacobi.hpp"
#include "bench/bench_common.hpp"

namespace dynmpi::bench {
namespace {

double settled_cycle(BalanceScheme scheme, double sec_per_row,
                     int row_kb, int cps) {
    sim::ClusterConfig cc = xeon_cluster(4);
    // The §4.3 effect is about the CPU share of communication, so pick the
    // regime where it dominates: a fast wire (gigabit-class) but 2003-era
    // TCP host overhead (checksums + copies burn real CPU per byte).
    cc.net.bandwidth_Bps = 125e6;
    cc.net.cpu_per_byte_s = 8e-9;
    msg::Machine m(cc);
    apps::JacobiConfig cfg;
    cfg.rows = 512;
    cfg.cols_stored = row_kb * 128; // 128 doubles per KB
    cfg.cols_math = 16;
    cfg.cycles = 400;
    cfg.sec_per_row = sec_per_row;
    cfg.runtime.scheme = scheme;
    cfg.runtime.enable_removal = false;
    cfg.runtime.max_redistributions = 1;
    cfg.on_cycle = competing_at_cycle(m, 1, 5, cps);

    double avg = 0.0;
    m.run([&](msg::Rank& r) {
        auto res = apps::run_jacobi(r, cfg);
        if (r.id() == 0) {
            const auto& h = res.stats.history;
            double s = 0.0;
            int n = 0;
            for (std::size_t i = h.size() - 100; i < h.size(); ++i, ++n)
                s += h[i].max_wall_s;
            avg = s / n;
        }
    });
    return avg;
}

}  // namespace

int main_impl() {
    enable_metrics();
    std::printf("Ablation §4.3 — successive balancing vs naive relative "
                "power (Jacobi, 4 nodes, 2 CPs on one node)\n");
    std::printf("Settled cycle time after one redistribution under each "
                "scheme.\n");

    struct Case {
        const char* label;
        double sec_per_row;
        int row_kb;
    };
    // Sweep from compute-dominated to communication-dominated.
    std::vector<Case> cases{
        {"comp-heavy (1ms rows, 2KB msgs)", 1e-3, 2},
        {"balanced   (100us rows, 8KB msgs)", 1e-4, 8},
        {"comm-heavy (20us rows, 32KB msgs)", 2e-5, 32},
    };

    TextTable t;
    t.header({"regime", "naive(ms)", "successive(ms)", "gain"});
    std::vector<double> gains;
    for (const auto& c : cases) {
        double naive =
            settled_cycle(BalanceScheme::RelativePower, c.sec_per_row,
                          c.row_kb, 2);
        double succ =
            settled_cycle(BalanceScheme::SuccessiveBalancing, c.sec_per_row,
                          c.row_kb, 2);
        gains.push_back((naive - succ) / naive);
        t.row({c.label, fmt(naive * 1e3, 2), fmt(succ * 1e3, 2),
               pct(gains.back())});
    }
    std::printf("%s", t.render().c_str());

    section("SHAPE CHECKS (paper §4.3)");
    shape_check(std::fabs(gains[0]) < 0.05,
                "schemes agree when computation dominates");
    shape_check(gains[2] > gains[0] + 0.01,
                "successive balancing pulls ahead as communication grows");
    shape_check(gains[2] > 0.02,
                "successive balancing wins in the comm-heavy regime");
    dump_metrics("ablation_balance");
    return 0;
}

}  // namespace dynmpi::bench

int main() { return dynmpi::bench::main_impl(); }
