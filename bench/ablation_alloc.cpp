// Ablation for §4.1 / Figure 3: 2-D projection allocation vs contiguous
// allocation under redistribution-style re-extents.
//
// The workload mimics what redistribution does to a node's local block: the
// held row window repeatedly grows and shifts.  The projection scheme only
// touches rows that change hands; the contiguous scheme reallocates and
// copies the whole surviving block every time (the shaded cells of
// Figure 3).  Reported counters: bytes copied by the allocator per
// re-extent.
#include <benchmark/benchmark.h>

#include "dynmpi/dense_array.hpp"

namespace dynmpi {
namespace {

constexpr int kRows = 512;
constexpr int kRowElems = 1024; // 8 KB rows
constexpr int kWindow = 128;

template <typename ArrayT>
void shifting_window(benchmark::State& state) {
    ArrayT a("A", kRows, kRowElems, sizeof(double));
    a.ensure_rows(RowSet(0, kWindow));
    int lo = 0;
    for (auto _ : state) {
        int next_lo = (lo + 16) % (kRows - kWindow);
        RowSet next(next_lo, next_lo + kWindow);
        a.retain_only(next);
        a.ensure_rows(next);
        benchmark::DoNotOptimize(a.held().count());
        lo = next_lo;
    }
    state.counters["bytes_copied_per_iter"] = benchmark::Counter(
        static_cast<double>(a.stats().bytes_copied),
        benchmark::Counter::kAvgIterations);
    state.counters["rows_allocated_per_iter"] = benchmark::Counter(
        static_cast<double>(a.stats().rows_allocated),
        benchmark::Counter::kAvgIterations);
}

void BM_Projection_ShiftingWindow(benchmark::State& state) {
    shifting_window<DenseArray>(state);
}
BENCHMARK(BM_Projection_ShiftingWindow);

void BM_Contiguous_ShiftingWindow(benchmark::State& state) {
    shifting_window<ContiguousDenseArray>(state);
}
BENCHMARK(BM_Contiguous_ShiftingWindow);

template <typename ArrayT>
void grow_then_shrink(benchmark::State& state) {
    for (auto _ : state) {
        ArrayT a("A", kRows, kRowElems, sizeof(double));
        for (int hi = 64; hi <= kRows; hi += 64) a.ensure_rows(RowSet(0, hi));
        for (int hi = kRows; hi >= 64; hi -= 64)
            a.retain_only(RowSet(0, hi));
        benchmark::DoNotOptimize(a.stats().bytes_copied);
        state.counters["bytes_copied"] = static_cast<double>(
            a.stats().bytes_copied);
    }
}

void BM_Projection_GrowShrink(benchmark::State& state) {
    grow_then_shrink<DenseArray>(state);
}
BENCHMARK(BM_Projection_GrowShrink);

void BM_Contiguous_GrowShrink(benchmark::State& state) {
    grow_then_shrink<ContiguousDenseArray>(state);
}
BENCHMARK(BM_Contiguous_GrowShrink);

/// Receiving a block of rows from a peer: unpack into existing storage.
template <typename ArrayT>
void unpack_block(benchmark::State& state) {
    ArrayT src("S", kRows, kRowElems, sizeof(double));
    src.ensure_rows(RowSet(0, kWindow));
    auto packed = src.pack_rows(RowSet(0, kWindow));
    ArrayT dst("D", kRows, kRowElems, sizeof(double));
    for (auto _ : state) {
        dst.unpack_rows(packed);
        benchmark::DoNotOptimize(dst.held().count());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(packed.size()));
}

void BM_Projection_Unpack(benchmark::State& state) {
    unpack_block<DenseArray>(state);
}
BENCHMARK(BM_Projection_Unpack);

void BM_Contiguous_Unpack(benchmark::State& state) {
    unpack_block<ContiguousDenseArray>(state);
}
BENCHMARK(BM_Contiguous_Unpack);

}  // namespace
}  // namespace dynmpi

BENCHMARK_MAIN();
