// Ablation for §2.2 / §4.4: logical vs physical node dropping.
//
// A logically dropped node keeps a minimum assignment so ranks stay static;
// a physically dropped node leaves the relative-rank space entirely.  The
// difference shows in collective-heavy codes: a logically dropped node still
// participates in every AllGather and reduction, and with several competing
// processes its wake-up latency and straggle sit on the critical path of
// each one.  The paper: the difference "can be significant" (§2.2).
//
// Workload: CG (AllGather + three reductions per iteration).
#include <cmath>

#include "apps/cg.hpp"
#include "bench/bench_common.hpp"

namespace dynmpi::bench {
namespace {

double settled_cycle(DropMode mode, int nodes, int cps) {
    msg::Machine m(xeon_cluster(nodes));
    apps::CgConfig cfg;
    cfg.n = 2048;
    cfg.cycles = 400;
    cfg.sec_per_nnz = 1e-5;
    cfg.runtime.enable_removal = true;
    cfg.runtime.force_drop_loaded = true;
    cfg.runtime.drop_mode = mode;
    cfg.runtime.max_redistributions = 2;
    cfg.on_cycle = competing_at_cycle(m, nodes / 2, 5, cps);

    double avg = 0.0;
    m.run([&](msg::Rank& r) {
        auto res = apps::run_cg(r, cfg);
        if (r.id() == 0) {
            const auto& h = res.stats.history;
            double s = 0.0;
            int n = 0;
            for (std::size_t i = h.size() - 100; i < h.size(); ++i, ++n)
                s += h[i].max_wall_s;
            avg = s / n;
        }
    });
    return avg;
}

}  // namespace

int main_impl() {
    enable_metrics();
    std::printf("Ablation §2.2/§4.4 — logical vs physical dropping "
                "(CG n=2048, 3 CPs on one node)\n");

    TextTable t;
    t.header({"nodes", "logical(ms)", "physical(ms)", "physical gain"});
    std::vector<double> gains;
    for (int nodes : {8, 16}) {
        double logical = settled_cycle(DropMode::Logical, nodes, 3);
        double physical = settled_cycle(DropMode::Physical, nodes, 3);
        gains.push_back((logical - physical) / logical);
        t.row({std::to_string(nodes), fmt(logical * 1e3, 2),
               fmt(physical * 1e3, 2), pct(gains.back())});
    }
    std::printf("%s", t.render().c_str());

    section("SHAPE CHECKS (paper §2.2)");
    shape_check(gains[0] > 0.03 || gains[1] > 0.03,
                "physical dropping beats logical dropping (paper: 'can be "
                "significant')");
    shape_check(gains[0] > -0.01 && gains[1] > -0.01,
                "physical dropping is never worse");
    dump_metrics("ablation_drop");
    return 0;
}

}  // namespace dynmpi::bench

int main() { return dynmpi::bench::main_impl(); }
