// Figure 5 reproduction: multiple redistribution points (Jacobi, 4 nodes,
// 2048x2048 doubles).
//
// Execution is split into three equal periods.  A competing process starts
// on one node at the end of period 1 and terminates at the end of period 2.
// Three tests:
//   No Redist    — never adapt,
//   Redist Once  — adapt after the CP arrives, but not after it leaves,
//   Redist Twice — adapt at both points.
// Two period lengths: Short (50 cycles) and Long (500 cycles).
//
// Paper shapes: redistributing after period 1 is ~16.7% faster overall; the
// second redistribution is a wash for Short (its cost, ~6.4% of total, eats
// the gain) but wins ~7.9% for Long (cost < 1%).
#include "apps/jacobi.hpp"
#include <cmath>
#include <algorithm>

#include "bench/bench_common.hpp"

namespace dynmpi::bench {
namespace {

struct Fig5Outcome {
    double total = 0.0;
    double period[3] = {0, 0, 0}; ///< sum of cycle walls per period
    double redist_s = 0.0;
    int redistributions = 0;
};

Fig5Outcome run_test(int period_cycles, int max_redists) {
    const int cp_node = 2;
    msg::Machine m(xeon_cluster(4));

    apps::JacobiConfig cfg;
    cfg.rows = 2048;
    cfg.cols_stored = 2048;
    cfg.cols_math = 32;
    cfg.cycles = 3 * period_cycles;
    cfg.sec_per_row = 1.25e-4;
    cfg.runtime.adapt = max_redists != 0;
    cfg.runtime.max_redistributions = max_redists;
    cfg.runtime.enable_removal = false;
    cfg.on_cycle = competing_at_cycle(m, cp_node, period_cycles, 1,
                                      2 * period_cycles);

    Fig5Outcome out;
    m.run([&](msg::Rank& r) {
        auto res = apps::run_jacobi(r, cfg);
        if (r.id() == 0) {
            for (const auto& rec : res.stats.history)
                out.period[rec.cycle / period_cycles] += rec.wall_s;
            out.redist_s = res.stats.redist_wall_s;
            out.redistributions = res.stats.redistributions;
        }
    });
    // Application time: the three periods plus redistribution/grace overhead
    // (setup-time calibration is excluded — it is identical across tests).
    out.total =
        out.period[0] + out.period[1] + out.period[2] + out.redist_s;
    return out;
}

void run_experiment(const char* label, int period) {
    section(std::string(label) + " (period = " + std::to_string(period) +
            " cycles)");
    Fig5Outcome none = run_test(period, 0);
    Fig5Outcome once = run_test(period, 1);
    Fig5Outcome twice = run_test(period, -1);

    TextTable t;
    t.header({"test", "period1(s)", "period2(s)", "period3(s)", "total(s)",
              "redist(s)", "redist%"});
    auto add = [&](const char* name, const Fig5Outcome& o) {
        t.row({name, fmt(o.period[0], 1), fmt(o.period[1], 1),
               fmt(o.period[2], 1), fmt(o.total, 1), fmt(o.redist_s, 2),
               pct(o.redist_s / o.total)});
    };
    add("no redist", none);
    add("redist once", once);
    add("redist twice", twice);
    std::printf("%s", t.render().c_str());

    double gain_first = (none.total - once.total) / none.total;
    double gain_second = (once.total - twice.total) / once.total;
    std::printf("  first redistribution gain: %s   second: %s\n",
                pct(gain_first).c_str(), pct(gain_second).c_str());

    shape_check(gain_first > 0.08,
                "redistributing after period 1 clearly pays (paper: 16.7%)");
    if (period <= 100) {
        shape_check(std::fabs(gain_second) < 0.04,
                    "short run: second redistribution is roughly a wash "
                    "(paper: < 1% gain, redist cost ~6.4% of total)");
    } else {
        shape_check(gain_second > 0.02,
                    "long run: second redistribution pays (paper: 7.9%)");
        shape_check(twice.redist_s / twice.total < 0.01,
                    "long run: redistribution cost below 1% of total");
    }
}

}  // namespace

int main_impl() {
    enable_metrics();
    std::printf("Figure 5 — multiple redistribution points (Jacobi, 4 "
                "nodes, 2048x2048)\n");
    run_experiment("Short Execution", 50);
    run_experiment("Long Execution", 500);
    dump_metrics("fig5_redist_points");
    return 0;
}

}  // namespace dynmpi::bench

int main() { return dynmpi::bench::main_impl(); }
