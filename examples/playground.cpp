// playground: run any of the four applications on a cluster you describe
// from the command line — the quickest way to poke at Dyn-MPI's behaviour.
//
// Usage:
//   playground [app] [nodes] [cycles] [trace...]
//     app    : jacobi | sor | cg | particle      (default jacobi)
//     nodes  : cluster size                      (default 4)
//     cycles : phase cycles                      (default 120)
//     trace  : remaining args joined as a load trace, e.g.
//              'node 1: 1.0 inf x2'  (default: one CP on node 1 at t=1)
//
// Examples:
//   ./playground sor 8 300 'node 3: 2 9 x3'
//   ./playground particle 4 200 'node 0: 1 inf bursty(0.1,0.5)'
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/cg.hpp"
#include "apps/jacobi.hpp"
#include "apps/particle.hpp"
#include "apps/sor.hpp"
#include "dynmpi/report.hpp"
#include "sim/load_trace.hpp"

using namespace dynmpi;

namespace {

template <typename Result>
void finish(msg::Machine& m, const Result& result) {
    std::printf("\nvirtual elapsed : %.2f s\n", m.elapsed_seconds());
    std::printf("checksum        : %.6f\n", result.checksum);
    std::printf("summary         : %s\n", summarize(result.stats).c_str());
    std::printf("final blocks    :");
    for (int c : result.final_counts) std::printf(" %d", c);
    std::printf("\n\nadaptation log:\n%s",
                render_events(result.stats).c_str());
    std::printf("\ntimeline:\n%s",
                render_timeline(result.stats,
                                std::max(1, result.stats.cycles / 24))
                    .c_str());
}

}  // namespace

int main(int argc, char** argv) {
    std::string app = argc > 1 ? argv[1] : "jacobi";
    int nodes = argc > 2 ? std::atoi(argv[2]) : 4;
    int cycles = argc > 3 ? std::atoi(argv[3]) : 120;
    std::string trace;
    for (int i = 4; i < argc; ++i) {
        trace += argv[i];
        trace += '\n';
    }
    if (trace.empty()) trace = "node 1: 1.0 inf\n";

    sim::ClusterConfig cc;
    cc.num_nodes = nodes;
    msg::Machine m(cc);
    try {
        sim::apply_load_trace(m.cluster(), trace);
    } catch (const Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    std::printf("playground: %s on %d nodes, %d cycles\nload trace:\n%s\n",
                app.c_str(), nodes, cycles, trace.c_str());

    if (app == "jacobi" || app == "sor") {
        if (app == "jacobi") {
            apps::JacobiConfig cfg;
            cfg.rows = 64 * nodes;
            cfg.cols_stored = 64;
            cfg.cols_math = 32;
            cfg.cycles = cycles;
            cfg.sec_per_row = 1e-3;
            apps::JacobiResult res;
            m.run([&](msg::Rank& r) {
                auto out = apps::run_jacobi(r, cfg);
                if (r.id() == 0) res = out;
            });
            finish(m, res);
        } else {
            apps::SorConfig cfg;
            cfg.rows = 64 * nodes;
            cfg.cols_stored = 64;
            cfg.cols_math = 32;
            cfg.cycles = cycles;
            cfg.sec_per_row = 1e-3;
            apps::SorResult res;
            m.run([&](msg::Rank& r) {
                auto out = apps::run_sor(r, cfg);
                if (r.id() == 0) res = out;
            });
            finish(m, res);
        }
    } else if (app == "cg") {
        apps::CgConfig cfg;
        cfg.n = 256 * nodes;
        cfg.cycles = cycles;
        cfg.sec_per_nnz = 2e-5;
        apps::CgResult res;
        m.run([&](msg::Rank& r) {
            auto out = apps::run_cg(r, cfg);
            if (r.id() == 0) res = out;
        });
        finish(m, res);
    } else if (app == "particle") {
        apps::ParticleConfig cfg;
        cfg.rows = 32 * nodes;
        cfg.cols = 64;
        cfg.cycles = cycles;
        cfg.boost_rows = 16;
        cfg.boost_density = 4.0;
        cfg.sec_per_particle = 2e-5;
        apps::ParticleResult res;
        m.run([&](msg::Rank& r) {
            auto out = apps::run_particle(r, cfg);
            if (r.id() == 0) res = out;
        });
        finish(m, res);
    } else {
        std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
        return 1;
    }
    return 0;
}
