// particles: an unbalanced particle simulation where the *application's own*
// cost profile (particles per row) drives the distribution, not just the
// external load.
//
// Node 0's block starts with 8x the particle density.  When a competing
// process appears, the grace-period measurement captures the true per-row
// costs and the resulting variable-block distribution gives the dense
// region's owner far fewer rows.  Total particle mass is conserved across
// every redistribution — printed as the invariant check.
//
// Build & run:  ./examples/particles
#include <cstdio>

#include "apps/particle.hpp"

using namespace dynmpi;

int main() {
    sim::ClusterConfig cluster;
    cluster.num_nodes = 8;
    msg::Machine machine(cluster);

    std::printf("particles: 256x128 grid on 8 nodes; node 0's rows start "
                "8x dense; CP on node 4 at t=1s\n\n");
    machine.cluster().add_load_interval(4, 1.0, -1.0);

    apps::ParticleConfig cfg;
    cfg.rows = 256;
    cfg.cols = 128;
    cfg.cycles = 300;
    cfg.base_density = 1.0;
    cfg.boost_rows = 32; // node 0's initial block
    cfg.boost_density = 8.0;
    cfg.sec_per_particle = 1e-5;
    cfg.runtime.enable_removal = false;

    double initial_mass = (256.0 - 32.0) * 128.0 * 1.0 + 32.0 * 128.0 * 8.0;

    apps::ParticleResult result;
    machine.run([&](msg::Rank& rank) {
        auto res = apps::run_particle(rank, cfg);
        if (rank.id() == 0) result = res;
    });

    std::printf("virtual elapsed  : %.2f s\n", machine.elapsed_seconds());
    std::printf("redistributions  : %d\n", result.stats.redistributions);
    std::printf("mass conservation: expected %.1f, measured %.6f (drift "
                "%.2e)\n",
                initial_mass, result.total_mass,
                result.total_mass - initial_mass);
    std::printf("final block sizes:");
    for (int c : result.final_counts) std::printf(" %d", c);
    std::printf("\n  (node 0 owns the dense region, so it gets the fewest "
                "rows; node 4 is loaded, so it gets few as well)\n");

    if (!result.last_row_costs.empty()) {
        std::printf("\nmeasured per-row cost profile (8-row buckets, ms):\n ");
        for (int b = 0; b < 256; b += 8) {
            double s = 0;
            for (int r = b; r < b + 8; ++r)
                s += result.last_row_costs[static_cast<std::size_t>(r)];
            std::printf(" %.1f", s / 8 * 1e3);
            if ((b / 8) % 16 == 15) std::printf("\n ");
        }
        std::printf("\n");
    }
    return 0;
}
