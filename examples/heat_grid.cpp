// heat_grid: a full Red-Black SOR heat-diffusion run on a busy cluster,
// showing adaptation AND physical node removal.
//
// 16 simulated Ultra-Sparc nodes solve a 1024-row grid.  At t=1s someone
// starts three compute jobs on node 5; the runtime rebalances, observes the
// post-redistribution behaviour for 10 cycles, concludes the loaded node
// hurts more than it helps (SOR is communication-heavy), and physically
// drops it.  When the jobs finish at t=8s the node is added back.
//
// Build & run:  ./examples/heat_grid
#include <cstdio>

#include "apps/sor.hpp"
#include "dynmpi/report.hpp"

using namespace dynmpi;

int main() {
    sim::ClusterConfig cluster;
    cluster.num_nodes = 16;
    cluster.cpu.speed = 0.65; // the paper's Ultra-Sparc 5 profile
    msg::Machine machine(cluster);

    std::printf("heat_grid: SOR on 16 nodes; 3 competing jobs on node 5 "
                "during t=[1s, 8s)\n\n");
    machine.cluster().add_load_interval(5, 1.0, 8.0, 3);

    apps::SorConfig cfg;
    cfg.rows = 1024;
    cfg.cols_stored = 1024;
    cfg.cols_math = 16;
    cfg.cycles = 600;
    cfg.sec_per_row = 1.0e-4;
    cfg.runtime.enable_removal = true;

    apps::SorResult result;
    machine.run([&](msg::Rank& rank) {
        auto res = apps::run_sor(rank, cfg);
        if (rank.id() == 0) result = res;
    });

    std::printf("grid checksum     : %.6f\n", result.checksum);
    std::printf("virtual elapsed   : %.2f s\n", machine.elapsed_seconds());
    std::printf("redistributions   : %d\n", result.stats.redistributions);
    std::printf("physical drops    : %d   re-adds: %d\n",
                result.stats.physical_drops, result.stats.readds);
    std::printf("final active nodes: %d of %d\n", result.final_active, 16);
    std::printf("final block sizes :");
    for (int c : result.final_counts) std::printf(" %d", c);
    std::printf("\n");

    std::printf("\nsummary: %s\n", summarize(result.stats).c_str());
    std::printf("\ncycle-time timeline (R = redistribution, g = grace, "
                "p = post-grace):\n%s",
                render_timeline(result.stats, /*bucket=*/25).c_str());
    return 0;
}
