// Quickstart: the paper's Figure 2 program, almost line for line.
//
// A 1-D iteration space is distributed over 4 simulated nodes; each cycle
// every node updates its rows of A from B and exchanges boundary rows with
// its *relative-rank* neighbors.  At t = 1 s another user starts an
// infinite-loop process on node 2; Dyn-MPI detects the load, measures for a
// grace period, and redistributes — watch the block counts change.
//
// Build & run:  ./examples/quickstart
//
// Observability (docs/OBSERVABILITY.md):
//   --trace out.jsonl    write the structured event trace as JSONL
//   --chrome out.json    write a chrome://tracing / Perfetto trace
//   --metrics out.json   write the metrics registry snapshot
//
// Fault injection (docs/FAULTS.md):
//   --faults script.txt  run a fault script against the cluster, e.g.
//                        "crash node=3 t=1.5" or "drop-reports node=1 t=1 dur=2";
//                        "revive node=3 t=2.5" brings a crashed node back
//   --replicate on|off   buddy row replication (default off): with it on, a
//                        crashed node's rows are restored from its ring
//                        successor instead of coming back zero-filled
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "dynmpi/dmpi_c_api.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/rank.hpp"
#include "sim/fault_plan.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

using namespace dynmpi;
using namespace dynmpi::capi;

namespace {

constexpr int N = 256;        // rows of A and B
constexpr int kNumIters = 80; // phase cycles
constexpr double kRowCost = 2e-3;

bool g_replicate = false; // --replicate on|off

void spmd_main(msg::Rank& rank) {
    // ---- regular MPI initialization would go here ----
    RuntimeOptions opts;
    opts.replicate = g_replicate;
    DMPI_init(rank, N, opts);
    DenseArray& A = DMPI_register_dense_array("A", 8, sizeof(double));
    DenseArray& B = DMPI_register_dense_array("B", 8, sizeof(double));
    int phase = DMPI_init_phase(0, N, DMPI_NEAREST_NEIGHBOR,
                                8 * sizeof(double));
    DMPI_add_array_access("A", DMPI_WRITE, phase, 1, 0);
    DMPI_add_array_access("B", DMPI_READ, phase, 1, 0);
    DMPI_add_array_access("B", DMPI_READ, phase, 1, -1);
    DMPI_add_array_access("B", DMPI_READ, phase, 1, +1);
    DMPI_commit();

    for (int r : B.held().to_vector())
        for (int j = 0; j < 8; ++j) B.at<double>(r, j) = r + 0.125 * j;

    // A node revived by "revive node=... t=..." restarts here mid-run; its
    // bootstrap already advanced the cycle counter, so start from there
    // rather than from 0.
    for (int t = DMPI_runtime().stats().cycles; t < kNumIters; ++t) {
        DMPI_begin_cycle();
        int start_iter = DMPI_get_start_iter(phase);
        int end_iter = DMPI_get_end_iter(phase);
        if (DMPI_participating()) {
            // A[i][*] = F(B, i): average of the row and its neighbors.
            for (int i = start_iter; i <= end_iter; ++i)
                for (int j = 0; j < 8; ++j) {
                    double up = i > 0 ? B.at<double>(i - 1, j)
                                      : B.at<double>(i, j);
                    double dn = i < N - 1 ? B.at<double>(i + 1, j)
                                          : B.at<double>(i, j);
                    A.at<double>(i, j) =
                        (up + B.at<double>(i, j) + dn) / 3.0;
                }
            DMPI_run_phase(phase, std::vector<double>(
                                      static_cast<std::size_t>(
                                          end_iter - start_iter + 1),
                                      kRowCost));

            int rel_rank = DMPI_get_rel_rank();
            try {
                if (rel_rank > 0)
                    DMPI_Send(rel_rank - 1, 1, B.row_data(start_iter),
                              8 * sizeof(double));
                if (rel_rank < DMPI_get_num_active() - 1) {
                    std::vector<double> ghost(8);
                    DMPI_Recv(rel_rank + 1, 1, ghost.data(),
                              8 * sizeof(double));
                }
            } catch (const msg::PeerFailure&) {
                // --faults can crash a neighbor mid-cycle; skip the exchange
                // and let the next end_cycle repair the membership.
            }
        }
        DMPI_end_cycle();

        if (rank.id() == 0 && (t % 20 == 0 || t == kNumIters - 1)) {
            std::printf("iter %3d  t=%6.2fs  blocks:", t, rank.hrtime());
            Runtime& rt = DMPI_runtime();
            for (int c : rt.distribution().counts()) std::printf(" %3d", c);
            std::printf("  (redistributions so far: %d)\n",
                        rt.stats().redistributions);
        }
    }
    if (rank.id() == 0) {
        const RuntimeStats& s = DMPI_runtime().stats();
        std::printf("\ndone: %d cycles, %d redistributions, %.2fs spent "
                    "redistributing, %llu rows moved\n",
                    s.cycles, s.redistributions, s.redist_wall_s,
                    static_cast<unsigned long long>(s.transfer.rows_moved));
    }
    DMPI_finalize();
}

}  // namespace

int main(int argc, char** argv) {
    std::string trace_path, chrome_path, metrics_path, faults_path;
    for (int i = 1; i < argc; ++i) {
        auto want_value = [&](const char* flag) {
            if (std::strcmp(argv[i], flag) != 0) return false;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a file path\n", flag);
                std::exit(2);
            }
            return true;
        };
        if (want_value("--trace")) trace_path = argv[++i];
        else if (want_value("--chrome")) chrome_path = argv[++i];
        else if (want_value("--metrics")) metrics_path = argv[++i];
        else if (want_value("--faults")) faults_path = argv[++i];
        else if (want_value("--replicate")) {
            std::string v = argv[++i];
            if (v == "on") g_replicate = true;
            else if (v == "off") g_replicate = false;
            else {
                std::fprintf(stderr, "--replicate takes on or off\n");
                return 2;
            }
        }
        else {
            std::fprintf(stderr,
                         "usage: quickstart [--trace f.jsonl] "
                         "[--chrome f.json] [--metrics f.json] "
                         "[--faults script.txt] [--replicate on|off]\n");
            return 2;
        }
    }
    if (!trace_path.empty() || !chrome_path.empty())
        support::trace().enable();
    if (!metrics_path.empty()) support::metrics().enable();

    sim::ClusterConfig config;
    config.num_nodes = 4;
    msg::Machine machine(config);

    std::printf("Dyn-MPI quickstart: 4 simulated nodes, N=%d rows.\n", N);
    std::printf("A competing process lands on node 2 at t=1s...\n\n");
    machine.cluster().add_load_interval(/*node=*/2, /*t_start=*/1.0,
                                        /*t_end=*/-1.0);

    if (!faults_path.empty()) {
        try {
            sim::FaultPlan plan = sim::FaultPlan::load(faults_path);
            plan.validate(config.num_nodes);
            std::printf("fault script (%zu faults):\n%s\n",
                        plan.faults.size(), plan.to_string().c_str());
            machine.cluster().install_faults(std::move(plan));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "--faults: %s\n", e.what());
            return 2;
        }
    }

    machine.run(spmd_main);

    std::printf("virtual elapsed: %.2f s\n", machine.elapsed_seconds());

    bool io_ok = true;
    if (!trace_path.empty())
        io_ok &= support::write_text_file(trace_path,
                                          support::trace().jsonl());
    if (!chrome_path.empty())
        io_ok &= support::write_text_file(chrome_path,
                                          support::trace().chrome_trace());
    if (!metrics_path.empty())
        io_ok &= support::write_text_file(
            metrics_path, support::metrics().snapshot_json());
    if (!io_ok) {
        std::fprintf(stderr, "failed to write an observability file\n");
        return 1;
    }
    return 0;
}
