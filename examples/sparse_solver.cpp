// sparse_solver: Conjugate Gradient on a sparse SPD system with automatic
// redistribution of the sparse matrix (vector-of-lists format).
//
// Demonstrates: sparse registration, AllGather-pattern phases, the
// removal-aware global reductions (dropped nodes still learn the residual),
// and that the numerics are bit-for-bit identical whether or not the data
// moved mid-solve.
//
// Build & run:  ./examples/sparse_solver
#include <cstdio>

#include "apps/cg.hpp"

using namespace dynmpi;

namespace {

apps::CgResult solve(bool with_load, double* elapsed) {
    sim::ClusterConfig cluster;
    cluster.num_nodes = 8;
    msg::Machine machine(cluster);
    if (with_load) machine.cluster().add_load_interval(3, 0.5, -1.0, 2);

    apps::CgConfig cfg;
    cfg.n = 2048;
    cfg.cycles = 40;
    cfg.sec_per_nnz = 1e-5;

    apps::CgResult result;
    machine.run([&](msg::Rank& rank) {
        auto res = apps::run_cg(rank, cfg);
        if (rank.id() == 0) result = res;
    });
    *elapsed = machine.elapsed_seconds();
    return result;
}

}  // namespace

int main() {
    std::printf("sparse_solver: CG, n=2048, 8 nodes\n\n");

    double t_quiet = 0, t_busy = 0;
    apps::CgResult quiet = solve(false, &t_quiet);
    apps::CgResult busy = solve(true, &t_busy);

    std::printf("%-28s %14s %14s\n", "", "dedicated", "2 CPs on node 3");
    std::printf("%-28s %14.2f %14.2f\n", "virtual elapsed (s)", t_quiet,
                t_busy);
    std::printf("%-28s %14d %14d\n", "redistributions",
                quiet.stats.redistributions, busy.stats.redistributions);
    std::printf("%-28s %14.3e %14.3e\n", "final ||r||^2",
                quiet.residual_norm2, busy.residual_norm2);

    std::printf("\nresidual trajectory (every 8th iteration):\n");
    for (std::size_t i = 0; i < quiet.residual_history.size(); i += 8)
        std::printf("  iter %2zu: %.6e  vs  %.6e  (identical: %s)\n", i,
                    quiet.residual_history[i], busy.residual_history[i],
                    quiet.residual_history[i] == busy.residual_history[i]
                        ? "yes"
                        : "close");

    std::printf("\nloaded-run final block sizes:");
    for (int c : busy.final_counts) std::printf(" %d", c);
    std::printf("\n");
    return 0;
}
