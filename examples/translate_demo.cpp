// translate_demo: the paper's §2.3 story, end to end.
//
// 1. Describe the paper's Figure 1 MPI program (arrays, the partitioned
//    loop, its array references) in the translator IR.
// 2. Run the DRSD analysis and print the generated Dyn-MPI program — compare
//    with the paper's Figure 2.
// 3. Execute the translated program on a simulated 4-node cluster where a
//    competing process appears, and watch it adapt.
//
// Build & run:  ./examples/translate_demo
#include <cstdio>

#include "translate/translator.hpp"

using namespace dynmpi;
using namespace dynmpi::xlate;

namespace {

MpiProgram figure1() {
    MpiProgram p;
    p.name = "figure1_jacobi_like";
    p.global_rows = 256;
    p.arrays = {
        ArrayDecl{"A", 64, sizeof(double), false, 0},
        ArrayDecl{"B", 64, sizeof(double), false, 0},
    };
    LoopNest loop;
    loop.lo = 0;
    loop.hi = 256;
    // A[i] = F(B, i): writes A[i], reads B[i-1], B[i], B[i+1].  The two
    // offset reads are what an MPI programmer expressed as the explicit
    // boundary exchange in Figure 1; here they come out of the local->global
    // view conversion.
    loop.refs = {
        ArrayRef{"A", AccessMode::Write, false, 1, 0},
        globalize("B", AccessMode::Read, 0),
        globalize("B", AccessMode::Read, -1),
        globalize("B", AccessMode::Read, +1),
    };
    p.loops.push_back(loop);
    return p;
}

}  // namespace

int main() {
    MpiProgram program = figure1();
    TranslationPlan plan = translate(program);

    std::printf("=== generated Dyn-MPI program (compare paper Figure 2) "
                "===\n\n%s\n",
                emit_source(plan).c_str());

    std::printf("=== executing the translated program ===\n");
    sim::ClusterConfig cluster;
    cluster.num_nodes = 4;
    msg::Machine machine(cluster);
    machine.cluster().add_load_interval(/*node=*/2, /*t=*/1.0, -1.0, 2);

    TranslatedRunResult result;
    machine.run([&](msg::Rank& rank) {
        RuntimeOptions options;
        options.enable_removal = false;
        auto res = run_translated(rank, program, /*cycles=*/120,
                                  /*sec_per_row=*/2e-3, options);
        if (rank.id() == 0) result = res;
    });

    std::printf("cycles run        : %d\n", result.stats.cycles);
    std::printf("redistributions   : %d\n", result.stats.redistributions);
    std::printf("final block sizes :");
    for (int c : result.final_counts) std::printf(" %d", c);
    std::printf("\n(two competing processes landed on node 2 at t=1s — its "
                "block shrank accordingly)\n");
    std::printf("virtual elapsed   : %.2f s\n", machine.elapsed_seconds());
    return 0;
}
