// mpi_vs_dynmpi: the paper's core claim in one runnable comparison.
//
// The same Jacobi-pattern workload is written twice:
//   (a) as an ordinary MPI program against the MPI-1 compat layer — static
//       even blocks, exactly the paper's Figure 1 shape;
//   (b) with Dyn-MPI.
// Both run on the same 4-node simulated cluster where a competing process
// occupies node 1 from t = 2 s on.  Same pattern, very different clocks.
//
// Build & run:  ./examples/mpi_vs_dynmpi
#include <cstdio>
#include <vector>

#include "apps/jacobi.hpp"
#include "mpisim/mpi_compat.hpp"
#include "sim/load_trace.hpp"

using namespace dynmpi;

namespace {

constexpr int kRows = 256;
constexpr int kCols = 32;
constexpr int kCycles = 150;
constexpr double kRowCost = 2e-3;
const char* kLoadTrace = "node 1: 2.0 inf   # someone logs in on node 1\n";

/// (a) The static MPI version, written with MPI_* calls only.
double run_plain_mpi() {
    sim::ClusterConfig cc;
    cc.num_nodes = 4;
    msg::Machine m(cc);
    sim::apply_load_trace(m.cluster(), kLoadTrace);

    double checksum = 0.0;
    m.run([&](msg::Rank& rank_handle) {
        using namespace dynmpi::mpi;
        MPI_Init(rank_handle);
        int rank, numprocs;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        MPI_Comm_size(MPI_COMM_WORLD, &numprocs);

        const int block = kRows / numprocs;
        const int lo = rank * block, hi = lo + block - 1;
        std::vector<double> grid(static_cast<std::size_t>(block + 2) * kCols,
                                 1.0);
        auto row = [&](int global) {
            return grid.data() +
                   static_cast<std::size_t>(global - lo + 1) * kCols;
        };

        for (int t = 0; t < kCycles; ++t) {
            if (rank > 0)
                MPI_Send(row(lo), kCols, MPI_DOUBLE, rank - 1, 0,
                         MPI_COMM_WORLD);
            if (rank < numprocs - 1) {
                MPI_Recv(row(hi + 1) + kCols - kCols, kCols, MPI_DOUBLE,
                         rank + 1, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
            }
            if (rank < numprocs - 1)
                MPI_Send(row(hi), kCols, MPI_DOUBLE, rank + 1, 1,
                         MPI_COMM_WORLD);
            if (rank > 0)
                MPI_Recv(row(lo - 1) + 0, kCols, MPI_DOUBLE, rank - 1, 1,
                         MPI_COMM_WORLD, MPI_STATUS_IGNORE);
            // The real sweep is tiny host work; the paper-scale cost is
            // charged to the virtual clock.
            for (int i = lo; i <= hi; ++i)
                for (int j = 1; j < kCols - 1; ++j)
                    row(i)[j] = 0.25 * (row(i)[j - 1] + row(i)[j + 1] +
                                        row(i - 1 < lo ? lo : i - 1)[j] +
                                        row(i + 1 > hi ? hi : i + 1)[j]);
            mpi_rank().compute(block * kRowCost);
        }
        double local = 0;
        for (int i = lo; i <= hi; ++i) local += row(i)[kCols / 2];
        double sum = 0;
        MPI_Allreduce(&local, &sum, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
        if (rank == 0) checksum = sum;
        MPI_Finalize();
    });
    std::printf("  plain MPI : %6.2f s virtual   (checksum %.4f)\n",
                m.elapsed_seconds(), checksum);
    return m.elapsed_seconds();
}

/// (b) The Dyn-MPI version (the library's Jacobi app).
double run_dynmpi() {
    sim::ClusterConfig cc;
    cc.num_nodes = 4;
    msg::Machine m(cc);
    sim::apply_load_trace(m.cluster(), kLoadTrace);

    apps::JacobiConfig cfg;
    cfg.rows = kRows;
    cfg.cols_stored = kCols;
    cfg.cols_math = kCols;
    cfg.cycles = kCycles;
    cfg.sec_per_row = kRowCost;
    cfg.runtime.enable_removal = false;

    apps::JacobiResult result;
    m.run([&](msg::Rank& r) {
        auto res = apps::run_jacobi(r, cfg);
        if (r.id() == 0) result = res;
    });
    std::printf("  Dyn-MPI   : %6.2f s virtual   (checksum %.4f, %d "
                "redistribution(s), final blocks",
                m.elapsed_seconds(), result.checksum,
                result.stats.redistributions);
    for (int c : result.final_counts) std::printf(" %d", c);
    std::printf(")\n");
    return m.elapsed_seconds();
}

}  // namespace

int main() {
    std::printf("mpi_vs_dynmpi: the same Jacobi-pattern workload written both "
                "ways; node 1 busy from t=2s\n\nload trace:\n  %s\n",
                kLoadTrace);
    double t_mpi = run_plain_mpi();
    double t_dyn = run_dynmpi();
    std::printf("\nDyn-MPI finishes %.1f%% sooner than the static MPI "
                "program under the same load.\n",
                (t_mpi - t_dyn) / t_mpi * 100.0);
    return 0;
}
